#!/usr/bin/env python
"""Quickstart: Coulomb potential of random charges via the BLTC.

Reproduces the paper's basic setting in miniature: N particles uniform in
the [-1,1]^3 cube with uniform random charges, potential computed by the
barycentric Lagrange treecode on the simulated Titan V, verified against
direct summation (paper eq. 16).

Run:  python examples/quickstart.py [N]
"""

import sys

import repro


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    # The paper's test case: uniform cube, uniform charges (Sec. 4).
    particles = repro.random_cube(n, seed=0)

    # Treecode parameters: MAC theta, interpolation degree n, leaf/batch
    # caps NL/NB (paper Sec. 2.4).  These reach ~7 digits of accuracy.
    params = repro.TreecodeParams(
        theta=0.7, degree=8, max_leaf_size=2000, max_batch_size=2000
    )
    treecode = repro.BarycentricTreecode(
        repro.CoulombKernel(), params, machine=repro.GPU_TITAN_V
    )
    result = treecode.compute(particles)

    # Accuracy check against sampled direct summation (eq. 16).
    err = repro.sampled_error(
        result.potential,
        particles.positions,
        particles.positions,
        particles.charges,
        repro.CoulombKernel(),
        n_samples=500,
    )

    s = result.stats
    print(f"BLTC on {s['machine']}")
    print(f"  particles              : {n:,}")
    print(f"  tree nodes / leaves    : {s['n_tree_nodes']} / {s['n_leaves']}")
    print(f"  target batches         : {s['n_batches']}")
    print(f"  approx interactions    : {s['n_approx_interactions']:,}")
    print(f"  direct interactions    : {s['n_direct_interactions']:,}")
    print(f"  kernel launches        : {s['launches']:,}")
    print(f"  kernel evaluations     : {s['kernel_evaluations']:.3e}")
    print("  simulated phase times (s):")
    for phase, t in result.phases.as_dict().items():
        print(f"    {phase:<10s} {t:.5f}")
    print(f"  simulated total        : {result.phases.total:.5f} s")
    print(f"  relative 2-norm error  : {err:.3e}")


if __name__ == "__main__":
    main()
