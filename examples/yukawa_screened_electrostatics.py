#!/usr/bin/env python
"""Screened electrostatics: Yukawa potential accuracy/cost trade-off.

The Yukawa kernel exp(-kappa r)/r models electrostatics in an ionic
solvent (kappa = inverse Debye length); it is the second kernel in the
paper's evaluation (Sec. 4, kappa = 0.5).  This example sweeps the
interpolation degree at fixed MAC and prints the accuracy/cost frontier --
one curve of the paper's Fig. 4b -- plus the Coulomb comparison showing
the kernel-dependent cost ratio (~1.5x on the GPU model).

Run:  python examples/yukawa_screened_electrostatics.py [N]
"""

import sys

import repro
from repro.analysis import format_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    particles = repro.random_cube(n, seed=1)
    yukawa = repro.YukawaKernel(kappa=0.5)
    coulomb = repro.CoulombKernel()

    rows = []
    for degree in (1, 3, 5, 7, 9):
        params = repro.TreecodeParams(
            theta=0.7, degree=degree, max_leaf_size=500, max_batch_size=500
        )
        res_y = repro.BarycentricTreecode(yukawa, params).compute(particles)
        res_c = repro.BarycentricTreecode(coulomb, params).compute(particles)
        err = repro.sampled_error(
            res_y.potential,
            particles.positions,
            particles.positions,
            particles.charges,
            yukawa,
            n_samples=400,
        )
        rows.append(
            [
                degree,
                err,
                res_y.phases.total,
                res_c.phases.total,
                res_y.phases.total / res_c.phases.total,
            ]
        )

    print(
        format_table(
            ["degree n", "rel. error", "yukawa time (s)",
             "coulomb time (s)", "yukawa/coulomb"],
            rows,
            title=(
                f"Yukawa (kappa=0.5) BLTC, N={n:,}, theta=0.7, "
                "simulated Titan V"
            ),
        )
    )
    print(
        "\nThe Yukawa/Coulomb cost ratio reflects the exponential's cost on"
        "\nthe device (paper Sec. 4: ~1.5x on the GPU, ~1.8x on the CPU)."
    )


if __name__ == "__main__":
    main()
