#!/usr/bin/env python
"""Repeated evaluation on fixed geometry: the prepare/apply session API.

The treecode's natural production workload is MD time-stepping and
BEM-style multi-RHS solves: the particle positions persist across many
evaluations while the charges change every step.  A monolithic
``compute()`` rebuilds the tree, the target batches, the interaction
lists and the execution plan from scratch each time; the session API

    prepared = BarycentricTreecode(kernel, params).prepare(particles)
    result   = prepared.apply(charges_t)        # once per step

charges all of that setup exactly once and per step pays only for the
charge upload, the two modified-charge kernels on the cached cluster
grids, and the compute phase.  The results are bitwise identical to a
fresh ``compute()`` with the same charges.

This script evolves a fluctuating-charge scenario (``charge_waveform``)
and reports the simulated per-step cost of both styles plus the
end-to-end amortized speedup.

Run:  python examples/repeated_evaluation.py [N] [steps]
"""

import sys

import numpy as np

import repro


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    particles = repro.random_cube(n, seed=7)
    kernel = repro.CoulombKernel()
    params = repro.TreecodeParams(
        theta=0.7, degree=5, max_leaf_size=300, max_batch_size=300,
        backend="fused",
    )
    tc = repro.BarycentricTreecode(kernel, params)

    # -- session style: prepare once, apply per step --------------------
    prepared = tc.prepare(particles)
    print(
        f"prepare(): N={n}, {prepared.n_targets} targets, "
        f"setup {prepared.phases.setup * 1e3:.3f} ms (charged once)"
    )
    print(f"{'step':>4} {'precompute ms':>14} {'compute ms':>11} {'total ms':>9}")
    session_total = prepared.phases.total
    last = None
    charge_steps = list(
        repro.charge_waveform(particles, steps, amplitude=0.3, seed=11)
    )
    for t, charges in enumerate(charge_steps):
        res = prepared.apply(charges)
        assert res.phases.setup == 0.0  # all setup amortized into prepare()
        session_total += res.phases.total
        last = res
        print(
            f"{t:>4} {res.phases.precompute * 1e3:>14.4f} "
            f"{res.phases.compute * 1e3:>11.4f} {res.phases.total * 1e3:>9.4f}"
        )

    # -- monolithic style: one compute() per step -----------------------
    monolithic_total = 0.0
    for charges in charge_steps:
        res = tc.compute(repro.ParticleSet(particles.positions, charges))
        monolithic_total += res.phases.total

    # -- bitwise cross-check on the final step --------------------------
    fresh = tc.compute(
        repro.ParticleSet(particles.positions, charge_steps[-1])
    )
    if not np.array_equal(fresh.potential, last.potential):
        raise SystemExit("session result diverged from fresh compute()")

    speedup = monolithic_total / session_total
    print(
        f"\nsimulated seconds over {steps} steps: "
        f"compute()-per-step {monolithic_total:.6f}, "
        f"prepare+apply {session_total:.6f}  ->  {speedup:.2f}x"
    )
    print("OK: apply() is bitwise-identical to a fresh compute().")


if __name__ == "__main__":
    main()
