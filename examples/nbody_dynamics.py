#!/usr/bin/env python
"""N-body dynamics with treecode forces: energy-conserving leapfrog.

The paper's opening sentence motivates the BLTC with "electrostatic or
gravitational potentials and forces"; this example closes the loop by
integrating a small self-gravitating cluster with the treecode's force
evaluation (which reuses the same modified charges as the potential).

A Plummer sphere is evolved with kick-drift-kick leapfrog using softened
gravity (the inverse multiquadric kernel *is* Plummer-softened gravity:
G(x,y) = 1/sqrt(r^2 + eps^2)), and total energy drift is reported --
the standard sanity check of any N-body force engine.

Run:  python examples/nbody_dynamics.py [N] [steps]
"""

import sys

import numpy as np

import repro


def energies(kernel, pos, vel, mass):
    phi = kernel.potential(pos, pos, mass)
    # Potential energy with gravity sign convention (attractive).
    pe = -0.5 * float(np.sum(mass * phi))
    ke = 0.5 * float(np.sum(mass * np.einsum("id,id->i", vel, vel)))
    return ke, pe


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 25
    dt = 0.01
    softening = 0.05

    cluster = repro.plummer_sphere(n, seed=13, scale=1.0, total_mass=1.0)
    pos = cluster.positions.copy()
    mass = cluster.charges.copy()
    rng = np.random.default_rng(14)
    # Cold-ish start with a little velocity dispersion.
    vel = rng.normal(0.0, 0.1, size=pos.shape)

    # Plummer-softened gravity: 1/sqrt(r^2 + eps^2).
    kernel = repro.InverseMultiquadricKernel(c=softening)
    params = repro.TreecodeParams(
        theta=0.6, degree=6, max_leaf_size=300, max_batch_size=300
    )

    def accelerations(p):
        res = repro.BarycentricTreecode(kernel, params).compute(
            repro.ParticleSet(p, mass), compute_forces=True
        )
        # Gravity attracts: a_i = -grad phi with phi = -sum m_j G ->
        # a_i = +grad_x sum m_j G = -(force per unit mass from kernel).
        return -res.forces, res

    ke0, pe0 = energies(kernel, pos, vel, mass)
    e0 = ke0 + pe0
    print(f"Plummer cluster, N={n}, dt={dt}, eps={softening}")
    print(f"  step {0:4d}: KE={ke0:+.5f} PE={pe0:+.5f} E={e0:+.5f}")

    acc, res = accelerations(pos)
    sim_seconds = res.phases.total
    for step in range(1, steps + 1):
        vel += 0.5 * dt * acc          # kick
        pos += dt * vel                # drift
        acc, res = accelerations(pos)  # force refresh
        sim_seconds += res.phases.total
        vel += 0.5 * dt * acc          # kick

        if step % max(1, steps // 5) == 0 or step == steps:
            ke, pe = energies(kernel, pos, vel, mass)
            drift = abs((ke + pe - e0) / e0)
            print(
                f"  step {step:4d}: KE={ke:+.5f} PE={pe:+.5f} "
                f"E={ke + pe:+.5f} |dE/E|={drift:.2e}"
            )

    ke, pe = energies(kernel, pos, vel, mass)
    drift = abs((ke + pe - e0) / e0)
    print(f"  total energy drift over {steps} steps: {drift:.2e}")
    print(f"  simulated GPU time for all force evaluations: {sim_seconds:.3f} s")
    if drift > 5e-3:
        raise SystemExit("energy drift too large -- force path broken?")
    print("  OK: leapfrog + treecode forces conserve energy.")


if __name__ == "__main__":
    main()
