#!/usr/bin/env python
"""N-body dynamics with treecode forces: energy-conserving leapfrog.

The paper's opening sentence motivates the BLTC with "electrostatic or
gravitational potentials and forces"; this example closes the loop by
integrating a small self-gravitating cluster with the treecode's force
evaluation (which reuses the same modified charges as the potential).

A Plummer sphere is evolved with kick-drift-kick leapfrog using softened
gravity (the inverse multiquadric kernel *is* Plummer-softened gravity:
G(x,y) = 1/sqrt(r^2 + eps^2)), and total energy drift is reported --
the standard sanity check of any N-body force engine.

Between steps the particles barely move relative to the octree's leaf
boxes, so instead of rebuilding the whole session each step the loop
prepares once and calls ``update_geometry`` -- the incremental
re-prepare that re-bins only escaped particles and patches only the
touched interaction lists.  The warm path is bitwise-identical to a
cold prepare at the same positions, so the physics is unchanged; the
report at the end shows how much setup time the warm path saved.

Run:  python examples/nbody_dynamics.py [N] [steps]
"""

import sys

import numpy as np

import repro


def energies(kernel, pos, vel, mass):
    phi = kernel.potential(pos, pos, mass)
    # Potential energy with gravity sign convention (attractive).
    pe = -0.5 * float(np.sum(mass * phi))
    ke = 0.5 * float(np.sum(mass * np.einsum("id,id->i", vel, vel)))
    return ke, pe


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 25
    dt = 0.01
    softening = 0.05

    cluster = repro.plummer_sphere(n, seed=13, scale=1.0, total_mass=1.0)
    pos = cluster.positions.copy()
    mass = cluster.charges.copy()
    rng = np.random.default_rng(14)
    # Cold-ish start with a little velocity dispersion.
    vel = rng.normal(0.0, 0.1, size=pos.shape)

    # Plummer-softened gravity: 1/sqrt(r^2 + eps^2).
    kernel = repro.InverseMultiquadricKernel(c=softening)
    params = repro.TreecodeParams(
        theta=0.6, degree=6, max_leaf_size=300, max_batch_size=300
    )

    # Prepare once; every later step warm-starts from this session.
    driver = repro.BarycentricTreecode(kernel, params)
    prepared = driver.prepare(repro.ParticleSet(pos, mass))
    cold_setup = prepared.phases.setup  # setup cost of one cold prepare

    def accelerations():
        res = prepared.apply(mass, compute_forces=True)
        # Gravity attracts: a_i = -grad phi with phi = -sum m_j G ->
        # a_i = +grad_x sum m_j G = -(force per unit mass from kernel).
        return -res.forces, res

    ke0, pe0 = energies(kernel, pos, vel, mass)
    e0 = ke0 + pe0
    print(f"Plummer cluster, N={n}, dt={dt}, eps={softening}")
    print(f"  step {0:4d}: KE={ke0:+.5f} PE={pe0:+.5f} E={e0:+.5f}")

    acc, res = accelerations()
    sim_seconds = prepared.phases.setup + res.phases.total
    warm_setup = 0.0
    n_rebuilds = 0
    rebinned = []
    for step in range(1, steps + 1):
        vel += 0.5 * dt * acc          # kick
        pos += dt * vel                # drift
        upd = prepared.update_geometry(pos)  # incremental re-prepare
        acc, res = accelerations()     # force refresh
        warm_setup += upd.phases.setup
        n_rebuilds += int(upd.rebuilt)
        rebinned.append(upd.rebinned_fraction)
        sim_seconds += upd.phases.total + res.phases.total
        vel += 0.5 * dt * acc          # kick

        if step % max(1, steps // 5) == 0 or step == steps:
            ke, pe = energies(kernel, pos, vel, mass)
            drift = abs((ke + pe - e0) / e0)
            print(
                f"  step {step:4d}: KE={ke:+.5f} PE={pe:+.5f} "
                f"E={ke + pe:+.5f} |dE/E|={drift:.2e}"
            )

    ke, pe = energies(kernel, pos, vel, mass)
    drift = abs((ke + pe - e0) / e0)
    cold_total = cold_setup * steps  # rebuilding from scratch every step
    saved = cold_total - warm_setup
    print(f"  total energy drift over {steps} steps: {drift:.2e}")
    print(f"  simulated GPU time (setup + force evaluations): {sim_seconds:.3f} s")
    print(
        f"  re-prepare time: warm updates {warm_setup:.3f} s vs cold "
        f"rebuilds {cold_total:.3f} s -> saved {saved:.3f} s "
        f"({n_rebuilds}/{steps} steps fell back to a full rebuild)"
    )
    print(
        f"  re-binned fraction per step: mean {np.mean(rebinned):.4f}, "
        f"max {np.max(rebinned):.4f}"
    )
    if drift > 5e-3:
        raise SystemExit("energy drift too large -- force path broken?")
    print("  OK: leapfrog + treecode forces conserve energy.")


if __name__ == "__main__":
    main()
