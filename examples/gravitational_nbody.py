#!/usr/bin/env python
"""Gravitational N-body: Plummer-sphere potential and forces check.

The Coulomb kernel doubles as the gravitational monopole kernel (paper
Sec. 2: the same sums "arise in gravitational simulations where the
particles are point masses").  This example computes the gravitational
potential of a Plummer sphere -- the classical stellar-dynamics initial
condition -- with the BLTC, compares against direct summation, and checks
a physical invariant: the total potential energy of the Plummer model,
U = -(3 pi / 32) G M^2 / a, within Monte-Carlo error.

Run:  python examples/gravitational_nbody.py [N]
"""

import sys

import numpy as np

import repro


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000
    scale = 1.0
    total_mass = 1.0
    stars = repro.plummer_sphere(n, seed=3, scale=scale, total_mass=total_mass)

    params = repro.TreecodeParams(
        theta=0.6, degree=7, max_leaf_size=1000, max_batch_size=1000
    )
    treecode = repro.BarycentricTreecode(repro.CoulombKernel(), params)
    result = treecode.compute(stars)

    # Gravitational potential is -G * sum m_j / r (G = 1 units).
    phi = -result.potential

    err = repro.sampled_error(
        result.potential,
        stars.positions,
        stars.positions,
        stars.charges,
        repro.CoulombKernel(),
        n_samples=400,
        seed=1,
    )

    # Total potential energy U = (1/2) sum_i m_i phi_i; Plummer's closed
    # form is U = -(3 pi / 32) M^2 / a.
    u_measured = 0.5 * float(np.sum(stars.charges * phi))
    u_plummer = -(3.0 * np.pi / 32.0) * total_mass**2 / scale

    print(f"Plummer sphere, N = {n:,} equal-mass stars")
    print(f"  treecode rel. error vs direct sum : {err:.3e}")
    print(f"  potential energy (treecode)       : {u_measured:+.6f}")
    print(f"  potential energy (Plummer theory) : {u_plummer:+.6f}")
    print(
        "  agreement                         : "
        f"{abs(u_measured - u_plummer) / abs(u_plummer) * 100:.2f}% "
        "(Monte-Carlo sampling error dominates)"
    )
    print(f"  simulated GPU time                : {result.phases.total:.4f} s")
    depth = result.stats["tree_depth"]
    print(
        f"  adaptive octree                   : {result.stats['n_tree_nodes']}"
        f" nodes, depth {depth} (deeper near the dense core)"
    )


if __name__ == "__main__":
    main()
