#!/usr/bin/env python
"""Multi-GPU distributed run: RCB + locally essential trees.

A miniature of the paper's Sec. 4 scaling study on the simulated cluster:
the particle set is decomposed with recursive coordinate bisection, each
rank builds its local source tree, exchanges tree arrays and cluster
charges over the simulated passive-target RMA windows, and evaluates its
targets from its locally essential tree.  The per-rank phase breakdown
(setup / precompute / compute) is the quantity Fig. 6cd plots.

Run:  python examples/multi_gpu_weak_scaling.py [N_per_rank] [max_ranks]
"""

import sys

import repro
from repro.analysis import format_table


def main() -> None:
    n_per_rank = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    max_ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    params = repro.TreecodeParams(
        theta=0.8, degree=6, max_leaf_size=500, max_batch_size=500
    )
    kernel = repro.CoulombKernel()

    rows = []
    ranks = [r for r in (1, 2, 4, 8, 16, 32) if r <= max_ranks]
    for n_ranks in ranks:
        n = n_per_rank * n_ranks
        particles = repro.random_cube(n, seed=5)
        driver = repro.DistributedBLTC(
            kernel,
            params,
            n_ranks=n_ranks,
            machine=repro.GPU_P100,
        )
        res = driver.compute(particles)
        err = repro.sampled_error(
            res.potential,
            particles.positions,
            particles.positions,
            particles.charges,
            kernel,
            n_samples=300,
        )
        agg = res.aggregate_phases()
        rows.append(
            [
                n_ranks,
                n,
                res.total_seconds,
                agg.setup,
                agg.precompute,
                agg.compute,
                res.stats["total_rma_bytes"],
                err,
            ]
        )

    print(
        format_table(
            ["GPUs", "N total", "time (s)", "setup", "precompute",
             "compute", "RMA bytes", "rel. error"],
            rows,
            title=(
                f"Weak scaling, {n_per_rank:,} particles/GPU, "
                "simulated P100 cluster (paper Fig. 5 setting)"
            ),
        )
    )
    print(
        "\nRun time grows only modestly with rank count -- the O(N log N)"
        "\nsignature the paper reports -- while accuracy stays at the level"
        "\nset by (theta, n)."
    )


if __name__ == "__main__":
    main()
