#!/usr/bin/env python
"""Kernel independence: a user-defined kernel on BEM-style geometry.

The BLTC requires only kernel evaluations (paper Sec. 2), so a user can
supply any smooth, non-oscillatory kernel.  This example defines a
*screened multiquadric* kernel not shipped with the library, registers it,
and evaluates a boundary-element-style problem: sources are quadrature
points on a sphere surface, targets are off-surface field points
(disjoint targets and sources, paper Sec. 2.4).  BEM solve loops carry
many right-hand sides, so the evaluation passes all boundary-condition
charge vectors as one ``(N, n_rhs)`` block through a single blocked
``apply`` -- one traversal evaluates every column.

Run:  python examples/custom_kernel_bem.py [N_sources]
"""

import sys

import numpy as np

import repro
from repro.kernels import RadialKernel, register_kernel


class ScreenedMultiquadric(RadialKernel):
    """G(x, y) = exp(-kappa r) / sqrt(r^2 + c^2): smooth everywhere.

    Only `evaluate_r` is needed -- no multipole expansions, no Taylor
    recurrences: this is what kernel independence buys.
    """

    name = "screened-multiquadric"
    flops_per_interaction = 30
    transcendental_weight = 1.0
    singular_at_origin = False

    def __init__(self, kappa: float = 0.5, c: float = 0.05) -> None:
        self.kappa = kappa
        self.c = c

    def evaluate_r(self, r: np.ndarray) -> np.ndarray:
        return np.exp(-self.kappa * r) / np.sqrt(r * r + self.c * self.c)

    def evaluate_r0(self) -> float:
        return 1.0 / self.c


def main() -> None:
    n_sources = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000

    register_kernel("screened-multiquadric", ScreenedMultiquadric)
    kernel = repro.get_kernel("screened-multiquadric", kappa=0.5, c=0.05)

    # Sources: quadrature points on the unit sphere; targets: field points
    # on a larger sphere (disjoint from the sources).
    sources = repro.sphere_surface(n_sources, seed=11, radius=1.0)
    targets = repro.sphere_surface(max(n_sources // 4, 200), seed=12, radius=2.5)

    # A BEM-style block of right-hand sides: the surface charge density
    # plus a few perturbed boundary conditions, all solved in one pass.
    rng = np.random.default_rng(13)
    n_rhs = 4
    charge_block = np.column_stack(
        [sources.charges]
        + [
            sources.charges + rng.normal(scale=0.3, size=n_sources)
            for _ in range(n_rhs - 1)
        ]
    )

    # Batches smaller than leaves here: curved target shells need tighter
    # batch radii for the MAC to separate them from the source sphere.
    params = repro.TreecodeParams(
        theta=0.8, degree=6, max_leaf_size=400, max_batch_size=200
    )
    treecode = repro.BarycentricTreecode(kernel, params)
    prepared = treecode.prepare(sources, targets=targets.positions)
    result = prepared.apply(charge_block)  # (M, n_rhs): one traversal

    errs = []
    for j in range(n_rhs):
        ref = kernel.potential(
            targets.positions, sources.positions, charge_block[:, j]
        )
        errs.append(repro.relative_l2_error(ref, result.potential[:, j]))

    print("Custom kernel through the kernel-independent BLTC")
    print(f"  kernel                 : {kernel.name}")
    print(f"  sources (on sphere)    : {n_sources:,}")
    print(f"  targets (off surface)  : {len(targets):,}")
    print(f"  charge vectors (RHS)   : {n_rhs} in one blocked apply")
    for j, err in enumerate(errs):
        print(f"  rel. 2-norm error [{j}]  : {err:.3e}")
    print(f"  approx interactions    : {result.stats['n_approx_interactions']:,}")
    print(f"  direct interactions    : {result.stats['n_direct_interactions']:,}")
    print(f"  simulated GPU time     : {result.phases.total:.4f} s")
    print(
        "\nNo kernel-specific series expansions were used anywhere -- swap"
        "\nthe kernel and the same treecode machinery applies."
    )


if __name__ == "__main__":
    main()
