"""Treecode parameter dataclasses (the paper's ``theta, n, NL, NB``).

``TreecodeParams`` collects the user-facing knobs of the barycentric
Lagrange treecode exactly as the paper presents them in the BLTC algorithm
(Sec. 2.4):

* ``theta`` -- the multipole acceptance criterion (MAC) parameter; a
  batch-cluster pair is approximated when ``(r_B + r_C) / R < theta``.
* ``degree`` -- interpolation degree ``n``; each cluster carries an
  ``(n+1)^3`` tensor-product Chebyshev grid.
* ``max_leaf_size`` -- ``NL``, the maximum number of source particles in a
  leaf cluster.
* ``max_batch_size`` -- ``NB``, the maximum number of target particles in a
  target batch.

plus implementation switches that the paper discusses in the text
(cluster-size MAC condition, aspect-ratio-aware splitting, batch-level MAC)
so that every design decision can be ablated.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, replace

import numpy as np

__all__ = ["TreecodeParams", "DEFAULT_PARAMS"]

#: Maximum box aspect ratio allowed after splitting (paper Sec. 3.1).
ASPECT_RATIO_LIMIT: float = math.sqrt(2.0)


@dataclass(frozen=True)
class TreecodeParams:
    """User-facing parameters of the barycentric Lagrange treecode."""

    #: MAC parameter ``theta`` in ``(0, 1]``; smaller is more accurate.
    theta: float = 0.8
    #: Interpolation degree ``n >= 1``; clusters carry ``(n+1)^3`` points.
    degree: int = 8
    #: ``NL`` -- maximum number of source particles per leaf cluster.
    max_leaf_size: int = 2000
    #: ``NB`` -- maximum number of target particles per batch.
    max_batch_size: int = 2000
    #: Enforce the second MAC condition ``(n+1)^3 < N_C`` (eq. 13).  When a
    #: cluster holds fewer particles than interpolation points, the exact
    #: interaction is both faster and more accurate.
    size_check: bool = True
    #: Apply the sqrt(2) aspect-ratio rule when splitting clusters
    #: (paper Sec. 3.1): only bisect dimensions long enough that children
    #: do not become more elongated than sqrt(2).
    aspect_ratio_splitting: bool = True
    #: Apply the MAC to the batch as a whole (paper Sec. 3.2).  Setting this
    #: to False applies a per-target MAC, which is the classical treecode
    #: behaviour the paper argues against for GPUs (thread divergence).
    batch_mac: bool = True
    #: Floating-point dtype for the computation.  ``float32`` implements the
    #: paper's "mixed-precision arithmetic" future-work item.
    dtype: type = np.float64
    #: Shrink every cluster to the minimal bounding box of its particles
    #: (paper Sec. 2.3); guarantees some source coordinates coincide with
    #: Chebyshev point coordinates, exercising the removable singularities.
    shrink_to_fit: bool = True
    #: Evaluation backend executing the compiled plan: ``"numpy"`` (the
    #: reference blocked semantics), ``"fused"`` (pre-gathered buffers, no
    #: per-batch concatenation -- faster, same counters), ``"batched"``
    #: (shape-bucketed stacked GEMMs over the uniform far field, fused
    #: fallback for ragged work -- the fastest serial path),
    #: ``"multiprocessing"`` (plan groups sharded over a persistent worker
    #: pool), ``"numba"`` (JIT-compiled per-group loops; registered only
    #: when numba is installed) or ``"model"`` (launch accounting only).
    #: Names are validated against the registry at construction time and
    #: resolved through :mod:`repro.core.backends` at compute time, so
    #: custom registered backends are selectable by name; a ready-made
    #: :class:`~repro.core.backends.Backend` instance (one carrying its
    #: own state) is accepted directly and passes through the resolver.
    backend: object = "numpy"
    #: Deprecated no-op.  Plans always de-duplicate their source
    #: buffers now (clusters referenced by many batches are stored once
    #: and aliased through per-segment offsets; bitwise-identical
    #: results, strictly smaller buffers).  Passing any non-None value
    #: emits a :class:`DeprecationWarning`; the field will be removed.
    shared_sources: bool | None = None
    #: Compile plans with the shape-bucketed batched execution layout
    #: attached (identically shaped far-field segment runs grouped into
    #: dense index buckets; see :mod:`repro.core.plan`).  The
    #: ``"batched"`` backend builds the layout lazily when absent, so
    #: this knob only moves the (geometry-only) build into the compile /
    #: prepare phase; it changes no results.  Off by default: other
    #: backends never read the layout.
    batched: bool = False
    #: Dynamic-geometry sessions (``update_geometry``): once the fraction
    #: of particles that changed leaf membership in one update exceeds
    #: this threshold, the incremental re-bin/patch path is abandoned and
    #: the session's geometry is rebuilt from scratch (a fresh tree keeps
    #: boxes tight and interaction lists short once drift accumulates).
    #: ``0.0`` rebuilds on any membership change; ``1.0`` never rebuilds
    #: on drift alone (structural bail-outs still force a rebuild).
    rebuild_threshold: float = 0.25
    #: Failure handling for prepared-session applies.  ``"degrade"``
    #: (the default) lets the session fall back along the backend
    #: chain (``"multiprocessing"`` -> ``"fused"`` -> ``"numpy"``;
    #: ``"numba"``/``"cupy"``/``"batched"`` degrade to ``"fused"``)
    #: when a backend fails or cannot be resolved in this process --
    #: one :class:`~repro.errors.BackendDegradedWarning` per
    #: transition, the event recorded in ``health_stats()``, results
    #: still correct.  ``"strict"`` restores raise-on-failure: the
    #: structured error (e.g. :class:`~repro.errors.WorkerCrashError`
    #: with the original cause chained) propagates to the caller.
    fallback: str = "degrade"

    def __post_init__(self) -> None:
        if self.shared_sources is not None:
            warnings.warn(
                "TreecodeParams.shared_sources is deprecated and ignored: "
                "plans always de-duplicate their source buffers now",
                DeprecationWarning,
                stacklevel=3,
            )
        if not (0.0 < self.theta <= 1.0):
            raise ValueError(f"theta must lie in (0, 1], got {self.theta}")
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")
        if self.max_leaf_size < 1:
            raise ValueError(
                f"max_leaf_size must be >= 1, got {self.max_leaf_size}"
            )
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if not (0.0 <= self.rebuild_threshold <= 1.0):
            raise ValueError(
                "rebuild_threshold must lie in [0, 1], got "
                f"{self.rebuild_threshold}"
            )
        if self.fallback not in ("degrade", "strict"):
            raise ValueError(
                'fallback must be "degrade" or "strict", got '
                f"{self.fallback!r}"
            )
        if self.dtype not in (np.float32, np.float64):
            raise ValueError(
                f"dtype must be numpy.float32 or numpy.float64, got {self.dtype}"
            )
        if isinstance(self.backend, str):
            if not self.backend:
                raise ValueError(
                    "backend must be a non-empty registry name, got ''"
                )
            # Validate the name now instead of deep inside compute().
            # The low-level store lives in the leaf module
            # repro.registry (importing repro.core.backends here would
            # be circular); while the package itself is still importing
            # the store is empty and validation is skipped -- that
            # window only covers DEFAULT_PARAMS below.
            from .registry import backend_names

            names = backend_names()
            if names and self.backend not in names:
                raise ValueError(
                    f"unknown backend {self.backend!r}; available: "
                    f"{', '.join(names)}"
                )
        elif not callable(getattr(self.backend, "execute", None)):
            # Duck-typed so this module never imports the backend
            # package (which imports this one): anything with an
            # execute() method is treated as a Backend instance.
            raise ValueError(
                "backend must be a registry name or a Backend instance, "
                f"got {self.backend!r}"
            )

    @property
    def n_interpolation_points(self) -> int:
        """Number of interpolation points per cluster, ``(n+1)^3``."""
        return (self.degree + 1) ** 3

    def with_(self, **changes) -> "TreecodeParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: Parameters used in the paper's scaling studies (Sec. 4): theta = 0.8,
#: degree n = 8, NL = NB = 4000, yielding 5-6 digit accuracy.
DEFAULT_PARAMS = TreecodeParams()
