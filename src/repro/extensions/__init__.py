"""Extensions implementing the paper's Sec. 5 future-work items.

* Mixed-precision arithmetic -- built into the core via
  ``TreecodeParams(dtype=numpy.float32)`` (kernels evaluate in single
  precision, accumulation stays double).
* Overlapping communication and computation -- built into the
  distributed driver via ``DistributedBLTC(overlap_comm=True)``.
* :class:`~repro.extensions.cluster_particle.ClusterParticleTreecode` --
  the barycentric *cluster-particle* treecode (the transpose of the
  BLTC's particle-cluster scheme; paper refs. [30]-[32]), interpolating
  over target clusters instead of source clusters.
* :class:`~repro.extensions.cluster_cluster.DualTreeTreecode` -- the
  barycentric *cluster-cluster* treecode via dual tree traversal (the
  authors' BLDTT follow-up), combining source moments with target grids.
"""

from .cluster_particle import ClusterParticleTreecode, PreparedClusterParticle
from .cluster_cluster import DualTreeTreecode, PreparedDualTree

__all__ = [
    "ClusterParticleTreecode",
    "PreparedClusterParticle",
    "DualTreeTreecode",
    "PreparedDualTree",
]
