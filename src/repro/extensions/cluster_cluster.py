"""Barycentric cluster-cluster treecode via dual tree traversal.

The last of the paper's Sec. 5 treecode variants ("barycentric
cluster-particle and cluster-cluster treecodes", refs. [30]-[32]; the
authors later published this as the BLDTT).  Both the targets and the
sources carry cluster trees; a dual traversal classifies node pairs
(T, S):

* MAC passes and both clusters are large enough -- *cluster-cluster*:
  the source cluster's modified charges interact with the target
  cluster's Chebyshev grid, ``psi^T_k += sum_m G(t_k, s_m) qhat^S_m``,
  at O((n+1)^6) cost independent of the cluster populations;
* MAC passes but only the source side is large -- *particle-cluster*
  (the BLTC interaction): targets interact with the source grid;
* MAC passes but only the target side is large -- *cluster-particle*:
  source particles accumulate onto the target grid;
* MAC passes and neither side qualifies, or the MAC fails at two leaves
  -- *direct*;
* otherwise the larger node is split and the traversal recurses.

A final interpolation pass sends each target cluster's accumulated grid
potentials to its own particles with the barycentric basis.  The scheme
reduces the asymptotic complexity from O(N log N) toward O(N), which is
why it is the natural next step after the BLTC.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_PARAMS, TreecodeParams
from ..core.mac import mac_geometric
from ..core.moments import precompute_moments
from ..core.treecode import TreecodeResult
from ..gpu.device import make_device
from ..interpolation.barycentric import lagrange_basis
from ..interpolation.grid import ChebyshevGrid3D
from ..kernels.base import Kernel
from ..perf.machine import GPU_TITAN_V, MachineSpec
from ..perf.timer import PhaseTimes, Stopwatch
from ..tree.octree import ClusterTree
from ..workloads import ParticleSet

__all__ = ["DualTreeTreecode"]


class DualTreeTreecode:
    """Barycentric cluster-cluster treecode (dual tree traversal).

    ``max_leaf_size`` caps the source tree, ``max_batch_size`` the target
    tree (mirroring the BLTC's NL/NB roles).
    """

    def __init__(
        self,
        kernel: Kernel,
        params: TreecodeParams = DEFAULT_PARAMS,
        *,
        machine: MachineSpec = GPU_TITAN_V,
        async_streams: bool = True,
    ) -> None:
        self.kernel = kernel
        self.params = params
        self.machine = machine
        self.async_streams = bool(async_streams)

    # ------------------------------------------------------------------
    def compute(
        self,
        sources: ParticleSet,
        targets: np.ndarray | ParticleSet | None = None,
    ) -> TreecodeResult:
        """Potential at every target due to all sources."""
        params = self.params
        if targets is None:
            target_pos = sources.positions
        elif isinstance(targets, ParticleSet):
            target_pos = targets.positions
        else:
            target_pos = np.atleast_2d(np.asarray(targets, dtype=np.float64))
        kernel = self.kernel
        device = make_device(self.machine, async_streams=self.async_streams)
        cost_mult = kernel.cost_multiplier(self.machine.transcendental_penalty)
        n_ip = params.n_interpolation_points
        phases = PhaseTimes()
        watch = Stopwatch()

        with watch:
            # -- setup: both trees ---------------------------------------
            s_tree = ClusterTree(
                sources.positions,
                params.max_leaf_size,
                aspect_ratio_splitting=params.aspect_ratio_splitting,
                shrink_to_fit=params.shrink_to_fit,
            )
            t_tree = ClusterTree(
                target_pos,
                params.max_batch_size,
                aspect_ratio_splitting=params.aspect_ratio_splitting,
                shrink_to_fit=params.shrink_to_fit,
            )
            device.host_work(
                sources.n * (s_tree.max_level + 1)
                + target_pos.shape[0] * (t_tree.max_level + 1)
            )
            phases.setup += device.take_phase()

            # -- precompute: source-side modified charges ----------------
            device.upload(sources.nbytes() + target_pos.nbytes)
            moments = precompute_moments(
                s_tree, sources.charges, params, device=device
            )
            phases.precompute += device.take_phase()

            # -- setup: dual traversal -> classified pair lists ----------
            cc_pairs: list[tuple[int, int]] = []
            pc_pairs: list[tuple[int, int]] = []
            cp_pairs: list[tuple[int, int]] = []
            direct_pairs: list[tuple[int, int]] = []
            mac_evals = 0
            stack = [(0, 0)]
            while stack:
                ti, si = stack.pop()
                t_nd = t_tree.nodes[ti]
                s_nd = s_tree.nodes[si]
                dist = float(np.linalg.norm(t_nd.center - s_nd.center))
                mac_evals += 1
                if mac_geometric(t_nd.radius, s_nd.radius, dist, params.theta):
                    s_ok = (not params.size_check) or n_ip < s_nd.count
                    t_ok = (not params.size_check) or n_ip < t_nd.count
                    if s_ok and t_ok:
                        cc_pairs.append((ti, si))
                    elif s_ok:
                        pc_pairs.append((ti, si))
                    elif t_ok:
                        cp_pairs.append((ti, si))
                    else:
                        direct_pairs.append((ti, si))
                    continue
                t_leaf = t_nd.is_leaf
                s_leaf = s_nd.is_leaf
                if t_leaf and s_leaf:
                    direct_pairs.append((ti, si))
                elif s_leaf or (not t_leaf and t_nd.radius >= s_nd.radius):
                    stack.extend((c, si) for c in t_nd.children)
                else:
                    stack.extend((ti, c) for c in s_nd.children)
            device.host_work(mac_evals * 4)
            phases.setup += device.take_phase()

            # -- compute: evaluate the four pair classes -----------------
            out = np.zeros(target_pos.shape[0], dtype=np.float64)
            t_grids: dict[int, ChebyshevGrid3D] = {}
            psi: dict[int, np.ndarray] = {}

            def target_grid(ti: int) -> ChebyshevGrid3D:
                g = t_grids.get(ti)
                if g is None:
                    nd = t_tree.nodes[ti]
                    g = ChebyshevGrid3D.for_box(
                        nd.box.lo, nd.box.hi, params.degree
                    )
                    t_grids[ti] = g
                    psi[ti] = np.zeros(n_ip, dtype=np.float64)
                return g

            def launch(n_inter: float, blocks: int, kind: str) -> None:
                device.launch(
                    n_inter,
                    blocks=blocks,
                    kind=kind,
                    flops_per_interaction=kernel.flops_per_interaction,
                    cost_multiplier=cost_mult,
                )

            dtype = params.dtype
            for ti, si in cc_pairs:
                grid = target_grid(ti)
                kernel.potential(
                    grid.points.astype(dtype),
                    moments.grid(si).points.astype(dtype),
                    moments.charges(si).astype(dtype),
                    out=psi[ti],
                )
                launch(float(n_ip) * n_ip, n_ip, "cluster-cluster")
            for ti, si in pc_pairs:
                idx = t_tree.node_indices(ti)
                phi = np.zeros(idx.shape[0], dtype=np.float64)
                kernel.potential(
                    target_pos[idx].astype(dtype),
                    moments.grid(si).points.astype(dtype),
                    moments.charges(si).astype(dtype),
                    out=phi,
                )
                out[idx] += phi
                launch(float(idx.shape[0]) * n_ip, idx.shape[0], "particle-cluster")
            for ti, si in cp_pairs:
                grid = target_grid(ti)
                s_idx = s_tree.node_indices(si)
                kernel.potential(
                    grid.points.astype(dtype),
                    sources.positions[s_idx].astype(dtype),
                    sources.charges[s_idx].astype(dtype),
                    out=psi[ti],
                )
                launch(float(n_ip) * s_idx.shape[0], n_ip, "cluster-particle")
            for ti, si in direct_pairs:
                idx = t_tree.node_indices(ti)
                s_idx = s_tree.node_indices(si)
                phi = np.zeros(idx.shape[0], dtype=np.float64)
                kernel.potential(
                    target_pos[idx].astype(dtype),
                    sources.positions[s_idx].astype(dtype),
                    sources.charges[s_idx].astype(dtype),
                    out=phi,
                )
                out[idx] += phi
                launch(
                    float(idx.shape[0]) * s_idx.shape[0], idx.shape[0], "direct"
                )
            phases.compute += device.take_phase()

            # -- compute: downward interpolation of grid potentials ------
            np1 = params.degree + 1
            for ti, grid in t_grids.items():
                idx = t_tree.node_indices(ti)
                pts = target_pos[idx]
                lx = lagrange_basis(pts[:, 0], grid.points_1d[0], grid.weights)
                ly = lagrange_basis(pts[:, 1], grid.points_1d[1], grid.weights)
                lz = lagrange_basis(pts[:, 2], grid.points_1d[2], grid.weights)
                cube = psi[ti].reshape(np1, np1, np1)
                out[idx] += np.einsum(
                    "abc,aj,bj,cj->j", cube, lx, ly, lz, optimize=True
                )
                device.launch(
                    float(n_ip) * idx.shape[0],
                    blocks=idx.shape[0],
                    kind="interpolate",
                    flops_per_interaction=7.0,
                )
            device.download(out.nbytes)
            phases.compute += device.take_phase()

        c = device.counters
        stats = {
            "kernel": kernel.name,
            "machine": self.machine.name,
            "scheme": "cluster-cluster (dual tree traversal)",
            "n_sources": sources.n,
            "n_targets": target_pos.shape[0],
            "n_source_nodes": len(s_tree),
            "n_target_nodes": len(t_tree),
            "n_cc_pairs": len(cc_pairs),
            "n_pc_pairs": len(pc_pairs),
            "n_cp_pairs": len(cp_pairs),
            "n_direct_pairs": len(direct_pairs),
            "mac_evals": mac_evals,
            "launches": c.launches,
            "kernel_evaluations": c.interactions,
            "by_kind": {k: tuple(v) for k, v in c.by_kind.items()},
            "busy_by_kind": dict(c.busy_by_kind),
        }
        return TreecodeResult(
            potential=out,
            phases=phases,
            wall_seconds=watch.elapsed,
            stats=stats,
        )
