"""Barycentric cluster-cluster treecode via dual tree traversal.

The last of the paper's Sec. 5 treecode variants ("barycentric
cluster-particle and cluster-cluster treecodes", refs. [30]-[32]; the
authors later published this as the BLDTT).  Both the targets and the
sources carry cluster trees; a dual traversal classifies node pairs
(T, S):

* MAC passes and both clusters are large enough -- *cluster-cluster*:
  the source cluster's modified charges interact with the target
  cluster's Chebyshev grid, ``psi^T_k += sum_m G(t_k, s_m) qhat^S_m``,
  at O((n+1)^6) cost independent of the cluster populations;
* MAC passes but only the source side is large -- *particle-cluster*
  (the BLTC interaction): targets interact with the source grid;
* MAC passes but only the target side is large -- *cluster-particle*:
  source particles accumulate onto the target grid;
* MAC passes and neither side qualifies, or the MAC fails at two leaves
  -- *direct*;
* otherwise the larger node is split and the traversal recurses.

A final interpolation pass sends each target cluster's accumulated grid
potentials to its own particles with the barycentric basis.  The scheme
reduces the asymptotic complexity from O(N log N) toward O(N), which is
why it is the natural next step after the BLTC.

The four pair classes are compiled into one
:class:`~repro.core.plan.ExecutionPlan` -- one group per receiving
target block (a target cluster's Chebyshev grid for cc/cp pairs, a
target node's particles for pc/direct pairs), one segment per
contributing source block -- and executed by the backend named in
``params.backend``, sharing the launch-charging path with the BLTC.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_PARAMS, TreecodeParams
from ..core.backends import get_backend
from ..core.mac import mac_geometric
from ..core.moments import precompute_moments
from ..core.plan import PlanBuilder
from ..core.treecode import TreecodeResult
from ..gpu.device import make_device
from ..interpolation.barycentric import lagrange_basis
from ..interpolation.grid import ChebyshevGrid3D
from ..kernels.base import Kernel
from ..perf.machine import GPU_TITAN_V, MachineSpec
from ..perf.timer import PhaseTimes, Stopwatch
from ..tree.octree import ClusterTree
from ..workloads import ParticleSet

__all__ = ["DualTreeTreecode"]


class DualTreeTreecode:
    """Barycentric cluster-cluster treecode (dual tree traversal).

    ``max_leaf_size`` caps the source tree, ``max_batch_size`` the target
    tree (mirroring the BLTC's NL/NB roles).
    """

    def __init__(
        self,
        kernel: Kernel,
        params: TreecodeParams = DEFAULT_PARAMS,
        *,
        machine: MachineSpec = GPU_TITAN_V,
        async_streams: bool = True,
    ) -> None:
        self.kernel = kernel
        self.params = params
        self.machine = machine
        self.async_streams = bool(async_streams)

    # ------------------------------------------------------------------
    def compute(
        self,
        sources: ParticleSet,
        targets: np.ndarray | ParticleSet | None = None,
    ) -> TreecodeResult:
        """Potential at every target due to all sources."""
        params = self.params
        if targets is None:
            target_pos = sources.positions
        elif isinstance(targets, ParticleSet):
            target_pos = targets.positions
        else:
            target_pos = np.atleast_2d(np.asarray(targets, dtype=np.float64))
        kernel = self.kernel
        backend = get_backend(params.backend)
        device = make_device(self.machine, async_streams=self.async_streams)
        n_ip = params.n_interpolation_points
        phases = PhaseTimes()
        watch = Stopwatch()

        with watch:
            # -- setup: both trees ---------------------------------------
            s_tree = ClusterTree(
                sources.positions,
                params.max_leaf_size,
                aspect_ratio_splitting=params.aspect_ratio_splitting,
                shrink_to_fit=params.shrink_to_fit,
            )
            t_tree = ClusterTree(
                target_pos,
                params.max_batch_size,
                aspect_ratio_splitting=params.aspect_ratio_splitting,
                shrink_to_fit=params.shrink_to_fit,
            )
            device.host_work(
                sources.n * (s_tree.max_level + 1)
                + target_pos.shape[0] * (t_tree.max_level + 1)
            )
            phases.setup += device.take_phase()

            # -- precompute: source-side modified charges ----------------
            device.upload(sources.nbytes() + target_pos.nbytes)
            moments = precompute_moments(
                s_tree, sources.charges, params, device=device,
                numerics=backend.needs_numerics,
            )
            phases.precompute += device.take_phase()

            # -- setup: dual traversal -> classified pair lists ----------
            cc_pairs: list[tuple[int, int]] = []
            pc_pairs: list[tuple[int, int]] = []
            cp_pairs: list[tuple[int, int]] = []
            direct_pairs: list[tuple[int, int]] = []
            mac_evals = 0
            stack = [(0, 0)]
            while stack:
                ti, si = stack.pop()
                t_nd = t_tree.nodes[ti]
                s_nd = s_tree.nodes[si]
                dist = float(np.linalg.norm(t_nd.center - s_nd.center))
                mac_evals += 1
                if mac_geometric(t_nd.radius, s_nd.radius, dist, params.theta):
                    s_ok = (not params.size_check) or n_ip < s_nd.count
                    t_ok = (not params.size_check) or n_ip < t_nd.count
                    if s_ok and t_ok:
                        cc_pairs.append((ti, si))
                    elif s_ok:
                        pc_pairs.append((ti, si))
                    elif t_ok:
                        cp_pairs.append((ti, si))
                    else:
                        direct_pairs.append((ti, si))
                    continue
                t_leaf = t_nd.is_leaf
                s_leaf = s_nd.is_leaf
                if t_leaf and s_leaf:
                    direct_pairs.append((ti, si))
                elif s_leaf or (not t_leaf and t_nd.radius >= s_nd.radius):
                    stack.extend((c, si) for c in t_nd.children)
                else:
                    stack.extend((ti, c) for c in s_nd.children)
            device.host_work(mac_evals * 4)
            phases.setup += device.take_phase()

            # -- plan: group the four pair classes by receiving target
            # block.  Grid groups (cluster Chebyshev grids, fed by cc and
            # cp pairs) accumulate into psi rows appended after the
            # particle outputs; particle groups (target nodes, fed by pc
            # and direct pairs) accumulate straight into the potentials.
            n_targets = target_pos.shape[0]
            numerics = backend.needs_numerics
            t_grids: dict[int, ChebyshevGrid3D] = {}
            grid_groups: dict[int, int] = {}
            node_groups: dict[int, int] = {}
            #: per group: ("grid" | "node", target node index).
            group_keys: list[tuple[str, int]] = []
            #: per group: list of (kind, source points | None, source
            #: weights | None, source size).  The four pair-class passes
            #: below append in a fixed order, so each group's segments
            #: are kind-contiguous by construction.  Model-only backends
            #: gather no arrays, only sizes.
            group_segs: list[list] = []

            def grid_group(ti: int) -> int:
                g = grid_groups.get(ti)
                if g is None:
                    nd = t_tree.nodes[ti]
                    t_grids[ti] = ChebyshevGrid3D.for_box(
                        nd.box.lo, nd.box.hi, params.degree
                    )
                    g = len(group_keys)
                    grid_groups[ti] = g
                    group_keys.append(("grid", ti))
                    group_segs.append([])
                return g

            def node_group(ti: int) -> int:
                g = node_groups.get(ti)
                if g is None:
                    g = len(group_keys)
                    node_groups[ti] = g
                    group_keys.append(("node", ti))
                    group_segs.append([])
                return g

            # Segments reference their source cluster by key (the grid
            # form and the particle form are distinct rows); the gather
            # itself is deferred to plan-build time, where the shared
            # layout performs it once per key however many target groups
            # list the cluster.
            def _moment_rows(si):
                return lambda: (moments.grid(si).points, moments.charges(si))

            def _particle_rows(si):
                def gather():
                    s_idx = s_tree.node_indices(si)
                    return sources.positions[s_idx], sources.charges[s_idx]

                return gather

            for ti, si in cc_pairs:
                group_segs[grid_group(ti)].append(
                    ("cluster-cluster", ("moments", si),
                     _moment_rows(si) if numerics else None, n_ip)
                )
            for ti, si in pc_pairs:
                group_segs[node_group(ti)].append(
                    ("particle-cluster", ("moments", si),
                     _moment_rows(si) if numerics else None, n_ip)
                )
            for ti, si in cp_pairs:
                group_segs[grid_group(ti)].append(
                    ("cluster-particle", ("particles", si),
                     _particle_rows(si) if numerics else None,
                     s_tree.nodes[si].count)
                )
            for ti, si in direct_pairs:
                group_segs[node_group(ti)].append(
                    ("direct", ("particles", si),
                     _particle_rows(si) if numerics else None,
                     s_tree.nodes[si].count)
                )

            builder = PlanBuilder(
                n_targets + n_ip * len(t_grids),
                numerics=numerics,
                shared_sources=params.shared_sources,
            )
            grid_slot: dict[int, int] = {}
            next_row = n_targets
            for g, (key, ti) in enumerate(group_keys):
                if key == "grid":
                    rows = np.arange(next_row, next_row + n_ip, dtype=np.intp)
                    grid_slot[ti] = next_row
                    next_row += n_ip
                    if numerics:
                        builder.add_group(
                            targets=t_grids[ti].points, out_index=rows
                        )
                    else:
                        builder.add_group(size=n_ip)
                else:
                    if numerics:
                        idx = t_tree.node_indices(ti)
                        builder.add_group(
                            targets=target_pos[idx], out_index=idx
                        )
                    else:
                        builder.add_group(size=t_tree.nodes[ti].count)
                for kind, key, gather, size in group_segs[g]:
                    if not numerics:
                        builder.add_segment(kind, size=size)
                    elif builder.has_shared(key):
                        builder.add_segment(kind, share_key=key)
                    else:
                        pts, q = gather()
                        builder.add_segment(
                            kind, points=pts, weights=q, share_key=key
                        )
            plan = builder.build()

            # -- compute: backend evaluates the plan ---------------------
            out_flat, _ = backend.execute(
                plan, kernel, device, dtype=params.dtype
            )
            phases.compute += device.take_phase()
            out = out_flat[:n_targets].copy()
            psi = {
                ti: out_flat[row:row + n_ip]
                for ti, row in grid_slot.items()
            }

            # -- compute: downward interpolation of grid potentials ------
            np1 = params.degree + 1
            for ti, grid in t_grids.items():
                idx = t_tree.node_indices(ti)
                pts = target_pos[idx]
                lx = lagrange_basis(pts[:, 0], grid.points_1d[0], grid.weights)
                ly = lagrange_basis(pts[:, 1], grid.points_1d[1], grid.weights)
                lz = lagrange_basis(pts[:, 2], grid.points_1d[2], grid.weights)
                cube = psi[ti].reshape(np1, np1, np1)
                out[idx] += np.einsum(
                    "abc,aj,bj,cj->j", cube, lx, ly, lz, optimize=True
                )
                device.launch(
                    float(n_ip) * idx.shape[0],
                    blocks=idx.shape[0],
                    kind="interpolate",
                    flops_per_interaction=7.0,
                )
            device.download(out.nbytes)
            phases.compute += device.take_phase()

        c = device.counters
        stats = {
            "kernel": kernel.name,
            "machine": self.machine.name,
            "scheme": "cluster-cluster (dual tree traversal)",
            "n_sources": sources.n,
            "n_targets": target_pos.shape[0],
            "n_source_nodes": len(s_tree),
            "n_target_nodes": len(t_tree),
            "n_cc_pairs": len(cc_pairs),
            "n_pc_pairs": len(pc_pairs),
            "n_cp_pairs": len(cp_pairs),
            "n_direct_pairs": len(direct_pairs),
            "mac_evals": mac_evals,
            "launches": c.launches,
            "kernel_evaluations": c.interactions,
            "by_kind": {k: tuple(v) for k, v in c.by_kind.items()},
            "busy_by_kind": dict(c.busy_by_kind),
        }
        return TreecodeResult(
            potential=out,
            phases=phases,
            wall_seconds=watch.elapsed,
            stats=stats,
        )
