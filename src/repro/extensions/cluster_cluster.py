"""Barycentric cluster-cluster treecode via dual tree traversal.

The last of the paper's Sec. 5 treecode variants ("barycentric
cluster-particle and cluster-cluster treecodes", refs. [30]-[32]; the
authors later published this as the BLDTT).  Both the targets and the
sources carry cluster trees; a dual traversal classifies node pairs
(T, S):

* MAC passes and both clusters are large enough -- *cluster-cluster*:
  the source cluster's modified charges interact with the target
  cluster's Chebyshev grid, ``psi^T_k += sum_m G(t_k, s_m) qhat^S_m``,
  at O((n+1)^6) cost independent of the cluster populations;
* MAC passes but only the source side is large -- *particle-cluster*
  (the BLTC interaction): targets interact with the source grid;
* MAC passes but only the target side is large -- *cluster-particle*:
  source particles accumulate onto the target grid;
* MAC passes and neither side qualifies, or the MAC fails at two leaves
  -- *direct*;
* otherwise the larger node is split and the traversal recurses.

A final interpolation pass sends each target cluster's accumulated grid
potentials to its own particles with the barycentric basis.  The scheme
reduces the asymptotic complexity from O(N log N) toward O(N), which is
why it is the natural next step after the BLTC.

The four pair classes are compiled into one
:class:`~repro.core.plan.ExecutionPlan` -- one group per receiving
target block (a target cluster's Chebyshev grid for cc/cp pairs, a
target node's particles for pc/direct pairs), one segment per
contributing source block -- and executed by the backend named in
``params.backend``, sharing the launch-charging path with the BLTC.

Geometry vs. charges: the trees, traversal classification, group
structure, source-cluster Chebyshev grids and downward-interpolation
basis all depend only on positions.  :meth:`DualTreeTreecode.prepare`
captures them once; :meth:`PreparedDualTree.apply` re-moments the
source clusters on the cached grids and rewrites the plan's weight
buffer in place per charge vector.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_PARAMS, TreecodeParams
from ..core.backends import get_backend
from ..core.dynamic import GeometryUpdateResult, RebuildGeometryUpdater
from ..core.mac import mac_geometric
from ..core.moments import precompute_moments, prepare_moment_grids
from ..core.plan import PlanBuilder
from ..core.session import (
    DualTreeWeightSource,
    GeometryState,
    SessionCore,
    format_health_stats,
    format_memory_stats,
)
from ..core.treecode import TreecodeResult
from ..gpu.device import make_device
from ..interpolation.grid import ChebyshevGrid3D
from ..kernels.base import Kernel
from ..perf.machine import GPU_TITAN_V, MachineSpec
from ..perf.timer import PhaseTimes, Stopwatch
from ..tree.octree import ClusterTree
from ..workloads import ParticleSet
from ._downward import downward_basis, downward_pass, target_positions

__all__ = ["DualTreeTreecode", "PreparedDualTree"]


class _DTGeometry:
    """Charge-independent state of one dual-tree evaluation."""

    __slots__ = (
        "s_tree", "t_tree", "cc_pairs", "pc_pairs", "cp_pairs",
        "direct_pairs", "mac_evals", "t_grids", "grid_groups",
        "node_groups", "group_keys", "group_segs", "grid_slot",
        "n_targets", "target_pos", "source_pos",
    )


class DualTreeTreecode:
    """Barycentric cluster-cluster treecode (dual tree traversal).

    ``max_leaf_size`` caps the source tree, ``max_batch_size`` the target
    tree (mirroring the BLTC's NL/NB roles).  ``compute`` evaluates one
    charge vector end-to-end; ``prepare``/``apply`` split the pipeline
    along the charge-dependence boundary for repeated evaluation.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: TreecodeParams = DEFAULT_PARAMS,
        *,
        machine: MachineSpec = GPU_TITAN_V,
        async_streams: bool = True,
    ) -> None:
        self.kernel = kernel
        self.params = params
        self.machine = machine
        self.async_streams = bool(async_streams)

    # ------------------------------------------------------------------
    # Geometry: trees, dual traversal, receiving-group structure
    # ------------------------------------------------------------------
    def _build_trees(self, source_pos, target_pos) -> _DTGeometry:
        params = self.params
        g = _DTGeometry()
        g.source_pos = source_pos
        g.target_pos = target_pos
        g.n_targets = target_pos.shape[0]
        g.s_tree = ClusterTree(
            source_pos,
            params.max_leaf_size,
            aspect_ratio_splitting=params.aspect_ratio_splitting,
            shrink_to_fit=params.shrink_to_fit,
        )
        g.t_tree = ClusterTree(
            target_pos,
            params.max_batch_size,
            aspect_ratio_splitting=params.aspect_ratio_splitting,
            shrink_to_fit=params.shrink_to_fit,
        )
        return g

    def _traverse(self, g: _DTGeometry) -> None:
        """Dual traversal -> the four classified pair lists."""
        params = self.params
        n_ip = params.n_interpolation_points
        g.cc_pairs = []
        g.pc_pairs = []
        g.cp_pairs = []
        g.direct_pairs = []
        g.mac_evals = 0
        stack = [(0, 0)]
        while stack:
            ti, si = stack.pop()
            t_nd = g.t_tree.nodes[ti]
            s_nd = g.s_tree.nodes[si]
            dist = float(np.linalg.norm(t_nd.center - s_nd.center))
            g.mac_evals += 1
            if mac_geometric(t_nd.radius, s_nd.radius, dist, params.theta):
                s_ok = (not params.size_check) or n_ip < s_nd.count
                t_ok = (not params.size_check) or n_ip < t_nd.count
                if s_ok and t_ok:
                    g.cc_pairs.append((ti, si))
                elif s_ok:
                    g.pc_pairs.append((ti, si))
                elif t_ok:
                    g.cp_pairs.append((ti, si))
                else:
                    g.direct_pairs.append((ti, si))
                continue
            t_leaf = t_nd.is_leaf
            s_leaf = s_nd.is_leaf
            if t_leaf and s_leaf:
                g.direct_pairs.append((ti, si))
            elif s_leaf or (not t_leaf and t_nd.radius >= s_nd.radius):
                stack.extend((c, si) for c in t_nd.children)
            else:
                stack.extend((ti, c) for c in s_nd.children)

    def _build_groups(self, g: _DTGeometry) -> None:
        """Group the four pair classes by receiving target block.

        Grid groups (cluster Chebyshev grids, fed by cc and cp pairs)
        accumulate into psi rows appended after the particle outputs;
        particle groups (target nodes, fed by pc and direct pairs)
        accumulate straight into the potentials.  The four passes append
        in a fixed order, so each group's segments are kind-contiguous
        by construction.  Segments reference their source block by key
        (``("moments", si)`` or ``("particles", si)``) -- the shared
        gather's dedup key and the prepared session's weight-refresh
        key.
        """
        params = self.params
        n_ip = params.n_interpolation_points
        g.t_grids = {}
        g.grid_groups = {}
        g.node_groups = {}
        g.group_keys = []
        g.group_segs = []

        def grid_group(ti: int) -> int:
            grp = g.grid_groups.get(ti)
            if grp is None:
                nd = g.t_tree.nodes[ti]
                g.t_grids[ti] = ChebyshevGrid3D.for_box(
                    nd.box.lo, nd.box.hi, params.degree
                )
                grp = len(g.group_keys)
                g.grid_groups[ti] = grp
                g.group_keys.append(("grid", ti))
                g.group_segs.append([])
            return grp

        def node_group(ti: int) -> int:
            grp = g.node_groups.get(ti)
            if grp is None:
                grp = len(g.group_keys)
                g.node_groups[ti] = grp
                g.group_keys.append(("node", ti))
                g.group_segs.append([])
            return grp

        for ti, si in g.cc_pairs:
            g.group_segs[grid_group(ti)].append(
                ("cluster-cluster", ("moments", si), n_ip)
            )
        for ti, si in g.pc_pairs:
            g.group_segs[node_group(ti)].append(
                ("particle-cluster", ("moments", si), n_ip)
            )
        for ti, si in g.cp_pairs:
            g.group_segs[grid_group(ti)].append(
                ("cluster-particle", ("particles", si),
                 g.s_tree.nodes[si].count)
            )
        for ti, si in g.direct_pairs:
            g.group_segs[node_group(ti)].append(
                ("direct", ("particles", si), g.s_tree.nodes[si].count)
            )

    def _compile_plan(
        self,
        g: _DTGeometry,
        moments,
        charges: np.ndarray | None,
        *,
        numerics: bool,
        deferred: bool = False,
    ):
        """Compile the four pair classes into one execution plan."""
        params = self.params
        n_ip = params.n_interpolation_points
        builder = PlanBuilder(
            g.n_targets + n_ip * len(g.t_grids),
            numerics=numerics,
            deferred_weights=deferred and numerics,
            batched=params.batched,
        )
        g.grid_slot = {}
        next_row = g.n_targets
        for grp, (key, ti) in enumerate(g.group_keys):
            if key == "grid":
                rows = np.arange(next_row, next_row + n_ip, dtype=np.intp)
                g.grid_slot[ti] = next_row
                next_row += n_ip
                if numerics:
                    builder.add_group(
                        targets=g.t_grids[ti].points, out_index=rows
                    )
                else:
                    builder.add_group(size=n_ip)
            else:
                if numerics:
                    idx = g.t_tree.node_indices(ti)
                    builder.add_group(
                        targets=g.target_pos[idx], out_index=idx
                    )
                else:
                    builder.add_group(size=g.t_tree.nodes[ti].count)
            for kind, skey, size in g.group_segs[grp]:
                if not numerics:
                    builder.add_segment(kind, size=size)
                    continue
                if builder.has_shared(skey):
                    builder.add_segment(kind, share_key=skey)
                    continue
                what, si = skey
                if what == "moments":
                    pts = moments.grid(si).points
                    wts = None if deferred else moments.charges(si)
                else:
                    s_idx = g.s_tree.node_indices(si)
                    pts = g.source_pos[s_idx]
                    wts = None if deferred else charges[s_idx]
                builder.add_segment(
                    kind, points=pts, weights=wts, share_key=skey
                )
        return builder.build()

    def _downward_basis(self, g: _DTGeometry) -> dict:
        return downward_basis(g.t_tree, g.t_grids, g.target_pos)

    # -- dynamic-geometry hooks (see repro.core.dynamic) ----------------
    def _session_positions(self, core):
        """(source, target) position arrays of a prepared session."""
        g = core.geometry.aux
        return g.source_pos, g.target_pos

    def _rebuild_geometry_state(self, core, source_pos, target_pos, phases):
        """Rebuild the full geometry on the session's device.

        Charges the same setup work as :meth:`prepare` (the updater
        adds the source-position upload) and returns the new state plus
        the refreshed downward basis for the shell to adopt.
        """
        device = core.device
        numerics = core.geometry.plan.has_numerics
        g = self._build_trees(source_pos, target_pos)
        device.host_work(
            source_pos.shape[0] * (g.s_tree.max_level + 1)
            + target_pos.shape[0] * (g.t_tree.max_level + 1)
        )
        phases.setup += device.take_phase()
        device.upload(target_pos.nbytes)
        self._traverse(g)
        device.host_work(g.mac_evals * 4)
        phases.setup += device.take_phase()
        moments = prepare_moment_grids(g.s_tree, self.params,
                                       numerics=numerics)
        self._build_groups(g)
        plan = self._compile_plan(
            g, moments, None, numerics=numerics, deferred=True
        )
        basis = self._downward_basis(g) if numerics else {}
        state = GeometryState(
            plan=plan, tree=g.s_tree, moments=moments, aux=g
        )
        return state, basis

    def _downward_pass(
        self, g, basis, out_flat, out, device, *, numerics: bool = True
    ) -> None:
        downward_pass(
            self.params, g.t_tree, g.t_grids, g.grid_slot, basis,
            out_flat, out, device, numerics=numerics,
        )

    def _stats(self, g: _DTGeometry, n_sources: int, device) -> dict:
        c = device.counters
        return {
            "kernel": self.kernel.name,
            "machine": self.machine.name,
            "scheme": "cluster-cluster (dual tree traversal)",
            "n_sources": n_sources,
            "n_targets": g.n_targets,
            "n_source_nodes": len(g.s_tree),
            "n_target_nodes": len(g.t_tree),
            "n_cc_pairs": len(g.cc_pairs),
            "n_pc_pairs": len(g.pc_pairs),
            "n_cp_pairs": len(g.cp_pairs),
            "n_direct_pairs": len(g.direct_pairs),
            "mac_evals": g.mac_evals,
            "launches": c.launches,
            "kernel_evaluations": c.interactions,
            "by_kind": {k: tuple(v) for k, v in c.by_kind.items()},
            "busy_by_kind": dict(c.busy_by_kind),
        }


    # ------------------------------------------------------------------
    def compute(
        self,
        sources: ParticleSet,
        targets: np.ndarray | ParticleSet | None = None,
    ) -> TreecodeResult:
        """Potential at every target due to all sources."""
        params = self.params
        target_pos = target_positions(sources, targets)
        backend = get_backend(params.backend)
        device = make_device(self.machine, async_streams=self.async_streams)
        phases = PhaseTimes()
        watch = Stopwatch()

        with watch:
            # -- setup: both trees ---------------------------------------
            g = self._build_trees(sources.positions, target_pos)
            device.host_work(
                sources.n * (g.s_tree.max_level + 1)
                + target_pos.shape[0] * (g.t_tree.max_level + 1)
            )
            phases.setup += device.take_phase()

            # -- precompute: source-side modified charges ----------------
            device.upload(sources.nbytes() + target_pos.nbytes)
            moments = precompute_moments(
                g.s_tree, sources.charges, params, device=device,
                numerics=backend.needs_numerics,
            )
            phases.precompute += device.take_phase()

            # -- setup: dual traversal -> classified pair lists ----------
            self._traverse(g)
            device.host_work(g.mac_evals * 4)
            phases.setup += device.take_phase()

            # -- plan + compute: backend evaluates the plan --------------
            self._build_groups(g)
            plan = self._compile_plan(
                g, moments, sources.charges,
                numerics=backend.needs_numerics,
            )
            out_flat, _ = backend.execute(
                plan, self.kernel, device, dtype=params.dtype
            )
            phases.compute += device.take_phase()
            out = out_flat[:g.n_targets].copy()

            # -- compute: downward interpolation of grid potentials ------
            numerics = backend.needs_numerics
            basis = self._downward_basis(g) if numerics else {}
            self._downward_pass(
                g, basis, out_flat, out, device, numerics=numerics
            )
            device.download(out.nbytes)
            phases.compute += device.take_phase()

        return TreecodeResult(
            potential=out,
            phases=phases,
            wall_seconds=watch.elapsed,
            stats=self._stats(g, sources.n, device),
        )

    # ------------------------------------------------------------------
    def prepare(
        self,
        sources: ParticleSet,
        targets: np.ndarray | ParticleSet | None = None,
    ) -> "PreparedDualTree":
        """Capture the charge-independent state for repeated evaluation.

        Builds both trees, runs the dual traversal, caches the source
        clusters' Chebyshev grids (with Lagrange basis), the receiving
        groups, the geometry-only plan skeleton and the downward
        interpolation basis; setup is charged here once.  Each
        :meth:`PreparedDualTree.apply` then charges the charge upload,
        the moment kernels and the compute phase.
        """
        params = self.params
        backend = get_backend(params.backend)
        target_pos = target_positions(sources, targets)
        device = make_device(self.machine, async_streams=self.async_streams)
        phases = PhaseTimes()
        watch = Stopwatch()

        with watch:
            g = self._build_trees(sources.positions, target_pos)
            device.host_work(
                sources.n * (g.s_tree.max_level + 1)
                + target_pos.shape[0] * (g.t_tree.max_level + 1)
            )
            phases.setup += device.take_phase()

            # Geometry upload (positions only; charges travel per apply)
            # + traversal.
            device.upload(sources.positions.nbytes + target_pos.nbytes)
            self._traverse(g)
            device.host_work(g.mac_evals * 4)
            phases.setup += device.take_phase()

            moments = prepare_moment_grids(
                g.s_tree, params, numerics=backend.needs_numerics
            )
            self._build_groups(g)
            plan = self._compile_plan(
                g, moments, None,
                numerics=backend.needs_numerics, deferred=True,
            )
            basis = (
                self._downward_basis(g) if backend.needs_numerics else {}
            )

        core = SessionCore(
            kernel=self.kernel,
            params=params,
            backend=params.backend,
            device=device,
            geometry=GeometryState(
                plan=plan, tree=g.s_tree, moments=moments, aux=g
            ),
            weight_source=DualTreeWeightSource(),
            n_charges=sources.n,
            # The dual-tree scheme consumes modified charges on-device.
            moments_download=False,
            geometry_updater=RebuildGeometryUpdater(self),
        )
        return PreparedDualTree(
            driver=self,
            core=core,
            basis=basis,
            phases=phases,
            wall_seconds=watch.elapsed,
        )


class PreparedDualTree:
    """A dual-tree session with fixed geometry (see ``prepare``).

    Session state lives in the shared
    :class:`~repro.core.session.SessionCore` (``.core``); this shell
    adds the downward interpolation pass after the plan execution.
    """

    def __init__(
        self, *, driver, core, basis, phases, wall_seconds,
    ) -> None:
        self.driver = driver
        self.core = core
        self.basis = basis
        #: Setup-phase cost charged once at prepare time.
        self.phases = phases
        self.wall_seconds = wall_seconds

    # -- session-core delegation ---------------------------------------
    @property
    def backend(self):
        return self.core.backend

    @property
    def device(self):
        return self.core.device

    @property
    def geometry(self):
        return self.core.geometry.aux

    @property
    def moments(self):
        return self.core.geometry.moments

    @property
    def plan(self):
        return self.core.geometry.plan

    @property
    def n_sources(self) -> int:
        return self.core.n_charges

    @property
    def n_applies(self) -> int:
        return self.core.n_applies

    def geometry_key(self) -> str:
        """Stable content hash of the prepared geometry (cache key)."""
        return self.core.geometry_key()

    def memory_stats(self) -> dict:
        """Resident bytes by category (see ``SessionCore.memory_stats``)."""
        return self.core.memory_stats()

    def health_stats(self) -> dict:
        """Fault-tolerance counters (see ``SessionCore.health_stats``)."""
        return self.core.health_stats()

    def update_geometry(
        self,
        new_positions: np.ndarray,
        *,
        targets: np.ndarray | None = None,
    ) -> GeometryUpdateResult:
        """Move the session to new particle positions.

        The dual-tree scheme rebuilds its geometry wholesale (see
        :class:`~repro.core.dynamic.RebuildGeometryUpdater`) -- same
        bitwise-parity guarantee as the BLTC's incremental path,
        without the patching machinery.  The refreshed downward basis
        replaces ``self.basis``.
        """
        result = self.core.update_geometry(new_positions, targets=targets)
        if result.basis is not None:
            self.basis = result.basis
        if result.phases is not None:
            self.phases += result.phases
        self.wall_seconds += result.wall_seconds
        return result

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"<PreparedDualTree n_sources={self.n_sources} "
            f"n_targets={g.n_targets} n_applies={self.n_applies} "
            f"{format_memory_stats(self.memory_stats())} "
            f"{format_health_stats(self.health_stats())}>"
        )

    def apply(self, charges: np.ndarray) -> TreecodeResult:
        """Evaluate the prepared geometry for one or many charge vectors.

        Re-moments the source clusters on the cached grids (the moment
        kernels are charged per apply, as in the monolithic pipeline),
        rewrites the plan's weight buffer in place and runs the
        accumulation + downward interpolation; no setup time is
        charged.  An ``(N, n_rhs)`` block evaluates every column in one
        pass and returns an ``(M, n_rhs)`` potential, column ``j``
        bitwise equal to a solo apply of ``charges[:, j]``.
        """
        driver = self.driver
        core = self.core
        g = self.geometry
        charges, multi, n_rhs = core.charge_block(charges)
        device = core.device
        numerics = core.plan.has_numerics
        phases = PhaseTimes()
        watch = Stopwatch()

        with watch:
            core.precompute(charges, phases, numerics=numerics, n_rhs=n_rhs)
            out_flat, _ = core.execute_plan(
                charges, phases, numerics=numerics,
                multi=multi, n_rhs=n_rhs, download_potentials=False,
            )
            out = out_flat[:g.n_targets].copy()

            driver._downward_pass(
                g, self.basis, out_flat, out, device, numerics=numerics
            )
            device.download(out.nbytes)
            phases.compute += device.take_phase()

        core.n_applies += 1
        stats = driver._stats(g, self.n_sources, device)
        stats["n_applies"] = core.n_applies
        return TreecodeResult(
            potential=out,
            phases=phases,
            wall_seconds=watch.elapsed,
            stats=stats,
        )
