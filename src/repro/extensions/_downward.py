"""Shared helpers of the Sec. 5 extension schemes.

Both the cluster-particle and the dual-tree treecodes end with the same
downward step: each target cluster's accumulated grid potentials are
interpolated to its own particles with the barycentric basis, one
simulated "interpolate" launch per cluster.  Target normalization and
that pass live here once so the two schemes cannot drift apart.
"""

from __future__ import annotations

import numpy as np

from ..interpolation.barycentric import lagrange_basis
from ..workloads import ParticleSet

__all__ = ["target_positions", "downward_basis", "downward_pass"]


def target_positions(sources, targets) -> np.ndarray:
    """Resolve the ``targets`` argument of a scheme's compute/prepare."""
    if targets is None:
        return sources.positions
    if isinstance(targets, ParticleSet):
        return targets.positions
    return np.atleast_2d(np.asarray(targets, dtype=np.float64))


def downward_basis(tree, grids, target_pos) -> dict:
    """Per-cluster Lagrange basis ``(lx, ly, lz)`` of the downward pass.

    Charge-independent: prepared sessions cache the result and reuse it
    every apply.
    """
    basis = {}
    for c, grid in grids.items():
        pts = target_pos[tree.node_indices(c)]
        basis[c] = (
            lagrange_basis(pts[:, 0], grid.points_1d[0], grid.weights),
            lagrange_basis(pts[:, 1], grid.points_1d[1], grid.weights),
            lagrange_basis(pts[:, 2], grid.points_1d[2], grid.weights),
        )
    return basis


def downward_pass(
    params, tree, grids, grid_slot, basis, out_flat, out, device,
    *, numerics: bool = True,
) -> None:
    """Interpolate accumulated grid potentials to the targets.

    ``phi(x) += sum_k L_k(x) psi_k`` per cluster, charging one
    "interpolate" launch each; ``numerics=False`` (model-only mode)
    charges the launches without evaluating them, as everywhere else in
    the timing model.

    A 2-D ``out_flat`` (multi-RHS accumulation) interpolates every
    column with the per-column contraction of the single-vector path --
    the basis matrices are shared, each column's einsum runs on a
    contiguous copy so its bits match a solo pass -- and the launch
    interaction count scales with the column count.
    """
    n_ip = params.n_interpolation_points
    np1 = params.degree + 1
    n_rhs = out_flat.shape[1] if out_flat.ndim == 2 else 1
    for c in grids:
        idx = tree.node_indices(c)
        if numerics:
            lx, ly, lz = basis[c]
            row = grid_slot[c]
            block = out_flat[row:row + n_ip]
            if block.ndim == 2:
                for r in range(block.shape[1]):
                    cube = np.ascontiguousarray(block[:, r]).reshape(
                        np1, np1, np1
                    )
                    out[idx, r] += np.einsum(
                        "abc,aj,bj,cj->j", cube, lx, ly, lz, optimize=True
                    )
            else:
                cube = block.reshape(np1, np1, np1)
                out[idx] += np.einsum(
                    "abc,aj,bj,cj->j", cube, lx, ly, lz, optimize=True
                )
        device.launch(
            float(n_ip) * idx.shape[0] * n_rhs,
            blocks=idx.shape[0],
            kind="interpolate",
            flops_per_interaction=7.0,
        )
