"""Barycentric cluster-particle treecode (paper Sec. 5 / refs. [30-32]).

The BLTC approximates *particle-cluster* interactions by interpolating
the kernel with respect to the source variable (eq. 8).  The
cluster-particle scheme is the transpose: interpolate with respect to the
*target* variable over clusters of targets,

    phi(x) ~ sum_k L_k1(x_1) L_k2(x_2) L_k3(x_3) psi_k,
    psi_k  = sum_{y_j in S} G(t_k, y_j) q_j,

where ``t_k`` are Chebyshev grid points spanning the target cluster's box
and S is a well-separated batch of sources.  The scheme proceeds in three
stages, each with the same direct-sum structure that made the BLTC
GPU-friendly:

1. *Traversal* -- batches of sources are traversed against the target
   cluster tree under the same two-condition MAC (the size condition now
   compares ``(n+1)^3`` against the number of *targets* in the cluster).
2. *Accumulation* -- accepted (cluster, batch) pairs add kernel sums into
   the cluster's grid potentials ``psi_k``; failed leaf pairs add
   directly into the leaf targets' potentials.  This stage is compiled
   into an :class:`~repro.core.plan.ExecutionPlan` -- one group per
   receiving target block (a cluster's Chebyshev grid or a leaf's
   particles), one segment per contributing source batch -- and executed
   by the backend named in ``params.backend``, exactly like the BLTC's
   compute phase.
3. *Downward interpolation* -- each cluster's accumulated ``psi`` is
   interpolated to its own target particles with the barycentric basis
   (removable singularities handled as in Sec. 2.3).

Cluster-particle is advantageous when there are many more targets than
sources (Boateng & Krasny, ref. [32]); the ablation benchmark exercises
exactly that regime.

Every piece of the scheme except the source charges is geometry:
:meth:`ClusterParticleTreecode.prepare` captures the trees, traversal
lists, receiving-group structure, plan skeleton and the downward
interpolation basis once, and
:meth:`PreparedClusterParticle.apply` re-evaluates for new charges by
refreshing the plan's weight buffer in place (a source batch's weights
are just its charges -- this scheme has no moment stage).
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_PARAMS, TreecodeParams
from ..core.backends import get_backend
from ..core.dynamic import GeometryUpdateResult, RebuildGeometryUpdater
from ..core.interaction_lists import LocalTreeAdapter, traverse_batch
from ..core.treecode import TreecodeResult
from ..core.plan import PlanBuilder
from ..core.session import (
    BatchChargeWeightSource,
    GeometryState,
    SessionCore,
    format_health_stats,
    format_memory_stats,
)
from ..gpu.device import make_device
from ..interpolation.grid import ChebyshevGrid3D
from ..kernels.base import Kernel
from ..perf.machine import GPU_TITAN_V, MachineSpec
from ..perf.timer import PhaseTimes, Stopwatch
from ..tree.batches import TargetBatches
from ..tree.octree import ClusterTree
from ..workloads import ParticleSet
from ._downward import downward_basis, downward_pass, target_positions

__all__ = ["ClusterParticleTreecode", "PreparedClusterParticle"]


class _CPGeometry:
    """Charge-independent state of one cluster-particle evaluation."""

    __slots__ = (
        "tree", "batches", "lists", "mac_evals", "grids",
        "group_keys", "group_batches", "grid_groups", "direct_groups",
        "grid_slot", "n_targets", "target_pos",
    )


class ClusterParticleTreecode:
    """Kernel-independent barycentric cluster-particle treecode.

    API mirrors :class:`~repro.core.treecode.BarycentricTreecode`:
    ``compute(sources, targets)`` returns a :class:`TreecodeResult`, and
    ``prepare(sources, targets)`` opens a charge-refreshable session.
    ``max_leaf_size`` caps *target* clusters; ``max_batch_size`` caps
    *source* batches.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: TreecodeParams = DEFAULT_PARAMS,
        *,
        machine: MachineSpec = GPU_TITAN_V,
        async_streams: bool = True,
    ) -> None:
        self.kernel = kernel
        self.params = params
        self.machine = machine
        self.async_streams = bool(async_streams)

    # ------------------------------------------------------------------
    # Geometry: traversal + receiving-group structure (charge-free)
    # ------------------------------------------------------------------
    def _build_geometry(
        self, source_pos: np.ndarray, target_pos: np.ndarray
    ) -> _CPGeometry:
        """Trees, traversal lists and receiving groups; no device events."""
        params = self.params
        g = _CPGeometry()
        g.target_pos = target_pos
        g.n_targets = target_pos.shape[0]
        g.tree = ClusterTree(
            target_pos,
            params.max_leaf_size,
            aspect_ratio_splitting=params.aspect_ratio_splitting,
            shrink_to_fit=params.shrink_to_fit,
        )
        g.batches = TargetBatches(
            source_pos,
            params.max_batch_size,
            aspect_ratio_splitting=params.aspect_ratio_splitting,
            shrink_to_fit=params.shrink_to_fit,
        )
        adapter = LocalTreeAdapter(g.tree)
        g.lists = []
        g.mac_evals = 0
        for b in range(len(g.batches)):
            node = g.batches.batch(b)
            approx, direct, evals = traverse_batch(
                node.center, node.radius, adapter, params
            )
            g.lists.append((approx, direct))
            g.mac_evals += evals

        # Group the accepted pairs by receiving target block.
        # Approximated target clusters receive on their Chebyshev grids
        # (output rows beyond n_targets); failed leaf pairs receive on
        # the leaf's own particles.
        g.grids = {}
        g.grid_groups = {}
        g.direct_groups = {}
        g.group_keys = []
        g.group_batches = []
        for b, (approx, direct) in enumerate(g.lists):
            for c in approx:
                grp = g.grid_groups.get(c)
                if grp is None:
                    nd = g.tree.nodes[c]
                    g.grids[c] = ChebyshevGrid3D.for_box(
                        nd.box.lo, nd.box.hi, params.degree
                    )
                    grp = len(g.group_keys)
                    g.grid_groups[c] = grp
                    g.group_keys.append(("approx", c))
                    g.group_batches.append([])
                g.group_batches[grp].append(b)
            for c in direct:
                grp = g.direct_groups.get(c)
                if grp is None:
                    grp = len(g.group_keys)
                    g.direct_groups[c] = grp
                    g.group_keys.append(("direct", c))
                    g.group_batches.append([])
                g.group_batches[grp].append(b)
        return g

    def _compile_plan(
        self,
        g: _CPGeometry,
        charges: np.ndarray | None,
        *,
        numerics: bool,
        deferred: bool = False,
    ):
        """Compile the accumulation plan over the receiving groups.

        The share key of every segment is its source-batch index (the
        same rows serve approx and direct receivers), which doubles as
        the weight-refresh key of a prepared session; ``deferred``
        compiles the geometry-only skeleton.
        """
        params = self.params
        n_ip = params.n_interpolation_points
        grid_rows = n_ip * len(g.grids)
        builder = PlanBuilder(
            g.n_targets + grid_rows,
            numerics=numerics,
            deferred_weights=deferred and numerics,
            batched=params.batched,
        )
        src_points_cache: dict[int, np.ndarray] = {}
        g.grid_slot = {}
        next_row = g.n_targets
        for grp, (kind, c) in enumerate(g.group_keys):
            if kind == "approx":
                rows = np.arange(next_row, next_row + n_ip, dtype=np.intp)
                g.grid_slot[c] = next_row
                next_row += n_ip
                if numerics:
                    builder.add_group(
                        targets=g.grids[c].points, out_index=rows
                    )
                else:
                    builder.add_group(size=n_ip)
            else:
                idx = g.tree.node_indices(c)
                if numerics:
                    builder.add_group(
                        targets=g.target_pos[idx], out_index=idx
                    )
                else:
                    builder.add_group(size=idx.shape[0])
            for b in g.group_batches[grp]:
                if not numerics:
                    builder.add_segment(kind, size=g.batches.batch(b).count)
                elif builder.has_shared(b):
                    builder.add_segment(kind, share_key=b)
                else:
                    pts = src_points_cache.get(b)
                    if pts is None:
                        pts = g.batches.batch_points(b)
                        src_points_cache[b] = pts
                    wts = (
                        None
                        if deferred
                        else charges[g.batches.batch_indices(b)]
                    )
                    builder.add_segment(
                        kind, points=pts, weights=wts, share_key=b
                    )
        return builder.build()

    def _downward_basis(self, g: _CPGeometry) -> dict:
        return downward_basis(g.tree, g.grids, g.target_pos)

    # -- dynamic-geometry hooks (see repro.core.dynamic) ----------------
    def _session_positions(self, core):
        """(source, target) position arrays of a prepared session."""
        g = core.geometry.aux
        return g.batches.positions, g.target_pos

    def _rebuild_geometry_state(self, core, source_pos, target_pos, phases):
        """Rebuild the full geometry on the session's device.

        Charges the same setup work as :meth:`prepare` (the updater
        adds the source-position upload) and returns the new state plus
        the refreshed downward basis for the shell to adopt.
        """
        device = core.device
        numerics = core.geometry.plan.has_numerics
        g = self._build_geometry(source_pos, target_pos)
        device.host_work(
            g.n_targets * (g.tree.max_level + 1)
            + source_pos.shape[0] * (g.batches.max_level + 1)
        )
        phases.setup += device.take_phase()
        device.upload(target_pos.nbytes)
        device.host_work(g.mac_evals * 4)
        phases.setup += device.take_phase()
        plan = self._compile_plan(g, None, numerics=numerics, deferred=True)
        basis = self._downward_basis(g) if numerics else {}
        state = GeometryState(
            plan=plan, tree=g.tree, batches=g.batches, lists=g.lists, aux=g
        )
        return state, basis

    def _downward_pass(
        self, g, basis, out_flat, out, device, *, numerics: bool = True
    ) -> None:
        downward_pass(
            self.params, g.tree, g.grids, g.grid_slot, basis,
            out_flat, out, device, numerics=numerics,
        )

    def _stats(self, g: _CPGeometry, n_sources: int, device) -> dict:
        n_approx = sum(
            len(g.group_batches[grp]) for grp in g.grid_groups.values()
        )
        n_direct = sum(
            len(g.group_batches[grp]) for grp in g.direct_groups.values()
        )
        c = device.counters
        return {
            "kernel": self.kernel.name,
            "machine": self.machine.name,
            "scheme": "cluster-particle",
            "n_sources": n_sources,
            "n_targets": g.n_targets,
            "n_tree_nodes": len(g.tree),
            "n_batches": len(g.batches),
            "n_approx_interactions": n_approx,
            "n_direct_interactions": n_direct,
            "n_clusters_with_grid": len(g.grids),
            "mac_evals": g.mac_evals,
            "launches": c.launches,
            "kernel_evaluations": c.interactions,
            "by_kind": {k: tuple(v) for k, v in c.by_kind.items()},
            "busy_by_kind": dict(c.busy_by_kind),
        }


    # ------------------------------------------------------------------
    def compute(
        self,
        sources: ParticleSet,
        targets: np.ndarray | ParticleSet | None = None,
    ) -> TreecodeResult:
        """Potential at every target due to all sources."""
        params = self.params
        backend = get_backend(params.backend)
        target_pos = target_positions(sources, targets)
        device = make_device(self.machine, async_streams=self.async_streams)
        phases = PhaseTimes()
        watch = Stopwatch()

        with watch:
            # -- setup: TARGET cluster tree + SOURCE batches -------------
            g = self._build_geometry(sources.positions, target_pos)
            device.host_work(
                g.n_targets * (g.tree.max_level + 1)
                + sources.n * (g.batches.max_level + 1)
            )
            phases.setup += device.take_phase()

            # -- setup: traversal (source batch vs target tree) ---------
            device.upload(sources.nbytes() + target_pos.nbytes)
            device.host_work(g.mac_evals * 4)
            phases.setup += device.take_phase()

            # -- plan + compute: backend runs the accumulation plan ------
            plan = self._compile_plan(
                g, sources.charges, numerics=backend.needs_numerics
            )
            out_flat, _ = backend.execute(
                plan, self.kernel, device, dtype=params.dtype
            )
            phases.compute += device.take_phase()
            out = out_flat[:g.n_targets].copy()

            # -- compute: downward barycentric interpolation -------------
            numerics = backend.needs_numerics
            basis = self._downward_basis(g) if numerics else {}
            self._downward_pass(
                g, basis, out_flat, out, device, numerics=numerics
            )
            device.download(out.nbytes)
            phases.compute += device.take_phase()

        return TreecodeResult(
            potential=out,
            phases=phases,
            wall_seconds=watch.elapsed,
            stats=self._stats(g, sources.n, device),
        )

    # ------------------------------------------------------------------
    def prepare(
        self,
        sources: ParticleSet,
        targets: np.ndarray | ParticleSet | None = None,
    ) -> "PreparedClusterParticle":
        """Capture the charge-independent state for repeated evaluation.

        Ships the positions, runs the traversal, compiles the
        geometry-only plan skeleton and caches the downward
        interpolation basis; the setup phase is charged here once.
        Each :meth:`PreparedClusterParticle.apply` then costs only the
        charge upload, the accumulation launches and the downward pass.
        """
        params = self.params
        backend = get_backend(params.backend)
        device = make_device(self.machine, async_streams=self.async_streams)
        target_pos = target_positions(sources, targets)
        phases = PhaseTimes()
        watch = Stopwatch()

        with watch:
            g = self._build_geometry(sources.positions, target_pos)
            device.host_work(
                g.n_targets * (g.tree.max_level + 1)
                + sources.n * (g.batches.max_level + 1)
            )
            phases.setup += device.take_phase()

            # Geometry upload: source/target positions only; charges
            # travel per apply.
            device.upload(sources.positions.nbytes + target_pos.nbytes)
            device.host_work(g.mac_evals * 4)
            phases.setup += device.take_phase()

            plan = self._compile_plan(
                g, None, numerics=backend.needs_numerics, deferred=True
            )
            basis = (
                self._downward_basis(g) if backend.needs_numerics else {}
            )

        core = SessionCore(
            kernel=self.kernel,
            params=params,
            backend=params.backend,
            device=device,
            geometry=GeometryState(
                plan=plan, tree=g.tree, batches=g.batches,
                lists=g.lists, aux=g,
            ),
            weight_source=BatchChargeWeightSource(),
            n_charges=sources.n,
            geometry_updater=RebuildGeometryUpdater(self),
        )
        return PreparedClusterParticle(
            driver=self,
            core=core,
            basis=basis,
            phases=phases,
            wall_seconds=watch.elapsed,
        )


class PreparedClusterParticle:
    """A cluster-particle session with fixed geometry (see ``prepare``).

    Session state lives in the shared
    :class:`~repro.core.session.SessionCore` (``.core``); this shell
    adds the downward interpolation pass after the plan execution.
    """

    def __init__(
        self, *, driver, core, basis, phases, wall_seconds,
    ) -> None:
        self.driver = driver
        self.core = core
        self.basis = basis
        #: Setup-phase cost charged once at prepare time.
        self.phases = phases
        self.wall_seconds = wall_seconds

    # -- session-core delegation ---------------------------------------
    @property
    def backend(self):
        return self.core.backend

    @property
    def device(self):
        return self.core.device

    @property
    def geometry(self):
        return self.core.geometry.aux

    @property
    def plan(self):
        return self.core.geometry.plan

    @property
    def n_sources(self) -> int:
        return self.core.n_charges

    @property
    def n_applies(self) -> int:
        return self.core.n_applies

    def geometry_key(self) -> str:
        """Stable content hash of the prepared geometry (cache key)."""
        return self.core.geometry_key()

    def memory_stats(self) -> dict:
        """Resident bytes by category (see ``SessionCore.memory_stats``)."""
        return self.core.memory_stats()

    def health_stats(self) -> dict:
        """Fault-tolerance counters (see ``SessionCore.health_stats``)."""
        return self.core.health_stats()

    def update_geometry(
        self,
        new_positions: np.ndarray,
        *,
        targets: np.ndarray | None = None,
    ) -> GeometryUpdateResult:
        """Move the session to new particle positions.

        The cluster-particle scheme rebuilds its geometry wholesale
        (see :class:`~repro.core.dynamic.RebuildGeometryUpdater`) --
        same bitwise-parity guarantee as the BLTC's incremental path,
        without the patching machinery.  The refreshed downward basis
        replaces ``self.basis``.
        """
        result = self.core.update_geometry(new_positions, targets=targets)
        if result.basis is not None:
            self.basis = result.basis
        if result.phases is not None:
            self.phases += result.phases
        self.wall_seconds += result.wall_seconds
        return result

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"<PreparedClusterParticle n_sources={self.n_sources} "
            f"n_targets={g.n_targets} n_applies={self.n_applies} "
            f"{format_memory_stats(self.memory_stats())} "
            f"{format_health_stats(self.health_stats())}>"
        )

    def apply(self, charges: np.ndarray) -> TreecodeResult:
        """Evaluate the prepared geometry for one or many charge vectors.

        Uploads the charges, rewrites the plan's weight buffer in place
        (a segment's weights are its source batch's charges) and runs
        the accumulation + downward interpolation; no setup time is
        charged.  An ``(N, n_rhs)`` block evaluates every column in one
        pass and returns an ``(M, n_rhs)`` potential, column ``j``
        bitwise equal to a solo apply of ``charges[:, j]``.
        """
        driver = self.driver
        core = self.core
        g = self.geometry
        charges, multi, n_rhs = core.charge_block(charges)
        device = core.device
        phases = PhaseTimes()
        watch = Stopwatch()
        numerics = core.plan.has_numerics

        with watch:
            core.precompute(charges, phases, numerics=numerics, n_rhs=n_rhs)
            out_flat, _ = core.execute_plan(
                charges, phases, numerics=numerics,
                multi=multi, n_rhs=n_rhs, download_potentials=False,
            )
            out = out_flat[:g.n_targets].copy()

            driver._downward_pass(
                g, self.basis, out_flat, out, device, numerics=numerics
            )
            device.download(out.nbytes)
            phases.compute += device.take_phase()

        core.n_applies += 1
        stats = driver._stats(g, self.n_sources, device)
        stats["n_applies"] = core.n_applies
        return TreecodeResult(
            potential=out,
            phases=phases,
            wall_seconds=watch.elapsed,
            stats=stats,
        )
