"""Barycentric cluster-particle treecode (paper Sec. 5 / refs. [30-32]).

The BLTC approximates *particle-cluster* interactions by interpolating
the kernel with respect to the source variable (eq. 8).  The
cluster-particle scheme is the transpose: interpolate with respect to the
*target* variable over clusters of targets,

    phi(x) ~ sum_k L_k1(x_1) L_k2(x_2) L_k3(x_3) psi_k,
    psi_k  = sum_{y_j in S} G(t_k, y_j) q_j,

where ``t_k`` are Chebyshev grid points spanning the target cluster's box
and S is a well-separated batch of sources.  The scheme proceeds in three
stages, each with the same direct-sum structure that made the BLTC
GPU-friendly:

1. *Traversal* -- batches of sources are traversed against the target
   cluster tree under the same two-condition MAC (the size condition now
   compares ``(n+1)^3`` against the number of *targets* in the cluster).
2. *Accumulation* -- accepted (cluster, batch) pairs add kernel sums into
   the cluster's grid potentials ``psi_k``; failed leaf pairs add
   directly into the leaf targets' potentials.  This stage is compiled
   into an :class:`~repro.core.plan.ExecutionPlan` -- one group per
   receiving target block (a cluster's Chebyshev grid or a leaf's
   particles), one segment per contributing source batch -- and executed
   by the backend named in ``params.backend``, exactly like the BLTC's
   compute phase.
3. *Downward interpolation* -- each cluster's accumulated ``psi`` is
   interpolated to its own target particles with the barycentric basis
   (removable singularities handled as in Sec. 2.3).

Cluster-particle is advantageous when there are many more targets than
sources (Boateng & Krasny, ref. [32]); the ablation benchmark exercises
exactly that regime.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_PARAMS, TreecodeParams
from ..core.backends import get_backend
from ..core.interaction_lists import LocalTreeAdapter, traverse_batch
from ..core.plan import PlanBuilder
from ..core.treecode import TreecodeResult
from ..gpu.device import make_device
from ..interpolation.barycentric import lagrange_basis
from ..interpolation.grid import ChebyshevGrid3D
from ..kernels.base import Kernel
from ..perf.machine import GPU_TITAN_V, MachineSpec
from ..perf.timer import PhaseTimes, Stopwatch
from ..tree.batches import TargetBatches
from ..tree.octree import ClusterTree
from ..workloads import ParticleSet

__all__ = ["ClusterParticleTreecode"]


class ClusterParticleTreecode:
    """Kernel-independent barycentric cluster-particle treecode.

    API mirrors :class:`~repro.core.treecode.BarycentricTreecode`:
    ``compute(sources, targets)`` returns a :class:`TreecodeResult`.
    ``max_leaf_size`` caps *target* clusters; ``max_batch_size`` caps
    *source* batches.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: TreecodeParams = DEFAULT_PARAMS,
        *,
        machine: MachineSpec = GPU_TITAN_V,
        async_streams: bool = True,
    ) -> None:
        self.kernel = kernel
        self.params = params
        self.machine = machine
        self.async_streams = bool(async_streams)

    # ------------------------------------------------------------------
    def compute(
        self,
        sources: ParticleSet,
        targets: np.ndarray | ParticleSet | None = None,
    ) -> TreecodeResult:
        """Potential at every target due to all sources."""
        params = self.params
        backend = get_backend(params.backend)
        if targets is None:
            target_pos = sources.positions
        elif isinstance(targets, ParticleSet):
            target_pos = targets.positions
        else:
            target_pos = np.atleast_2d(np.asarray(targets, dtype=np.float64))
        device = make_device(self.machine, async_streams=self.async_streams)
        phases = PhaseTimes()
        watch = Stopwatch()
        kernel = self.kernel
        n_ip = params.n_interpolation_points
        n_targets = target_pos.shape[0]

        with watch:
            # -- setup: TARGET cluster tree + SOURCE batches -------------
            tree = ClusterTree(
                target_pos,
                params.max_leaf_size,
                aspect_ratio_splitting=params.aspect_ratio_splitting,
                shrink_to_fit=params.shrink_to_fit,
            )
            batches = TargetBatches(
                sources.positions,
                params.max_batch_size,
                aspect_ratio_splitting=params.aspect_ratio_splitting,
                shrink_to_fit=params.shrink_to_fit,
            )
            adapter = LocalTreeAdapter(tree)
            device.host_work(
                n_targets * (tree.max_level + 1)
                + sources.n * (batches.max_level + 1)
            )
            phases.setup += device.take_phase()

            # -- setup: traversal (source batch vs target tree) ---------
            device.upload(sources.nbytes() + target_pos.nbytes)
            lists = []
            mac_evals = 0
            for b in range(len(batches)):
                node = batches.batch(b)
                approx, direct, evals = traverse_batch(
                    node.center, node.radius, adapter, params
                )
                lists.append((approx, direct))
                mac_evals += evals
            device.host_work(mac_evals * 4)
            phases.setup += device.take_phase()

            # -- plan: group the accepted pairs by receiving target block.
            # Approximated target clusters receive on their Chebyshev
            # grids (output rows beyond n_targets, split off below);
            # failed leaf pairs receive on the leaf's own particles.
            grids: dict[int, ChebyshevGrid3D] = {}
            grid_groups: dict[int, int] = {}
            direct_groups: dict[int, int] = {}
            #: per group: ("approx", cluster) or ("direct", cluster).
            group_keys: list[tuple[str, int]] = []
            group_batches: list[list[int]] = []
            src_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

            def batch_sources(b: int) -> tuple[np.ndarray, np.ndarray]:
                cached = src_cache.get(b)
                if cached is None:
                    cached = (
                        batches.batch_points(b),
                        sources.charges[batches.batch_indices(b)],
                    )
                    src_cache[b] = cached
                return cached

            for b, (approx, direct) in enumerate(lists):
                for c in approx:
                    g = grid_groups.get(c)
                    if g is None:
                        nd = tree.nodes[c]
                        grids[c] = ChebyshevGrid3D.for_box(
                            nd.box.lo, nd.box.hi, params.degree
                        )
                        g = len(group_keys)
                        grid_groups[c] = g
                        group_keys.append(("approx", c))
                        group_batches.append([])
                    group_batches[g].append(b)
                for c in direct:
                    g = direct_groups.get(c)
                    if g is None:
                        g = len(group_keys)
                        direct_groups[c] = g
                        group_keys.append(("direct", c))
                        group_batches.append([])
                    group_batches[g].append(b)

            grid_rows = n_ip * len(grids)
            builder = PlanBuilder(
                n_targets + grid_rows,
                numerics=backend.needs_numerics,
                shared_sources=params.shared_sources,
            )
            grid_slot: dict[int, int] = {}
            next_row = n_targets
            for g, (kind, c) in enumerate(group_keys):
                if kind == "approx":
                    rows = np.arange(next_row, next_row + n_ip, dtype=np.intp)
                    grid_slot[c] = next_row
                    next_row += n_ip
                    if backend.needs_numerics:
                        builder.add_group(
                            targets=grids[c].points, out_index=rows
                        )
                    else:
                        builder.add_group(size=n_ip)
                else:
                    idx = tree.node_indices(c)
                    if backend.needs_numerics:
                        builder.add_group(
                            targets=target_pos[idx], out_index=idx
                        )
                    else:
                        builder.add_group(size=idx.shape[0])
                for b in group_batches[g]:
                    if backend.needs_numerics:
                        # A source batch feeds every receiving group; the
                        # shared layout stores its rows once (the key is
                        # the batch -- the same rows serve both kinds).
                        if builder.has_shared(b):
                            builder.add_segment(kind, share_key=b)
                        else:
                            pts, q = batch_sources(b)
                            builder.add_segment(
                                kind, points=pts, weights=q, share_key=b
                            )
                    else:
                        builder.add_segment(
                            kind, size=batches.batch(b).count
                        )
            plan = builder.build()

            # -- compute: backend runs the accumulation plan -------------
            out_flat, _ = backend.execute(
                plan, kernel, device, dtype=params.dtype
            )
            phases.compute += device.take_phase()
            out = out_flat[:n_targets].copy()
            psi = {
                c: out_flat[row:row + n_ip]
                for c, row in grid_slot.items()
            }
            n_approx = sum(
                len(group_batches[g]) for g in grid_groups.values()
            )
            n_direct = sum(
                len(group_batches[g]) for g in direct_groups.values()
            )

            # -- compute: downward barycentric interpolation -------------
            # Each cluster's grid potentials interpolate to its own
            # targets: phi(x) += sum_k L_k(x) psi_k (the transpose of the
            # BLTC's modified-charge contraction).
            for c, grid in grids.items():
                idx = tree.node_indices(c)
                pts = target_pos[idx]
                lx = lagrange_basis(pts[:, 0], grid.points_1d[0], grid.weights)
                ly = lagrange_basis(pts[:, 1], grid.points_1d[1], grid.weights)
                lz = lagrange_basis(pts[:, 2], grid.points_1d[2], grid.weights)
                np1 = params.degree + 1
                cube = psi[c].reshape(np1, np1, np1)
                out[idx] += np.einsum(
                    "abc,aj,bj,cj->j", cube, lx, ly, lz, optimize=True
                )
                device.launch(
                    float(n_ip) * idx.shape[0],
                    blocks=idx.shape[0],
                    kind="interpolate",
                    flops_per_interaction=7.0,
                )
            device.download(out.nbytes)
            phases.compute += device.take_phase()

        c = device.counters
        stats = {
            "kernel": kernel.name,
            "machine": self.machine.name,
            "scheme": "cluster-particle",
            "n_sources": sources.n,
            "n_targets": n_targets,
            "n_tree_nodes": len(tree),
            "n_batches": len(batches),
            "n_approx_interactions": n_approx,
            "n_direct_interactions": n_direct,
            "n_clusters_with_grid": len(grids),
            "mac_evals": mac_evals,
            "launches": c.launches,
            "kernel_evaluations": c.interactions,
            "by_kind": {k: tuple(v) for k, v in c.by_kind.items()},
            "busy_by_kind": dict(c.busy_by_kind),
        }
        return TreecodeResult(
            potential=out,
            phases=phases,
            wall_seconds=watch.elapsed,
            stats=stats,
        )
