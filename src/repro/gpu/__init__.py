"""Simulated execution devices (the paper's OpenACC/GPU layer).

No physical GPU exists in this environment, so the OpenACC execution model
of Sec. 3.2 is reproduced by a discrete cost simulator: every kernel launch
of the real algorithm is recorded with its exact interaction count, thread
block count, and kernel cost multiplier, and converted to simulated seconds
using a :class:`~repro.perf.machine.MachineSpec`.  The model covers

* per-launch latency, hidden across ``n_streams`` asynchronous streams
  (``async_streams=False`` reproduces the synchronous baseline the paper
  compares against -- ~25% slower at the 1M-particle scale);
* an occupancy roll-off for launches with few thread blocks (why the
  precompute phase stops saturating the GPU at small per-rank N, Fig. 6cd);
* host<->device transfer costs at the OpenACC data-region boundaries.

The numerical work itself is executed by the caller in NumPy; devices only
account for time, so CPU and GPU runs produce bitwise-identical potentials.
"""

from .device import CpuDevice, Device, DeviceCounters, GpuDevice, make_device

__all__ = ["Device", "GpuDevice", "CpuDevice", "DeviceCounters", "make_device"]
