"""Discrete cost simulation of CPU and GPU execution devices.

The executor (:mod:`repro.core.executor`) drives a :class:`Device` through
the same sequence of operations the paper's OpenACC code performs: HtD
copies, kernel launches on asynchronous streams, DtH copies, and
synchronization points.  The device converts these events into simulated
seconds via its :class:`~repro.perf.machine.MachineSpec`.

Stream model
------------
With asynchronous streams (paper Sec. 3.2) the CPU queues kernels and
immediately regains control; launch initialization on one stream overlaps
computation on others.  Between synchronization points the device
accumulates the total busy time of all queued kernels; the per-launch
latency is exposed only at rate ``launch_latency / n_streams`` because
``n_streams`` initializations proceed concurrently with execution.  In
synchronous mode every launch pays its full latency serially -- the
baseline against which the paper measures the ~25% async improvement.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..perf.machine import MachineSpec

__all__ = ["DeviceCounters", "Device", "GpuDevice", "CpuDevice", "make_device"]


# Module-level defaultdict factories (lambdas would make the counters
# -- and every session holding a device -- unpicklable).
def _kind_cell() -> list:
    return [0, 0.0]


def _by_kind_dict() -> defaultdict:
    return defaultdict(_kind_cell)


def _busy_dict() -> defaultdict:
    return defaultdict(float)


@dataclass
class DeviceCounters:
    """Cumulative event counters for one device."""

    launches: int = 0
    interactions: float = 0.0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    transfers: int = 0
    #: Per-kernel-kind (launches, interactions) breakdown.
    by_kind: dict = field(default_factory=_by_kind_dict)
    #: Per-kernel-kind busy seconds (execution time excluding launch
    #: latency); lets harnesses re-time a run for a different kernel's
    #: cost multiplier without re-running the pipeline.
    busy_by_kind: dict = field(default_factory=_busy_dict)

    def record_launch(
        self, kind: str, n_interactions: float, busy_seconds: float = 0.0
    ) -> None:
        self.launches += 1
        self.interactions += n_interactions
        entry = self.by_kind[kind]
        entry[0] += 1
        entry[1] += n_interactions
        self.busy_by_kind[kind] += busy_seconds


class Device:
    """Base class: simulated-time accounting shared by CPU and GPU."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.time = 0.0
        self.counters = DeviceCounters()
        self._mark = 0.0

    # -- operations ----------------------------------------------------
    def upload(self, nbytes: int, label: str = "") -> None:
        """Host-to-device copy of ``nbytes`` (OpenACC data region in)."""
        self.synchronize()
        self.time += self.spec.transfer_time(nbytes)
        self.counters.bytes_h2d += int(nbytes)
        self.counters.transfers += 1

    def download(self, nbytes: int, label: str = "") -> None:
        """Device-to-host copy of ``nbytes`` (OpenACC data region out)."""
        self.synchronize()
        self.time += self.spec.transfer_time(nbytes)
        self.counters.bytes_d2h += int(nbytes)
        self.counters.transfers += 1

    def launch(
        self,
        n_interactions: float,
        *,
        blocks: int,
        kind: str = "direct",
        flops_per_interaction: float = 20.0,
        cost_multiplier: float = 1.0,
    ) -> None:
        """Record one compute-kernel launch."""
        raise NotImplementedError

    def launch_many(
        self,
        kinds,
        n_interactions,
        durations,
    ) -> None:
        """Record a sequence of launches with precomputed durations.

        Bulk form of :meth:`launch` for plan-driven charging: callers
        compute the per-launch durations vectorized (via
        :meth:`~repro.perf.machine.MachineSpec.interaction_times`, which
        is bitwise-faithful to the scalar path) and this method
        accumulates them *in sequence order*, so counters and simulated
        time are byte-identical to the equivalent scalar launch loop.
        """
        raise NotImplementedError

    def host_work(self, n_ops: float) -> None:
        """Account for host-side (CPU) bookkeeping such as tree builds."""
        self.synchronize()
        self.time += n_ops / self.spec.host_op_rate

    def comm_wait(self, seconds: float) -> None:
        """Account for communication time spent while the device idles."""
        self.synchronize()
        self.time += seconds

    def synchronize(self) -> None:
        """Drain any queued asynchronous work (no-op by default)."""

    # -- time queries ---------------------------------------------------
    def elapsed(self) -> float:
        """Total simulated seconds (synchronizes first)."""
        self.synchronize()
        return self.time

    def take_phase(self) -> float:
        """Simulated seconds since the previous call (phase boundary)."""
        self.synchronize()
        delta = self.time - self._mark
        self._mark = self.time
        return delta


class GpuDevice(Device):
    """GPU device with launch latency, streams, occupancy, transfers."""

    def __init__(self, spec: MachineSpec, *, async_streams: bool = True) -> None:
        if spec.kind != "gpu":
            raise ValueError(f"GpuDevice requires a gpu spec, got {spec.kind!r}")
        super().__init__(spec)
        self.async_streams = bool(async_streams)
        self._queued_busy = 0.0
        self._queued_launches = 0

    def launch(
        self,
        n_interactions: float,
        *,
        blocks: int,
        kind: str = "direct",
        flops_per_interaction: float = 20.0,
        cost_multiplier: float = 1.0,
    ) -> None:
        duration = self.spec.interaction_time(
            n_interactions,
            flops_per_interaction=flops_per_interaction,
            cost_multiplier=cost_multiplier,
            blocks=blocks,
        )
        self.counters.record_launch(kind, n_interactions, duration)
        if self.async_streams:
            self._queued_busy += duration
            self._queued_launches += 1
        else:
            self.time += self.spec.launch_latency + duration

    def launch_many(self, kinds, n_interactions, durations) -> None:
        c = self.counters
        by_kind = c.by_kind
        busy = c.busy_by_kind
        asynchronous = self.async_streams
        latency = self.spec.launch_latency
        queued = self._queued_busy
        time = self.time
        interactions = c.interactions
        for kind, n, d in zip(
            kinds, n_interactions.tolist(), durations.tolist()
        ):
            interactions += n
            entry = by_kind[kind]
            entry[0] += 1
            entry[1] += n
            busy[kind] += d
            if asynchronous:
                queued += d
            else:
                time += latency + d
        c.interactions = interactions
        c.launches += len(kinds)
        if asynchronous:
            self._queued_busy = queued
            self._queued_launches += len(kinds)
        else:
            self.time = time

    def synchronize(self) -> None:
        if self._queued_launches:
            # Busy time is work-conserving across streams; launch latency
            # is overlapped n_streams-wide, with one un-hidden latency to
            # fill the pipeline.
            exposed = (
                self._queued_launches
                * self.spec.launch_latency
                / self.spec.n_streams
            )
            self.time += self._queued_busy + exposed + self.spec.launch_latency
            self._queued_busy = 0.0
            self._queued_launches = 0


class CpuDevice(Device):
    """Multicore CPU device (the paper's OpenMP reference).

    No launch latency, no transfers; every "kernel" is an OpenMP parallel
    loop over the batch's interaction list (Sec. 4).  Occupancy effects do
    not apply -- the thread count is small and loops are long.
    """

    def __init__(self, spec: MachineSpec) -> None:
        if spec.kind != "cpu":
            raise ValueError(f"CpuDevice requires a cpu spec, got {spec.kind!r}")
        super().__init__(spec)

    def launch(
        self,
        n_interactions: float,
        *,
        blocks: int,
        kind: str = "direct",
        flops_per_interaction: float = 20.0,
        cost_multiplier: float = 1.0,
    ) -> None:
        duration = self.spec.interaction_time(
            n_interactions,
            flops_per_interaction=flops_per_interaction,
            cost_multiplier=cost_multiplier,
            blocks=None,
        )
        self.counters.record_launch(kind, n_interactions, duration)
        self.time += duration

    def launch_many(self, kinds, n_interactions, durations) -> None:
        c = self.counters
        by_kind = c.by_kind
        busy = c.busy_by_kind
        time = self.time
        interactions = c.interactions
        for kind, n, d in zip(
            kinds, n_interactions.tolist(), durations.tolist()
        ):
            interactions += n
            entry = by_kind[kind]
            entry[0] += 1
            entry[1] += n
            busy[kind] += d
            time += d
        c.interactions = interactions
        c.launches += len(kinds)
        self.time = time


def make_device(spec: MachineSpec, *, async_streams: bool = True) -> Device:
    """Construct the device matching ``spec.kind``."""
    if spec.kind == "gpu":
        return GpuDevice(spec, async_streams=async_streams)
    return CpuDevice(spec)
