"""Small shared utilities used across the BLTC reproduction.

Nothing in this module is specific to the treecode; it holds array
validation helpers and a deterministic RNG constructor so that every
module creates randomness the same way.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_points",
    "as_charges",
    "as_charge_block",
    "default_rng",
    "chunk_ranges",
    "TINY",
]

#: Smallest positive IEEE normal double.  The paper (Sec. 2.3) uses this as
#: the tolerance deciding when a source coordinate coincides with a
#: Chebyshev point coordinate, triggering the removable-singularity branch.
TINY: float = float(np.finfo(np.float64).tiny)


def as_points(x, *, name: str = "points", dtype=np.float64) -> np.ndarray:
    """Validate and convert ``x`` to a contiguous ``(N, 3)`` float array.

    Raises ``ValueError`` with a descriptive message when the input does not
    look like a set of 3D points.
    """
    arr = np.ascontiguousarray(x, dtype=dtype)
    if arr.ndim == 1 and arr.size == 3:
        arr = arr.reshape(1, 3)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(
            f"{name} must have shape (N, 3); got shape {np.shape(x)!r}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def as_charges(q, n: int, *, name: str = "charges", dtype=np.float64) -> np.ndarray:
    """Validate and convert ``q`` to a contiguous ``(N,)`` float array."""
    arr = np.ascontiguousarray(q, dtype=dtype)
    if arr.ndim != 1 or arr.shape[0] != n:
        raise ValueError(
            f"{name} must have shape ({n},); got shape {np.shape(q)!r}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def as_charge_block(
    q, n: int, *, name: str = "charges", dtype=np.float64
) -> np.ndarray:
    """Validate ``q`` as a contiguous ``(N,)`` vector or ``(N, n_rhs)`` block.

    The multi-RHS entry points accept either a single charge vector or a
    matrix whose columns are independent charge vectors.  Anything else
    (wrong leading dimension, >2-D input, an empty column axis, non-finite
    values) raises ``ValueError`` here, before any plan state is touched.
    """
    arr = np.ascontiguousarray(q, dtype=dtype)
    if arr.ndim not in (1, 2):
        raise ValueError(
            f"{name} must have shape ({n},) or ({n}, n_rhs); "
            f"got a {arr.ndim}-D array of shape {np.shape(q)!r}"
        )
    if arr.shape[0] != n:
        raise ValueError(
            f"{name} must have leading dimension {n}; got shape {np.shape(q)!r}"
        )
    if arr.ndim == 2 and arr.shape[1] == 0:
        raise ValueError(f"{name} must carry at least one charge column")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def default_rng(seed=None) -> np.random.Generator:
    """Project-wide RNG constructor (PCG64)."""
    return np.random.default_rng(seed)


def chunk_ranges(n: int, chunk: int):
    """Yield ``(start, stop)`` pairs covering ``range(n)`` in ``chunk`` steps."""
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    for start in range(0, n, chunk):
        yield start, min(start + chunk, n)
