"""Hierarchical cluster tree (adaptive octree) for source particles.

Paper Sec. 2.4: the root cluster is the minimal bounding box containing all
source particles; clusters are recursively divided at the midpoint of the
three dimensions of the bounding box until a cluster holds ``NL`` or fewer
particles.  Sec. 3.1 adds the aspect-ratio rule: a cluster is divided into
8 children normally, but only 2 or 4 when splitting all dimensions would
produce children with aspect ratio above sqrt(2).

The tree stores a permutation of the particle indices such that every node
owns a contiguous slice ``[start, end)`` -- the array-structure style that
GPU treecodes favour over pointer chasing (the paper cites Burtscher &
Pingali for this idea), and which makes serializing the tree for RMA
communication trivial.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..config import ASPECT_RATIO_LIMIT
from .box import Box, bounding_box

__all__ = ["TreeNode", "ClusterTree", "RebinResult"]


@dataclass
class RebinResult:
    """Outcome of :meth:`ClusterTree.rebin`.

    ``ok`` is False when the incremental replay had to bail out (a node's
    leaf status flipped or its child count changed); the tree is left
    untouched in that case and the caller must rebuild from scratch.  On
    success the per-node masks describe what changed relative to the old
    binning: ``box_changed`` (bounding box moved), ``count_changed``
    (slice size changed), ``members_dirty`` (the node's particle
    sequence -- membership or order -- may differ).  ``n_rebinned``
    counts particles whose leaf assignment changed; ``scratch_bytes`` is
    the peak size of the working copies the replay allocated.
    """

    ok: bool
    reason: str = ""
    n_rebinned: int = 0
    box_changed: np.ndarray | None = None
    count_changed: np.ndarray | None = None
    members_dirty: np.ndarray | None = None
    scratch_bytes: int = 0


@dataclass
class TreeNode:
    """One cluster in the tree.

    ``start``/``end`` index the tree's permutation array; the node's
    particles are ``positions[tree.perm[start:end]]``.
    """

    index: int
    start: int
    end: int
    box: Box
    level: int
    parent: int
    children: list[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Number of particles owned by this cluster."""
        return self.end - self.start

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def center(self) -> np.ndarray:
        return self.box.center

    @property
    def radius(self) -> float:
        return self.box.radius


class ClusterTree:
    """Adaptive octree over a fixed set of points.

    Parameters
    ----------
    positions : (N, 3) particle coordinates (not copied; treated read-only).
    max_leaf_size : ``NL`` -- subdivision stops at or below this count.
    aspect_ratio_splitting : apply the sqrt(2) rule (paper Sec. 3.1); when
        False every split bisects all three dimensions (classical octree).
    shrink_to_fit : use the minimal bounding box at every node (Sec. 2.3).
        When False, children keep the geometric half-boxes of their parent.
    """

    def __init__(
        self,
        positions: np.ndarray,
        max_leaf_size: int,
        *,
        aspect_ratio_splitting: bool = True,
        shrink_to_fit: bool = True,
    ) -> None:
        positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(
                f"positions must be (N, 3), got {positions.shape}"
            )
        if positions.shape[0] == 0:
            raise ValueError("cannot build a tree over zero particles")
        if max_leaf_size < 1:
            raise ValueError(f"max_leaf_size must be >= 1, got {max_leaf_size}")
        self.positions = positions
        self.max_leaf_size = int(max_leaf_size)
        self.aspect_ratio_splitting = bool(aspect_ratio_splitting)
        self.shrink_to_fit = bool(shrink_to_fit)
        self.perm = np.arange(positions.shape[0], dtype=np.intp)
        self.nodes: list[TreeNode] = []
        self._node_counts: np.ndarray | None = None
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _node_box(self, start: int, end: int, inherited: Box | None) -> Box:
        if self.shrink_to_fit or inherited is None:
            return bounding_box(self.positions[self.perm[start:end]])
        return inherited

    def _build(self) -> None:
        n = self.positions.shape[0]
        # Breadth-first work queue of (start, end, parent, level,
        # inherited_box).  BFS assigns node indices in level order, which
        # guarantees the children of any node occupy *consecutive*
        # indices: they are appended to the queue together and nothing is
        # ever inserted between them.  The packed tree array exploits this
        # by storing only (first_child, n_children).
        queue: deque[tuple[int, int, int, int, Box | None]] = deque(
            [(0, n, -1, 0, None)]
        )
        while queue:
            start, end, parent, level, inherited = queue.popleft()
            box = self._node_box(start, end, inherited)
            index = len(self.nodes)
            node = TreeNode(
                index=index, start=start, end=end, box=box,
                level=level, parent=parent,
            )
            self.nodes.append(node)
            if parent >= 0:
                self.nodes[parent].children.append(index)
            count = end - start
            # Leaf conditions: small enough, or geometrically degenerate
            # (all particles coincident -- subdivision cannot progress).
            if count <= self.max_leaf_size or box.extents.max() == 0.0:
                continue
            if self.aspect_ratio_splitting:
                dims = box.split_dimensions(ASPECT_RATIO_LIMIT)
            else:
                dims = np.array([0, 1, 2], dtype=np.intp)
            mid = box.center
            pts = self.positions[self.perm[start:end]]
            # Child code: bit i set when the point lies above the midpoint
            # in split dimension dims[i].  Up to 2^len(dims) children.
            code = np.zeros(count, dtype=np.intp)
            for i, d in enumerate(dims):
                code |= (pts[:, d] > mid[d]).astype(np.intp) << i
            order = np.argsort(code, kind="stable")
            self.perm[start:end] = self.perm[start:end][order]
            counts = np.bincount(code, minlength=1 << len(dims))
            offset = start
            for c in range(1 << len(dims)):
                cnt = int(counts[c])
                if cnt == 0:
                    continue
                child_box: Box | None = None
                if not self.shrink_to_fit:
                    # Geometric half-box of child code c: split dims take
                    # the low or high half of the parent per code bit.
                    lo = box.lo.copy()
                    hi = box.hi.copy()
                    for i, d in enumerate(dims):
                        if (c >> i) & 1:
                            lo[d] = mid[d]
                        else:
                            hi[d] = mid[d]
                    child_box = Box(lo, hi)
                queue.append(
                    (offset, offset + cnt, index, level + 1, child_box)
                )
                offset += cnt

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def root(self) -> TreeNode:
        return self.nodes[0]

    @property
    def n_particles(self) -> int:
        return self.positions.shape[0]

    @property
    def n_leaves(self) -> int:
        return sum(1 for nd in self.nodes if nd.is_leaf)

    @property
    def max_level(self) -> int:
        return max(nd.level for nd in self.nodes)

    @property
    def node_counts(self) -> np.ndarray:
        """(n_nodes,) particle count per node (cached; vectorized users
        index this instead of walking ``nodes[i].count`` in Python)."""
        if self._node_counts is None:
            self._node_counts = np.fromiter(
                (nd.end - nd.start for nd in self.nodes),
                dtype=np.intp,
                count=len(self.nodes),
            )
        return self._node_counts

    def leaves(self) -> list[TreeNode]:
        """All leaf nodes, in node-index order."""
        return [nd for nd in self.nodes if nd.is_leaf]

    def node_indices(self, node: TreeNode | int) -> np.ndarray:
        """Original particle indices owned by ``node``."""
        if not isinstance(node, TreeNode):
            node = self.nodes[int(node)]
        return self.perm[node.start:node.end]

    def node_points(self, node: TreeNode | int) -> np.ndarray:
        """Coordinates of the particles owned by ``node``."""
        return self.positions[self.node_indices(node)]

    # ------------------------------------------------------------------
    # Dynamic geometry: leaf membership + incremental re-bin
    # ------------------------------------------------------------------
    def leaf_map(self) -> np.ndarray:
        """(N,) index of the leaf node owning each original particle."""
        lm = np.empty(self.n_particles, dtype=np.intp)
        for nd in self.nodes:
            if nd.is_leaf:
                lm[self.perm[nd.start:nd.end]] = nd.index
        return lm

    def escaped_mask(self, new_positions: np.ndarray) -> np.ndarray:
        """(N,) bool: which particles left their current leaf box.

        The leaf-membership check of a dynamic-geometry update: a
        particle still inside its leaf's bounding box needs no re-bin
        (though shrink-to-fit boxes still tighten around it).
        """
        new_positions = np.asarray(new_positions, dtype=np.float64)
        m = len(self.nodes)
        los = np.zeros((m, 3))
        his = np.zeros((m, 3))
        for nd in self.nodes:
            if nd.is_leaf:
                los[nd.index] = nd.box.lo
                his[nd.index] = nd.box.hi
        lm = self.leaf_map()
        return np.any(
            (new_positions < los[lm]) | (new_positions > his[lm]), axis=1
        )

    def rebin(self, new_positions: np.ndarray) -> RebinResult:
        """Re-bin the tree in place for moved particles, preserving topology.

        Replays :meth:`_build`'s top-down pass over the *existing* node
        structure with the new coordinates: every node's box, split
        dimensions, midpoint and child codes are recomputed exactly as a
        cold build would, and each splitting node's permutation slice is
        re-sorted into the cold build's (code, original-index) order --
        a stable argsort over an ascending-original-index slice yields
        exactly that order, and rebinning preserves the invariant
        inductively, so a successful rebin reproduces a cold
        ``ClusterTree(new_positions, ...)`` bit for bit.  The replay
        bails out (returning ``ok=False`` and leaving the tree
        untouched) only when the *shape* of the tree would differ: a
        node's leaf status flips or the number of its non-empty children
        changes.  Codes, split dimensions and boxes may change freely --
        they are recomputed, not compared.
        """
        new_positions = np.atleast_2d(
            np.asarray(new_positions, dtype=np.float64)
        )
        if new_positions.shape != self.positions.shape:
            raise ValueError(
                "new_positions shape "
                f"{new_positions.shape} != {self.positions.shape}"
            )
        m = len(self.nodes)
        old_leaf_map = self.leaf_map()
        # Working copies: nothing below mutates the tree until commit.
        perm = self.perm.copy()
        starts = np.fromiter(
            (nd.start for nd in self.nodes), dtype=np.intp, count=m
        )
        ends = np.fromiter(
            (nd.end for nd in self.nodes), dtype=np.intp, count=m
        )
        boxes: list[Box | None] = [None] * m
        inherited: list[Box | None] = [None] * m
        box_changed = np.zeros(m, dtype=bool)
        count_changed = np.zeros(m, dtype=bool)
        members_dirty = np.zeros(m, dtype=bool)
        scratch = (
            perm.nbytes + starts.nbytes + ends.nbytes
            + old_leaf_map.nbytes + 3 * m
        )

        def bail(reason: str) -> RebinResult:
            return RebinResult(
                ok=False, reason=reason, scratch_bytes=int(scratch)
            )

        # BFS index order guarantees parents are visited before children,
        # so starts/ends/inherited boxes assigned at the parent are final
        # by the time the child is processed.
        for index, node in enumerate(self.nodes):
            start, end = int(starts[index]), int(ends[index])
            count = end - start
            if self.shrink_to_fit or index == 0:
                box = bounding_box(new_positions[perm[start:end]])
            else:
                box = inherited[index]
            boxes[index] = box
            box_changed[index] = not (
                np.array_equal(box.lo, node.box.lo)
                and np.array_equal(box.hi, node.box.hi)
            )
            is_leaf_new = (
                count <= self.max_leaf_size or box.extents.max() == 0.0
            )
            if is_leaf_new != node.is_leaf:
                return bail(f"leaf status flipped at node {index}")
            if is_leaf_new:
                continue
            if self.aspect_ratio_splitting:
                dims = box.split_dimensions(ASPECT_RATIO_LIMIT)
            else:
                dims = np.array([0, 1, 2], dtype=np.intp)
            mid = box.center
            seg = perm[start:end]
            pts = new_positions[seg]
            code = np.zeros(count, dtype=np.intp)
            for i, d in enumerate(dims):
                code |= (pts[:, d] > mid[d]).astype(np.intp) << i
            scratch = max(scratch, perm.nbytes + code.nbytes + pts.nbytes)
            dc = np.diff(code)
            in_order = bool(np.all(dc >= 0)) and bool(
                np.all((dc > 0) | (np.diff(seg) > 0))
            )
            if not in_order:
                order = np.lexsort((seg, code))
                perm[start:end] = seg[order]
                code = code[order]
                members_dirty[index] = True
            uniq, counts = np.unique(code, return_counts=True)
            if len(uniq) != len(node.children):
                return bail(f"child count changed at node {index}")
            if not self.shrink_to_fit:
                child_boxes = []
                for c in uniq:
                    lo = box.lo.copy()
                    hi = box.hi.copy()
                    for i, d in enumerate(dims):
                        if (int(c) >> i) & 1:
                            lo[d] = mid[d]
                        else:
                            hi[d] = mid[d]
                    child_boxes.append(Box(lo, hi))
            offset = start
            for k, child in enumerate(node.children):
                cnt = int(counts[k])
                moved = (
                    offset != self.nodes[child].start
                    or cnt != self.nodes[child].count
                )
                starts[child] = offset
                ends[child] = offset + cnt
                count_changed[child] = cnt != self.nodes[child].count
                members_dirty[child] = members_dirty[index] or moved
                if not self.shrink_to_fit:
                    inherited[child] = child_boxes[k]
                offset += cnt

        # Commit: mutate the existing TreeNode objects so every external
        # reference to them (target batches, adapters) stays valid.
        for index, node in enumerate(self.nodes):
            node.start = int(starts[index])
            node.end = int(ends[index])
            node.box = boxes[index]
        self.perm = perm
        self.positions = new_positions
        self._node_counts = None
        new_leaf_map = self.leaf_map()
        n_rebinned = int(np.count_nonzero(new_leaf_map != old_leaf_map))
        return RebinResult(
            ok=True,
            n_rebinned=n_rebinned,
            box_changed=box_changed,
            count_changed=count_changed,
            members_dirty=members_dirty,
            scratch_bytes=int(scratch),
        )

    # ------------------------------------------------------------------
    # Serialization (the "tree array" communicated over RMA, Sec. 3.1)
    # ------------------------------------------------------------------
    #: Number of float64 fields per node in the packed tree array.
    TREE_ARRAY_FIELDS = 16

    def tree_array(self) -> np.ndarray:
        """Pack the tree metadata into a flat float64 array.

        Layout per node (16 fields): center(3), radius, lo(3), hi(3),
        count, start, end, is_leaf, first_child, n_children.  Children of a
        node are consecutive, so (first_child, n_children) reconstructs the
        topology.  This is the "tree array (containing cluster midpoints
        and radii for all tree nodes)" placed in RMA windows (Sec. 3.1).
        """
        m = len(self.nodes)
        arr = np.zeros((m, self.TREE_ARRAY_FIELDS), dtype=np.float64)
        for nd in self.nodes:
            first_child = nd.children[0] if nd.children else -1
            arr[nd.index] = np.concatenate([
                nd.center,
                [nd.radius],
                nd.box.lo,
                nd.box.hi,
                [
                    nd.count,
                    nd.start,
                    nd.end,
                    1.0 if nd.is_leaf else 0.0,
                    first_child,
                    len(nd.children),
                ],
            ])
        return arr

    def validate(self) -> None:
        """Check structural invariants; raises AssertionError on violation.

        Used by tests and as a debugging aid: the permutation is a
        bijection, every node's slice is the concatenation of its
        children's slices, every particle lies inside its node's box, and
        leaves respect ``NL`` unless degenerate.
        """
        n = self.positions.shape[0]
        assert sorted(self.perm.tolist()) == list(range(n)), "perm not a bijection"
        root = self.root
        assert root.start == 0 and root.end == n, "root does not own all particles"
        for nd in self.nodes:
            pts = self.node_points(nd)
            assert bool(np.all(nd.box.contains(pts, atol=1e-12))), (
                f"node {nd.index} has particles outside its box"
            )
            if nd.children:
                spans = sorted(
                    (self.nodes[c].start, self.nodes[c].end) for c in nd.children
                )
                assert spans[0][0] == nd.start and spans[-1][1] == nd.end, (
                    f"children of node {nd.index} do not tile it"
                )
                for (a, b), (c, d) in zip(spans, spans[1:]):
                    assert b == c, f"gap in children of node {nd.index}"
            else:
                degenerate = nd.box.extents.max() == 0.0
                assert nd.count <= self.max_leaf_size or degenerate, (
                    f"oversized leaf {nd.index}: {nd.count}"
                )
