"""Axis-aligned bounding boxes and the geometric quantities of the MAC.

The MAC (paper eq. 13) needs a *radius* for batches and clusters and the
distance ``R`` between their centers.  Following the treecode convention,
the center is the box midpoint and the radius is the half-diagonal (the
largest distance from the center to any point inside the box).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Box", "bounding_box"]


@dataclass(frozen=True)
class Box:
    """Axis-aligned box ``[lo, hi]`` in 3D."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64).reshape(3)
        hi = np.asarray(self.hi, dtype=np.float64).reshape(3)
        if np.any(hi < lo):
            raise ValueError(f"invalid box: lo={lo}, hi={hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @property
    def center(self) -> np.ndarray:
        """Box midpoint."""
        return 0.5 * (self.lo + self.hi)

    @property
    def extents(self) -> np.ndarray:
        """Per-dimension side lengths."""
        return self.hi - self.lo

    @property
    def radius(self) -> float:
        """Half-diagonal: max distance from the center to the box."""
        return 0.5 * float(np.linalg.norm(self.extents))

    @property
    def aspect_ratio(self) -> float:
        """Ratio of longest to shortest extent (inf for degenerate boxes)."""
        ext = self.extents
        lo = ext.min()
        hi = ext.max()
        if lo == 0.0:
            return float("inf") if hi > 0.0 else 1.0
        return float(hi / lo)

    def contains(self, points: np.ndarray, *, atol: float = 0.0) -> np.ndarray:
        """Boolean mask of points inside the (closed, atol-expanded) box."""
        points = np.atleast_2d(points)
        return np.all(
            (points >= self.lo - atol) & (points <= self.hi + atol), axis=1
        )

    def split_dimensions(self, limit: float) -> np.ndarray:
        """Dimensions to bisect under the aspect-ratio rule (Sec. 3.1).

        A dimension is split only when its extent exceeds
        ``max_extent / limit``: halving such a dimension cannot leave a
        child more elongated than ``limit``, while splitting a shorter
        dimension would.  For a cube all three dimensions split (8
        children); for the 1/2 x 1/3 partitions of Fig. 2b only the long
        dimension splits (2 children).  At least the longest dimension is
        always split so subdivision makes progress.
        """
        ext = self.extents
        longest = ext.max()
        if longest == 0.0:
            return np.array([], dtype=np.intp)
        dims = np.nonzero(ext > longest / limit)[0]
        if dims.size == 0:  # pragma: no cover - ext > longest/limit holds for argmax
            dims = np.array([int(np.argmax(ext))], dtype=np.intp)
        return dims

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(lo={self.lo.tolist()}, hi={self.hi.tolist()})"


def bounding_box(points: np.ndarray) -> Box:
    """Minimal axis-aligned bounding box of a point set.

    The paper uses the *minimal* bounding box for clusters (Sec. 2.3), so
    extreme particle coordinates coincide with the Chebyshev endpoint
    coordinates, deliberately exercising the removable singularities.
    """
    points = np.atleast_2d(points)
    if points.shape[0] == 0:
        raise ValueError("cannot bound an empty point set")
    return Box(points.min(axis=0), points.max(axis=0))
