"""Target batches (paper Sec. 2.4 and 3.2).

Targets are organized into geometrically localized batches of at most
``NB`` particles using *the same partitioning routine* as the source tree;
when targets and sources are the same particle set with ``NB == NL`` the
batches are equivalent to the source-tree leaves, as in the paper's tests.

Batching is what gives the GPU implementation its outer level of
parallelism: one kernel launch processes one (batch, cluster) pair, one
thread block per target in the batch.
"""

from __future__ import annotations

import numpy as np

from .box import Box
from .octree import ClusterTree, RebinResult, TreeNode

__all__ = ["TargetBatches"]


class TargetBatches:
    """The set of localized target batches ``{B}``.

    Thin wrapper over a :class:`ClusterTree` built on the target particles
    with leaf cap ``NB``; the batches are the tree's leaves.  Exposes the
    per-batch quantities the MAC and the executor need.
    """

    def __init__(
        self,
        positions: np.ndarray,
        max_batch_size: int,
        *,
        aspect_ratio_splitting: bool = True,
        shrink_to_fit: bool = True,
    ) -> None:
        self._tree = ClusterTree(
            positions,
            max_batch_size,
            aspect_ratio_splitting=aspect_ratio_splitting,
            shrink_to_fit=shrink_to_fit,
        )
        self._leaves: list[TreeNode] = self._tree.leaves()

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def n_targets(self) -> int:
        return self._tree.n_particles

    @property
    def max_level(self) -> int:
        """Depth of the underlying batch tree (host-side build cost)."""
        return self._tree.max_level

    @property
    def perm(self) -> np.ndarray:
        """Permutation of target indices; batch ``b`` owns a slice of it."""
        return self._tree.perm

    @property
    def positions(self) -> np.ndarray:
        """(n_targets, 3) target coordinates (the batch tree's array)."""
        return self._tree.positions

    @property
    def tree(self) -> ClusterTree:
        """The underlying batch tree (its leaves are the batches)."""
        return self._tree

    def rebin(self, new_positions: np.ndarray) -> RebinResult:
        """Incrementally re-bin the batch tree for moved targets.

        Delegates to :meth:`ClusterTree.rebin`; on success the cached
        leaf list stays valid because the tree mutates its ``TreeNode``
        objects in place.  Batch ``b``'s node index in the masks is
        ``self.batch(b).index``.
        """
        return self._tree.rebin(new_positions)

    def batch(self, b: int) -> TreeNode:
        """The ``b``-th batch node."""
        return self._leaves[b]

    def batch_indices(self, b: int) -> np.ndarray:
        """Original target indices of batch ``b``."""
        return self._tree.node_indices(self._leaves[b])

    def batch_points(self, b: int) -> np.ndarray:
        """Coordinates of the targets in batch ``b``."""
        return self._tree.node_points(self._leaves[b])

    def batch_box(self, b: int) -> Box:
        return self._leaves[b].box

    def centers(self) -> np.ndarray:
        """(n_batches, 3) batch centers."""
        return np.array([nd.center for nd in self._leaves])

    def radii(self) -> np.ndarray:
        """(n_batches,) batch radii."""
        return np.array([nd.radius for nd in self._leaves])

    def sizes(self) -> np.ndarray:
        """(n_batches,) number of targets per batch."""
        return np.array([nd.count for nd in self._leaves], dtype=np.intp)

    def validate(self) -> None:
        """Structural invariants (delegates to the underlying tree)."""
        self._tree.validate()
        assert sum(nd.count for nd in self._leaves) == self.n_targets
