"""Hierarchical source-cluster tree and target batches (paper Sec. 2.4, 3.1).

* :class:`~repro.tree.box.Box` -- axis-aligned bounding boxes with the
  center/radius quantities consumed by the MAC.
* :class:`~repro.tree.octree.ClusterTree` -- the hierarchical tree of
  source clusters: recursive midpoint subdivision of minimal bounding
  boxes, terminating at ``NL`` particles, with the sqrt(2) aspect-ratio
  rule deciding how many children (2/4/8) a node gets.
* :class:`~repro.tree.batches.TargetBatches` -- geometrically localized
  batches of at most ``NB`` targets, built with the same partitioning
  routine.
"""

from .box import Box, bounding_box
from .octree import ClusterTree, TreeNode
from .batches import TargetBatches

__all__ = [
    "Box",
    "bounding_box",
    "ClusterTree",
    "TreeNode",
    "TargetBatches",
]
