"""In-process MPI simulator: ranks, windows, passive-target RMA.

The paper's distributed layer (Sec. 3.1) uses MPI passive target
synchronization remote memory access: an origin rank locks a window on a
target rank, gets data with no involvement from the target, and unlocks.
No MPI implementation is available in this environment, so this package
provides a deterministic in-process equivalent:

* :class:`~repro.mpi.window.Window` -- a named, rank-owned array with
  shared/exclusive lock epochs; ``get``/``put`` require a held lock
  (enforced, like a correct MPI program must).
* :class:`~repro.mpi.comm.SimComm` -- the communicator: window registry,
  per-rank simulated clocks, byte-accurate transfer accounting through a
  :class:`~repro.perf.comm.CommModel`, and barriers.

Data moved through windows is *real* (NumPy copies of the actual arrays);
only the transfer *time* is modeled.
"""

from .window import LockViolation, Window
from .comm import RankHandle, SimComm

__all__ = ["Window", "LockViolation", "SimComm", "RankHandle"]
