"""Simulated MPI communicator with per-rank clocks and RMA accounting.

:class:`SimComm` plays the role of ``MPI_COMM_WORLD`` for a fixed number
of ranks executed deterministically in one process.  Passive-target RMA
makes this faithful: the paper's LET construction requires *no* activity
from the target rank, so executing origins one after another observes the
same data a concurrent run would (windows are created before any access
and are read-only during the exchange).

Each rank owns a simulated clock.  RMA operations advance the origin's
clock by the :class:`~repro.perf.comm.CommModel` cost of the bytes moved
(local-rank accesses are free); barriers advance every clock to the
maximum, which is how phase times aggregate across ranks.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..perf.comm import CommModel, INFINIBAND_COMET
from .window import Window

__all__ = ["SimComm", "RankHandle"]


@dataclass
class RmaStats:
    """Cumulative one-sided traffic of one origin rank."""

    ops: int = 0
    bytes_remote: int = 0
    bytes_local: int = 0
    by_peer: dict = field(default_factory=dict)

    def record(self, peer: int, nbytes: int, *, remote: bool) -> None:
        self.ops += 1
        if remote:
            self.bytes_remote += nbytes
        else:
            self.bytes_local += nbytes
        self.by_peer[peer] = self.by_peer.get(peer, 0) + nbytes


class SimComm:
    """The simulated communicator."""

    def __init__(
        self, n_ranks: int, *, comm_model: CommModel = INFINIBAND_COMET
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self.comm_model = comm_model
        self._windows: dict[tuple[int, str], Window] = {}
        self.clocks = np.zeros(self.n_ranks)
        self.stats = [RmaStats() for _ in range(self.n_ranks)]

    # -- window management -------------------------------------------------
    def create_window(self, owner: int, name: str, array: np.ndarray) -> Window:
        """Expose ``array`` as window ``name`` on rank ``owner``."""
        self._check_rank(owner)
        key = (owner, name)
        if key in self._windows:
            raise ValueError(f"rank {owner} already has a window {name!r}")
        win = Window(owner, name, array)
        self._windows[key] = win
        return win

    def refresh_window(self, owner: int, name: str, array: np.ndarray) -> Window:
        """Replace (or create) window ``name`` on ``owner`` with new data.

        Models freeing and re-exposing a window between access epochs --
        the prepare/apply session re-ships refreshed charge buffers this
        way.  Unlike :meth:`create_window` it does not reject an
        existing name; reads race with nothing because rank programs
        execute sequentially between epochs.
        """
        self._check_rank(owner)
        win = Window(owner, name, array)
        self._windows[(owner, name)] = win
        return win

    def window(self, owner: int, name: str) -> Window:
        try:
            return self._windows[(owner, name)]
        except KeyError:
            raise KeyError(
                f"rank {owner} has no window {name!r}; available on that "
                f"rank: {[n for (o, n) in self._windows if o == owner]}"
            ) from None

    def free_windows(self) -> None:
        """Drop all windows (MPI_Win_free for everything)."""
        self._windows.clear()

    # -- one-sided access ----------------------------------------------------
    @contextmanager
    def lock(self, origin: int, owner: int, name: str, *, exclusive: bool = False):
        """Passive-target lock epoch on ``(owner, name)`` for ``origin``."""
        win = self.window(owner, name)
        win.lock(origin, exclusive=exclusive)
        try:
            yield win
        finally:
            win.unlock(origin)

    def get(self, origin: int, owner: int, name: str, index=None) -> np.ndarray:
        """Lock-get-unlock convenience; charges the origin's clock."""
        self._check_rank(origin)
        with self.lock(origin, owner, name) as win:
            data = win.get(origin, index)
        remote = origin != owner
        self.stats[origin].record(owner, data.nbytes, remote=remote)
        if remote:
            self.clocks[origin] += self.comm_model.op_time(data.nbytes)
        return data

    def put(self, origin: int, owner: int, name: str, data: np.ndarray, index=None) -> None:
        """Lock-put-unlock convenience; charges the origin's clock."""
        self._check_rank(origin)
        data = np.asarray(data)
        with self.lock(origin, owner, name, exclusive=True) as win:
            win.put(origin, data, index)
        remote = origin != owner
        self.stats[origin].record(owner, data.nbytes, remote=remote)
        if remote:
            self.clocks[origin] += self.comm_model.op_time(data.nbytes)

    # -- synchronization -----------------------------------------------------
    def barrier(self) -> float:
        """Align all rank clocks to the maximum; returns that time."""
        t = float(self.clocks.max())
        self.clocks[:] = t
        return t

    def advance_clock(self, rank: int, seconds: float) -> None:
        """Add local (non-communication) time to one rank's clock."""
        self._check_rank(rank)
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self.clocks[rank] += seconds

    def rank_handle(self, rank: int) -> "RankHandle":
        self._check_rank(rank)
        return RankHandle(self, rank)

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.n_ranks):
            raise ValueError(
                f"rank {rank} out of range for {self.n_ranks} ranks"
            )


class RankHandle:
    """Rank-local facade over :class:`SimComm` (what rank code holds)."""

    def __init__(self, comm: SimComm, rank: int) -> None:
        self.comm = comm
        self.rank = int(rank)

    @property
    def size(self) -> int:
        return self.comm.n_ranks

    def create_window(self, name: str, array: np.ndarray) -> Window:
        return self.comm.create_window(self.rank, name, array)

    def refresh_window(self, name: str, array: np.ndarray) -> Window:
        return self.comm.refresh_window(self.rank, name, array)

    def get(self, owner: int, name: str, index=None) -> np.ndarray:
        return self.comm.get(self.rank, owner, name, index)

    def put(self, owner: int, name: str, data: np.ndarray, index=None) -> None:
        self.comm.put(self.rank, owner, name, data, index)

    def remote_ranks(self) -> list[int]:
        """All ranks except this one."""
        return [r for r in range(self.size) if r != self.rank]
