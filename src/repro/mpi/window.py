"""RMA windows with passive-target lock semantics.

Models MPI-2 one-sided communication: a window exposes a rank's local
array; origin processes access it inside a lock epoch
(``MPI_Win_lock`` / ``MPI_Win_unlock``).  Shared locks (the mode the
paper's LET construction uses -- read-only gets from many origins) may be
held concurrently; an exclusive lock excludes all others.  Lock discipline
is enforced: accessing a window without holding a lock raises
:class:`LockViolation`, the moral equivalent of the undefined behaviour a
real MPI program would invoke.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Window", "LockViolation"]


class LockViolation(RuntimeError):
    """An RMA access outside a lock epoch, or a conflicting lock."""


class Window:
    """A named RMA window exposing one rank's array."""

    def __init__(self, owner: int, name: str, array: np.ndarray) -> None:
        self.owner = int(owner)
        self.name = str(name)
        self._array = np.ascontiguousarray(array)
        self._shared_holders: set[int] = set()
        self._exclusive_holder: int | None = None

    # -- lock epochs -----------------------------------------------------
    def lock(self, origin: int, *, exclusive: bool = False) -> None:
        """Open a lock epoch for ``origin`` (MPI_Win_lock)."""
        if self._exclusive_holder is not None:
            raise LockViolation(
                f"window {self.name!r} of rank {self.owner} is exclusively "
                f"locked by rank {self._exclusive_holder}"
            )
        if exclusive:
            if self._shared_holders:
                raise LockViolation(
                    f"window {self.name!r} of rank {self.owner} has shared "
                    f"holders {sorted(self._shared_holders)}"
                )
            self._exclusive_holder = origin
        else:
            if origin in self._shared_holders:
                raise LockViolation(
                    f"rank {origin} already holds a shared lock on "
                    f"window {self.name!r} of rank {self.owner}"
                )
            self._shared_holders.add(origin)

    def unlock(self, origin: int) -> None:
        """Close ``origin``'s lock epoch (MPI_Win_unlock)."""
        if self._exclusive_holder == origin:
            self._exclusive_holder = None
            return
        if origin in self._shared_holders:
            self._shared_holders.remove(origin)
            return
        raise LockViolation(
            f"rank {origin} does not hold a lock on window {self.name!r} "
            f"of rank {self.owner}"
        )

    def _check_access(self, origin: int, *, write: bool) -> None:
        if self._exclusive_holder == origin:
            return
        if not write and origin in self._shared_holders:
            return
        if write and origin in self._shared_holders:
            raise LockViolation(
                f"rank {origin} holds only a shared lock on window "
                f"{self.name!r}; puts require an exclusive lock"
            )
        raise LockViolation(
            f"rank {origin} accessed window {self.name!r} of rank "
            f"{self.owner} outside a lock epoch"
        )

    # -- one-sided operations ---------------------------------------------
    def get(self, origin: int, index=None) -> np.ndarray:
        """One-sided read (MPI_Get); returns a copy."""
        self._check_access(origin, write=False)
        if index is None:
            return self._array.copy()
        return np.ascontiguousarray(self._array[index])

    def put(self, origin: int, data: np.ndarray, index=None) -> None:
        """One-sided write (MPI_Put); requires an exclusive lock."""
        self._check_access(origin, write=True)
        if index is None:
            self._array[...] = data
        else:
            self._array[index] = data

    @property
    def nbytes(self) -> int:
        return self._array.nbytes

    @property
    def shape(self) -> tuple:
        return self._array.shape
