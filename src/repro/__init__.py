"""repro -- reproduction of "A GPU-Accelerated Barycentric Lagrange Treecode".

Reference: Nathan Vaughn, Leighton Wilson, Robert Krasny (2020),
arXiv:2003.01836.  See README.md for a tour and DESIGN.md for the system
inventory and the hardware-substitution rationale.

Quickstart
----------
>>> import repro
>>> particles = repro.random_cube(20_000, seed=0)
>>> tc = repro.BarycentricTreecode(
...     repro.CoulombKernel(),
...     repro.TreecodeParams(theta=0.7, degree=6, max_leaf_size=500,
...                          max_batch_size=500),
... )
>>> result = tc.compute(particles)
>>> result.potential.shape
(20000,)
"""

from .config import DEFAULT_PARAMS, TreecodeParams
from .workloads import (
    ParticleSet,
    charge_waveform,
    gaussian_clusters,
    plummer_sphere,
    random_cube,
    sphere_surface,
)
from .kernels import (
    CoulombKernel,
    GaussianKernel,
    InverseMultiquadricKernel,
    Kernel,
    RadialKernel,
    ThinPlateKernel,
    YukawaKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)
from .core import (
    Backend,
    BarycentricTreecode,
    ExecutionPlan,
    PreparedTreecode,
    BatchedBackend,
    FusedBackend,
    ModelBackend,
    MultiprocessingBackend,
    NumbaBackend,
    NumpyBackend,
    TreecodeResult,
    available_backends,
    compile_plan,
    direct_sum,
    direct_sum_at,
    get_backend,
    register_backend,
)
from .distributed import (
    DistributedBLTC,
    DistributedResult,
    PreparedDistributedBLTC,
)
from .partition import rcb_partition
from .perf import (
    CPU_XEON_X5650,
    GPU_P100,
    GPU_TITAN_V,
    CommModel,
    INFINIBAND_COMET,
    MachineSpec,
    PhaseTimes,
)
from .analysis import relative_l2_error, sampled_error
from .extensions import ClusterParticleTreecode, DualTreeTreecode

__version__ = "1.0.0"

__all__ = [
    "TreecodeParams",
    "DEFAULT_PARAMS",
    "ParticleSet",
    "random_cube",
    "plummer_sphere",
    "gaussian_clusters",
    "sphere_surface",
    "charge_waveform",
    "Kernel",
    "RadialKernel",
    "CoulombKernel",
    "YukawaKernel",
    "GaussianKernel",
    "InverseMultiquadricKernel",
    "ThinPlateKernel",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "BarycentricTreecode",
    "PreparedTreecode",
    "TreecodeResult",
    "ExecutionPlan",
    "compile_plan",
    "Backend",
    "NumpyBackend",
    "BatchedBackend",
    "FusedBackend",
    "MultiprocessingBackend",
    "NumbaBackend",
    "ModelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "DistributedBLTC",
    "PreparedDistributedBLTC",
    "DistributedResult",
    "direct_sum",
    "direct_sum_at",
    "rcb_partition",
    "MachineSpec",
    "GPU_TITAN_V",
    "GPU_P100",
    "CPU_XEON_X5650",
    "CommModel",
    "INFINIBAND_COMET",
    "PhaseTimes",
    "relative_l2_error",
    "sampled_error",
    "ClusterParticleTreecode",
    "DualTreeTreecode",
    "__version__",
]
