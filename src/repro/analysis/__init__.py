"""Error metrics and report formatting for the reproduction harness."""

from .errors import relative_l2_error, sampled_error
from .report import format_table

__all__ = ["relative_l2_error", "sampled_error", "format_table"]
