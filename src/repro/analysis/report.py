"""Fixed-width table formatting for benchmark harness output.

The benchmark harnesses print the same rows/series the paper's figures
plot; this module renders them readably without external dependencies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_value"]


def format_value(v) -> str:
    """Render one cell: compact scientific notation for floats."""
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v == 0.0:
            return "0"
        a = abs(v)
        if 1e-3 <= a < 1e5:
            return f"{v:.4g}"
        return f"{v:.3e}"
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned fixed-width text table."""
    str_rows = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
