"""Error metrics, paper eq. 16.

The paper reports the relative 2-norm error between direct-summation and
treecode potentials,

    E = ( sum_i (phi_ds_i - phi_tc_i)^2 / sum_i (phi_ds_i)^2 )^(1/2),

sampled at a random subset of targets for systems with >= 8M particles.
"""

from __future__ import annotations

import numpy as np

from ..core.direct import direct_sum_at
from ..kernels.base import Kernel
from ..util import default_rng

__all__ = ["relative_l2_error", "sampled_error"]


def relative_l2_error(reference: np.ndarray, computed: np.ndarray) -> float:
    """Relative 2-norm error of ``computed`` against ``reference`` (eq. 16)."""
    reference = np.asarray(reference, dtype=np.float64).ravel()
    computed = np.asarray(computed, dtype=np.float64).ravel()
    if reference.shape != computed.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {computed.shape}"
        )
    denom = float(np.linalg.norm(reference))
    if denom == 0.0:
        return float(np.linalg.norm(computed - reference))
    return float(np.linalg.norm(computed - reference) / denom)


def sampled_error(
    potential: np.ndarray,
    targets: np.ndarray,
    sources: np.ndarray,
    charges: np.ndarray,
    kernel: Kernel,
    *,
    n_samples: int = 1000,
    seed=0,
) -> float:
    """Relative 2-norm error at a random sample of targets.

    Computes the direct-summation reference only at ``n_samples`` targets
    (the paper's strategy for large systems) and compares against the
    supplied treecode ``potential`` at the same indices.
    """
    potential = np.asarray(potential, dtype=np.float64).ravel()
    targets = np.atleast_2d(targets)
    m = targets.shape[0]
    if potential.shape[0] != m:
        raise ValueError(
            f"potential has {potential.shape[0]} entries for {m} targets"
        )
    if n_samples >= m:
        idx = np.arange(m, dtype=np.intp)
    else:
        idx = default_rng(seed).choice(m, size=n_samples, replace=False)
    ref = direct_sum_at(idx, targets, sources, charges, kernel)
    return relative_l2_error(ref, potential[idx])
