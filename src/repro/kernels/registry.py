"""Name-based kernel registry.

Lets examples and benchmark harnesses select kernels from the command line
(``--kernel yukawa``) and lets downstream users register their own kernels,
which is the point of a kernel-independent method.
"""

from __future__ import annotations

from typing import Callable

from .base import Kernel
from .coulomb import CoulombKernel
from .extra import GaussianKernel, InverseMultiquadricKernel, ThinPlateKernel
from .yukawa import YukawaKernel

__all__ = ["register_kernel", "get_kernel", "available_kernels"]

_REGISTRY: dict[str, Callable[..., Kernel]] = {}


def register_kernel(name: str, factory: Callable[..., Kernel]) -> None:
    """Register a kernel factory under ``name`` (case-insensitive).

    ``factory`` is called with the keyword arguments passed to
    :func:`get_kernel`.  Re-registering an existing name replaces it.
    """
    if not name:
        raise ValueError("kernel name must be non-empty")
    _REGISTRY[name.lower()] = factory


def get_kernel(name: str, **kwargs) -> Kernel:
    """Instantiate a registered kernel by name."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_kernels() -> list[str]:
    """Sorted list of registered kernel names."""
    return sorted(_REGISTRY)


register_kernel("coulomb", CoulombKernel)
register_kernel("yukawa", YukawaKernel)
register_kernel("gaussian", GaussianKernel)
register_kernel("inverse-multiquadric", InverseMultiquadricKernel)
register_kernel("thin-plate", ThinPlateKernel)
