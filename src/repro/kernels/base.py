"""Kernel interface for the kernel-independent treecode.

A kernel provides

* :meth:`Kernel.pairwise` -- the dense matrix ``G(x_i, y_j)`` for a block of
  targets and sources.  This is the single primitive the BLTC needs: the
  batch-cluster *direct sum* kernel evaluates it on source particles, the
  batch-cluster *approximation* kernel evaluates it on Chebyshev points
  (the two have the same direct-sum form; paper eq. 9 vs eq. 11).
* :meth:`Kernel.potential` -- blocked matrix-free accumulation
  ``phi_i = sum_j G(x_i, y_j) q_j`` used by the direct-summation baseline.
* cost metadata (``flops_per_interaction``, ``transcendental_weight``)
  consumed by the performance model so CPU/GPU timings can be derived from
  exact interaction counts.

Self-interactions: when a target coincides with a source (``r == 0``,
singular kernels) the contribution is defined as zero, matching the
standard treecode convention for point-charge sums where the ``i == j``
term is excluded.
"""

from __future__ import annotations

import abc

import numpy as np

from ..util import chunk_ranges

__all__ = ["Kernel", "RadialKernel"]

#: Default cap on the number of matrix elements materialised at once by
#: :meth:`Kernel.potential`; keeps peak memory of the blocked direct sum
#: around ~150 MB of float64.
DEFAULT_BLOCK_ELEMENTS = 4_000_000


class Kernel(abc.ABC):
    """Abstract interaction kernel ``G(x, y)``.

    Subclasses must define :meth:`pairwise` and the cost metadata class
    attributes.  Kernels must be smooth and non-oscillatory for ``x != y``
    (the regime where polynomial interpolation converges; paper Sec. 2).
    """

    #: Short identifier used by the registry and in reports.
    name: str = "abstract"
    #: Approximate floating-point operations per kernel evaluation
    #: (distance computation included); drives the performance model.
    flops_per_interaction: int = 20
    #: Fraction in [0, 1] expressing how much of the evaluation is
    #: transcendental work (exp, log, ...).  Devices apply their own
    #: penalty to this fraction: the paper observes Yukawa costs ~1.8x
    #: Coulomb on the CPU but only ~1.5x on the GPU (Sec. 4).
    transcendental_weight: float = 0.0
    #: True when G diverges as x -> y (Coulomb/Yukawa); singular kernels
    #: have their self-interaction zeroed.
    singular_at_origin: bool = True
    #: True when the kernel provides :meth:`pairwise_fused` /
    #: :meth:`pairwise_gradient_fused` -- the temporary-free r^2
    #: accumulation used by the fused evaluation path.  The reference
    #: (byte-stable) :meth:`pairwise` is never affected.
    supports_fused_pairwise: bool = False
    #: True when the kernel provides :meth:`pairwise_batched` /
    #: :meth:`pairwise_gradient_batched` -- stacked evaluation over
    #: ``(G, m, 3)`` target x ``(G, k, 3)`` source blocks, used by the
    #: batched (shape-bucketed) backend.  Backends fall back to the
    #: per-group fused path for kernels without it.
    supports_batched_pairwise: bool = False

    @abc.abstractmethod
    def pairwise(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        """Return the ``(M, K)`` matrix ``G(targets[i], sources[j])``.

        Coincident target/source pairs contribute zero for singular
        kernels.  ``targets`` is ``(M, 3)`` and ``sources`` is ``(K, 3)``.
        """

    def pairwise_fused(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """Temporary-free variant of :meth:`pairwise` (fused path only).

        Same contract as :meth:`pairwise`; implementations may reorder
        the distance arithmetic to avoid intermediate matrices, so
        values agree with the reference to floating-point roundoff
        rather than bitwise.  Only kernels advertising
        ``supports_fused_pairwise`` implement it; everything else keeps
        the reference primitive on every path.
        """
        raise NotImplementedError(
            f"kernel {self.name!r} has no fused pairwise primitive"
        )

    def pairwise_gradient_fused(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """Fused-path variant of :meth:`pairwise_gradient`."""
        raise NotImplementedError(
            f"kernel {self.name!r} has no fused pairwise primitive"
        )

    def pairwise_batched(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """Stacked :meth:`pairwise`: ``(G, m, 3) x (G, k, 3) -> (G, m, k)``.

        Entry ``b`` of the result is the kernel matrix of target block
        ``targets[b]`` against source block ``sources[b]``; the whole
        stack evaluates in a handful of array passes (batched GEMMs)
        instead of ``G`` Python-level kernel calls.  Values agree with
        the per-block reference to floating-point roundoff (fused-path
        arithmetic).  Only kernels advertising
        ``supports_batched_pairwise`` implement it.
        """
        raise NotImplementedError(
            f"kernel {self.name!r} has no batched pairwise primitive"
        )

    def pairwise_gradient_batched(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """Stacked :meth:`pairwise_gradient`: returns ``(G, m, k, 3)``."""
        raise NotImplementedError(
            f"kernel {self.name!r} has no batched pairwise primitive"
        )

    def force_batched(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray:
        """Stacked force blocks ``F[b,i] = -sum_j grad G(t_bi, s_bj) w_bj``.

        The generic form contracts the full ``(G, m, k, 3)`` gradient
        stack; subclasses with structure (radial kernels) override it
        with a contraction that never materializes the gradient.

        Multi-RHS: when ``weights`` carries a trailing RHS axis
        (``weights.ndim == targets.ndim``, i.e. ``(..., k, n_rhs)``) the
        gradient stack is built once and contracted per column with the
        identical single-vector einsum, returning ``(..., m, 3, n_rhs)``
        whose column ``j`` is bitwise the single-vector result on
        ``weights[..., j]``.
        """
        grad = self.pairwise_gradient_batched(targets, sources)
        if weights.ndim == np.ndim(targets):
            return np.stack(
                [
                    -np.einsum(
                        "...mkd,...k->...md",
                        grad,
                        np.ascontiguousarray(weights[..., r]),
                    )
                    for r in range(weights.shape[-1])
                ],
                axis=-1,
            )
        return -np.einsum("...mkd,...k->...md", grad, weights)

    def potential(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        charges: np.ndarray,
        *,
        block_elements: int = DEFAULT_BLOCK_ELEMENTS,
        out: np.ndarray | None = None,
        fused: bool = False,
    ) -> np.ndarray:
        """Accumulate ``phi_i = sum_j G(x_i, y_j) q_j`` blockwise.

        The matrix is never materialised beyond ``block_elements`` entries,
        so arbitrarily large target/source sets can be processed.
        ``fused=True`` evaluates each block through
        :meth:`pairwise_fused` when the kernel provides it (roundoff-
        level differences, fewer elementwise passes); the default keeps
        the byte-stable reference arithmetic.

        Multi-RHS: a ``(K, n_rhs)`` charge matrix yields ``(M, n_rhs)``
        potentials.  The kernel matrix -- the expensive part -- is built
        once per block and re-contracted against every column with the
        exact single-vector GEMV on a contiguous column copy, so column
        ``j`` of the result is bitwise what a single-vector call on
        ``charges[:, j]`` produces.  Block boundaries never depend on
        ``n_rhs`` (they feed the coincidence noise floor).
        """
        targets = np.atleast_2d(targets)
        sources = np.atleast_2d(sources)
        charges = np.asarray(charges)
        m = targets.shape[0]
        k = sources.shape[0]
        multi = charges.ndim == 2
        if out is None:
            # Promote over all three operands: the pairwise block has
            # dtype result_type(targets, sources), so leaving sources
            # out would silently downcast float64 blocks on the +=.
            shape = (m, charges.shape[1]) if multi else m
            out = np.zeros(shape, dtype=np.result_type(targets, sources, charges))
        if k == 0 or m == 0:
            return out
        pairwise = (
            self.pairwise_fused
            if fused and self.supports_fused_pairwise
            else self.pairwise
        )
        rows_per_block = max(1, block_elements // max(k, 1))
        if not multi:
            for lo, hi in chunk_ranges(m, rows_per_block):
                out[lo:hi] += pairwise(targets[lo:hi], sources) @ charges
            return out
        cols = [
            np.ascontiguousarray(charges[:, r]) for r in range(charges.shape[1])
        ]
        for lo, hi in chunk_ranges(m, rows_per_block):
            mat = pairwise(targets[lo:hi], sources)
            for r, col in enumerate(cols):
                out[lo:hi, r] += mat @ col
        return out

    def pairwise_gradient(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """Return the ``(M, K, 3)`` gradient ``grad_x G(x_i, y_j)``.

        Needed for force evaluation (the paper's opening motivation:
        "computing electrostatic or gravitational potentials and
        *forces*").  Optional: kernels without an analytic gradient raise
        ``NotImplementedError``; the treecode force path then refuses
        cleanly.
        """
        raise NotImplementedError(
            f"kernel {self.name!r} does not implement gradients"
        )

    def force(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        charges: np.ndarray,
        *,
        block_elements: int = DEFAULT_BLOCK_ELEMENTS,
        out: np.ndarray | None = None,
        fused: bool = False,
    ) -> np.ndarray:
        """Accumulate ``F_i = -sum_j grad_x G(x_i, y_j) q_j`` blockwise.

        The negative gradient of the potential -- the force per unit
        target charge/mass.  ``fused=True`` routes each block through
        :meth:`pairwise_gradient_fused` when available, as in
        :meth:`potential`.

        Multi-RHS: a ``(K, n_rhs)`` charge matrix yields ``(M, 3, n_rhs)``
        forces, hoisting the gradient block once and contracting per
        column exactly as :meth:`potential` does.
        """
        targets = np.atleast_2d(targets)
        sources = np.atleast_2d(sources)
        charges = np.asarray(charges)
        m = targets.shape[0]
        k = sources.shape[0]
        multi = charges.ndim == 2
        if out is None:
            # Same three-operand promotion as potential(): the gradient
            # block carries result_type(targets, sources).
            shape = (m, 3, charges.shape[1]) if multi else (m, 3)
            out = np.zeros(shape, dtype=np.result_type(targets, sources, charges))
        if k == 0 or m == 0:
            return out
        gradient = (
            self.pairwise_gradient_fused
            if fused and self.supports_fused_pairwise
            else self.pairwise_gradient
        )
        rows_per_block = max(1, block_elements // max(3 * k, 1))
        if not multi:
            for lo, hi in chunk_ranges(m, rows_per_block):
                grad = gradient(targets[lo:hi], sources)
                out[lo:hi] -= np.einsum("mkd,k->md", grad, charges)
            return out
        cols = [
            np.ascontiguousarray(charges[:, r]) for r in range(charges.shape[1])
        ]
        for lo, hi in chunk_ranges(m, rows_per_block):
            grad = gradient(targets[lo:hi], sources)
            for r, col in enumerate(cols):
                out[lo:hi, :, r] -= np.einsum("mkd,k->md", grad, col)
        return out

    def scalar_functions(self):
        """Scalar ``(eval_r, eval_dr_over_r_or_None)`` for JIT backends.

        Both are plain Python functions of one positive scalar distance
        (any parameters baked in as closure constants), restricted to
        arithmetic and NumPy scalar math so ``numba.njit`` can compile
        and inline them into the per-group accumulation loop.  The
        second entry is None for kernels without an analytic gradient.
        Kernels that cannot provide jittable scalars raise
        ``NotImplementedError``; the numba backend then refuses cleanly.
        """
        raise NotImplementedError(
            f"kernel {self.name!r} does not provide scalar functions"
        )

    def cost_multiplier(self, transcendental_penalty: float) -> float:
        """Per-device cost factor relative to a pure-arithmetic kernel.

        ``transcendental_penalty`` is a device property (how expensive
        transcendental ops are relative to FMA throughput); the returned
        multiplier scales the device's base interaction time.
        """
        return 1.0 + self.transcendental_weight * transcendental_penalty

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class RadialKernel(Kernel):
    """Base class for radial kernels ``G(x, y) = g(|x - y|)``.

    Subclasses implement :meth:`evaluate_r` on strictly positive distances;
    this class handles pairwise distance computation and the ``r == 0``
    (self-interaction / removable) entries.
    """

    supports_fused_pairwise = True
    supports_batched_pairwise = True

    @abc.abstractmethod
    def evaluate_r(self, r: np.ndarray) -> np.ndarray:
        """Evaluate ``g(r)`` elementwise for ``r > 0``."""

    def evaluate_dr_over_r(self, r: np.ndarray) -> np.ndarray:
        """Evaluate ``g'(r) / r`` elementwise for ``r > 0``.

        The radial gradient factor: ``grad_x g(|x-y|) =
        (g'(r)/r) (x - y)``.  Optional; required for force evaluation.
        """
        raise NotImplementedError(
            f"kernel {self.name!r} does not implement evaluate_dr_over_r"
        )

    def evaluate_r0(self) -> float:
        """Value assigned at ``r == 0``.

        Zero for singular kernels (self-interaction excluded); smooth
        kernels override :attr:`singular_at_origin` and this method.
        """
        return 0.0

    def pairwise(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        targets = np.atleast_2d(targets)
        sources = np.atleast_2d(sources)
        # Squared distances via the expanded form
        #     r^2 = |t|^2 + |s|^2 - 2 t.s
        # whose inner product maps to a BLAS GEMM -- an order of magnitude
        # faster than materialising the (M, K, 3) difference tensor.  This
        # mirrors what the paper's GPU kernel does with fused multiply-adds.
        #
        # The expansion can suffer catastrophic cancellation for extremely
        # close pairs: the absolute error in r^2 is O(eps * (|t|^2+|s|^2)).
        # Pairs below the noise floor are treated as coincident (the
        # self-interaction convention); this is also what guarantees the
        # exact-zero case lands in the coincident branch regardless of
        # BLAS summation order.  Both the treecode's direct-sum kernel and
        # the direct-summation reference evaluate pairs through this same
        # function, so the paper's error metric (eq. 16) compares
        # identical arithmetic.
        #
        # Coincident entries are patched sparsely (they are at most one
        # per row) rather than via full-matrix np.where passes, and the
        # square root runs in place on the owned r2 buffer -- bitwise the
        # same values, several fewer O(M K) passes.
        r2, zero_idx = self._pairwise_r2(targets, sources)
        return self._finish_pairwise(r2, zero_idx)

    def pairwise_fused(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """:meth:`pairwise` on the temporary-free r^2 accumulation.

        One (M, K) buffer total: the GEMM output is accumulated into in
        place (the -2 factor is folded into the (K, 3) source block
        before the product).  Values differ from the reference only by
        the summation order of the three r^2 terms -- roundoff at the
        noise-floor scale -- and the coincidence classification uses the
        identical floor, so self-interactions resolve the same way.
        """
        targets = np.atleast_2d(targets)
        sources = np.atleast_2d(sources)
        r2, zero_idx = self._pairwise_r2_fused(targets, sources)
        return self._finish_pairwise(r2, zero_idx)

    def _finish_pairwise(self, r2, zero_idx) -> np.ndarray:
        """sqrt + kernel + sparse coincidence patch on an owned r2."""
        if zero_idx[0].size:
            r2[zero_idx] = 1.0
        np.sqrt(r2, out=r2)
        g = self.evaluate_r(r2)
        if zero_idx[0].size:
            g[zero_idx] = self.evaluate_r0()
        return g

    def _pairwise_r2(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        """Squared distances and the coincident-entry indices (shared)."""
        t2 = np.einsum("md,md->m", targets, targets)
        s2 = np.einsum("kd,kd->k", sources, sources)
        r2 = t2[:, None] + s2[None, :]
        r2 -= 2.0 * (targets @ sources.T)
        scale = float(t2.max(initial=0.0) + s2.max(initial=0.0))
        noise_floor = 16.0 * np.finfo(r2.dtype).eps * max(scale, 1e-300)
        return r2, np.nonzero(r2 <= noise_floor)

    def _pairwise_r2_fused(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        """:meth:`_pairwise_r2` without the O(M K) temporaries.

        The reference allocates three (M, K) arrays (broadcast sum, GEMM
        output, scaled GEMM); here the GEMM result *is* the r2 buffer --
        ``targets @ (-2 sources)^T`` -- and the squared norms are added
        in place, so exactly one (M, K) array is ever live and only two
        elementwise passes follow the GEMM.  Same noise-floor
        coincidence rule on the same scale.

        Written over leading batch dimensions (``...`` below), so the
        same arithmetic serves the 2-D fused path (bitwise-unchanged:
        the einsum subscripts and the matmul degenerate to exactly the
        old expressions) and the stacked ``(G, m, 3) x (G, k, 3)``
        batched path, whose noise floor then derives from the whole
        stack's coordinate scale (every block shares one floor).
        """
        t2 = np.einsum("...md,...md->...m", targets, targets)
        s2 = np.einsum("...kd,...kd->...k", sources, sources)
        r2 = targets @ (sources * -2.0).swapaxes(-1, -2)
        r2 += t2[..., :, None]
        r2 += s2[..., None, :]
        scale = float(t2.max(initial=0.0) + s2.max(initial=0.0))
        noise_floor = 16.0 * np.finfo(r2.dtype).eps * max(scale, 1e-300)
        if r2.ndim >= 3 and float(r2.min(initial=np.inf)) > noise_floor:
            # Far-field stacked (batched) chunks have no pair at the
            # coincidence floor: one min-reduce then replaces the bool
            # materialization + index scan with an identical outcome
            # (nonzero would have found nothing).  Near-field (direct)
            # stacked chunks -- self-target groups, coincident
            # zero-weight pad rows -- fail the min test and take the
            # full scan below, exactly like the 2-D fused path, whose
            # groups routinely contain their own targets.
            empty = np.empty(0, dtype=np.intp)
            return r2, (empty,) * r2.ndim
        return r2, np.nonzero(r2 <= noise_floor)

    def pairwise_batched(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """Stacked kernel matrices on the fused r^2 accumulation.

        ``targets`` is ``(G, m, 3)``, ``sources`` ``(G, k, 3)``; the
        cross term is one batched GEMM, the squared norms accumulate in
        place, and the sqrt/kernel/coincidence passes run over the whole
        ``(G, m, k)`` stack at once.
        """
        r2, zero_idx = self._pairwise_r2_fused(targets, sources)
        return self._finish_pairwise(r2, zero_idx)

    def pairwise_gradient_batched(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """Stacked ``(G, m, k, 3)`` gradients on the fused accumulation."""
        r2, zero_idx = self._pairwise_r2_fused(targets, sources)
        return self._finish_gradient(targets, sources, r2, zero_idx)

    def force_batched(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray:
        """Factored radial force: no ``(G, m, k, 3)`` gradient tensor.

        With ``grad G = f(r) (x - y)`` the weighted contraction splits as

            F_i = -sum_j f_ij w_j (t_i - s_j)
                = (f w) S  -  t_i * sum_j f_ij w_j,

        i.e. one elementwise product, one row-sum and one batched GEMM
        against the source coordinates -- O(G m k) memory instead of
        O(3 G m k) and BLAS throughput on the big contraction.  Values
        agree with the generic gradient contraction to roundoff (the
        sum over sources is reassociated); coincident pairs contribute
        exactly zero through the same noise-floor classification.

        Multi-RHS (``weights`` shaped ``(..., k, n_rhs)``): the radial
        factor -- sqrt, kernel derivative, coincidence patch -- is the
        expensive shared piece and is computed once; every column then
        repeats the exact single-vector contraction on it, so each
        output column of the ``(..., m, 3, n_rhs)`` stack is bitwise the
        single-vector result for that column.
        """
        r2, zero_idx = self._pairwise_r2_fused(targets, sources)
        if zero_idx[0].size:
            r2[zero_idx] = 1.0
        np.sqrt(r2, out=r2)
        factor = self.evaluate_dr_over_r(r2)
        if zero_idx[0].size:
            factor[zero_idx] = 0.0
        if weights.ndim == np.ndim(targets):
            outs = []
            for r in range(weights.shape[-1]):
                fw = factor * weights[..., r][..., None, :]
                row_sum = fw.sum(axis=-1)
                outs.append(fw @ sources - targets * row_sum[..., None])
            return np.stack(outs, axis=-1)
        factor *= weights[..., None, :]
        row_sum = factor.sum(axis=-1)
        return factor @ sources - targets * row_sum[..., None]

    def pairwise_gradient(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """Gradient ``grad_x G = (g'(r)/r) (x - y)``; zero at coincidence.

        Coincident pairs contribute zero force: for singular kernels the
        self-term is excluded, and for smooth radial kernels the gradient
        vanishes at the origin by symmetry.
        """
        targets = np.atleast_2d(targets)
        sources = np.atleast_2d(sources)
        r2, zero_idx = self._pairwise_r2(targets, sources)
        return self._finish_gradient(targets, sources, r2, zero_idx)

    def pairwise_gradient_fused(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """:meth:`pairwise_gradient` on the fused r^2 accumulation."""
        targets = np.atleast_2d(targets)
        sources = np.atleast_2d(sources)
        r2, zero_idx = self._pairwise_r2_fused(targets, sources)
        return self._finish_gradient(targets, sources, r2, zero_idx)

    def _finish_gradient(self, targets, sources, r2, zero_idx) -> np.ndarray:
        # Ellipsis indexing serves both the 2-D blocks ((M,1,3)-(1,K,3),
        # exactly the old broadcast) and the stacked batched blocks.
        if zero_idx[0].size:
            r2[zero_idx] = 1.0
        np.sqrt(r2, out=r2)
        factor = self.evaluate_dr_over_r(r2)
        if zero_idx[0].size:
            factor[zero_idx] = 0.0
        diff = targets[..., :, None, :] - sources[..., None, :, :]
        return factor[..., None] * diff
