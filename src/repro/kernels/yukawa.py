"""Yukawa (screened Coulomb) kernel ``G(x, y) = exp(-kappa |x-y|) / |x-y|``.

Paper eq. 2 (right); ``kappa`` is the inverse Debye length.  The paper's
numerical results use ``kappa = 0.5``.
"""

from __future__ import annotations

import numpy as np

from .base import RadialKernel

__all__ = ["YukawaKernel"]


class YukawaKernel(RadialKernel):
    """Screened Coulomb kernel ``exp(-kappa r) / r``."""

    name = "yukawa"
    flops_per_interaction = 24
    #: The exponential dominates the extra cost; with the device
    #: transcendental penalties in :mod:`repro.perf.machine` this yields
    #: the paper's observed ~1.8x (CPU) and ~1.5x (GPU) slowdown relative
    #: to Coulomb (Sec. 4, Fig. 4 discussion).
    transcendental_weight = 1.0
    singular_at_origin = True

    def __init__(self, kappa: float = 0.5) -> None:
        if kappa < 0.0:
            raise ValueError(f"kappa must be non-negative, got {kappa}")
        self.kappa = float(kappa)

    def evaluate_r(self, r: np.ndarray) -> np.ndarray:
        return np.exp(-self.kappa * r) / r

    def evaluate_dr_over_r(self, r: np.ndarray) -> np.ndarray:
        # d/dr (e^{-kr}/r) = -e^{-kr} (k r + 1) / r^2, divided by r.
        return -np.exp(-self.kappa * r) * (self.kappa * r + 1.0) / (r**3)

    def scalar_functions(self):
        kappa = self.kappa

        def eval_r(r):
            return np.exp(-kappa * r) / r

        def eval_dr_over_r(r):
            return -np.exp(-kappa * r) * (kappa * r + 1.0) / (r * r * r)

        return eval_r, eval_dr_over_r

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"YukawaKernel(kappa={self.kappa})"
