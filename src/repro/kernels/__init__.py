"""Interaction kernels ``G(x, y)`` for the kernel-independent treecode.

The BLTC requires only *kernel evaluations* -- no analytic multipole
expansions -- so any smooth, non-oscillatory kernel plugs in through the
:class:`~repro.kernels.base.Kernel` interface.  The paper evaluates the
Coulomb and Yukawa potentials (eq. 2); additional smooth kernels are
provided to demonstrate kernel independence.
"""

from .base import Kernel, RadialKernel
from .coulomb import CoulombKernel
from .yukawa import YukawaKernel
from .extra import GaussianKernel, InverseMultiquadricKernel, ThinPlateKernel
from .registry import available_kernels, get_kernel, register_kernel

__all__ = [
    "Kernel",
    "RadialKernel",
    "CoulombKernel",
    "YukawaKernel",
    "GaussianKernel",
    "InverseMultiquadricKernel",
    "ThinPlateKernel",
    "available_kernels",
    "get_kernel",
    "register_kernel",
]
