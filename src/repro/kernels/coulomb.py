"""Coulomb kernel ``G(x, y) = 1 / |x - y|`` (paper eq. 2, left)."""

from __future__ import annotations

import numpy as np

from .base import RadialKernel

__all__ = ["CoulombKernel"]


class CoulombKernel(RadialKernel):
    """Electrostatic / gravitational monopole kernel ``1 / r``.

    The same kernel describes gravitational point masses; only the sign
    convention of the potential differs (handled by the caller's charges).
    """

    name = "coulomb"
    #: 3 subs + 3 mults + 2 adds (distance^2), sqrt (~4), reciprocal (~4),
    #: multiply-accumulate with the charge (2) -- about 18 flops; rounded
    #: to 20 to include address arithmetic, matching the paper-scale
    #: throughput calibration in :mod:`repro.perf.machine`.
    flops_per_interaction = 20
    transcendental_weight = 0.0
    singular_at_origin = True

    def evaluate_r(self, r: np.ndarray) -> np.ndarray:
        return 1.0 / r

    def evaluate_dr_over_r(self, r: np.ndarray) -> np.ndarray:
        # d/dr (1/r) = -1/r^2, divided by r.
        return -1.0 / (r * r * r)

    def scalar_functions(self):
        def eval_r(r):
            return 1.0 / r

        def eval_dr_over_r(r):
            return -1.0 / (r * r * r)

        return eval_r, eval_dr_over_r
