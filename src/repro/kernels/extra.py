"""Additional smooth kernels demonstrating kernel independence.

The BLTC "can be any non-oscillatory kernel that is smooth for x != y"
(paper Sec. 2).  These kernels exercise that claim:

* :class:`InverseMultiquadricKernel` -- ``1 / sqrt(r^2 + c^2)``, smooth
  everywhere (RBF interpolation; cf. the treecode of Deng & Driscoll that
  the paper cites as ref. [31]).
* :class:`GaussianKernel` -- ``exp(-r^2 / (2 sigma^2))``, smooth everywhere.
* :class:`ThinPlateKernel` -- ``r^2 log r``, smooth away from the origin.
"""

from __future__ import annotations

import numpy as np

from .base import RadialKernel

__all__ = ["InverseMultiquadricKernel", "GaussianKernel", "ThinPlateKernel"]


class InverseMultiquadricKernel(RadialKernel):
    """Inverse multiquadric RBF kernel ``1 / sqrt(r^2 + c^2)``."""

    name = "inverse-multiquadric"
    flops_per_interaction = 22
    transcendental_weight = 0.0
    singular_at_origin = False

    def __init__(self, c: float = 0.1) -> None:
        if c <= 0.0:
            raise ValueError(f"shape parameter c must be positive, got {c}")
        self.c = float(c)

    def evaluate_r(self, r: np.ndarray) -> np.ndarray:
        return 1.0 / np.sqrt(r * r + self.c * self.c)

    def evaluate_dr_over_r(self, r: np.ndarray) -> np.ndarray:
        return -((r * r + self.c * self.c) ** -1.5)

    def evaluate_r0(self) -> float:
        return 1.0 / self.c

    def scalar_functions(self):
        c2 = self.c * self.c

        def eval_r(r):
            return 1.0 / np.sqrt(r * r + c2)

        def eval_dr_over_r(r):
            return -((r * r + c2) ** -1.5)

        return eval_r, eval_dr_over_r


class GaussianKernel(RadialKernel):
    """Gaussian kernel ``exp(-r^2 / (2 sigma^2))``, smooth everywhere."""

    name = "gaussian"
    flops_per_interaction = 22
    transcendental_weight = 1.0
    singular_at_origin = False

    def __init__(self, sigma: float = 0.5) -> None:
        if sigma <= 0.0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.sigma = float(sigma)

    def evaluate_r(self, r: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * (r / self.sigma) ** 2)

    def evaluate_dr_over_r(self, r: np.ndarray) -> np.ndarray:
        return -self.evaluate_r(r) / (self.sigma * self.sigma)

    def evaluate_r0(self) -> float:
        return 1.0

    def scalar_functions(self):
        sigma = self.sigma
        inv_var = 1.0 / (sigma * sigma)

        def eval_r(r):
            return np.exp(-0.5 * (r / sigma) ** 2)

        def eval_dr_over_r(r):
            return -np.exp(-0.5 * (r / sigma) ** 2) * inv_var

        return eval_r, eval_dr_over_r


class ThinPlateKernel(RadialKernel):
    """Thin-plate spline kernel ``r^2 log r`` (zero at the origin)."""

    name = "thin-plate"
    flops_per_interaction = 26
    transcendental_weight = 1.0
    # r^2 log r -> 0 as r -> 0, so the origin value is a removable limit,
    # not a singularity; still treated through evaluate_r0.
    singular_at_origin = False

    def evaluate_r(self, r: np.ndarray) -> np.ndarray:
        return r * r * np.log(r)

    def evaluate_r0(self) -> float:
        return 0.0

    def scalar_functions(self):
        def eval_r(r):
            return r * r * np.log(r)

        # No analytic gradient implemented for the potential-only kernel.
        return eval_r, None
