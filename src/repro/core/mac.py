"""Multipole acceptance criterion (MAC), paper eq. 13.

A target batch B and source cluster C are approximated when both

    (r_B + r_C) / R < theta        (geometric accuracy condition)
    (n + 1)^3 < N_C                (cluster-size efficiency condition)

hold, where ``r_B``/``r_C`` are the batch/cluster radii, ``R`` the distance
between their centers, ``n`` the interpolation degree and ``N_C`` the
number of source particles in the cluster.  The size condition exists
because the approximation (eq. 11) has the same direct-sum form as the
exact interaction (eq. 9): when the cluster holds fewer particles than
interpolation points, the exact interaction is both faster *and* more
accurate.
"""

from __future__ import annotations

__all__ = ["mac_geometric", "mac_accepts"]


def mac_geometric(
    batch_radius: float,
    cluster_radius: float,
    distance: float,
    theta: float,
) -> bool:
    """First MAC condition: ``(r_B + r_C) / R < theta``.

    Overlapping or coincident boxes (``R`` not exceeding the summed radii
    can only pass for ``theta`` > 1, which params forbid); ``R == 0`` is
    handled without dividing.
    """
    if distance <= 0.0:
        return False
    return (batch_radius + cluster_radius) / distance < theta


def mac_accepts(
    batch_radius: float,
    cluster_radius: float,
    distance: float,
    theta: float,
    n_interp_points: int,
    cluster_count: int,
    *,
    size_check: bool = True,
) -> bool:
    """Full MAC: geometric condition plus the cluster-size condition.

    ``size_check=False`` disables the second condition (ablation of the
    design choice in eq. 13).
    """
    if not mac_geometric(batch_radius, cluster_radius, distance, theta):
        return False
    if size_check and not (n_interp_points < cluster_count):
        return False
    return True
