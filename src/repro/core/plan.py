"""Execution-plan compiler: interaction lists -> flat, backend-ready arrays.

The paper's GPU implementation separates *deciding* the work (tree
traversal, Sec. 2.4) from *doing* it (kernel launches, Sec. 3.2).  This
module is the analogous boundary in the reproduction: it compiles the
per-batch interaction lists into an :class:`ExecutionPlan` -- CSR-style
index arrays plus pre-gathered source buffers -- that the evaluation
backends (:mod:`repro.core.backends`) consume without ever touching the
tree, the moments dictionaries or per-batch python lists again.

Plan anatomy
------------
A plan is a set of *groups*, each owning a contiguous block of target
rows, and per group a run of *segments*, each one simulated kernel launch
against a contiguous block of source rows:

* ``group_ptr[g]:group_ptr[g+1]``     -- target rows of group ``g``;
* ``seg_group_ptr[g]:seg_group_ptr[g+1]`` -- segments of group ``g``;
* ``seg_ptr[s+1] - seg_ptr[s]``       -- source-row count of segment
  ``s`` (*logical* sizes; the physical rows live at
  :meth:`ExecutionPlan.segment_source_range` /
  :meth:`~ExecutionPlan.segment_points` through the per-segment
  ``seg_src_lo`` offsets -- never index ``src_points`` with ``seg_ptr``
  directly);
* ``seg_kind[s]``                     -- launch kind (index into
  ``kind_names``: "approx", "direct", "cluster-cluster", ...).

For the BLTC a group is a target batch and a segment is one
(batch, cluster) pair; the cluster-particle and dual-tree extensions
group by *target cluster* instead, with one segment per contributing
source block -- the same structure serves all three schemes.

Launch metadata (interaction count = group size x segment size, block
count = group size, kind) is fully determined by the index arrays, so
device-cost accounting derives from the plan alone; numerics are layered
on top by whichever backend runs it.  A plan compiled with
``numerics=False`` (model-only mode) carries the index arrays and sizes
but no floating-point buffers -- enough for the timing model at paper
scale without gathering a single coordinate.

``out_index`` maps each target row to a slot of the caller's output
vector (of length ``out_size``); compilers keep ``out_index`` injective
over all target rows, so backends accumulate with a plain fancy-indexed
``+=``.

Source-buffer layout
--------------------
A numerics plan stores its gathered source rows in the **shared**
(de-duplicated) layout, the only one: segments carrying the same
``share_key`` (e.g. the same cluster's Chebyshev grid) point into one
physical copy via the per-segment ``seg_src_lo`` offsets.  The buffers
hold O(distinct source rows) instead of O(total interaction rows) --
60-115x smaller on shared workloads -- and segments added without a
repeated key still occupy consecutive physical rows, so unshared plans
stay fully contiguous.  (The historical *duplicated* layout, which
materialized every segment's rows once per referencing segment and let
``seg_ptr`` double as the physical offset table, has been retired: it
cost strictly more memory for bitwise-identical results, since the
physical rows are exact copies of the same cluster arrays either way.)

``seg_ptr`` keeps its *logical* cumulative-size meaning (launch
metadata, interaction counts and device cost accounting never consult
the physical offsets); per-segment physical views come from
:meth:`ExecutionPlan.segment_points` / ``segment_weights`` -- never
index ``src_points`` with ``seg_ptr`` directly.  Paper-scale runs
(10^6+ particles) go through model-only plans, which carry no buffers
(and no ``seg_src_lo``) at all.

Geometry vs. weight state
-------------------------
Everything above except ``src_weights`` is *geometry*: it depends only on
the particle positions and the treecode parameters.  The weights (charges
and modified charges) are the only charge-dependent buffer, and a plan
whose stored segments carried ``share_key``s records ``weight_slots`` --
the ``(key, lo, hi)`` physical row range of every stored segment -- so
:meth:`ExecutionPlan.refresh_weights` can overwrite just that buffer in
place when the charges change (the prepare/apply session seam).  Each
refresh bumps ``weights_version``; backends that cache shipped copies of
the buffers (the multiprocessing backend's shared-memory block) use the
version to refresh only the weight region instead of re-shipping the
plan.  ``PlanBuilder(deferred_weights=True)`` compiles a geometry-only
skeleton up front: segments supply points but no weights, the weight
buffer is allocated zeroed, and the first ``refresh_weights`` call fills
it.

Multi-RHS weight slots: the weight buffer is ``(R,)`` for one charge
vector or ``(R, n_rhs)`` when the provider returns ``(rows, n_rhs)``
blocks -- each per-segment slot then holds ``n_rhs`` columns, column
``j`` being exactly what a single-vector refresh on charge column ``j``
would store.  Only the weight state (plus the batched buckets' gathered
``weights``) widens; geometry stays single-copy, so memory grows by
``n_rhs - 1`` extra weight buffers while one traversal's gather serves
every column.  :meth:`ExecutionPlan.refresh_weights` re-allocates on a
width change and rewrites in place otherwise, bumping
``weights_version`` either way.

Batched (shape-bucketed) execution layout
-----------------------------------------
The BLTC's far field is thousands of *identically shaped* small
interactions: every approximation segment of a degree-``p`` plan carries
exactly ``(p+1)^3`` source rows.  The near field is *almost* uniform --
per-cluster particle counts vary, so its runs are ragged -- but the same
stacked-GEMM execution applies once the gathered source rows are padded
to a common width with **zero weights**.  ``compile_plan(...,
batched=True)`` (or :meth:`ExecutionPlan.ensure_batched_layout`, which
any backend may call lazily) derives a :class:`BatchedLayout` covering
both from the index arrays:

* runs whose segments all share one size are classified by the
  signature ``(n_segments, rows_per_segment, kind)`` and collected into
  uniform :class:`BatchedBucket`\\ s, exactly as before;
* every remaining run -- ragged near-field runs, sub-minimum uniform
  leftovers, repeated same-signature runs of one group -- enters a
  per-kind *padded pool*.  Pool entries are sorted by ``(m, k)`` and
  greedily sliced into slabs: an entry joins the open slab while the
  combined stack waste ``1 - sum(m_i k_i) / (n m_max k_max)`` stays
  within :data:`BATCHED_MAX_SOURCE_PADDING_WASTE` (mirroring the 25%
  target-padding rule) and no group repeats inside the slab (the
  single fancy-indexed scatter must stay injective).  Each slab of at
  least :data:`BATCHED_MIN_GROUPS` entries becomes a *padded* bucket;
  smaller slabs fall back to the per-group ``ragged_runs`` list.

Per bucket the layout stores

* ``tgt_index`` -- a ``(G, m_max)`` target-row matrix, padded per entry
  by repeating the entry's first row (padded positions are excluded from
  the output scatter, so the duplicates are never accumulated);
* ``src_index`` -- a ``(G, k)`` physical source-row gather matrix.
  Padded buckets pad each entry's columns by repeating the entry's
  *first* physical source row: a real, finite coordinate whose kernel
  value is either finite (multiplied by weight zero -> contributes
  exactly ``0.0``) or coincident with a target and patched to zero by
  the kernels' noise-floor rule -- never a NaN;
* ``src_valid`` -- the ``(G, k)`` validity mask of those columns (None
  on uniform buckets, which carry no source padding);
* ``out_slots`` / ``scatter_pos`` -- the flattened valid positions and
  their output slots, so a whole bucket scatters with one fancy ``+=``;
* ``weights`` -- the ``(G, k)`` (or ``(G, k, n_rhs)``) pre-gathered
  weight matrix.  This is the one charge-dependent bucket array:
  :meth:`ExecutionPlan.refresh_weights` rewrites it in place right
  after the flat buffer, so prepared sessions keep working on batched
  plans.  Padded buckets zero-fill the matrix once at allocation (and
  again on any RHS width change) and rewrite only the valid positions
  per refresh, so pad columns stay exactly zero forever.

Memory/padding trade-off: buckets re-materialize their gathered rows as
dense stacks (undoing the shared-source de-duplication for the batched
portion) and pad targets up to ``m_max``.  When target padding alone
would waste more than :data:`BATCHED_MAX_PADDING_WASTE` of a uniform
bucket's rows it is split into equal-``m`` sub-buckets instead; the
padded pool bounds its combined (target + source) stack waste by the
slab rule above.  :meth:`BatchedLayout.coverage` reports the fraction
of plan row slots executed inside buckets (the default benchmark
regimes sit above 0.95), :meth:`BatchedLayout.padding_waste` the
fraction of stacked cells that is padding, and
:meth:`BatchedLayout.padding_nbytes` the bytes those pad slots (plus
masks and scatter maps) occupy -- surfaced per session through
``memory_stats()``.  Every ``(group, segment)`` pair lands in exactly
one bucket entry or ragged run, so the layout is a partition of the
plan's work; launch accounting never reads it.

Dynamic geometry and the group-patch invariants
-----------------------------------------------
``update_geometry`` sessions mutate a plan in place along two tiers,
both keyed by version counters (``geometry_version`` for float/output
content, ``structure_version`` for the index arrays) so caching
backends know exactly how stale their shipped copies are:

* :meth:`ExecutionPlan.refresh_geometry` -- the common drift step.  The
  *shapes* of all buffers are preserved; ``targets``, ``out_index`` and
  per-slot ``src_points`` rows are rewritten in place, the dtype cast
  cache and the batched buckets' gathered stacks are dropped, and each
  bucket's ``out_slots`` is re-gathered from the new output index.
  Bumps ``geometry_version`` only.
* :meth:`ExecutionPlan.patch_groups` -- the structural step, taken when
  some groups' segment lists or row counts changed.  The caller
  supplies new ``(out_index, [(kind, share_key), ...])`` descriptions
  for the dirty groups; clean groups' descriptions are read back from
  the existing plan through the ``weight_slots`` offset map.  The CSR
  arrays and buffers are rebuilt by replaying the compile: groups in
  order, segments in order, physical rows assigned at each key's
  *first use* -- which is exactly the order ``compile_plan`` assigns
  them, so the patched physical layout is bitwise what a cold compile
  over the new lists produces.  The float buffers (``targets``,
  ``src_points``, ``src_weights``) come back **zeroed**: a patch MUST
  be followed by :meth:`refresh_geometry` (and the next apply's
  ``refresh_weights`` fills the weights, as after a deferred compile).
  ``weight_slots`` is rebuilt, dropped keys disappear, the batched
  layout is rebuilt eagerly iff one was attached, and both version
  counters bump.  The plan *object* is preserved through both tiers:
  per-plan backend caches (SHM shipments, cost models) stay keyed to
  it and decide from the versions whether to rewrite regions or
  re-ship.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import TreecodeParams
    from ..tree.batches import TargetBatches
    from ..tree.octree import ClusterTree
    from .interaction_lists import InteractionLists
    from .moments import ClusterMoments

__all__ = [
    "BatchedBucket",
    "BatchedLayout",
    "ExecutionPlan",
    "PlanBuilder",
    "build_batched_layout",
    "compile_plan",
]

#: Maximum fraction of a bucket's padded target rows allowed to be
#: padding; above this the bucket splits into equal-``m`` sub-buckets.
BATCHED_MAX_PADDING_WASTE = 0.25

#: Buckets with fewer entries than this fall back to the ragged
#: per-group path -- a one-entry "batch" only adds gather overhead.
BATCHED_MIN_GROUPS = 2

#: Maximum fraction of a padded bucket's stacked ``(m_max, k_max)``
#: cells allowed to be padding (target pads and zero-weight source pads
#: combined); the greedy slab partition of the ragged pool closes a
#: bucket rather than exceed it.  Mirrors the 25% target-padding rule.
BATCHED_MAX_SOURCE_PADDING_WASTE = 0.25


@dataclass(frozen=True, eq=False)
class BatchedBucket:
    """One uniform-shape bucket of the batched execution layout.

    Uniform buckets hold entries sharing the segment signature
    ``(n_segments, rows_per_segment, kind)``; *padded* buckets (built
    from the ragged pool, ``src_valid is not None``) hold equal-kind
    runs of varying segment shapes whose gathered source rows are
    padded to a common ``k_max`` with zero-weight repeats of each
    entry's first source row.  Either way each entry is one group's
    equal-kind segment run, padded to ``m_max`` target rows.  The index
    matrices and the validity mask are geometry; ``weights`` is the
    single charge-dependent array and is rewritten in place by
    :meth:`ExecutionPlan.refresh_weights`.
    """

    #: Segment kind this bucket evaluates ("approx", "direct", ...).
    kind: str
    #: Segments per entry and rows per segment (the uniform-bucket
    #: signature; both 0 on padded buckets, whose entries mix shapes).
    n_segments: int
    rows_per_segment: int
    #: Padded target rows per entry.
    m_max: int
    #: (G,) plan group index of each entry (diagnostics/tests).
    groups: np.ndarray
    #: (G, m_max) target-row gather matrix; padding repeats the entry's
    #: first row (excluded from the scatter, so never accumulated).
    tgt_index: np.ndarray
    #: (G, k) physical source-row gather matrix (resolved through the
    #: per-segment ``seg_src_lo`` offsets).
    src_index: np.ndarray
    #: (V,) output slots of the valid rows, in row-major bucket order.
    out_slots: np.ndarray
    #: (V,) flat positions of the valid rows in the (G*m_max) result, or
    #: None when the bucket carries no padding (every row is valid).
    scatter_pos: np.ndarray | None
    #: (G, k) pre-gathered float64 weights (charge-dependent).
    weights: np.ndarray
    #: (G, k) bool mask of the valid source columns, or None when the
    #: bucket carries no source padding (uniform-signature buckets).
    #: Pad columns repeat the entry's first source row and hold weight
    #: exactly 0.0 forever.
    src_valid: np.ndarray | None = None
    #: dtype-keyed cache of the gathered (targets, sources) stacks.
    _stacks: dict = field(default_factory=dict, repr=False)
    #: cached flat source rows of the valid positions (padded buckets).
    _valid_rows: np.ndarray | None = field(default=None, repr=False)

    def __getstate__(self):
        # The stack cache and the valid-row gather are process-local
        # (rebuilt on demand from the index matrices); shipping them
        # would duplicate the geometry buffers in every pickle.
        state = self.__dict__.copy()
        state["_stacks"] = {}
        state["_valid_rows"] = None
        return state

    @property
    def n_entries(self) -> int:
        return int(self.tgt_index.shape[0])

    @property
    def k(self) -> int:
        """Source rows per entry (``n_segments x rows_per_segment``)."""
        return int(self.src_index.shape[1])

    @property
    def is_padded(self) -> bool:
        """True for ragged-pool buckets carrying zero-weight source pads."""
        return self.src_valid is not None

    @property
    def padding_waste(self) -> float:
        """Fraction of the padded target rows that is padding."""
        total = self.n_entries * self.m_max
        return 0.0 if total == 0 else 1.0 - self.out_slots.size / total

    def _entry_rows(self) -> np.ndarray:
        """(G,) valid target rows per entry."""
        if self.scatter_pos is None:
            return np.full(self.n_entries, self.m_max, dtype=np.intp)
        return np.bincount(
            self.scatter_pos // self.m_max, minlength=self.n_entries
        ).astype(np.intp)

    def _entry_cols(self) -> np.ndarray:
        """(G,) valid source columns per entry."""
        if self.src_valid is None:
            return np.full(self.n_entries, self.k, dtype=np.intp)
        return self.src_valid.sum(axis=1).astype(np.intp)

    def stack_cells(self) -> tuple[int, int]:
        """``(real, total)`` cells of the ``(G, m_max, k)`` GEMM stack.

        ``real`` counts the cells backed by actual plan work
        (``sum m_i * k_i``); the difference is padding flops.
        """
        total = self.n_entries * self.m_max * self.k
        real = int(np.dot(self._entry_rows(), self._entry_cols()))
        return real, total

    @property
    def padding_nbytes(self) -> int:
        """Bytes held by pad slots and padding bookkeeping.

        Counts the pad entries of ``tgt_index``, ``src_index`` and
        ``weights`` plus the ``src_valid`` mask and ``scatter_pos`` map
        -- the memory the dense-stack trade-off costs beyond a
        perfectly ragged gather.
        """
        pad_tgt = self.n_entries * self.m_max - self.out_slots.size
        nbytes = pad_tgt * self.tgt_index.itemsize
        if self.scatter_pos is not None:
            nbytes += self.scatter_pos.nbytes
        if self.src_valid is not None:
            rhs = 1 if self.weights.ndim == 2 else int(self.weights.shape[2])
            pad_src = self.src_valid.size - int(self._entry_cols().sum())
            nbytes += self.src_valid.nbytes + pad_src * (
                self.src_index.itemsize + self.weights.itemsize * rhs
            )
        return int(nbytes)

    def stacks(
        self, targets: np.ndarray, src_points: np.ndarray, dtype
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gathered ``(G, m_max, 3)`` target / ``(G, k, 3)`` source stacks.

        Cached per dtype: the gather indices and coordinates are
        geometry, so repeated executions (prepared sessions) reuse the
        stacks untouched.  Pass pre-cast buffers (see
        :meth:`ExecutionPlan.targets_as`) to avoid a second cast pass.
        """
        key = np.dtype(dtype).str
        cached = self._stacks.get(key)
        if cached is None:
            cached = (
                np.ascontiguousarray(targets[self.tgt_index], dtype=dtype),
                np.ascontiguousarray(src_points[self.src_index], dtype=dtype),
            )
            self._stacks[key] = cached
        return cached

    def refresh_weights(self, src_weights: np.ndarray) -> None:
        """Re-gather this bucket's weight matrix from the flat buffer.

        A flat buffer of a different RHS width (``(R,)`` vs
        ``(R, n_rhs)``) re-binds the gathered matrix to the new shape
        (``(G, k)`` <-> ``(G, k, n_rhs)``); matching shapes are rewritten
        in place so cached views stay valid between same-width applies.

        Padded buckets rewrite only the valid positions: the pad slots
        were zero-filled at allocation -- and are zero-filled again
        whenever a width change re-allocates the matrix -- so their
        repeated source points contribute exactly ``0.0`` to every
        stacked GEMM, across any sequence of refreshes.
        """
        if self.src_valid is None:
            gathered = src_weights[self.src_index]
            if gathered.shape == self.weights.shape:
                self.weights[...] = gathered
            else:
                object.__setattr__(self, "weights", gathered)
            return
        shape = self.src_index.shape + src_weights.shape[1:]
        if self.weights.shape != shape:
            object.__setattr__(
                self, "weights", np.zeros(shape, dtype=np.float64)
            )
        rows = self._valid_rows
        if rows is None:
            rows = self.src_index[self.src_valid]
            object.__setattr__(self, "_valid_rows", rows)
        self.weights[self.src_valid] = src_weights[rows]

    def refresh_geometry(self, out_index: np.ndarray) -> None:
        """Invalidate after an in-place plan geometry rewrite.

        Drops the gathered coordinate stacks (they re-gather from the
        new buffers on the next execute) and re-derives ``out_slots``
        from the new output index -- the gather *indices* are structure
        and stay valid, but the slots they point at may have changed.
        """
        flat = self.tgt_index.reshape(-1)
        rows = flat if self.scatter_pos is None else flat[self.scatter_pos]
        self.out_slots[...] = out_index[rows]
        self._stacks.clear()


@dataclass(frozen=True, eq=False)
class BatchedLayout:
    """Shape-bucketed view of a plan: buckets + ragged fallback runs.

    Buckets and ragged runs partition the plan's ``(group, segment)``
    pairs exactly; backends that consume the layout evaluate each bucket
    with stacked batched kernels and the ragged runs through the fused
    per-group arithmetic.
    """

    buckets: tuple[BatchedBucket, ...]
    #: (R, 3) ``[group, seg_lo, seg_hi)`` runs on the per-group path.
    ragged_runs: np.ndarray
    #: Target-row slots evaluated on the per-group ragged path (each
    #: merged run counts its group's rows once).
    ragged_rows: int = 0

    @property
    def n_batched_entries(self) -> int:
        return sum(b.n_entries for b in self.buckets)

    def batched_interactions(self) -> int:
        """Plan kernel evaluations covered by buckets (valid cells only;
        zero-weight pad columns are flops but not plan interactions)."""
        return int(sum(b.stack_cells()[0] for b in self.buckets))

    def coverage(self) -> float:
        """Fraction of the plan's row slots executed inside buckets.

        Row slots count each group's target rows once per equal-kind
        run, matching how both the bucket entries and the ragged
        fallback consume them; 1.0 means no ragged work is left.
        """
        bucketed = int(sum(b.out_slots.size for b in self.buckets))
        total = bucketed + int(self.ragged_rows)
        return 1.0 if total == 0 else bucketed / total

    def padding_waste(self) -> float:
        """Fraction of the buckets' stacked GEMM cells that is padding."""
        real = total = 0
        for b in self.buckets:
            r, t = b.stack_cells()
            real += r
            total += t
        return 0.0 if total == 0 else 1.0 - real / total

    def padding_nbytes(self) -> int:
        """Bytes spent on pad slots and padding bookkeeping (all buckets)."""
        return int(sum(b.padding_nbytes for b in self.buckets))

    def refresh_weights(self, src_weights: np.ndarray) -> None:
        for bucket in self.buckets:
            bucket.refresh_weights(src_weights)

    def refresh_geometry(self, out_index: np.ndarray) -> None:
        for bucket in self.buckets:
            bucket.refresh_geometry(out_index)


@dataclass(frozen=True, eq=False)
class ExecutionPlan:
    """Flat description of one device's evaluation work.

    The index arrays and gathered geometry are immutable; the weight
    buffer is the one piece of charge-dependent state and may be
    overwritten in place through :meth:`refresh_weights` (never mutate
    ``src_weights`` directly -- the version counter is what lets
    caching backends detect the change).  ``eq=False`` keeps plans
    hashable by identity so backends can key per-plan caches (e.g. the
    multiprocessing backend's shared-memory shipments) on the object.
    """

    #: Segment-kind vocabulary; ``seg_kind`` indexes into it.
    kind_names: tuple[str, ...]
    #: (G+1,) target-row offsets per group.
    group_ptr: np.ndarray
    #: (G+1,) segment offsets per group.
    seg_group_ptr: np.ndarray
    #: (S,) kind index per segment.
    seg_kind: np.ndarray
    #: (S+1,) source-row offsets per segment.
    seg_ptr: np.ndarray
    #: Length of the output vector the plan accumulates into.
    out_size: int
    #: (T, 3) gathered target coordinates, or None in model-only mode.
    targets: np.ndarray | None = None
    #: (T,) output slot per target row, or None in model-only mode.
    out_index: np.ndarray | None = None
    #: (R, 3) gathered source/grid coordinates, or None in model-only mode.
    src_points: np.ndarray | None = None
    #: (R,) gathered charges/modified charges, or None in model-only mode.
    src_weights: np.ndarray | None = None
    #: (S,) physical start row of each segment in the source buffers, or
    #: None in model-only mode (no buffers to index).  Segments sharing
    #: a ``share_key`` alias the same physical rows.
    seg_src_lo: np.ndarray | None = None
    #: Per *stored* segment ``(share_key, lo, hi)`` physical weight-row
    #: ranges, or None when some stored segment carried no share key
    #: (the plan is then not weight-refreshable).
    weight_slots: tuple | None = None
    #: Bumped by :meth:`refresh_weights`; lets caching backends detect
    #: stale shipped copies of ``src_weights``.
    weights_version: int = 0
    #: Bumped by :meth:`refresh_geometry` (and :meth:`patch_groups`):
    #: the float geometry buffers / output index changed in place.
    geometry_version: int = 0
    #: Bumped by :meth:`patch_groups`: the index arrays (shapes, CSR
    #: structure, weight slots) changed; shipped copies must re-pack.
    structure_version: int = 0
    #: Shape-bucketed execution layout, or None until built.  Compiled
    #: eagerly by ``compile_plan(..., batched=True)``; built lazily (and
    #: cached) by :meth:`ensure_batched_layout` otherwise.
    batched_layout: "BatchedLayout | None" = None
    #: dtype-keyed cache of cast copies of the geometry-constant buffers
    #: (targets / src_points); see :meth:`targets_as`.
    _cast_cache: dict = field(default_factory=dict, repr=False)

    def __getstate__(self):
        # Cast caches are process-local: unpickled in another process
        # they would be stale-by-identity (no longer views of anything
        # shared) and they double the pickle size for no benefit.  They
        # repopulate lazily on the first mixed-precision execution.
        state = self.__dict__.copy()
        state["_cast_cache"] = {}
        return state

    # -- structure queries ----------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self.group_ptr) - 1

    @property
    def n_segments(self) -> int:
        return len(self.seg_kind)

    @property
    def n_target_rows(self) -> int:
        return int(self.group_ptr[-1])

    @property
    def n_source_rows(self) -> int:
        """Logical source rows (sum of segment sizes; counts aliases)."""
        return int(self.seg_ptr[-1])

    @property
    def has_numerics(self) -> bool:
        return self.src_points is not None

    @property
    def shared_sources(self) -> bool:
        """True when segments alias de-duplicated source buffers.

        Every numerics plan is compiled this way now; the property is
        kept for introspection (model-only plans report False).
        """
        return self.seg_src_lo is not None

    @property
    def source_buffer_rows(self) -> int:
        """Physical rows actually stored (de-duplicated; <= logical rows)."""
        return 0 if self.src_points is None else int(self.src_points.shape[0])

    def group_size(self, g: int) -> int:
        return int(self.group_ptr[g + 1] - self.group_ptr[g])

    def seg_size(self, s: int) -> int:
        return int(self.seg_ptr[s + 1] - self.seg_ptr[s])

    # -- source-buffer views --------------------------------------------
    def segment_source_range(self, s: int) -> tuple[int, int]:
        """Physical ``[lo, hi)`` row range of segment ``s``."""
        if self.seg_src_lo is None:
            raise ValueError("model-only plan has no source buffers")
        lo = int(self.seg_src_lo[s])
        return lo, lo + self.seg_size(s)

    def segment_points(self, s: int) -> np.ndarray:
        lo, hi = self.segment_source_range(s)
        return self.src_points[lo:hi]

    def segment_weights(self, s: int) -> np.ndarray:
        lo, hi = self.segment_source_range(s)
        return self.src_weights[lo:hi]

    def group_source_range(self, g: int) -> tuple[int, int] | None:
        """Physical row range covering group ``g``, if contiguous.

        Aliased segments generally scatter their ranges, in which case
        callers fall back to :meth:`group_sources`; a group of
        first-occurrence segments stays one contiguous block (the
        builder stores new rows consecutively).  Returns None when not
        contiguous.
        """
        s_lo = int(self.seg_group_ptr[g])
        s_hi = int(self.seg_group_ptr[g + 1])
        lo, pos = self.segment_source_range(s_lo) if s_hi > s_lo else (0, 0)
        for s in range(s_lo + 1, s_hi):
            nxt_lo, nxt_hi = self.segment_source_range(s)
            if nxt_lo != pos:
                return None
            pos = nxt_hi
        return lo, pos

    def group_sources(self, g: int) -> tuple[np.ndarray, np.ndarray]:
        """``(points, weights)`` of group ``g``'s rows in segment order.

        Contiguous views when the layout allows; otherwise a gather
        (concatenation of the aliased segment slices) -- the values are
        exact copies of the same cluster arrays either way.
        """
        rng = self.group_source_range(g)
        if rng is not None:
            lo, hi = rng
            return self.src_points[lo:hi], self.src_weights[lo:hi]
        s_lo = int(self.seg_group_ptr[g])
        s_hi = int(self.seg_group_ptr[g + 1])
        pts = np.concatenate(
            [self.segment_points(s) for s in range(s_lo, s_hi)], axis=0
        )
        wts = np.concatenate(
            [self.segment_weights(s) for s in range(s_lo, s_hi)]
        )
        return pts, wts

    # -- geometry-constant dtype casts ----------------------------------
    def _cast_geometry(self, name: str, arr: np.ndarray, dtype) -> np.ndarray:
        dt = np.dtype(dtype)
        if arr.dtype == dt and arr.flags.c_contiguous:
            return arr
        key = (name, dt.str)
        cached = self._cast_cache.get(key)
        if cached is None:
            cached = np.ascontiguousarray(arr, dtype=dt)
            self._cast_cache[key] = cached
        return cached

    def targets_as(self, dtype) -> np.ndarray:
        """The target buffer cast to ``dtype``, cached on the plan.

        Targets are geometry (charge-independent), so prepared sessions
        evaluating in mixed precision pay the cast once instead of
        re-running ``np.ascontiguousarray`` per group on every apply;
        float64 requests return the stored buffer itself.
        """
        return self._cast_geometry("targets", self.targets, dtype)

    def src_points_as(self, dtype) -> np.ndarray:
        """The source-point buffer cast to ``dtype`` (cached; geometry)."""
        return self._cast_geometry("src_points", self.src_points, dtype)

    # -- batched layout -------------------------------------------------
    def ensure_batched_layout(self) -> "BatchedLayout":
        """The plan's :class:`BatchedLayout`, building and caching it.

        Plans compiled with ``batched=True`` carry the layout already;
        otherwise the first call derives it from the index arrays (pure
        geometry -- safe to build at any point of a session, including
        after weight refreshes, since the bucket weight matrices gather
        from the current flat buffer).
        """
        if not self.has_numerics:
            raise ValueError("model-only plan has no batched layout")
        if self.batched_layout is None:
            object.__setattr__(
                self, "batched_layout", build_batched_layout(self)
            )
        return self.batched_layout

    # -- weight state ---------------------------------------------------
    @property
    def refreshable(self) -> bool:
        """True when :meth:`refresh_weights` can rebuild the weights."""
        return self.src_weights is not None and self.weight_slots is not None

    @property
    def rhs_width(self) -> int | None:
        """RHS columns in the weight buffer: None for ``(R,)``, else n_rhs.

        Distinguishes a 1-D buffer (single-vector execution, the
        default) from a 2-D one -- including the ``(R, 1)`` case, which
        still evaluates through the multi-RHS paths and yields outputs
        with a trailing RHS axis of length one.
        """
        if self.src_weights is None or self.src_weights.ndim == 1:
            return None
        return int(self.src_weights.shape[1])

    def refresh_weights(self, provider) -> None:
        """Overwrite the weight buffer from ``provider``.

        ``provider(share_key)`` must return the weight rows of the
        stored segment registered under that key (a cluster's modified
        charges, a node's particle charges, ...) -- either ``(rows,)``
        for single-vector evaluation or ``(rows, n_rhs)`` for multi-RHS,
        with every slot agreeing on the width.  Every stored segment is
        rewritten, so the buffer afterwards is exactly what a fresh
        compile with the same values would have gathered.

        Multi-RHS widens ``src_weights`` from ``(R,)`` to ``(R, n_rhs)``
        (column ``j`` holding exactly what a single-vector refresh on
        charge column ``j`` would store): the buffer is re-allocated
        whenever the width changes and rewritten in place otherwise.
        Memory scales linearly with ``n_rhs`` (the geometry buffers do
        not), which is the trade-off that lets one traversal's gather
        cost serve every column.  The geometry (targets, points, index
        arrays) is untouched; the weights version is bumped either way
        so caching backends refresh (or re-ship) their copy of this one
        buffer.
        """
        if self.src_weights is None:
            raise ValueError("model-only plan carries no weight buffers")
        if self.weight_slots is None:
            raise ValueError(
                "plan is not weight-refreshable: a stored segment was "
                "added without a share_key"
            )
        w = self.src_weights
        width = None
        first = True
        for key, lo, hi in self.weight_slots:
            arr = np.asarray(provider(key), dtype=np.float64)
            if arr.ndim not in (1, 2):
                raise ValueError(
                    f"weight provider returned a {arr.ndim}-D array for "
                    f"segment {key!r}; expected (rows,) or (rows, n_rhs)"
                )
            if arr.shape[0] != hi - lo:
                raise ValueError(
                    f"weight provider returned {arr.shape[0]} rows for "
                    f"segment {key!r} expecting {hi - lo}"
                )
            slot_width = arr.shape[1] if arr.ndim == 2 else None
            if first:
                first = False
                width = slot_width
                rows = w.shape[0]
                shape = (rows,) if width is None else (rows, width)
                if w.shape != shape:
                    w = np.zeros(shape, dtype=np.float64)
                    object.__setattr__(self, "src_weights", w)
            elif slot_width != width:
                raise ValueError(
                    f"weight provider returned mismatched RHS widths: "
                    f"segment {key!r} carries {slot_width or 1} column(s), "
                    f"earlier segments carried {width or 1}"
                )
            w[lo:hi] = arr
        if self.batched_layout is not None:
            self.batched_layout.refresh_weights(w)
        object.__setattr__(self, "weights_version", self.weights_version + 1)

    # -- dynamic geometry -----------------------------------------------
    def refresh_geometry(
        self,
        *,
        targets: np.ndarray | None = None,
        out_index: np.ndarray | None = None,
        src_rows: Sequence[tuple[int, np.ndarray]] = (),
    ) -> None:
        """Rewrite geometry buffers in place (same shapes) and invalidate.

        The in-place tier of a dynamic-geometry update (see the module
        docstring): ``targets`` / ``out_index`` replace the full buffer
        contents, ``src_rows`` is an iterable of ``(lo, values)`` row
        blocks written into ``src_points``.  Shapes must match -- a
        structural change goes through :meth:`patch_groups` first.
        Drops the dtype cast cache, refreshes the batched buckets'
        output slots and stacks, and bumps ``geometry_version``.
        """
        if not self.has_numerics:
            raise ValueError("model-only plan has no geometry buffers")
        if targets is not None:
            self.targets[...] = targets
        if out_index is not None:
            self.out_index[...] = out_index
        for lo, values in src_rows:
            self.src_points[lo:lo + len(values)] = values
        self._cast_cache.clear()
        if self.batched_layout is not None:
            self.batched_layout.refresh_geometry(self.out_index)
        object.__setattr__(self, "geometry_version", self.geometry_version + 1)

    def patch_groups(self, updates: dict, key_rows) -> None:
        """Rebuild the plan structure with new descriptions for some groups.

        ``updates`` maps a group index to its new description
        ``(out_index, [(kind_name, share_key), ...])``; every group not
        in it keeps its current output slots and segment list (read back
        through the ``weight_slots`` offset map).  ``key_rows(share_key)``
        returns the physical row count of a stored segment at the *new*
        geometry -- it is consulted for every key, so segments whose
        cluster was resized are sized correctly even in clean groups
        (callers should mark such groups dirty anyway: their stale
        ``out_index`` and float rows are only repaired by the mandatory
        :meth:`refresh_geometry` / weight refresh that must follow,
        which rewrites all of them).  See the module docstring for the
        replay-order invariant that keeps the patched layout bitwise
        equal to a cold compile.
        """
        if not self.has_numerics:
            raise ValueError("model-only plan cannot be patched")
        if self.weight_slots is None:
            raise ValueError(
                "plan is not patchable: a stored segment carried no "
                "share_key, so clean groups cannot be read back"
            )
        lo2key = {int(lo): key for key, lo, _hi in self.weight_slots}
        n_groups = self.n_groups
        kind_names = list(self.kind_names)
        kind_index = {k: i for i, k in enumerate(kind_names)}
        group_out: list[np.ndarray] = []
        group_segs: list[list[tuple[str, object]]] = []
        for g in range(n_groups):
            upd = updates.get(g)
            if upd is not None:
                out_idx, segs = upd
                group_out.append(np.asarray(out_idx, dtype=np.intp))
                group_segs.append(list(segs))
                continue
            t_lo, t_hi = int(self.group_ptr[g]), int(self.group_ptr[g + 1])
            group_out.append(self.out_index[t_lo:t_hi].copy())
            group_segs.append([
                (
                    self.kind_names[self.seg_kind[s]],
                    lo2key[int(self.seg_src_lo[s])],
                )
                for s in range(
                    int(self.seg_group_ptr[g]),
                    int(self.seg_group_ptr[g + 1]),
                )
            ])
        # Replay the compile: first-use physical row assignment in
        # (group, segment) order reproduces PlanBuilder's layout.
        seg_kind: list[int] = []
        seg_sizes: list[int] = []
        seg_src_lo: list[int] = []
        segs_per_group: list[int] = []
        ranges: dict = {}
        weight_slots: list[tuple] = []
        phys = 0
        for segs in group_segs:
            segs_per_group.append(len(segs))
            for kind, key in segs:
                rng = ranges.get(key)
                if rng is None:
                    rows = int(key_rows(key))
                    rng = (phys, phys + rows)
                    phys += rows
                    ranges[key] = rng
                    weight_slots.append((key, rng[0], rng[1]))
                lo, hi = rng
                k = kind_index.get(kind)
                if k is None:
                    k = len(kind_names)
                    kind_names.append(kind)
                    kind_index[kind] = k
                seg_kind.append(k)
                seg_sizes.append(hi - lo)
                seg_src_lo.append(lo)
        group_ptr = np.zeros(n_groups + 1, dtype=np.intp)
        np.cumsum([len(o) for o in group_out], out=group_ptr[1:])
        seg_group_ptr = np.zeros(n_groups + 1, dtype=np.intp)
        np.cumsum(segs_per_group, out=seg_group_ptr[1:])
        seg_ptr = np.zeros(len(seg_sizes) + 1, dtype=np.intp)
        np.cumsum(seg_sizes, out=seg_ptr[1:])
        width = self.rhs_width
        set_ = object.__setattr__
        set_(self, "kind_names", tuple(kind_names))
        set_(self, "group_ptr", group_ptr)
        set_(self, "seg_group_ptr", seg_group_ptr)
        set_(self, "seg_kind", np.asarray(seg_kind, dtype=np.intp))
        set_(self, "seg_ptr", seg_ptr)
        set_(self, "out_index", _concat(group_out, (0,), np.intp))
        set_(self, "targets", np.zeros((int(group_ptr[-1]), 3)))
        set_(self, "src_points", np.zeros((phys, 3)))
        set_(
            self,
            "src_weights",
            np.zeros(phys if width is None else (phys, width)),
        )
        set_(self, "seg_src_lo", np.asarray(seg_src_lo, dtype=np.intp))
        set_(self, "weight_slots", tuple(weight_slots))
        self._cast_cache.clear()
        if self.batched_layout is not None:
            set_(self, "batched_layout", None)
            self.ensure_batched_layout()
        set_(self, "structure_version", self.structure_version + 1)
        set_(self, "geometry_version", self.geometry_version + 1)

    def group_kind_runs(self, g: int) -> Iterator[tuple[str, int, int]]:
        """Yield ``(kind, seg_lo, seg_hi)`` runs of equal-kind segments.

        Segments of one group are stored kind-contiguously by the
        builder, so one run per kind is the common case; interleaved
        kinds simply yield more runs (still correct, just more calls).
        """
        lo = int(self.seg_group_ptr[g])
        hi = int(self.seg_group_ptr[g + 1])
        s = lo
        while s < hi:
            k = self.seg_kind[s]
            e = s + 1
            while e < hi and self.seg_kind[e] == k:
                e += 1
            yield self.kind_names[k], s, e
            s = e

    def segment_counts_by_kind(self) -> dict[str, int]:
        """Number of segments (== simulated launches) per kind."""
        counts = np.bincount(self.seg_kind, minlength=len(self.kind_names))
        return {
            name: int(c) for name, c in zip(self.kind_names, counts) if c
        }

    def interactions_total(self) -> float:
        """Total kernel evaluations charged by this plan."""
        sizes = np.diff(self.seg_ptr).astype(np.float64)
        groups = np.repeat(
            np.diff(self.group_ptr).astype(np.float64),
            np.diff(self.seg_group_ptr),
        )
        return float(np.dot(sizes, groups))


def _build_bucket(plan: ExecutionPlan, sig, entries) -> BatchedBucket:
    """Materialize one bucket's index matrices from its (group, run)s."""
    n_seg, seg_size, kind = sig
    k = n_seg * seg_size
    n = len(entries)
    m_sizes = np.array([e[2] for e in entries], dtype=np.intp)
    m_max = int(m_sizes.max())
    tgt_index = np.empty((n, m_max), dtype=np.intp)
    src_index = np.empty((n, k), dtype=np.intp)
    seg_src_lo = plan.seg_src_lo
    for i, (g, t_lo, m, s_lo, s_hi) in enumerate(entries):
        tgt_index[i, :m] = np.arange(t_lo, t_lo + m)
        tgt_index[i, m:] = t_lo
        for j, s in enumerate(range(s_lo, s_hi)):
            lo = int(seg_src_lo[s])
            src_index[i, j * seg_size:(j + 1) * seg_size] = np.arange(
                lo, lo + seg_size
            )
    if int(m_sizes.min()) == m_max:
        scatter_pos = None
        flat_rows = tgt_index.reshape(-1)
    else:
        valid = np.arange(m_max)[None, :] < m_sizes[:, None]
        scatter_pos = np.nonzero(valid.reshape(-1))[0]
        flat_rows = tgt_index.reshape(-1)[scatter_pos]
    return BatchedBucket(
        kind=kind,
        n_segments=n_seg,
        rows_per_segment=seg_size,
        m_max=m_max,
        groups=np.array([e[0] for e in entries], dtype=np.intp),
        tgt_index=tgt_index,
        src_index=src_index,
        out_slots=np.ascontiguousarray(plan.out_index[flat_rows]),
        scatter_pos=scatter_pos,
        weights=plan.src_weights[src_index],
    )


def _build_padded_bucket(
    plan: ExecutionPlan, kind: str, entries
) -> BatchedBucket:
    """Materialize one zero-weight-padded bucket from pool entries.

    ``entries`` are ``(k, m, g, t_lo, s_lo, s_hi)`` tuples (one
    equal-kind run each, ``k`` the run's total source rows).  Source
    columns past an entry's ``k`` repeat the entry's first physical
    source row -- a real coordinate, so the kernel value is finite (or
    noise-floor patched if coincident with a target) and the zero
    weight stored for the pad makes its contribution exactly ``0.0``.
    """
    n = len(entries)
    k_sizes = np.array([e[0] for e in entries], dtype=np.intp)
    m_sizes = np.array([e[1] for e in entries], dtype=np.intp)
    k_max = int(k_sizes.max())
    m_max = int(m_sizes.max())
    tgt_index = np.empty((n, m_max), dtype=np.intp)
    src_index = np.empty((n, k_max), dtype=np.intp)
    seg_sizes = np.diff(plan.seg_ptr)
    seg_src_lo = plan.seg_src_lo
    for i, (k, m, g, t_lo, s_lo, s_hi) in enumerate(entries):
        tgt_index[i, :m] = np.arange(t_lo, t_lo + m)
        tgt_index[i, m:] = t_lo
        pos = 0
        for s in range(s_lo, s_hi):
            lo = int(seg_src_lo[s])
            size = int(seg_sizes[s])
            src_index[i, pos:pos + size] = np.arange(lo, lo + size)
            pos += size
        src_index[i, pos:] = src_index[i, 0]
    if int(m_sizes.min()) == m_max:
        scatter_pos = None
        flat_rows = tgt_index.reshape(-1)
    else:
        valid = np.arange(m_max)[None, :] < m_sizes[:, None]
        scatter_pos = np.nonzero(valid.reshape(-1))[0]
        flat_rows = tgt_index.reshape(-1)[scatter_pos]
    if int(k_sizes.min()) == k_max:
        # Equal-k slab: no source padding, so skip the mask entirely
        # and let refreshes take the uniform full-gather path.
        return BatchedBucket(
            kind=kind,
            n_segments=0,
            rows_per_segment=0,
            m_max=m_max,
            groups=np.array([e[2] for e in entries], dtype=np.intp),
            tgt_index=tgt_index,
            src_index=src_index,
            out_slots=np.ascontiguousarray(plan.out_index[flat_rows]),
            scatter_pos=scatter_pos,
            weights=plan.src_weights[src_index],
        )
    src_valid = np.arange(k_max)[None, :] < k_sizes[:, None]
    weights = np.zeros(
        src_index.shape + plan.src_weights.shape[1:], dtype=np.float64
    )
    weights[src_valid] = plan.src_weights[src_index[src_valid]]
    return BatchedBucket(
        kind=kind,
        n_segments=0,
        rows_per_segment=0,
        m_max=m_max,
        groups=np.array([e[2] for e in entries], dtype=np.intp),
        tgt_index=tgt_index,
        src_index=src_index,
        out_slots=np.ascontiguousarray(plan.out_index[flat_rows]),
        scatter_pos=scatter_pos,
        weights=weights,
        src_valid=src_valid,
    )


def _partition_padded_pool(entries, max_waste: float, min_groups: int):
    """Greedy slab partition of one kind's ragged pool.

    ``entries`` are ``(k, m, g, t_lo, s_lo, s_hi)`` tuples; they are
    sorted by ``(m, k)`` so similarly shaped runs sit adjacent (target
    counts cluster around the batch-size cap while source counts spread
    widely, so majoring on ``m`` keeps both paddings small), then
    sliced into slabs: an entry joins the open slab while the combined
    stack waste ``1 - sum(m_i k_i) / (n m_max k_max)`` stays within
    ``max_waste`` and its group is not already in the slab (the bucket
    scatter must stay injective).  Uniform same-shape runs are the
    zero-waste special case, so this rule subsumes an equal-``k``
    split.  Entries stranded by a slab boundary are re-swept until no
    new slab forms; the rest return as leftovers for the ragged path
    (always fewer than ``min_groups`` per surviving shape).
    """
    slabs: list[list] = []
    remaining = sorted(entries, key=lambda e: (e[1], e[0], e[2]))
    while remaining:
        leftovers: list = []
        slab: list = []
        groups: set = set()
        m_max = k_max = area = 0

        def flush():
            nonlocal slab, groups, m_max, k_max, area
            if len(slab) >= min_groups:
                slabs.append(slab)
            else:
                leftovers.extend(slab)
            slab, groups = [], set()
            m_max = k_max = area = 0

        for e in remaining:
            k, m, g = e[0], e[1], e[2]
            if slab:
                nm, nk = max(m_max, m), max(k_max, k)
                n = len(slab) + 1
                waste = 1.0 - (area + m * k) / (n * nm * nk)
                if g in groups or waste > max_waste:
                    flush()
            slab.append(e)
            groups.add(g)
            m_max, k_max = max(m_max, m), max(k_max, k)
            area += m * k
        flush()
        if len(leftovers) == len(remaining):
            return slabs, leftovers
        remaining = leftovers
    return slabs, []


def build_batched_layout(
    plan: ExecutionPlan,
    *,
    max_padding_waste: float = BATCHED_MAX_PADDING_WASTE,
    min_bucket_groups: int = BATCHED_MIN_GROUPS,
    max_source_padding_waste: float = BATCHED_MAX_SOURCE_PADDING_WASTE,
) -> BatchedLayout:
    """Bucket every equal-kind segment run of the plan, padded or not.

    Pure geometry: derived entirely from the index arrays, the output
    index and the gathered coordinates (the bucket weight matrices are
    gathered from the current flat weight buffer and kept refreshable).
    Runs whose segments all share one size are bucketed under
    ``(n_segments, rows_per_segment, kind)``; a bucket whose single
    ``m_max`` padding would waste more than ``max_padding_waste`` of its
    target rows is split into equal-``m`` sub-buckets.  Everything else
    -- ragged runs (unequal segment sizes, the near field), sub-minimum
    uniform leftovers, and repeated same-signature runs within one group
    (which would collide in a bucket's single fancy-indexed scatter) --
    enters a per-kind pool that :func:`_partition_padded_pool` slices
    into zero-weight-padded buckets under ``max_source_padding_waste``.
    Only pool slabs below ``min_bucket_groups`` fall back to the
    per-group ``ragged_runs`` path.
    """
    if not plan.has_numerics:
        raise ValueError("model-only plan has no batched layout")
    seg_sizes = np.diff(plan.seg_ptr)
    by_sig: dict = {}
    pool: dict[str, list] = {}
    ragged: list[tuple[int, int, int]] = []
    for g in range(plan.n_groups):
        t_lo = int(plan.group_ptr[g])
        m = int(plan.group_ptr[g + 1]) - t_lo
        for kind, s_lo, s_hi in plan.group_kind_runs(g):
            sizes = seg_sizes[s_lo:s_hi]
            size0 = int(sizes[0])
            k_total = int(sizes.sum())
            if m == 0 or k_total == 0:
                continue  # no targets or no sources: contributes nothing
            if size0 == 0 or not np.all(sizes == size0):
                pool.setdefault(kind, []).append(
                    (k_total, m, g, t_lo, s_lo, s_hi)
                )
                continue
            sig = (s_hi - s_lo, size0, kind)
            entries = by_sig.setdefault(sig, [])
            if entries and entries[-1][0] == g:
                # A second same-signature run of this group (interleaved
                # kinds) cannot share the first run's bucket scatter;
                # the pool's per-slab group guard handles it instead.
                pool.setdefault(kind, []).append(
                    (k_total, m, g, t_lo, s_lo, s_hi)
                )
                continue
            entries.append((g, t_lo, m, s_lo, s_hi))
    buckets = []
    for sig in sorted(by_sig, key=lambda s: (s[2], s[0], s[1])):
        entries = by_sig[sig]
        m_sizes = np.array([e[2] for e in entries], dtype=np.intp)
        m_max = int(m_sizes.max())
        waste = 1.0 - float(m_sizes.sum()) / (len(entries) * m_max)
        if waste > max_padding_waste:
            sub: dict[int, list] = {}
            for e in entries:
                sub.setdefault(e[2], []).append(e)
            partitions = [sub[m] for m in sorted(sub)]
        else:
            partitions = [entries]
        for part in partitions:
            if len(part) < min_bucket_groups:
                # Too few same-shape runs to stack alone; let the padded
                # pool absorb them next to similarly sized ragged work.
                pool.setdefault(sig[2], []).extend(
                    (sig[0] * sig[1], pm, g, pt_lo, s_lo, s_hi)
                    for g, pt_lo, pm, s_lo, s_hi in part
                )
            else:
                buckets.append(_build_bucket(plan, sig, part))
    for kind in sorted(pool):
        slabs, leftovers = _partition_padded_pool(
            pool[kind], max_source_padding_waste, min_bucket_groups
        )
        for slab in slabs:
            buckets.append(_build_padded_bucket(plan, kind, slab))
        ragged.extend((e[2], e[4], e[5]) for e in leftovers)
    ragged.sort()
    # Merge segment-adjacent runs of one group: a group none of whose
    # runs bucketed then costs exactly one fused-style accumulation
    # (the per-group evaluator ignores kind boundaries), instead of one
    # call per kind run.
    merged: list[tuple[int, int, int]] = []
    for g, s_lo, s_hi in ragged:
        if merged and merged[-1][0] == g and merged[-1][2] == s_lo:
            merged[-1] = (g, merged[-1][1], s_hi)
        else:
            merged.append((g, s_lo, s_hi))
    return BatchedLayout(
        buckets=tuple(buckets),
        ragged_runs=np.array(merged, dtype=np.intp).reshape(-1, 3),
        ragged_rows=int(sum(plan.group_size(g) for g, _, _ in merged)),
    )


class PlanBuilder:
    """Incrementally assemble an :class:`ExecutionPlan`.

    ``numerics=True`` expects every group/segment to supply its arrays
    (targets / output indices / source points / weights); ``False``
    expects only sizes and builds a structure-only plan for model-mode
    backends.  Add segments of one group kind-contiguously so backends
    get one run per kind.

    The source buffers are always de-duplicated: segments added with
    the same ``share_key`` store their rows once and alias them through
    per-segment offsets.  Callers can skip re-gathering a cluster's
    arrays entirely by checking :meth:`has_shared` first -- a repeated
    key needs no ``points``/``weights`` at all.  (``shared_sources`` is
    accepted as a deprecated no-op; the duplicated-rows layout it used
    to toggle has been retired.)

    ``deferred_weights=True`` compiles a geometry-only skeleton: every
    stored segment supplies ``points`` and a ``share_key`` but no
    ``weights``; the weight buffer is allocated zeroed at build and the
    caller fills it through :meth:`ExecutionPlan.refresh_weights`
    before the first execution (the prepare/apply session seam).
    """

    def __init__(
        self,
        out_size: int,
        *,
        numerics: bool = True,
        shared_sources: bool | None = None,  # deprecated no-op
        deferred_weights: bool = False,
        batched: bool = False,
    ) -> None:
        self.out_size = int(out_size)
        self.numerics = bool(numerics)
        self.deferred_weights = bool(deferred_weights) and self.numerics
        #: Attach the shape-bucketed execution layout at build time
        #: (numerics plans only; backends can also build it lazily).
        self.batched = bool(batched) and self.numerics
        self._kind_names: list[str] = []
        self._kind_index: dict[str, int] = {}
        self._group_sizes: list[int] = []
        self._segs_per_group: list[int] = []
        self._seg_kind: list[int] = []
        self._seg_sizes: list[int] = []
        self._targets: list[np.ndarray] = []
        self._out_index: list[np.ndarray] = []
        self._src_points: list[np.ndarray] = []
        self._src_weights: list[np.ndarray] = []
        #: share_key -> (lo, hi) physical row range already stored.
        self._shared_ranges: dict = {}
        self._seg_src_lo: list[int] = []
        self._phys_rows = 0
        #: (share_key, lo, hi) per stored segment (weight-refresh map).
        self._weight_slots: list[tuple] = []
        self._refreshable = True

    # ------------------------------------------------------------------
    def add_group(
        self,
        *,
        size: int | None = None,
        targets: np.ndarray | None = None,
        out_index: np.ndarray | None = None,
    ) -> int:
        """Open a new group; returns its index."""
        if self.numerics:
            if targets is None or out_index is None:
                raise ValueError(
                    "numerics plan requires targets and out_index per group"
                )
            self._targets.append(targets)
            self._out_index.append(out_index)
            size = targets.shape[0]
        elif size is None:
            raise ValueError("model plan requires the group size")
        self._group_sizes.append(int(size))
        self._segs_per_group.append(0)
        return len(self._group_sizes) - 1

    def has_shared(self, share_key) -> bool:
        """True when ``share_key``'s rows are already in the buffers."""
        return share_key in self._shared_ranges

    def add_segment(
        self,
        kind: str,
        *,
        size: int | None = None,
        points: np.ndarray | None = None,
        weights: np.ndarray | None = None,
        share_key=None,
    ) -> None:
        """Append one launch segment to the most recent group.

        ``share_key`` (hashable, e.g. ``("approx", cluster_id)``) marks
        segments that carry the same source rows; a repeated key
        aliases the first copy and ``points``/``weights`` may be
        omitted.
        """
        if not self._group_sizes:
            raise ValueError("add_group must be called before add_segment")
        if self.numerics:
            reuse = (
                share_key is not None and share_key in self._shared_ranges
            )
            if reuse:
                lo, hi = self._shared_ranges[share_key]
            else:
                if points is None or (
                    weights is None and not self.deferred_weights
                ):
                    raise ValueError(
                        "numerics plan requires points and weights per segment"
                    )
                self._src_points.append(points)
                if not self.deferred_weights:
                    self._src_weights.append(weights)
                lo = self._phys_rows
                hi = lo + int(points.shape[0])
                self._phys_rows = hi
                if share_key is not None:
                    self._shared_ranges[share_key] = (lo, hi)
                if share_key is None:
                    if self.deferred_weights:
                        raise ValueError(
                            "deferred-weight segments need a share_key so "
                            "refresh_weights can locate their rows"
                        )
                    self._refreshable = False
                else:
                    self._weight_slots.append((share_key, lo, hi))
            self._seg_src_lo.append(lo)
            size = hi - lo
        elif size is None:
            raise ValueError("model plan requires the segment size")
        k = self._kind_index.get(kind)
        if k is None:
            k = len(self._kind_names)
            self._kind_names.append(kind)
            self._kind_index[kind] = k
        self._seg_kind.append(k)
        self._seg_sizes.append(int(size))
        self._segs_per_group[-1] += 1

    # ------------------------------------------------------------------
    def build(self) -> ExecutionPlan:
        group_ptr = np.zeros(len(self._group_sizes) + 1, dtype=np.intp)
        np.cumsum(self._group_sizes, out=group_ptr[1:])
        seg_group_ptr = np.zeros(len(self._group_sizes) + 1, dtype=np.intp)
        np.cumsum(self._segs_per_group, out=seg_group_ptr[1:])
        seg_ptr = np.zeros(len(self._seg_sizes) + 1, dtype=np.intp)
        np.cumsum(self._seg_sizes, out=seg_ptr[1:])
        targets = out_index = src_points = src_weights = seg_src_lo = None
        weight_slots = None
        if self.numerics:
            targets = _concat(self._targets, (0, 3), np.float64)
            out_index = _concat(self._out_index, (0,), np.intp)
            src_points = _concat(self._src_points, (0, 3), np.float64)
            if self.deferred_weights:
                src_weights = np.zeros(self._phys_rows, dtype=np.float64)
            else:
                src_weights = _concat(self._src_weights, (0,), np.float64)
            seg_src_lo = np.asarray(self._seg_src_lo, dtype=np.intp)
            if self._refreshable:
                weight_slots = tuple(self._weight_slots)
        plan = ExecutionPlan(
            kind_names=tuple(self._kind_names),
            group_ptr=group_ptr,
            seg_group_ptr=seg_group_ptr,
            seg_kind=np.asarray(self._seg_kind, dtype=np.intp),
            seg_ptr=seg_ptr,
            out_size=self.out_size,
            targets=targets,
            out_index=out_index,
            src_points=src_points,
            src_weights=src_weights,
            seg_src_lo=seg_src_lo,
            weight_slots=weight_slots,
        )
        if self.batched:
            plan.ensure_batched_layout()
        return plan


def _concat(arrays: Sequence[np.ndarray], empty_shape, dtype) -> np.ndarray:
    if not arrays:
        return np.empty(empty_shape, dtype=dtype)
    return np.ascontiguousarray(np.concatenate(arrays, axis=0), dtype=dtype)


def compile_plan(
    tree: "ClusterTree",
    batches: "TargetBatches",
    moments: "ClusterMoments",
    lists: "InteractionLists",
    charges: np.ndarray | None,
    params: "TreecodeParams",
    *,
    numerics: bool = True,
    shared_sources: bool | None = None,  # deprecated no-op
    deferred_weights: bool = False,
    batched: bool = False,
) -> ExecutionPlan:
    """Compile the BLTC's (tree, batches, moments, lists) into a plan.

    One group per target batch; per group first the approximation
    segments (cluster Chebyshev points carrying modified charges,
    eq. 11), then the direct segments (cluster source particles, eq. 9),
    in interaction-list order -- exactly the launch sequence of the
    paper's compute phase.  With ``numerics=False`` only the index
    structure is compiled (model-only mode; segment sizes come from the
    tree metadata, no particle data is gathered).

    The source buffers are always de-duplicated: each cluster's rows
    are stored once however many batches reference it (per-segment
    offsets alias the single copy).  ``shared_sources`` is accepted as
    a deprecated no-op.

    ``deferred_weights=True`` compiles the geometry-only skeleton used
    by :meth:`~repro.core.treecode.BarycentricTreecode.prepare`:
    ``charges`` may be None, ``moments`` needs only grids, and the
    weight buffer stays zeroed until
    :meth:`ExecutionPlan.refresh_weights` fills it (keys are the same
    ``("approx"|"direct", cluster)`` pairs recorded here).

    ``batched=True`` additionally derives the shape-bucketed execution
    layout at compile time (see the module docstring); backends that
    exploit it (``"batched"``) otherwise build it lazily on first use.
    """
    n_ip = params.n_interpolation_points
    deferred = bool(deferred_weights) and numerics
    builder = PlanBuilder(
        batches.n_targets, numerics=numerics,
        deferred_weights=deferred, batched=batched,
    )
    if charges is not None:
        # (N,) or (N, n_rhs): a charge matrix compiles a widened weight
        # buffer (row-gathers below are shape-agnostic), so column j of
        # the stored weights matches a solo compile on charges[:, j].
        charges = np.asarray(charges, dtype=np.float64)
        if charges.ndim not in (1, 2):
            raise ValueError(
                f"charges must have shape (N,) or (N, n_rhs); got a "
                f"{charges.ndim}-D array of shape {charges.shape}"
            )
    approx_ptr, approx_ids, direct_ptr, direct_ids = lists.csr()
    approx_ids = approx_ids.tolist()
    direct_ids = direct_ids.tolist()
    for b in range(len(batches)):
        if numerics:
            builder.add_group(
                targets=batches.batch_points(b),
                out_index=batches.batch_indices(b),
            )
            for c in approx_ids[approx_ptr[b]:approx_ptr[b + 1]]:
                key = ("approx", c)
                if builder.has_shared(key):
                    builder.add_segment("approx", share_key=key)
                    continue
                builder.add_segment(
                    "approx",
                    points=moments.grid(c).points,
                    weights=None if deferred else moments.charges(c),
                    share_key=key,
                )
            for c in direct_ids[direct_ptr[b]:direct_ptr[b + 1]]:
                key = ("direct", c)
                if builder.has_shared(key):
                    builder.add_segment("direct", share_key=key)
                    continue
                idx = tree.node_indices(c)
                builder.add_segment(
                    "direct",
                    points=tree.positions[idx],
                    weights=None if deferred else charges[idx],
                    share_key=key,
                )
        else:
            builder.add_group(size=batches.batch(b).count)
            for _ in range(approx_ptr[b + 1] - approx_ptr[b]):
                builder.add_segment("approx", size=n_ip)
            for c in direct_ids[direct_ptr[b]:direct_ptr[b + 1]]:
                builder.add_segment("direct", size=tree.nodes[c].count)
    return builder.build()
