"""Warm-start geometry updates for prepared sessions.

MD time-stepping moves every particle a little every step; rebuilding a
prepared session from scratch each step repays the full setup phase for
a geometry that is almost unchanged.  This module holds the
``update_geometry`` machinery behind
:meth:`~repro.core.session.SessionCore.update_geometry`:

* :class:`TreecodeGeometryUpdater` -- the incremental path for the
  single-device BLTC.  It re-bins only particles that left their leaf
  box (:meth:`~repro.tree.octree.ClusterTree.rebin`), re-qualifies and
  rebuilds only dirtied moment grids
  (:func:`~repro.core.moments.refresh_moment_geometry`), re-traverses
  only batches whose recorded MAC decisions no longer hold
  (:func:`~repro.core.interaction_lists.verify_traversal`), patches only
  the touched plan groups
  (:meth:`~repro.core.plan.ExecutionPlan.patch_groups`) and finishes
  with the mandatory in-place float refresh
  (:meth:`~repro.core.plan.ExecutionPlan.refresh_geometry`).  The
  invariant chain (cold-replay re-bin, conservative decision verify,
  replay-ordered group patch) makes every post-update ``apply()``
  bitwise equal to a cold ``prepare()`` at the new positions.
* :class:`RebuildGeometryUpdater` -- the fallback used by the Sec. 5
  extension sessions: every update rebuilds the driver's geometry state
  wholesale on the session's device and swaps it in.  Same seam, same
  result object, no incremental machinery.

Both updaters fall back to a full rebuild automatically: the
incremental path bails when the re-bin cannot preserve the tree
topology, or when the fraction of re-binned particles exceeds
``TreecodeParams.rebuild_threshold`` (past that point the dirty set is
so large that patching costs more than rebuilding).  Updaters are
picklable session state; the traversal record they cache is dropped on
pickle and rebuilt lazily at the next update.

Batched sessions need no extra handling here: ``patch_groups``
rebuilds an attached :class:`~repro.core.plan.BatchedLayout` eagerly
(including the zero-weight-padded near-field buckets, whose shapes may
change when cluster populations shift), and ``refresh_geometry``
re-derives every bucket's output slots and drops the gathered
coordinate stacks -- so the bucketed near field tracks both the
structural and the in-place tier of an update.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf.timer import PhaseTimes, Stopwatch
from .interaction_lists import (
    patch_interaction_lists,
    record_traversal,
    verify_traversal,
)
from .moments import refresh_moment_geometry

__all__ = [
    "GeometryUpdateResult",
    "TreecodeGeometryUpdater",
    "RebuildGeometryUpdater",
]


@dataclass
class GeometryUpdateResult:
    """What one ``update_geometry`` call did.

    ``rebuilt`` distinguishes a full re-prepare (with ``reason``) from
    the incremental patch path; ``noop`` short-circuits both when the
    positions are bitwise unchanged.  The remaining counters quantify
    the incremental work: particles whose leaf changed, batches whose
    lists were re-traversed, MAC evaluations spent on them, plan groups
    recompiled and moment grids rebuilt.  ``phases`` carries the
    simulated device cost of the update (a setup-phase charge);
    ``basis`` is the refreshed downward-pass basis for extension shells
    that cache one (None elsewhere).
    """

    rebuilt: bool
    reason: str = ""
    noop: bool = False
    n_rebinned: int = 0
    rebinned_fraction: float = 0.0
    n_dirty_batches: int = 0
    redone_mac_evals: int = 0
    n_patched_groups: int = 0
    n_moments_rebuilt: int = 0
    phases: PhaseTimes | None = None
    wall_seconds: float = 0.0
    basis: dict | None = None


def _as_positions(arr, n: int, what: str) -> np.ndarray:
    """Validated ``(n, 3)`` float64 *copy* of ``arr``.

    Always copies: the session's trees must own a stable array, since
    MD callers typically mutate their position buffer in place between
    steps (which would otherwise silently corrupt the no-op detection
    and the decision verify).
    """
    a = np.atleast_2d(np.array(arr, dtype=np.float64, copy=True))
    if a.shape != (n, 3):
        raise ValueError(f"{what} must have shape ({n}, 3); got {a.shape}")
    return a


class TreecodeGeometryUpdater:
    """Incremental re-prepare for the single-device BLTC session.

    Holds the driver (to delegate full rebuilds to its geometry build)
    and lazily caches the traversal decision record the verify pass
    compares against.  The record is built on first use *before* the
    re-bin commits -- it must trace the traversal the stored lists came
    from -- and patched in step with the lists afterwards, so it always
    describes the session's current interaction lists.
    """

    def __init__(self, driver) -> None:
        self.driver = driver
        self._record = None
        self._segs = None

    def __getstate__(self):
        # The record and the per-batch segment descriptions are pure
        # cache (one traversal / one list walk rebuilds them); ship
        # nothing so pickled sessions stay lean.
        state = self.__dict__.copy()
        state["_record"] = None
        state["_segs"] = None
        return state

    def _group_segs(self, lists, b: int) -> list:
        """Plan segment description of group ``b``, cached.

        The description only changes when ``patch_interaction_lists``
        rewrites the batch's lists, so entries are invalidated for
        verify-dirty batches and rebuilt lazily here.
        """
        segs = self._segs[b]
        if segs is None:
            segs = [
                ("approx", ("approx", int(c))) for c in lists.approx[b]
            ]
            segs += [
                ("direct", ("direct", int(c))) for c in lists.direct[b]
            ]
            self._segs[b] = segs
        return segs

    # ------------------------------------------------------------------
    def update(
        self, core, new_positions, *, targets=None
    ) -> GeometryUpdateResult:
        params = core.params
        geometry = core.geometry
        tree = geometry.tree
        batches = geometry.batches
        same_object = batches.positions is tree.positions

        new_src = _as_positions(new_positions, tree.n_particles, "positions")
        if targets is not None:
            new_tgt = _as_positions(targets, batches.n_targets, "targets")
        elif same_object:
            # Sources and targets are one particle set: share one copy
            # so the trees keep aliasing a single array.
            new_tgt = new_src
        else:
            new_tgt = None  # disjoint static targets stay put

        if np.array_equal(new_src, tree.positions) and (
            new_tgt is None
            or new_tgt is new_src
            or np.array_equal(new_tgt, batches.positions)
        ):
            return GeometryUpdateResult(
                rebuilt=False, noop=True, phases=PhaseTimes()
            )

        phases = PhaseTimes()
        watch = Stopwatch()
        with watch:
            result = self._update(
                core, new_src, new_tgt, phases, params=params
            )
        result.phases = phases
        result.wall_seconds = watch.elapsed
        return result

    # ------------------------------------------------------------------
    def _update(
        self, core, new_src, new_tgt, phases, *, params
    ) -> GeometryUpdateResult:
        geometry = core.geometry
        tree = geometry.tree
        batches = geometry.batches
        lists = geometry.lists
        moments = geometry.moments
        plan = geometry.plan
        device = core.device

        if not plan.has_numerics or plan.weight_slots is None:
            # Model-only (dry-run) sessions carry no float buffers to
            # patch; a rebuild reproduces the cold timing model exactly.
            return self._full_rebuild(
                core, new_src, new_tgt, phases, reason="model-only plan"
            )

        # The decision record must trace the traversal the current
        # lists came from, so build it against the *old* geometry.
        if self._record is None:
            self._record = record_traversal(batches, tree, params)

        old_src = tree.positions
        res_s = tree.rebin(new_src)
        if not res_s.ok:
            return self._full_rebuild(
                core, new_src, new_tgt, phases,
                reason=f"source re-bin: {res_s.reason}",
            )
        res_t = None
        if new_tgt is not None:
            res_t = batches.rebin(new_tgt)
            if not res_t.ok:
                return self._full_rebuild(
                    core, new_src, new_tgt, phases,
                    reason=f"target re-bin: {res_t.reason}",
                )

        n_rebinned = res_s.n_rebinned + (
            res_t.n_rebinned if res_t is not None and new_tgt is not new_src
            else 0
        )
        frac = res_s.n_rebinned / max(1, tree.n_particles)
        if res_t is not None:
            frac = max(frac, res_t.n_rebinned / max(1, batches.n_targets))
        if frac > params.rebuild_threshold:
            return self._full_rebuild(
                core, new_src, new_tgt, phases,
                reason=(
                    f"drift threshold: {frac:.3f} of particles re-binned "
                    f"(> {params.rebuild_threshold})"
                ),
                n_rebinned=n_rebinned, rebinned_fraction=frac,
            )

        # -- moments: rebuild grids/basis only where the cluster's box,
        # membership or any member coordinate changed.
        dirty_nodes = res_s.box_changed | res_s.members_dirty
        moved = np.any(old_src != new_src, axis=1)
        # Prefix sum over the permuted moved mask: a node is dirty iff
        # any particle in its contiguous [start, end) slice moved.
        cum = np.concatenate(([0], np.cumsum(moved[tree.perm])))
        for nd in tree.nodes:
            if not dirty_nodes[nd.index] and cum[nd.end] > cum[nd.start]:
                dirty_nodes[nd.index] = True
        n_moments = refresh_moment_geometry(
            moments, tree, params,
            numerics=plan.has_numerics, dirty=dirty_nodes,
        )

        # -- lists: conservative decision verify; only dirty batches
        # pay an exact scalar re-traversal.
        if self._segs is None or len(self._segs) != len(batches):
            self._segs = [None] * len(batches)
        dirty_b = verify_traversal(self._record, batches, tree, params)
        redone = 0
        if dirty_b.any():
            redone = patch_interaction_lists(
                lists, self._record, batches, tree, params, dirty_b
            )
            for b in np.nonzero(dirty_b)[0]:
                self._segs[int(b)] = None

        # -- plan: groups needing new array shapes (changed lists, a
        # resized batch, or a direct segment on a resized cluster) are
        # recompiled in place; everything else keeps its rows.
        struct_dirty = dirty_b.copy()
        src_counts = res_s.count_changed
        for b in range(len(batches)):
            if struct_dirty[b]:
                continue
            if res_t is not None and res_t.count_changed[
                batches.batch(b).index
            ]:
                struct_dirty[b] = True
                continue
            if any(src_counts[c] for c in lists.direct[b]):
                struct_dirty[b] = True
        n_patched = 0
        if struct_dirty.any():
            updates = {}
            for b in np.nonzero(struct_dirty)[0]:
                b = int(b)
                updates[b] = (
                    batches.batch_indices(b), self._group_segs(lists, b)
                )
            n_ip = params.n_interpolation_points
            counts = tree.node_counts

            def key_rows(key):
                kind, c = key
                return n_ip if kind == "approx" else int(counts[c])

            plan.patch_groups(updates, key_rows)
            n_patched = len(updates)

        # -- mandatory float refresh: every target row, output slot and
        # physical source row is rewritten from the new geometry (this
        # also repairs the zeroed buffers a group patch leaves behind).
        out_index = np.concatenate(
            [batches.batch_indices(b) for b in range(len(batches))]
        )
        src_rows = []
        for key, lo, _hi in plan.weight_slots:
            kind, c = key
            if kind == "approx":
                src_rows.append((int(lo), moments.grid(c).points))
            else:
                src_rows.append((int(lo), new_src[tree.node_indices(int(c))]))
        plan.refresh_geometry(
            targets=batches.positions[out_index],
            out_index=out_index,
            src_rows=src_rows,
        )

        # -- device accounting: the leaf-membership scan, the redone
        # MAC evaluations, and the HtD re-ship of the moved coordinates.
        device.host_work(
            tree.n_particles
            + (batches.n_targets if res_t is not None else 0)
        )
        device.host_work(4 * redone)
        upload = new_src.nbytes
        if new_tgt is not None and new_tgt is not new_src:
            upload += new_tgt.nbytes
        device.upload(upload, label="updated geometry")
        phases.setup += device.take_phase()

        core.update_scratch_bytes = (
            self._record.nbytes()
            + res_s.scratch_bytes
            + (res_t.scratch_bytes if res_t is not None else 0)
        )
        return GeometryUpdateResult(
            rebuilt=False,
            n_rebinned=n_rebinned,
            rebinned_fraction=frac,
            n_dirty_batches=int(dirty_b.sum()),
            redone_mac_evals=redone,
            n_patched_groups=n_patched,
            n_moments_rebuilt=n_moments,
        )

    # ------------------------------------------------------------------
    def _full_rebuild(
        self, core, new_src, new_tgt, phases, *, reason,
        n_rebinned=0, rebinned_fraction=0.0,
    ) -> GeometryUpdateResult:
        geometry = core.geometry
        moments = geometry.moments
        cache_basis = bool(moments.basis) or not moments.grids
        target_pos = (
            geometry.batches.positions if new_tgt is None else new_tgt
        )
        core.geometry = self.driver._build_geometry_state(
            new_src, target_pos, core.device, phases,
            numerics=geometry.plan.has_numerics, cache_basis=cache_basis,
        )
        core.device.upload(new_src.nbytes, label="source data")
        phases.setup += core.device.take_phase()
        # The old plan is unreferenced now; the multiprocessing
        # backend's finalizer unlinks its SHM shipment on collection.
        self._record = None
        self._segs = None
        core.update_scratch_bytes = 0
        return GeometryUpdateResult(
            rebuilt=True, reason=reason,
            n_rebinned=n_rebinned, rebinned_fraction=rebinned_fraction,
        )


class RebuildGeometryUpdater:
    """Full-rebuild ``update_geometry`` for extension sessions.

    The Sec. 5 schemes compile their plans from driver-private traversal
    records with no incremental patch path, so every update re-runs the
    driver's geometry build (through its ``_rebuild_geometry_state``
    hook) on the session's device and swaps the state in; the zero-
    motion no-op and position validation still short-circuit.  The hook
    returns ``(GeometryState, basis)`` -- shells that cache a
    downward-pass basis adopt the fresh one from the result.
    """

    def __init__(self, driver) -> None:
        self.driver = driver

    def update(
        self, core, new_positions, *, targets=None
    ) -> GeometryUpdateResult:
        old_src, old_tgt = self.driver._session_positions(core)
        same_object = old_tgt is old_src
        new_src = _as_positions(
            new_positions, old_src.shape[0], "positions"
        )
        if targets is not None:
            new_tgt = _as_positions(targets, old_tgt.shape[0], "targets")
        else:
            new_tgt = new_src if same_object else old_tgt

        if np.array_equal(new_src, old_src) and (
            new_tgt is new_src or np.array_equal(new_tgt, old_tgt)
        ):
            return GeometryUpdateResult(
                rebuilt=False, noop=True, phases=PhaseTimes()
            )

        phases = PhaseTimes()
        watch = Stopwatch()
        with watch:
            state, basis = self.driver._rebuild_geometry_state(
                core, new_src, new_tgt, phases
            )
            core.geometry = state
            core.device.upload(new_src.nbytes, label="source data")
            phases.setup += core.device.take_phase()
            core.update_scratch_bytes = 0
        return GeometryUpdateResult(
            rebuilt=True, reason="extension sessions rebuild wholesale",
            phases=phases, wall_seconds=watch.elapsed, basis=basis,
        )
