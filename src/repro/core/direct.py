"""Direct summation baseline, paper eq. 1.

``phi(x_i) = sum_j G(x_i, y_j) q_j`` at O(N^2) cost.  On the simulated GPU
the direct sum is computed exactly as the paper describes: "the direct sum
is computed by one launch of the batch-cluster direct sum kernel for a
batch consisting of all target particles and a cluster consisting of all
source particles" (Sec. 4).

:func:`direct_sum_at` evaluates the reference potential at a subset of
targets; the paper uses the same device for error measurement on systems
with >= 8M particles ("the error was sampled at a random subset of target
particles").
"""

from __future__ import annotations

import numpy as np

from ..gpu.device import Device
from ..kernels.base import Kernel
from .backends.base import launch_cost_multiplier

__all__ = ["direct_sum", "direct_sum_at"]


def direct_sum(
    targets: np.ndarray,
    sources: np.ndarray,
    charges: np.ndarray,
    kernel: Kernel,
    *,
    device: Device | None = None,
    dtype=np.float64,
) -> np.ndarray:
    """Direct O(M N) summation of all target-source interactions.

    Self-interactions (coincident target/source) contribute zero for
    singular kernels -- see :class:`repro.kernels.base.Kernel`.
    """
    targets = np.atleast_2d(np.asarray(targets, dtype=dtype))
    sources = np.atleast_2d(np.asarray(sources, dtype=dtype))
    charges = np.asarray(charges, dtype=dtype).ravel()
    if sources.shape[0] != charges.shape[0]:
        raise ValueError(
            f"{sources.shape[0]} sources but {charges.shape[0]} charges"
        )
    if device is not None:
        m, k = targets.shape[0], sources.shape[0]
        device.upload(targets.nbytes + sources.nbytes + charges.nbytes)
        device.launch(
            float(m) * float(k),
            blocks=m,
            kind="direct",
            flops_per_interaction=kernel.flops_per_interaction,
            cost_multiplier=launch_cost_multiplier(kernel, device, dtype),
        )
        device.download(m * np.dtype(dtype).itemsize)
    return kernel.potential(targets, sources, charges)


def direct_sum_at(
    sample_indices: np.ndarray,
    targets: np.ndarray,
    sources: np.ndarray,
    charges: np.ndarray,
    kernel: Kernel,
) -> np.ndarray:
    """Reference potential at ``targets[sample_indices]`` only.

    O(len(sample) * N) -- the error-sampling strategy the paper applies to
    large systems (Sec. 4, eq. 16).
    """
    sample_indices = np.asarray(sample_indices, dtype=np.intp).ravel()
    return direct_sum(
        np.atleast_2d(targets)[sample_indices], sources, charges, kernel
    )
