"""Execution of interaction lists with the two potential-evaluation kernels.

Paper Sec. 3.2: the GPU implementation uses two potential-evaluation
kernels -- the batch-cluster *direct sum* kernel (eq. 9) and the
batch-cluster *approximation* kernel (eq. 11).  Crucially both have the
same direct-sum form; the approximation merely replaces the cluster's
source particles by its Chebyshev points carrying modified charges.  One
kernel launch handles one (batch, cluster) pair: one thread block per
target in the batch (outer parallelism), threads over the cluster's
sources/grid points (inner parallelism), then a reduction.

Numerically both kernels are evaluated here with the same blocked
NumPy primitive (:meth:`repro.kernels.base.Kernel.potential`); the
simulated device is charged per launch with the exact interaction count
and block count.  Accumulation into the batch potential uses ``+=`` where
the GPU uses an atomic update -- same arithmetic, no race to model.

These are the standalone per-batch primitives; the pipeline drivers now
compile their work into an :class:`~repro.core.plan.ExecutionPlan` and
execute it through :mod:`repro.core.backends`, which share the same
launch-charging helpers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..gpu.device import Device
from ..kernels.base import Kernel
from .backends.base import (
    FORCE_FLOP_FACTOR,
    charge_segment_launches,
    launch_cost_multiplier,
)

__all__ = [
    "execute_batch_interactions",
    "execute_batch_forces",
    "charge_batch_launches",
]


def execute_batch_forces(
    kernel: Kernel,
    device: Device,
    batch_points: np.ndarray,
    approx_pairs: Sequence[tuple[np.ndarray, np.ndarray]],
    direct_pairs: Sequence[tuple[np.ndarray, np.ndarray]],
    *,
    dtype=np.float64,
) -> np.ndarray:
    """Force (negative potential gradient) at ``batch_points``.

    The far-field force reuses the *same* modified charges as the
    potential: F_i ~ -sum_k grad_x G(x_i, s_k) qhat_k, because the
    modified charges are independent of the target (paper Sec. 2.2) and
    differentiation acts on the target variable only.  This is the
    standard force path of kernel-independent treecodes and what the
    paper's applications (MD, DFT) consume.

    Returns ``(len(batch_points), 3)`` float64 forces per unit target
    charge/mass.
    """
    m = batch_points.shape[0]
    acc = np.zeros((m, 3), dtype=np.float64)
    if m == 0:
        return acc
    cost_mult = launch_cost_multiplier(kernel, device, dtype)
    tgt = np.ascontiguousarray(batch_points, dtype=dtype)
    for pairs, kind in ((approx_pairs, "approx-force"), (direct_pairs, "direct-force")):
        if not pairs:
            continue
        charge_segment_launches(
            device, kernel, m, [pts.shape[0] for pts, _ in pairs], kind,
            cost_multiplier=cost_mult, flops_factor=FORCE_FLOP_FACTOR,
        )
        src = np.concatenate([p for p, _ in pairs], axis=0)
        q = np.concatenate([w for _, w in pairs], axis=0)
        kernel.force(
            tgt,
            np.ascontiguousarray(src, dtype=dtype),
            np.ascontiguousarray(q, dtype=dtype),
            out=acc,
        )
    return acc


def charge_batch_launches(
    kernel: Kernel,
    device: Device,
    n_targets: int,
    approx_sizes: Sequence[int],
    direct_sizes: Sequence[int],
    *,
    dtype=np.float64,
) -> None:
    """Record the kernel launches of one batch without any numerics.

    Model-only counterpart of :func:`execute_batch_interactions`: the
    device is charged for exactly the same launches, with the same
    interaction counts and block counts, but no potential is evaluated.
    The pipeline's model mode now goes through
    :class:`~repro.core.backends.ModelBackend`; this remains the
    standalone per-batch form.
    """
    if n_targets == 0:
        return
    cost_mult = launch_cost_multiplier(kernel, device, dtype)
    for sizes, kind in ((approx_sizes, "approx"), (direct_sizes, "direct")):
        charge_segment_launches(
            device, kernel, n_targets, sizes, kind, cost_multiplier=cost_mult
        )


def execute_batch_interactions(
    kernel: Kernel,
    device: Device,
    batch_points: np.ndarray,
    approx_pairs: Sequence[tuple[np.ndarray, np.ndarray]],
    direct_pairs: Sequence[tuple[np.ndarray, np.ndarray]],
    *,
    dtype=np.float64,
) -> np.ndarray:
    """Potential at ``batch_points`` due to its interaction lists.

    Parameters
    ----------
    approx_pairs : sequence of ``(grid_points, modified_charges)`` -- one
        entry per cluster approximated via eq. 11.
    direct_pairs : sequence of ``(source_points, charges)`` -- one entry
        per cluster summed directly via eq. 9.
    dtype : evaluation precision.  ``float32`` implements the paper's
        mixed-precision future-work mode: kernels evaluate in single
        precision while the accumulator stays double.

    Returns
    -------
    (len(batch_points),) float64 potentials.
    """
    m = batch_points.shape[0]
    acc = np.zeros(m, dtype=np.float64)
    if m == 0:
        return acc
    # Mixed precision (Sec. 5 future work) halves the busy time on
    # DP:SP = 1:2 devices; the rule lives on MachineSpec.
    cost_mult = launch_cost_multiplier(kernel, device, dtype)
    tgt = np.ascontiguousarray(batch_points, dtype=dtype)

    for pairs, kind in ((approx_pairs, "approx"), (direct_pairs, "direct")):
        if not pairs:
            continue
        # One simulated kernel launch per (batch, cluster) pair ...
        charge_segment_launches(
            device, kernel, m, [pts.shape[0] for pts, _ in pairs], kind,
            cost_multiplier=cost_mult,
        )
        # ... but one fused numerical evaluation over the concatenated
        # sources, which is arithmetically identical (the potential is a
        # sum over all listed clusters) and far friendlier to NumPy.
        src = np.concatenate([p for p, _ in pairs], axis=0)
        q = np.concatenate([w for _, w in pairs], axis=0)
        kernel.potential(
            tgt,
            np.ascontiguousarray(src, dtype=dtype),
            np.ascontiguousarray(q, dtype=dtype),
            out=acc,
        )
    return acc
