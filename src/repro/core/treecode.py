"""Single-device barycentric Lagrange treecode driver (BLTC algorithm).

Orchestrates the full pipeline of the paper's Sec. 2.4 algorithm on one
(simulated) device.  Since the execution-plan refactor the pipeline has
three layers:

1. **Structure** [setup/precompute] -- build the source-cluster tree and
   the target batches, compute modified charges for every cluster (two
   kernels), and build per-batch interaction lists.  These phases charge
   the device for the copies and preprocessing kernels exactly as the
   paper's OpenACC code performs them.
2. **Planning** -- :func:`repro.core.plan.compile_plan` flattens
   ``(tree, batches, moments, lists)`` into an
   :class:`~repro.core.plan.ExecutionPlan`: CSR-style batch->segment
   index arrays plus pre-gathered target/source buffers, one segment per
   simulated kernel launch.  No device time is charged here -- the plan
   is the simulator's internal representation, not algorithmic work.
3. **Execution** [compute] -- a pluggable backend
   (:mod:`repro.core.backends`) runs the plan: ``"numpy"`` reproduces
   the seed's blocked per-batch arithmetic byte-for-byte, ``"fused"``
   evaluates straight from the shared buffers (faster wall-clock, same
   counters), and ``"model"`` charges launches without numerics (the old
   ``dry_run`` path).  All backends charge the device through one code
   path, so launches, interaction counts, bytes and phase times are
   backend-independent.

Select a backend with ``TreecodeParams(backend="fused")``;
``compute(dry_run=True)`` forces the model backend.  Phase attribution
follows the paper's setup / precompute / compute definition (Sec. 4).
The distributed driver in :mod:`repro.distributed` wraps the same
building blocks with RCB partitioning and locally essential trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import DEFAULT_PARAMS, TreecodeParams
from ..gpu.device import Device, make_device
from ..kernels.base import Kernel
from ..perf.machine import GPU_TITAN_V, MachineSpec
from ..perf.timer import PhaseTimes, Stopwatch
from ..tree.batches import TargetBatches
from ..tree.octree import ClusterTree
from ..workloads import ParticleSet
from .backends import Backend, get_backend
from .interaction_lists import InteractionLists, build_interaction_lists
from .moments import ClusterMoments, precompute_moments
from .plan import ExecutionPlan, compile_plan

__all__ = ["BarycentricTreecode", "TreecodeResult"]

FLOAT_BYTES = 8


@dataclass
class TreecodeResult:
    """Potentials plus the full timing/statistics record of one run."""

    #: (n_targets,) potential at each target, in input target order.
    potential: np.ndarray
    #: Simulated seconds per phase (the paper's reported quantity).
    phases: PhaseTimes
    #: Wall-clock seconds of this Python process (diagnostic only).
    wall_seconds: float
    #: Structural statistics of the run.
    stats: dict = field(default_factory=dict)
    #: (n_targets, 3) force per unit target charge, when requested.
    forces: np.ndarray | None = None

    @property
    def simulated_total(self) -> float:
        return self.phases.total


class BarycentricTreecode:
    """Kernel-independent barycentric Lagrange treecode on one device.

    Parameters
    ----------
    kernel : interaction kernel ``G(x, y)``.
    params : treecode parameters (theta, degree, NL, NB, backend, ...).
    machine : device specification for the simulated timing; defaults to
        the paper's Titan V.  Pass ``CPU_XEON_X5650`` for the CPU model.
    async_streams : queue kernels on 4 asynchronous streams (Sec. 3.2);
        False reproduces the synchronous baseline.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: TreecodeParams = DEFAULT_PARAMS,
        *,
        machine: MachineSpec = GPU_TITAN_V,
        async_streams: bool = True,
    ) -> None:
        self.kernel = kernel
        self.params = params
        self.machine = machine
        self.async_streams = bool(async_streams)

    # ------------------------------------------------------------------
    def compute(
        self,
        sources: ParticleSet,
        targets: np.ndarray | ParticleSet | None = None,
        *,
        dry_run: bool = False,
        compute_forces: bool = False,
    ) -> TreecodeResult:
        """Compute the potential at every target due to all sources.

        ``targets`` defaults to the source positions (the paper's test
        cases); pass a ``(M, 3)`` array or another :class:`ParticleSet`
        for disjoint targets (BEM-style usage).

        ``compute_forces=True`` additionally evaluates the force (the
        negative potential gradient) at every target, reusing the same
        tree, interaction lists and modified charges; requires a kernel
        with an analytic gradient.

        ``dry_run=True`` forces the model backend regardless of
        ``params.backend``: tree, batches, moments bookkeeping,
        interaction lists, the compiled plan and every simulated device
        event are produced exactly as in a real run, but the
        floating-point evaluation is skipped and the returned potential
        is all zeros.  This lets the timing model run at paper scale
        (10^6-10^9 particles) where Python numerics would be
        prohibitive.
        """
        params = self.params
        backend = get_backend("model" if dry_run else params.backend)
        if targets is None:
            target_pos = sources.positions
        elif isinstance(targets, ParticleSet):
            target_pos = targets.positions
        else:
            target_pos = np.atleast_2d(np.asarray(targets, dtype=np.float64))
        device = make_device(self.machine, async_streams=self.async_streams)
        phases = PhaseTimes()
        watch = Stopwatch()

        with watch:
            # -- setup: tree of source clusters and set of target batches
            tree = ClusterTree(
                sources.positions,
                params.max_leaf_size,
                aspect_ratio_splitting=params.aspect_ratio_splitting,
                shrink_to_fit=params.shrink_to_fit,
            )
            batches = TargetBatches(
                target_pos,
                params.max_batch_size,
                aspect_ratio_splitting=params.aspect_ratio_splitting,
                shrink_to_fit=params.shrink_to_fit,
            )
            device.host_work(
                sources.n * (tree.max_level + 1)
                + target_pos.shape[0] * (batches.max_level + 1)
            )
            phases.setup += device.take_phase()

            # -- precompute: HtD source copy, moment kernels, DtH moments
            device.upload(sources.nbytes(), label="source data")
            moments = precompute_moments(
                tree,
                sources.charges,
                params,
                device=device,
                numerics=backend.needs_numerics,
            )
            moments_bytes = (
                moments.n_clusters * params.n_interpolation_points * FLOAT_BYTES
            )
            device.download(moments_bytes, label="modified charges")
            phases.precompute += device.take_phase()

            # -- setup: interaction lists + HtD of targets and LET data
            lists = build_interaction_lists(batches, tree, params)
            device.host_work(lists.mac_evals * 4)
            device.upload(
                target_pos.nbytes + self._let_bytes(tree, lists, params),
                label="targets + LET",
            )
            phases.setup += device.take_phase()

            # -- plan: flatten lists into backend-ready arrays (host-side
            # representation of work already charged above; no device time)
            plan = compile_plan(
                tree, batches, moments, lists, sources.charges, params,
                numerics=backend.needs_numerics,
                shared_sources=params.shared_sources,
            )

            # -- compute: backend executes the plan + DtH potentials
            potential, forces = backend.execute(
                plan,
                self.kernel,
                device,
                dtype=params.dtype,
                compute_forces=compute_forces,
            )
            device.download(potential.nbytes, label="potentials")
            if forces is not None:
                device.download(forces.nbytes, label="forces")
            phases.compute += device.take_phase()

        stats = self._stats(tree, batches, lists, moments, device)
        return TreecodeResult(
            potential=potential,
            phases=phases,
            wall_seconds=watch.elapsed,
            stats=stats,
            forces=forces,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _let_bytes(
        tree: ClusterTree, lists: InteractionLists, params: TreecodeParams
    ) -> int:
        """Bytes of source-side data the compute phase needs on-device.

        Union over batches of directly-summed clusters' particle data
        (3 coordinates + charge each) plus approximated clusters' modified
        charges.  This is exactly what a rank's LET holds (Sec. 3.1).
        """
        direct_nodes: set[int] = set()
        approx_nodes: set[int] = set()
        for d in lists.direct:
            direct_nodes.update(int(c) for c in d)
        for a in lists.approx:
            approx_nodes.update(int(c) for c in a)
        direct_particles = sum(tree.nodes[c].count for c in direct_nodes)
        return (
            direct_particles * 4 * FLOAT_BYTES
            + len(approx_nodes) * params.n_interpolation_points * FLOAT_BYTES
        )

    def _stats(
        self,
        tree: ClusterTree,
        batches: TargetBatches,
        lists: InteractionLists,
        moments: ClusterMoments,
        device: Device,
    ) -> dict:
        c = device.counters
        return {
            "kernel": self.kernel.name,
            "machine": self.machine.name,
            "n_sources": tree.n_particles,
            "n_targets": batches.n_targets,
            "n_tree_nodes": len(tree),
            "n_leaves": tree.n_leaves,
            "tree_depth": tree.max_level,
            "n_batches": len(batches),
            "n_clusters_with_moments": moments.n_clusters,
            "n_approx_interactions": lists.n_approx,
            "n_direct_interactions": lists.n_direct,
            "mac_evals": lists.mac_evals,
            "launches": c.launches,
            "kernel_evaluations": c.interactions,
            "bytes_h2d": c.bytes_h2d,
            "bytes_d2h": c.bytes_d2h,
            "by_kind": {k: tuple(v) for k, v in c.by_kind.items()},
            "busy_by_kind": dict(c.busy_by_kind),
        }
