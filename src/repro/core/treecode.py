"""Single-device barycentric Lagrange treecode driver (BLTC algorithm).

Orchestrates the paper's Sec. 2.4 algorithm on one (simulated) device.
Since the prepared-session refactor the pipeline is split along the
charge-dependence boundary:

1. **Structure** [setup, charged once per geometry] --
   :meth:`BarycentricTreecode.prepare` builds the source-cluster tree,
   the target batches, per-batch interaction lists and the per-cluster
   Chebyshev grids, and compiles a geometry-only
   :class:`~repro.core.plan.ExecutionPlan` skeleton (CSR-style
   batch->segment index arrays plus pre-gathered target/source
   coordinate buffers).  The device is charged for the host-side builds
   and the targets + LET upload exactly as the paper's OpenACC code
   performs them; none of this work depends on the charges.
2. **Charge refresh** [precompute, charged per evaluation] --
   :meth:`PreparedTreecode.apply` ships the (new) charges to the
   device, re-runs the paper's two modified-charge kernels on the
   cached cluster grids (:func:`repro.core.moments.refresh_moments`),
   and overwrites the plan's weight buffer in place
   (:meth:`~repro.core.plan.ExecutionPlan.refresh_weights`).
3. **Execution** [compute, charged per evaluation] -- a pluggable
   backend (:mod:`repro.core.backends`) runs the plan: ``"numpy"``
   reproduces the seed's blocked per-batch arithmetic byte-for-byte,
   ``"fused"`` evaluates straight from the shared buffers,
   ``"multiprocessing"`` shards groups over a worker pool (refreshing
   only the weight region of its cached shared-memory shipment), and
   ``"model"`` charges launches without numerics (the old ``dry_run``
   path).  All backends charge the device through one code path, so
   launches, interaction counts, bytes and phase times are
   backend-independent.

:meth:`BarycentricTreecode.compute` is exactly ``prepare()`` followed
by one ``apply()`` -- byte-identical results, counters and phase times
to the monolithic pipeline it replaces -- while MD time-stepping and
BEM-style multi-RHS solves call ``prepare()`` once and ``apply()`` per
charge vector, amortizing every charge-independent phase.  An apply
also accepts an ``(N, n_rhs)`` charge *block*: the plan's weight slots
widen to ``(k, n_rhs)`` and every backend evaluates all columns in one
traversal (per-group GEMVs grow into GEMMs), column ``j`` bitwise equal
to a solo apply of ``charges[:, j]``.  Select a
backend with ``TreecodeParams(backend="fused")``;
``compute(dry_run=True)`` / ``apply(dry_run=True)`` force the model
backend.  Phase attribution follows the paper's setup / precompute /
compute definition (Sec. 4).  The distributed driver in
:mod:`repro.distributed` wraps the same building blocks with RCB
partitioning and locally essential trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import DEFAULT_PARAMS, TreecodeParams
from ..gpu.device import Device, make_device
from ..kernels.base import Kernel
from ..perf.machine import GPU_TITAN_V, MachineSpec
from ..perf.timer import PhaseTimes, Stopwatch
from ..tree.batches import TargetBatches
from ..tree.octree import ClusterTree
from ..workloads import ParticleSet
from .backends import Backend, get_backend
from .dynamic import GeometryUpdateResult, TreecodeGeometryUpdater
from .interaction_lists import InteractionLists, build_interaction_lists
from .moments import ClusterMoments, prepare_moment_grids
from .plan import ExecutionPlan, compile_plan
from .session import (
    GeometryState,
    SessionCore,
    TreecodeWeightSource,
    format_health_stats,
    format_memory_stats,
)

__all__ = ["BarycentricTreecode", "PreparedTreecode", "TreecodeResult"]

FLOAT_BYTES = 8


@dataclass
class TreecodeResult:
    """Potentials plus the full timing/statistics record of one run."""

    #: (n_targets,) potential at each target, in input target order.
    potential: np.ndarray
    #: Simulated seconds per phase (the paper's reported quantity).
    phases: PhaseTimes
    #: Wall-clock seconds of this Python process (diagnostic only).
    wall_seconds: float
    #: Structural statistics of the run.
    stats: dict = field(default_factory=dict)
    #: (n_targets, 3) force per unit target charge, when requested.
    forces: np.ndarray | None = None

    @property
    def simulated_total(self) -> float:
        return self.phases.total


class BarycentricTreecode:
    """Kernel-independent barycentric Lagrange treecode on one device.

    Parameters
    ----------
    kernel : interaction kernel ``G(x, y)``.
    params : treecode parameters (theta, degree, NL, NB, backend, ...).
    machine : device specification for the simulated timing; defaults to
        the paper's Titan V.  Pass ``CPU_XEON_X5650`` for the CPU model.
    async_streams : queue kernels on 4 asynchronous streams (Sec. 3.2);
        False reproduces the synchronous baseline.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: TreecodeParams = DEFAULT_PARAMS,
        *,
        machine: MachineSpec = GPU_TITAN_V,
        async_streams: bool = True,
    ) -> None:
        self.kernel = kernel
        self.params = params
        self.machine = machine
        self.async_streams = bool(async_streams)

    # ------------------------------------------------------------------
    def compute(
        self,
        sources: ParticleSet,
        targets: np.ndarray | ParticleSet | None = None,
        *,
        charges: np.ndarray | None = None,
        dry_run: bool = False,
        compute_forces: bool = False,
    ) -> TreecodeResult:
        """Compute the potential at every target due to all sources.

        ``targets`` defaults to the source positions (the paper's test
        cases); pass a ``(M, 3)`` array or another :class:`ParticleSet`
        for disjoint targets (BEM-style usage).

        ``charges`` defaults to ``sources.charges``; pass an ``(N,)``
        vector to override it, or an ``(N, n_rhs)`` block to evaluate
        many charge vectors in one traversal (the potential then has
        shape ``(M, n_rhs)`` and forces ``(M, 3, n_rhs)``, column ``j``
        bitwise equal to a solo run on column ``j``).

        ``compute_forces=True`` additionally evaluates the force (the
        negative potential gradient) at every target, reusing the same
        tree, interaction lists and modified charges; requires a kernel
        with an analytic gradient.

        ``dry_run=True`` forces the model backend regardless of
        ``params.backend``: tree, batches, moments bookkeeping,
        interaction lists, the compiled plan and every simulated device
        event are produced exactly as in a real run, but the
        floating-point evaluation is skipped and the returned potential
        is all zeros.  This lets the timing model run at paper scale
        (10^6-10^9 particles) where Python numerics would be
        prohibitive.

        Implemented as :meth:`prepare` + one
        :meth:`PreparedTreecode.apply` -- identical results, counters
        and phase times to the pre-session monolithic pipeline.  Use the
        two-stage form directly for repeated evaluation on fixed
        geometry.
        """
        # cache_basis=False: a one-shot run uses each cluster's basis
        # matrices once, so holding them all simultaneously would only
        # regress peak memory vs. the monolithic pipeline.
        prepared = self.prepare(
            sources, targets, dry_run=dry_run, cache_basis=False
        )
        result = prepared.apply(
            sources.charges if charges is None else charges,
            compute_forces=compute_forces, dry_run=dry_run,
        )
        return TreecodeResult(
            potential=result.potential,
            phases=prepared.phases + result.phases,
            wall_seconds=prepared.wall_seconds + result.wall_seconds,
            stats=result.stats,
            forces=result.forces,
        )

    # ------------------------------------------------------------------
    def prepare(
        self,
        sources: ParticleSet,
        targets: np.ndarray | ParticleSet | None = None,
        *,
        dry_run: bool = False,
        cache_basis: bool = True,
    ) -> "PreparedTreecode":
        """Capture all charge-independent state for repeated evaluation.

        Builds the source tree, the target batches, the interaction
        lists, the per-cluster Chebyshev grids (with cached Lagrange
        basis matrices) and the geometry-only execution-plan skeleton,
        charging the device for the setup phase once.  The returned
        :class:`PreparedTreecode` evaluates any number of charge
        vectors on this geometry via
        :meth:`PreparedTreecode.apply`; the initial
        ``sources.charges`` are *not* baked in.

        ``dry_run=True`` prepares a model-only session (structure-only
        plan, no coordinate gathering): every ``apply`` then runs the
        timing model at paper scale.

        ``cache_basis=False`` skips caching the per-cluster Lagrange
        basis matrices: applies then re-evaluate the basis per step
        (bitwise-identical, ~3(n+1)N fewer resident floats).  Sessions
        keep the cache by default; one-shot ``compute()`` turns it off.
        """
        params = self.params
        backend_spec = "model" if dry_run else params.backend
        backend = get_backend(backend_spec)
        if targets is None:
            target_pos = sources.positions
        elif isinstance(targets, ParticleSet):
            target_pos = targets.positions
        else:
            target_pos = np.atleast_2d(np.asarray(targets, dtype=np.float64))
        device = make_device(self.machine, async_streams=self.async_streams)
        phases = PhaseTimes()
        watch = Stopwatch()

        with watch:
            geometry = self._build_geometry_state(
                sources.positions, target_pos, device, phases,
                numerics=backend.needs_numerics, cache_basis=cache_basis,
            )

        core = SessionCore(
            kernel=self.kernel,
            params=params,
            backend=backend_spec,
            device=device,
            geometry=geometry,
            weight_source=TreecodeWeightSource(),
            n_charges=geometry.tree.n_particles,
            first_upload_nbytes=sources.positions.nbytes,
            geometry_updater=TreecodeGeometryUpdater(self),
        )
        return PreparedTreecode(
            driver=self,
            core=core,
            phases=phases,
            wall_seconds=watch.elapsed,
        )

    # ------------------------------------------------------------------
    def _build_geometry_state(
        self,
        source_pos: np.ndarray,
        target_pos: np.ndarray,
        device: Device,
        phases: PhaseTimes,
        *,
        numerics: bool,
        cache_basis: bool,
    ) -> GeometryState:
        """Build the full charge-independent geometry on ``device``.

        The body of :meth:`prepare`, factored so the dynamic-geometry
        updater's full-rebuild fallback charges the same setup work on
        the *session's* device (accumulating its counters) and produces
        a state bitwise identical to a cold prepare at the positions.
        """
        params = self.params
        # -- setup: tree of source clusters and set of target batches
        tree = ClusterTree(
            source_pos,
            params.max_leaf_size,
            aspect_ratio_splitting=params.aspect_ratio_splitting,
            shrink_to_fit=params.shrink_to_fit,
        )
        batches = TargetBatches(
            target_pos,
            params.max_batch_size,
            aspect_ratio_splitting=params.aspect_ratio_splitting,
            shrink_to_fit=params.shrink_to_fit,
        )
        device.host_work(
            source_pos.shape[0] * (tree.max_level + 1)
            + target_pos.shape[0] * (batches.max_level + 1)
        )
        phases.setup += device.take_phase()

        # -- charge-independent moment state: qualifying clusters,
        # Chebyshev grids, cached basis matrices (no device time --
        # the paper's moment kernels are charged per apply()).
        moments = prepare_moment_grids(
            tree, params, numerics=numerics, cache_basis=cache_basis,
        )

        # -- setup: interaction lists + HtD of targets and LET data
        lists = build_interaction_lists(batches, tree, params)
        device.host_work(lists.mac_evals * 4)
        device.upload(
            target_pos.nbytes + self._let_bytes(tree, lists, params),
            label="targets + LET",
        )
        phases.setup += device.take_phase()

        # -- plan: geometry-only skeleton (host-side representation
        # of work already charged above; no device time).  The
        # weight buffer stays zeroed until the first apply().
        plan = compile_plan(
            tree, batches, moments, lists, None, params,
            numerics=numerics,
            deferred_weights=True,
            batched=params.batched,
        )
        return GeometryState(
            plan=plan, tree=tree, batches=batches,
            lists=lists, moments=moments,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _let_bytes(
        tree: ClusterTree, lists: InteractionLists, params: TreecodeParams
    ) -> int:
        """Bytes of source-side data the compute phase needs on-device.

        Union over batches of directly-summed clusters' particle data
        (3 coordinates + charge each) plus approximated clusters' modified
        charges.  This is exactly what a rank's LET holds (Sec. 3.1).
        The unique-node accounting is vectorized (``np.unique`` over the
        concatenated lists against the tree's cached count vector); the
        totals are integers, so the value matches the old per-entry
        Python set loops exactly.
        """
        _, approx_ids, _, direct_ids = lists.csr()
        direct_particles = int(
            tree.node_counts[np.unique(direct_ids)].sum()
        )
        n_approx_nodes = int(np.unique(approx_ids).size)
        return (
            direct_particles * 4 * FLOAT_BYTES
            + n_approx_nodes * params.n_interpolation_points * FLOAT_BYTES
        )

    def _stats(
        self,
        tree: ClusterTree,
        batches: TargetBatches,
        lists: InteractionLists,
        moments: ClusterMoments,
        device: Device,
    ) -> dict:
        c = device.counters
        return {
            "kernel": self.kernel.name,
            "machine": self.machine.name,
            "n_sources": tree.n_particles,
            "n_targets": batches.n_targets,
            "n_tree_nodes": len(tree),
            "n_leaves": tree.n_leaves,
            "tree_depth": tree.max_level,
            "n_batches": len(batches),
            "n_clusters_with_moments": moments.n_clusters,
            "n_approx_interactions": lists.n_approx,
            "n_direct_interactions": lists.n_direct,
            "mac_evals": lists.mac_evals,
            "launches": c.launches,
            "kernel_evaluations": c.interactions,
            "bytes_h2d": c.bytes_h2d,
            "bytes_d2h": c.bytes_d2h,
            "by_kind": {k: tuple(v) for k, v in c.by_kind.items()},
            "busy_by_kind": dict(c.busy_by_kind),
        }


class PreparedTreecode:
    """A treecode session with fixed geometry and refreshable charges.

    Produced by :meth:`BarycentricTreecode.prepare`; holds the tree,
    batches, interaction lists, cluster grids, the geometry-only
    execution plan and the session's simulated device.  Each
    :meth:`apply` evaluates one charge vector -- or a whole
    ``(N, n_rhs)`` block of them in a single traversal: the setup phase
    was charged once at prepare time, so an apply charges only the
    charge upload, the moment kernels and the compute phase.  Device counters
    accumulate over the session (the first apply therefore reports
    exactly the numbers of a monolithic ``compute()``); per-apply cost
    is in the returned ``phases``.

    Attributes of interest: ``phases`` (the setup cost charged at
    prepare), ``n_applies``, and the captured ``tree`` / ``batches`` /
    ``lists`` / ``plan``.  All session state lives in the shared
    :class:`~repro.core.session.SessionCore` (``.core``); this class is
    the driver-specific shell (stats + result assembly), and the whole
    session pickles through the core's process-local-state-dropping
    ``__getstate__``.
    """

    def __init__(
        self,
        *,
        driver: BarycentricTreecode,
        core: SessionCore,
        phases: PhaseTimes,
        wall_seconds: float,
    ) -> None:
        self.driver = driver
        self.core = core
        #: Setup-phase cost charged once at prepare time.
        self.phases = phases
        self.wall_seconds = wall_seconds

    # -- session-core delegation ---------------------------------------
    @property
    def backend(self) -> Backend:
        return self.core.backend

    @property
    def device(self) -> Device:
        return self.core.device

    @property
    def tree(self) -> ClusterTree:
        return self.core.geometry.tree

    @property
    def batches(self) -> TargetBatches:
        return self.core.geometry.batches

    @property
    def moments(self) -> ClusterMoments:
        return self.core.geometry.moments

    @property
    def lists(self) -> InteractionLists:
        return self.core.geometry.lists

    @property
    def plan(self) -> ExecutionPlan:
        return self.core.geometry.plan

    @property
    def n_applies(self) -> int:
        return self.core.n_applies

    @property
    def kernel(self) -> Kernel:
        return self.driver.kernel

    @property
    def params(self) -> TreecodeParams:
        return self.driver.params

    @property
    def n_sources(self) -> int:
        return self.tree.n_particles

    @property
    def n_targets(self) -> int:
        return self.batches.n_targets

    def geometry_key(self) -> str:
        """Stable content hash of the prepared geometry (cache key)."""
        return self.core.geometry_key()

    def memory_stats(self) -> dict:
        """Resident bytes by category (see ``SessionCore.memory_stats``)."""
        return self.core.memory_stats()

    def health_stats(self) -> dict:
        """Fault-tolerance counters (see ``SessionCore.health_stats``)."""
        return self.core.health_stats()

    def update_geometry(
        self,
        new_positions: np.ndarray,
        *,
        targets: np.ndarray | None = None,
    ) -> GeometryUpdateResult:
        """Move the session to new particle positions in place.

        The warm-start path for MD time-stepping: instead of a cold
        ``prepare()`` per step, the session re-bins only particles that
        left their leaf box, rebuilds only dirtied moment grids,
        re-traverses only batches whose recorded MAC decisions no
        longer hold, and patches only the touched plan groups -- then
        every subsequent :meth:`apply` is bitwise equal to a cold
        prepare at the new positions, on every backend and dtype.  When
        the re-bin cannot preserve the tree topology, or the re-binned
        fraction exceeds ``params.rebuild_threshold``, the geometry is
        rebuilt wholesale on the same session (the result says which
        happened and why).  Sessions prepared with targets defaulted to
        the sources move both sets together; pass ``targets`` to move a
        disjoint target set explicitly (omitting it leaves disjoint
        targets where they are).

        The simulated setup cost of the update accrues to
        ``self.phases``; :meth:`geometry_key` changes whenever any
        position actually moved.
        """
        result = self.core.update_geometry(new_positions, targets=targets)
        if result.phases is not None:
            self.phases += result.phases
        self.wall_seconds += result.wall_seconds
        return result

    def __repr__(self) -> str:
        return (
            f"<PreparedTreecode n_sources={self.n_sources} "
            f"n_targets={self.n_targets} n_applies={self.n_applies} "
            f"{format_memory_stats(self.memory_stats())} "
            f"{format_health_stats(self.health_stats())}>"
        )

    # ------------------------------------------------------------------
    def apply(
        self,
        charges: np.ndarray,
        *,
        compute_forces: bool = False,
        dry_run: bool = False,
    ) -> TreecodeResult:
        """Evaluate the prepared geometry for one or many charge vectors.

        Uploads the charges (the first apply ships the full source data
        exactly as the monolithic pipeline's precompute phase does;
        later applies re-ship only the charge vector), recomputes the
        modified charges on the cached cluster grids, refreshes the
        plan's weight buffer in place, and executes through the
        session's backend.  ``phases.setup`` is always zero here -- the
        geometry work was charged at prepare time.

        ``charges`` may be an ``(N,)`` vector or an ``(N, n_rhs)``
        block.  A block evaluates every column in one traversal -- the
        potential comes back ``(M, n_rhs)`` and forces ``(M, 3, n_rhs)``
        with column ``j`` bitwise equal to a solo apply of
        ``charges[:, j]`` -- amortizing the tree walk, the pairwise
        distance work and (on the batched backend) growing every
        per-group GEMV into a GEMM.  The plan's weight buffer widens to
        ``(k, n_rhs)`` for the step, so resident weight memory scales
        with the block width.

        ``dry_run=True`` runs this apply through the model backend
        (launch accounting only, zero potentials) regardless of the
        session backend; the moment kernels and uploads are still
        charged, so the timing model sees a faithful step.
        """
        core = self.core
        charges, multi, n_rhs = core.charge_block(charges)
        # dry_run passes the model backend as an explicit override
        # (overrides never degrade); normal applies let the session
        # resolve so the fallback chain can serve when the configured
        # backend fails (see SessionCore.execute_plan).  All fallback
        # backends need numerics, so the flag computed here stays valid
        # across a degradation.
        backend = get_backend("model") if dry_run else core.backend
        numerics = self.plan.has_numerics and backend.needs_numerics
        phases = PhaseTimes()
        watch = Stopwatch()

        with watch:
            # -- precompute: HtD charges, moment kernels, DtH moments;
            # then the weight refresh + compute phase (backend executes
            # the plan, DtH potentials) -- all through the session core.
            core.precompute(charges, phases, numerics=numerics, n_rhs=n_rhs)
            potential, forces = core.execute_plan(
                charges, phases,
                backend=backend if dry_run else None, numerics=numerics,
                compute_forces=compute_forces, multi=multi, n_rhs=n_rhs,
            )

        core.n_applies += 1
        stats = self.driver._stats(
            self.tree, self.batches, self.lists, self.moments, core.device
        )
        stats["n_applies"] = core.n_applies
        return TreecodeResult(
            potential=potential,
            phases=phases,
            wall_seconds=watch.elapsed,
            stats=stats,
            forces=forces,
        )
