"""The barycentric Lagrange treecode core (paper Sec. 2).

* :mod:`~repro.core.mac` -- the two-condition multipole acceptance
  criterion (eq. 13).
* :mod:`~repro.core.interaction_lists` -- the recursive batch/cluster dual
  traversal (BLTC algorithm lines 10-20) over local or remote trees.
* :mod:`~repro.core.moments` -- modified charges (eq. 12) via the two
  preprocessing kernels (eqs. 14-15).
* :mod:`~repro.core.plan` -- compiles (tree, batches, moments, lists)
  into a flat :class:`~repro.core.plan.ExecutionPlan`.
* :mod:`~repro.core.backends` -- pluggable plan-evaluation backends
  (numpy reference, fused, multiprocessing, numba-JIT, model-only)
  behind one registry.
* :mod:`~repro.core.executor` -- standalone per-batch evaluation
  primitives (the pre-plan form, still useful for direct experiments).
* :mod:`~repro.core.direct` -- the O(N^2) direct-summation baseline.
* :mod:`~repro.core.treecode` -- the single-device BLTC driver.
"""

from .backends import (
    Backend,
    BatchedBackend,
    FusedBackend,
    ModelBackend,
    MultiprocessingBackend,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .direct import direct_sum, direct_sum_at
from .mac import mac_accepts, mac_geometric
from .interaction_lists import InteractionLists, build_interaction_lists
from .moments import (
    cluster_grid,
    modified_charges,
    precompute_moments,
    prepare_moment_grids,
    refresh_moments,
)
from .plan import ExecutionPlan, PlanBuilder, compile_plan
from .treecode import BarycentricTreecode, PreparedTreecode, TreecodeResult

__all__ = [
    "mac_geometric",
    "mac_accepts",
    "InteractionLists",
    "build_interaction_lists",
    "cluster_grid",
    "modified_charges",
    "precompute_moments",
    "prepare_moment_grids",
    "refresh_moments",
    "direct_sum",
    "direct_sum_at",
    "ExecutionPlan",
    "PlanBuilder",
    "compile_plan",
    "Backend",
    "NumpyBackend",
    "BatchedBackend",
    "FusedBackend",
    "MultiprocessingBackend",
    "NumbaBackend",
    "ModelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "BarycentricTreecode",
    "PreparedTreecode",
    "TreecodeResult",
]
