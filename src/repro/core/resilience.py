"""Deterministic fault injection and retry policies for the execution layer.

Testing worker-crash recovery by actually racing ``kill`` against a
process pool is flaky by construction; this module makes every failure
mode of the execution layer *deterministically* reproducible instead.
A :class:`FaultInjector` holds a list of parsed fault specs and is
consulted at fixed injection points (sites) wired into the codebase:

======================  =====================================================
site                    effect at the injection point
======================  =====================================================
``mp_worker_crash``     the matched shard's worker calls ``os._exit`` before
                        touching the shipment (kills the whole pool)
``mp_worker_hang``      the matched shard's worker sleeps ``seconds=`` (def.
                        30) before evaluating -- exercises shard timeouts
``mp_pool_broken``      the parent raises ``BrokenProcessPool`` before
                        submitting (cheap pool-loss simulation)
``shipment_pack``       shared-memory packing reports SHM unavailable; the
                        shipment falls back to pickle shipping
``shipment_pack_fatal`` shared-memory packing raises ``OSError`` outside the
                        guarded region -- surfaces as ``ShipmentError``
``numba_import``        numba is treated as unimportable (registration is
                        skipped at import time; construction raises
                        ``BackendUnavailableError``)
``batched_layout``      building the batched execution layout raises --
                        surfaces as ``BackendExecutionError``
======================  =====================================================

Spec syntax (the ``REPRO_FAULT`` environment variable, or the string
handed to :func:`configure_faults`)::

    REPRO_FAULT="mp_worker_crash:shard=2:times=1"
    REPRO_FAULT="mp_worker_crash:shard=0,shipment_pack:times=2"

Comma-separated entries; each entry is a site name followed by
``key=value`` qualifiers.  ``times=N`` bounds how often the entry fires
(default: unlimited).  Any other key must match the keyword context the
injection point passes to :meth:`FaultInjector.fire` (``shard=2`` fires
only for shard index 2); keys the site does not pass in its context act
as payload parameters readable via :meth:`FaultSpec.get`
(``mp_worker_hang:seconds=2``).  Counting is per-spec and lock-guarded,
so a given scenario injects the same faults in the same order every run
-- CI can assert exact recovery behaviour (one crash, one pool rebuild,
bitwise-identical results) without ever killing a process for real.

:class:`RetryPolicy` is the companion knob bundle for *bounded*
recovery: total attempt count, exponential backoff between attempts and
an optional per-shard future timeout.  The multiprocessing backend takes
one (``MultiprocessingBackend(retry=...)``).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "RetryPolicy",
    "get_fault_injector",
    "configure_faults",
    "fault_active",
]

FAULT_ENV_VAR = "REPRO_FAULT"


def _coerce(value: str):
    """Spec values: int when the text is integral, float when numeric,
    the raw string otherwise."""
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


@dataclass
class FaultSpec:
    """One parsed fault entry: a site plus qualifiers.

    ``params`` holds every ``key=value`` qualifier except ``times``;
    keys present in an injection point's context are matchers, the rest
    are payload (:meth:`get`).  ``fired`` counts how often this spec
    triggered (bounded by ``times`` when set).
    """

    site: str
    params: dict = field(default_factory=dict)
    times: int | None = None
    fired: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        parts = [p.strip() for p in text.split(":") if p.strip()]
        if not parts:
            raise ValueError(f"empty fault spec in {text!r}")
        site, params, times = parts[0], {}, None
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"fault qualifier {part!r} is not key=value (in {text!r})"
                )
            if key == "times":
                times = int(value)
            else:
                params[key] = _coerce(value)
        return cls(site=site, params=params, times=times)

    def get(self, key: str, default=None):
        """Payload parameter lookup (non-matcher qualifiers)."""
        return self.params.get(key, default)

    @property
    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times

    def matches(self, context: dict) -> bool:
        return all(
            context[k] == v for k, v in self.params.items() if k in context
        )


class FaultInjector:
    """Deterministic, counted fault injection at named sites.

    ``fire(site, **context)`` returns the first armed :class:`FaultSpec`
    whose site and matchers agree with ``context`` (consuming one of its
    ``times``), or ``None``.  With no specs configured -- production --
    every call is a cheap early return.
    """

    def __init__(self, specs: list[FaultSpec] | None = None) -> None:
        self._specs = list(specs or [])
        self._lock = threading.Lock()

    @classmethod
    def from_string(cls, text: str | None) -> "FaultInjector":
        specs = [
            FaultSpec.parse(entry)
            for entry in (text or "").split(",")
            if entry.strip()
        ]
        return cls(specs)

    @classmethod
    def from_env(cls, var: str = FAULT_ENV_VAR) -> "FaultInjector":
        return cls.from_string(os.environ.get(var))

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        return tuple(self._specs)

    def active(self, site: str) -> bool:
        """Whether any non-exhausted spec targets ``site`` (no consume)."""
        with self._lock:
            return any(
                s.site == site and not s.exhausted for s in self._specs
            )

    def fire(self, site: str, **context) -> FaultSpec | None:
        """Consume and return the first matching armed spec, else None."""
        if not self._specs:
            return None
        with self._lock:
            for spec in self._specs:
                if spec.site != site or spec.exhausted:
                    continue
                if spec.matches(context):
                    spec.fired += 1
                    return spec
        return None


#: The process-global injector; created lazily from ``REPRO_FAULT`` so a
#: CI scenario configures the whole process through one env var.
_INJECTOR: FaultInjector | None = None
_INJECTOR_LOCK = threading.Lock()


def get_fault_injector() -> FaultInjector:
    """The process-global injector (env-initialized on first use)."""
    global _INJECTOR
    if _INJECTOR is None:
        with _INJECTOR_LOCK:
            if _INJECTOR is None:
                _INJECTOR = FaultInjector.from_env()
    return _INJECTOR


def configure_faults(
    spec: "str | FaultInjector | None",
) -> FaultInjector:
    """Install a process-global injector programmatically (tests).

    ``spec`` may be a spec string (same syntax as ``REPRO_FAULT``), a
    ready-made :class:`FaultInjector`, or ``None`` / ``""`` to clear all
    faults.  Returns the installed injector.
    """
    global _INJECTOR
    with _INJECTOR_LOCK:
        if isinstance(spec, FaultInjector):
            _INJECTOR = spec
        else:
            _INJECTOR = FaultInjector.from_string(spec)
    return _INJECTOR


def fault_active(site: str) -> bool:
    """Whether the global injector has an armed spec for ``site``."""
    return get_fault_injector().active(site)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-recovery knobs for pool-carrying backends.

    ``max_attempts`` is the *total* number of execution attempts
    (first try included); ``backoff * backoff_factor**(n-1)`` seconds
    are slept before retry ``n``; ``timeout`` bounds how long the
    parent waits for all of one apply's shard futures together
    (``None``: wait forever) -- a hung worker then counts as a pool
    failure and triggers the same rebuild-and-retry path a crash does.
    """

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0.0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.timeout is not None and self.timeout <= 0.0:
            raise ValueError(
                f"timeout must be positive or None, got {self.timeout}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based over retries)."""
        return self.backoff * self.backoff_factor ** max(attempt - 1, 0)
