"""The session core shared by every prepared driver shell.

All four drivers -- the single-device BLTC, the distributed driver and
the two Sec. 5 extension schemes -- run the same per-apply cycle on
fixed geometry: upload the charges, re-run the moment kernels on cached
cluster grids, rewrite the plan's weight buffer in place, and execute
the plan through a pluggable backend.  This module holds that cycle
once:

* :class:`GeometryState` bundles the charge-independent state one
  device evaluates (tree, batches, interaction lists, moment grids and
  the compiled plan skeleton) and derives a stable
  :meth:`~GeometryState.geometry_key` content hash, the cache key a
  service layer can use for a prepared-session LRU.
* :class:`SessionCore` owns charge validation/multi-RHS widening,
  charge upload, ``refresh_moments``/``refresh_weights``, backend
  dispatch and memory accounting.  The ``Prepared*`` classes are thin
  shells over one (or, distributed, one per rank) of these: the
  distributed shell adds the LET re-ship between precompute and
  execute, the extension shells add their downward interpolation
  passes after it.
* The weight-source classes translate each driver's weight-slot key
  vocabulary into refreshed weight rows.  They are stateless and
  picklable -- the closures handed to
  :meth:`~repro.core.plan.ExecutionPlan.refresh_weights` are built
  transiently per apply and never stored.

Sessions pickle: :meth:`SessionCore.__getstate__` drops the resolved
backend instance whenever it can be re-resolved by registry name, so
the pickle never ships worker pools, locks or shared-memory handles;
the first post-unpickle apply re-resolves through the process-wide
shared store in :mod:`repro.registry` (two restored sessions selecting
``"multiprocessing"`` therefore share one pool), and dropped caches
(plan cast caches, bucket stacks, SHM shipments) repopulate lazily.

Fault tolerance: a backend failure inside an apply -- a worker pool
whose bounded crash recovery was exhausted
(:class:`~repro.errors.WorkerCrashError`), a backend that cannot exist
in this process (:class:`~repro.errors.BackendUnavailableError`, e.g. a
numba session restored where numba is absent) -- does not have to kill
the session.  Under ``TreecodeParams(fallback="degrade")`` (the
default) :meth:`SessionCore.execute_plan` walks the backend's fallback
chain (:data:`FALLBACK_CHAIN`: ``"multiprocessing"`` -> ``"fused"`` ->
``"numpy"``; ``"numba"``/``"cupy"``/``"batched"`` -> ``"fused"`` ->
``"numpy"``), emits exactly one
:class:`~repro.errors.BackendDegradedWarning` per transition, records
the event (visible in :meth:`SessionCore.health_stats` and every
``Prepared*`` repr) and keeps serving correct results through the
fallback -- sticky, so later applies skip the broken backend.
``fallback="strict"`` restores raise-on-failure with the original
cause chained.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import (
    BackendDegradedWarning,
    BackendExecutionError,
    GeometryUpdateError,
)
from ..util import as_charge_block
from .backends import Backend, get_backend
from .moments import ClusterMoments, refresh_moments
from .plan import ExecutionPlan

__all__ = [
    "GeometryState",
    "SessionCore",
    "TreecodeWeightSource",
    "DistributedWeightSource",
    "BatchChargeWeightSource",
    "DualTreeWeightSource",
    "FALLBACK_CHAIN",
    "format_memory_stats",
    "format_health_stats",
]

FLOAT_BYTES = 8

#: Graceful-degradation order per backend name: on failure (or failed
#: by-name resolution) the session tries these, left to right.  Every
#: chain ends in ``"numpy"`` -- the dependency-free reference backend
#: that always exists -- so a degrading session can always keep
#: serving.  Backends not listed (``"numpy"``, ``"model"``, custom
#: registrations) have no fallback: their failures always raise.
FALLBACK_CHAIN: dict = {
    "multiprocessing": ("fused", "numpy"),
    "numba": ("fused", "numpy"),
    "cupy": ("fused", "numpy"),
    "batched": ("fused", "numpy"),
    "fused": ("numpy",),
}

#: The plan fields hashed into a geometry key / counted as plan memory
#: (everything charge-independent; ``src_weights`` is accounted
#: separately as the weight-slot buffer).
_PLAN_GEOMETRY_FIELDS = (
    "group_ptr",
    "seg_group_ptr",
    "seg_kind",
    "seg_ptr",
    "seg_src_lo",
    "out_index",
    "targets",
    "src_points",
)


@dataclass
class GeometryState:
    """Charge-independent state of one device's prepared evaluation.

    ``tree`` is the tree the moments live on (the source tree for the
    BLTC and dual-tree schemes, the target tree for cluster-particle);
    ``aux`` carries driver-specific geometry (a rank's LET, an
    extension's traversal/grouping record).  Everything here is plain
    data -- pickling a session ships it verbatim.
    """

    plan: ExecutionPlan
    tree: Any = None
    batches: Any = None
    lists: Any = None
    moments: ClusterMoments | None = None
    aux: Any = None

    def geometry_key(self) -> str:
        """Stable content hash of the compiled geometry.

        Two sessions prepared from identical positions and parameters
        hash identically (the plan's index arrays and gathered
        coordinate buffers determine every geometry-dependent byte of
        an apply), so a service layer can key a prepared-session LRU
        cache on it.  Charge state (``src_weights``) is excluded.

        The raw position arrays are hashed alongside the plan buffers:
        after ``update_geometry`` a moved particle need not alter any
        plan byte (an interior particle of an approximated cluster
        leaves boxes, lists and gathered rows untouched), but the key
        must still change -- it is the staleness signal session caches
        rely on.
        """
        h = hashlib.sha256()
        plan = self.plan
        h.update(repr(plan.kind_names).encode())
        h.update(str(plan.out_size).encode())
        for name in _PLAN_GEOMETRY_FIELDS:
            arr = getattr(plan, name)
            h.update(name.encode())
            if arr is None:
                h.update(b"<none>")
                continue
            arr = np.ascontiguousarray(arr)
            h.update(arr.dtype.str.encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        for label, arr in (
            ("tree.positions", getattr(self.tree, "positions", None)),
            ("batches.positions", getattr(self.batches, "positions", None)),
            ("aux.target_pos", getattr(self.aux, "target_pos", None)),
            ("aux.source_pos", getattr(self.aux, "source_pos", None)),
        ):
            if arr is None:
                continue
            h.update(label.encode())
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()


class TreecodeWeightSource:
    """BLTC weight keys: ``("approx", c)`` -> the cluster's modified
    charges, ``("direct", c)`` -> the cluster's particle charges."""

    def provider(self, geometry: GeometryState, charges: np.ndarray):
        moments = geometry.moments
        tree = geometry.tree

        def provide(key):
            kind, c = key
            if kind == "approx":
                return moments.charges(c)
            return charges[tree.node_indices(c)]

        return provide


class DistributedWeightSource:
    """Rank-plan weight keys ``(kind, owner_rank, c)``; ``owner_rank``
    -1 is local (moments / local charges), otherwise the rows come from
    the rank's LET (``geometry.aux``), refreshed by the RMA re-ship."""

    def provider(self, geometry: GeometryState, charges: np.ndarray):
        moments = geometry.moments
        tree = geometry.tree
        let = geometry.aux

        def provide(key):
            kind, s, c = key
            if kind == "approx":
                if s == -1:
                    return moments.charges(c)
                return let.approx_data[s][c][1]
            if s == -1:
                return charges[tree.node_indices(c)]
            return let.direct_data[s][c][1]

        return provide


class BatchChargeWeightSource:
    """Cluster-particle weight keys: the source-batch index ``b`` ->
    that batch's charges (the scheme has no moment stage)."""

    def provider(self, geometry: GeometryState, charges: np.ndarray):
        batches = geometry.batches

        def provide(b):
            return charges[batches.batch_indices(b)]

        return provide


class DualTreeWeightSource:
    """Dual-tree weight keys: ``("moments", si)`` -> the source
    cluster's modified charges, ``("particles", si)`` -> its particle
    charges (``geometry.tree`` is the source tree)."""

    def provider(self, geometry: GeometryState, charges: np.ndarray):
        moments = geometry.moments
        s_tree = geometry.tree

        def provide(key):
            what, si = key
            if what == "moments":
                return moments.charges(si)
            return charges[s_tree.node_indices(si)]

        return provide


class SessionCore:
    """The shared per-device session: charges in, potentials out.

    Owns the apply cycle's charge-side half for one device: charge
    validation and multi-RHS widening (:meth:`charge_block`), the
    precompute phase (upload + moment kernels, :meth:`precompute`),
    the weight refresh and backend execution (:meth:`execute_plan`)
    and memory accounting (:meth:`memory_stats`).  Driver shells
    insert their specific steps between these calls (LET re-ship,
    downward passes) and keep their own stats/result assembly.

    ``backend`` may be a registry name or a ready-made
    :class:`~repro.core.backends.Backend` instance; names resolve
    lazily (and re-resolve after unpickling) through
    :func:`~repro.core.backends.get_backend`, so pool-carrying
    backends stay process-wide singletons.
    """

    def __init__(
        self,
        *,
        kernel,
        params,
        backend: str | Backend,
        device,
        geometry: GeometryState,
        weight_source,
        n_charges: int,
        first_upload_nbytes: int = 0,
        moments_download: bool = True,
        geometry_updater=None,
    ) -> None:
        self.kernel = kernel
        self.params = params
        self.device = device
        self.geometry = geometry
        self.weight_source = weight_source
        #: Strategy object behind :meth:`update_geometry` (see
        #: :mod:`repro.core.dynamic`); None means the driver has no
        #: update path (the distributed session rebuilds via prepare).
        self.geometry_updater = geometry_updater
        #: Bytes of transient working state the last incremental
        #: geometry update held (re-bin scratch + the cached traversal
        #: decision record); surfaces in :meth:`memory_stats`.
        self.update_scratch_bytes = 0
        #: Length of the charge vectors this session accepts.
        self.n_charges = int(n_charges)
        #: Extra bytes the first apply uploads (the monolithic
        #: pipeline ships the full source data once); 0 means every
        #: apply uploads only the charges.
        self.first_upload_nbytes = int(first_upload_nbytes)
        #: Whether precompute downloads the modified charges (the BLTC
        #: drivers do; the dual-tree scheme consumes them on-device).
        self.moments_download = bool(moments_download)
        self.n_applies = 0
        self._backend_spec = backend
        self._backend: Backend | None = (
            backend if isinstance(backend, Backend) else None
        )
        #: Sticky fallback backend: set once a degraded apply succeeds,
        #: so later applies skip the broken backend entirely.  Dropped
        #: on pickling (the restored process re-probes from the top --
        #: its environment may be healthy).
        self._degraded: Backend | None = None
        #: Recorded degradation transitions, each
        #: ``{"from", "to", "error"}`` (see :meth:`health_stats`).
        self._fallback_events: list = []
        self._last_error: str | None = None

    # -- backend resolution ---------------------------------------------
    @property
    def backend(self) -> Backend:
        """The resolved backend instance (lazy; re-resolves by name
        after unpickling, through the process-wide shared store).

        A failed by-name resolution -- the registered name raising
        :class:`~repro.errors.BackendUnavailableError` (numba session
        restored without numba), or a name unknown in this process --
        degrades along :data:`FALLBACK_CHAIN` under
        ``fallback="degrade"`` instead of raising.
        """
        b = self._backend
        if b is None:
            spec = self._backend_spec
            try:
                b = get_backend(spec)
            except (ValueError, BackendExecutionError) as exc:
                if self._strict:
                    raise
                name = spec if isinstance(spec, str) else getattr(
                    spec, "name", repr(spec)
                )
                b = self._resolve_fallback(name, exc)
            self._backend = b
        return b

    @property
    def _strict(self) -> bool:
        return getattr(self.params, "fallback", "degrade") == "strict"

    def _resolve_fallback(self, failed_name: str, cause) -> Backend:
        """First resolvable member of ``failed_name``'s fallback chain;
        records the transition and warns once.  Re-raises ``cause``
        when the name has no chain or the whole chain is unresolvable
        (cannot happen for built-in chains: they end in ``"numpy"``)."""
        chain = FALLBACK_CHAIN.get(failed_name)
        if not chain:
            raise cause
        for candidate in chain:
            try:
                b = get_backend(candidate)
            except Exception:
                continue
            self._record_fallback(failed_name, b.name, cause)
            self._degraded = b
            return b
        raise cause

    def _record_fallback(self, from_name: str, to_name: str, cause) -> None:
        self._last_error = f"{type(cause).__name__}: {cause}"
        self._fallback_events.append(
            {"from": from_name, "to": to_name, "error": self._last_error}
        )
        warnings.warn(
            f"backend {from_name!r} failed "
            f"({self._last_error}); session degraded to {to_name!r} -- "
            "results stay correct, performance may differ "
            '(TreecodeParams(fallback="strict") raises instead)',
            BackendDegradedWarning,
            stacklevel=3,
        )

    @property
    def plan(self) -> ExecutionPlan:
        return self.geometry.plan

    # -- pickling -------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        spec = state["_backend_spec"]
        if not isinstance(spec, str) and getattr(
            spec, "share_instance", False
        ):
            # Pool-carrying backend instances hold process-local state
            # (executors, locks, SHM shipments); ship the name instead
            # and let the restored session re-resolve through the
            # process-wide store -- restored sessions then share one
            # pool with each other and with live sessions.
            spec = spec.name
            state["_backend_spec"] = spec
        if isinstance(spec, str):
            state["_backend"] = None
        # A restored session re-probes the configured backend from the
        # top: the new process may be healthy where this one degraded.
        state["_degraded"] = None
        return state

    # -- the apply cycle ------------------------------------------------
    def charge_block(self, charges) -> tuple[np.ndarray, bool, int]:
        """Validate charges; returns ``(block, multi, n_rhs)``."""
        charges = as_charge_block(charges, self.n_charges)
        multi = charges.ndim == 2
        n_rhs = int(charges.shape[1]) if multi else 1
        return charges, multi, n_rhs

    def precompute(
        self, charges: np.ndarray, phases, *, numerics: bool, n_rhs: int = 1
    ) -> None:
        """Charge upload + moment kernels; closes the precompute phase.

        The first apply ships ``first_upload_nbytes`` extra (the full
        source data, exactly as the monolithic pipelines do); later
        applies re-ship only the charge block.  When the geometry
        carries moment grids the paper's two moment kernels run (and,
        for drivers that read the modified charges back, their DtH
        copy is charged per RHS column).
        """
        device = self.device
        if self.n_applies == 0 and self.first_upload_nbytes:
            device.upload(
                self.first_upload_nbytes + charges.nbytes,
                label="source data",
            )
        else:
            device.upload(charges.nbytes, label="charges")
        moments = self.geometry.moments
        if moments is not None:
            refresh_moments(
                moments, self.geometry.tree, charges, self.params,
                device=device, numerics=numerics,
            )
            if self.moments_download:
                mbytes = (
                    moments.n_clusters
                    * self.params.n_interpolation_points
                    * FLOAT_BYTES
                    * n_rhs
                )
                device.download(mbytes, label="modified charges")
        phases.precompute += device.take_phase()

    def refresh_weights(
        self, charges: np.ndarray, *, numerics: bool = True
    ) -> None:
        """Rewrite the plan's weight buffer for this charge block."""
        if numerics:
            self.plan.refresh_weights(
                self.weight_source.provider(self.geometry, charges)
            )

    def execute_plan(
        self,
        charges: np.ndarray,
        phases,
        *,
        backend: Backend | None = None,
        numerics: bool = True,
        compute_forces: bool = False,
        multi: bool = False,
        n_rhs: int = 1,
        download_potentials: bool = True,
    ):
        """Weight refresh + backend execution; closes the compute phase.

        ``backend`` overrides the session backend for this call
        (``dry_run`` applies pass the model backend); explicit
        overrides never degrade -- the caller asked for that backend
        specifically.  The ``n_rhs`` kwarg reaches the backend only on
        the multi path, so user-registered backends with the
        single-vector signature keep working unchanged.
        ``download_potentials=False`` skips the DtH copies (extension
        shells download after their downward pass instead); the
        compute phase closes either way.

        Failure handling: a :class:`~repro.errors.BackendExecutionError`
        from the session backend (worker-pool recovery exhausted, a
        shipment that cannot be packed, a layout build that failed)
        triggers the fallback chain under ``fallback="degrade"`` --
        the apply is retried on the next chain member and the
        transition becomes sticky for later applies.  Note the failed
        backend may already have charged launches against the
        simulated device before dying, so a *degraded* apply's
        counters/timings can include the aborted attempt; numerical
        results are unaffected (backends accumulate into fresh output
        buffers, and the multiprocessing backend merges shard results
        only after every future resolves).
        """
        explicit = backend is not None
        if not explicit:
            backend = self._degraded or self.backend
        self.refresh_weights(charges, numerics=numerics)
        extra = {"n_rhs": n_rhs} if multi else {}
        device = self.device
        try:
            potential, forces = backend.execute(
                self.plan,
                self.kernel,
                device,
                dtype=self.params.dtype,
                compute_forces=compute_forces,
                **extra,
            )
        except BackendExecutionError as exc:
            if explicit or self._strict:
                raise
            potential, forces = self._degrade_and_execute(
                backend, exc,
                compute_forces=compute_forces, extra=extra,
            )
        if download_potentials:
            device.download(potential.nbytes, label="potentials")
            if forces is not None:
                device.download(forces.nbytes, label="forces")
        phases.compute += device.take_phase()
        return potential, forces

    def _degrade_and_execute(
        self, failed: Backend, cause, *, compute_forces: bool, extra: dict
    ):
        """Walk ``failed``'s fallback chain until an execute succeeds.

        The successful fallback becomes sticky (``self._degraded``);
        one :class:`~repro.errors.BackendDegradedWarning` is emitted
        per transition.  Chain exhausted (or no chain) re-raises the
        last structured error.
        """
        chain = FALLBACK_CHAIN.get(failed.name)
        if not chain:
            raise cause
        last_exc = cause
        from_name = failed.name
        for candidate in chain:
            try:
                b = get_backend(candidate)
            except Exception:
                continue
            try:
                result = b.execute(
                    self.plan,
                    self.kernel,
                    self.device,
                    dtype=self.params.dtype,
                    compute_forces=compute_forces,
                    **extra,
                )
            except BackendExecutionError as exc:
                self._record_fallback(from_name, b.name, last_exc)
                from_name = b.name
                last_exc = exc
                continue
            self._record_fallback(from_name, b.name, last_exc)
            self._degraded = b
            return result
        raise last_exc

    # -- dynamic geometry -----------------------------------------------
    def update_geometry(self, new_positions, *, targets=None):
        """Move the session to new particle positions without a cold
        re-prepare.

        Delegates to the driver's geometry updater (see
        :mod:`repro.core.dynamic`): the BLTC session re-bins, patches
        lists and plan groups incrementally (falling back to a full
        rebuild past ``params.rebuild_threshold``), the extension
        sessions rebuild wholesale.  After the call every ``apply()``
        is bitwise equal to a cold ``prepare()`` at the new positions,
        and :meth:`geometry_key` reflects the move.  ``targets``
        overrides the target positions; same-object sessions (targets
        defaulted to the sources at prepare) move both sets together.
        """
        if self.geometry_updater is None:
            raise NotImplementedError(
                "this session has no geometry updater; re-prepare the "
                "driver at the new positions instead"
            )
        try:
            return self.geometry_updater.update(
                self, new_positions, targets=targets
            )
        except (ValueError, TypeError, NotImplementedError):
            # Input-validation errors keep their precise type (callers
            # and tests match on them); only unexpected mid-update
            # failures are wrapped -- those may leave the session's
            # geometry partially patched, which the structured error
            # makes explicit.
            raise
        except Exception as exc:
            raise GeometryUpdateError(
                "geometry update failed mid-flight; the session's "
                "geometry may be partially patched -- re-prepare the "
                f"driver at the new positions ({type(exc).__name__}: "
                f"{exc})"
            ) from exc

    # -- accounting -----------------------------------------------------
    def geometry_key(self) -> str:
        return self.geometry.geometry_key()

    def health_stats(self) -> dict:
        """Fault-tolerance counters of this session (the robustness
        ledger next to :meth:`memory_stats`).

        ``backend`` is the configured backend name; ``degraded_to``
        the sticky fallback currently serving applies (None while
        healthy); ``retries``/``pool_rebuilds`` come from the resolved
        backend's own :meth:`~repro.core.backends.Backend.health_stats`
        (worker-crash recovery counters for the multiprocessing
        backend, zeros for stateless backends); ``fallbacks`` the
        recorded degradation transitions; ``last_error`` the most
        recent failure seen by either layer.
        """
        spec = self._backend_spec
        name = spec if isinstance(spec, str) else getattr(
            spec, "name", repr(spec)
        )
        stats = {
            "backend": name,
            "degraded_to": (
                self._degraded.name if self._degraded is not None else None
            ),
            "retries": 0,
            "pool_rebuilds": 0,
            "fallbacks": list(self._fallback_events),
            "last_error": self._last_error,
        }
        b = self._backend
        backend_stats = b.health_stats() if b is not None else {}
        for key in ("retries", "pool_rebuilds"):
            if key in backend_stats:
                stats[key] = backend_stats[key]
        if backend_stats.get("last_error") is not None:
            stats["last_error"] = backend_stats["last_error"]
        return stats

    def memory_stats(self) -> dict:
        """Resident bytes by category (the session-eviction ledger).

        ``plan_bytes`` covers the plan's charge-independent index and
        coordinate arrays; ``weight_slot_bytes`` the refreshable weight
        buffer (scales with the current RHS width);
        ``shipment_bytes`` whatever the backend holds for this plan
        (the multiprocessing backend's SHM block or pickled payload;
        0 for backends without per-plan caches); ``moment_bytes`` the
        cached cluster grids, basis matrices and modified charges;
        ``update_scratch_bytes`` the incremental-update working state
        (traversal decision record + re-bin scratch; 0 until the first
        ``update_geometry``); ``batched_pad_bytes`` the padding
        overhead of the batched layout's zero-weight-padded buckets
        (pad index/weight slots, validity masks, scatter maps; 0 when
        no layout is attached).
        """
        plan = self.plan
        plan_bytes = 0
        for name in _PLAN_GEOMETRY_FIELDS:
            arr = getattr(plan, name)
            if arr is not None:
                plan_bytes += int(arr.nbytes)
        weight_bytes = (
            0 if plan.src_weights is None else int(plan.src_weights.nbytes)
        )
        shipment_accessor = getattr(self.backend, "shipment_nbytes", None)
        shipment_bytes = (
            int(shipment_accessor(plan)) if shipment_accessor else 0
        )
        moment_bytes = 0
        moments = self.geometry.moments
        if moments is not None:
            for q in moments.qhat.values():
                moment_bytes += int(q.nbytes)
            for grid in moments.grids.values():
                moment_bytes += int(grid.points.nbytes)
            for basis in moments.basis.values():
                moment_bytes += int(sum(b.nbytes for b in basis))
        update_bytes = int(getattr(self, "update_scratch_bytes", 0))
        pad_bytes = (
            0 if plan.batched_layout is None
            else int(plan.batched_layout.padding_nbytes())
        )
        return {
            "plan_bytes": plan_bytes,
            "weight_slot_bytes": weight_bytes,
            "shipment_bytes": shipment_bytes,
            "moment_bytes": moment_bytes,
            "update_scratch_bytes": update_bytes,
            "batched_pad_bytes": pad_bytes,
            "total_bytes": (
                plan_bytes + weight_bytes + shipment_bytes + moment_bytes
                + update_bytes + pad_bytes
            ),
        }


def format_memory_stats(stats: dict) -> str:
    """Compact ``k=v`` rendering of :meth:`SessionCore.memory_stats`
    for the ``Prepared*`` reprs."""
    return (
        f"plan={stats['plan_bytes']}B "
        f"weights={stats['weight_slot_bytes']}B "
        f"shipments={stats['shipment_bytes']}B "
        f"moments={stats['moment_bytes']}B "
        f"update={stats.get('update_scratch_bytes', 0)}B "
        f"pad={stats.get('batched_pad_bytes', 0)}B"
    )


def format_health_stats(stats: dict) -> str:
    """Compact rendering of :meth:`SessionCore.health_stats` for the
    ``Prepared*`` reprs: ``health=ok`` while nothing has gone wrong,
    otherwise the non-trivial counters in one bracket."""
    parts = []
    if stats.get("degraded_to"):
        parts.append(f"degraded_to={stats['degraded_to']}")
    if stats.get("retries"):
        parts.append(f"retries={stats['retries']}")
    if stats.get("pool_rebuilds"):
        parts.append(f"pool_rebuilds={stats['pool_rebuilds']}")
    if stats.get("fallbacks"):
        parts.append(f"fallbacks={len(stats['fallbacks'])}")
    if not parts:
        return "health=ok"
    return "health=[" + " ".join(parts) + "]"
