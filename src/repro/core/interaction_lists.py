"""Batch/cluster dual traversal building interaction lists.

Implements the recursive ``COMPUTEPOTENTIAL`` logic of the BLTC algorithm
(paper Sec. 2.4, lines 10-20), restructured -- as in the paper's GPU
implementation -- into a phase that *builds interaction lists* (which
clusters each batch approximates, which it sums directly) and a phase that
*executes* them as kernel launches:

* MAC satisfied (both conditions)                -> approximation list;
* geometric condition fails, cluster is a leaf   -> direct list;
* geometric condition fails, cluster is internal -> recurse on children;
* geometric passes but cluster too small
  ``(n+1)^3 >= N_C``                             -> direct list.

The MAC is applied to the batch as a whole (Sec. 3.2) so all targets in a
batch share one interaction list -- no thread divergence on the GPU.

The traversal is written against a minimal *tree adapter* interface so the
same code runs over a local :class:`~repro.tree.octree.ClusterTree` and
over the packed tree arrays fetched from remote ranks during LET
construction (Sec. 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from ..config import TreecodeParams
from ..tree.batches import TargetBatches
from ..tree.octree import ClusterTree
from .mac import mac_geometric

__all__ = [
    "TreeAdapter",
    "LocalTreeAdapter",
    "InteractionLists",
    "TraversalRecord",
    "traverse_batch",
    "build_interaction_lists",
    "record_traversal",
    "verify_traversal",
    "patch_interaction_lists",
]

# Traversal decision categories recorded per visited node (see
# TraversalRecord): they encode exactly which branch of the BLTC case
# split fired, so a later geometry update can re-check each decision
# vectorized instead of re-running the whole traversal.
TRAV_APPROX = 0           # MAC passed (both conditions)
TRAV_DIRECT_LEAF = 1      # leaf summed directly (either failure mode)
TRAV_DIRECT_INTERNAL = 2  # geometric passed, size condition failed
TRAV_RECURSED = 3         # geometric failed on an internal node


class TreeAdapter(Protocol):
    """Read-only view of a cluster tree, local or remote."""

    def n_nodes(self) -> int: ...
    def center(self, i: int) -> np.ndarray: ...
    def radius(self, i: int) -> float: ...
    def count(self, i: int) -> int: ...
    def is_leaf(self, i: int) -> bool: ...
    def children(self, i: int) -> Sequence[int]: ...


class LocalTreeAdapter:
    """Adapter over an in-memory :class:`ClusterTree`."""

    def __init__(self, tree: ClusterTree) -> None:
        self._tree = tree

    def n_nodes(self) -> int:
        return len(self._tree)

    def center(self, i: int) -> np.ndarray:
        return self._tree.nodes[i].center

    def radius(self, i: int) -> float:
        return self._tree.nodes[i].radius

    def count(self, i: int) -> int:
        return self._tree.nodes[i].count

    def is_leaf(self, i: int) -> bool:
        return self._tree.nodes[i].is_leaf

    def children(self, i: int) -> Sequence[int]:
        return self._tree.nodes[i].children


@dataclass
class InteractionLists:
    """Per-batch interaction lists plus traversal statistics."""

    #: approx[b] -- node indices approximated by eq. 11 for batch b.
    approx: list[np.ndarray] = field(default_factory=list)
    #: direct[b] -- node indices summed directly by eq. 9 for batch b.
    direct: list[np.ndarray] = field(default_factory=list)
    #: Number of MAC evaluations performed (host-side setup work).
    mac_evals: int = 0

    @property
    def n_batches(self) -> int:
        return len(self.approx)

    @property
    def n_approx(self) -> int:
        """Total batch-cluster approximation interactions."""
        return int(sum(len(a) for a in self.approx))

    @property
    def n_direct(self) -> int:
        """Total batch-cluster direct interactions."""
        return int(sum(len(d) for d in self.direct))

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat CSR view ``(approx_ptr, approx_ids, direct_ptr, direct_ids)``.

        ``approx_ids[approx_ptr[b]:approx_ptr[b+1]]`` are the cluster
        indices batch ``b`` approximates (same order as ``approx[b]``),
        and likewise for the direct side.  This is the array form the
        execution-plan compiler consumes -- per-batch python lists never
        reach the hot path.
        """
        approx_ptr = np.zeros(len(self.approx) + 1, dtype=np.intp)
        np.cumsum([len(a) for a in self.approx], out=approx_ptr[1:])
        direct_ptr = np.zeros(len(self.direct) + 1, dtype=np.intp)
        np.cumsum([len(d) for d in self.direct], out=direct_ptr[1:])
        # astype(copy=False) keeps the freshly concatenated intp arrays
        # as-is (the common case) instead of duplicating them; the empty
        # branches produce the same intp dtype so both paths agree.
        approx_ids = (
            np.concatenate(self.approx)
            if self.approx
            else np.empty(0, dtype=np.intp)
        ).astype(np.intp, copy=False)
        direct_ids = (
            np.concatenate(self.direct)
            if self.direct
            else np.empty(0, dtype=np.intp)
        ).astype(np.intp, copy=False)
        return approx_ptr, approx_ids, direct_ptr, direct_ids


def traverse_batch(
    batch_center: np.ndarray,
    batch_radius: float,
    adapter: TreeAdapter,
    params: TreecodeParams,
    *,
    root: int = 0,
    record: list | None = None,
) -> tuple[list[int], list[int], int]:
    """Traverse one batch against a cluster tree.

    Returns ``(approx_ids, direct_ids, mac_evals)``.  The logic follows the
    BLTC algorithm exactly; see the module docstring for the case split.
    When ``record`` is a list, every visited node appends a
    ``(node, category)`` pair to it (``TRAV_*`` constants), capturing the
    full decision trace for later :func:`verify_traversal` checks.
    """
    n_ip = params.n_interpolation_points
    approx: list[int] = []
    direct: list[int] = []
    mac_evals = 0
    stack = [root]
    while stack:
        c = stack.pop()
        dist = float(np.linalg.norm(batch_center - adapter.center(c)))
        mac_evals += 1
        geometric_ok = mac_geometric(
            batch_radius, adapter.radius(c), dist, params.theta
        )
        if geometric_ok and (not params.size_check or n_ip < adapter.count(c)):
            approx.append(c)
            if record is not None:
                record.append((c, TRAV_APPROX))
        elif not geometric_ok:
            if adapter.is_leaf(c):
                direct.append(c)
                if record is not None:
                    record.append((c, TRAV_DIRECT_LEAF))
            else:
                stack.extend(adapter.children(c))
                if record is not None:
                    record.append((c, TRAV_RECURSED))
        else:
            # Geometric MAC passed but the cluster is too small for the
            # approximation to pay off: compute it directly (line 19-20).
            direct.append(c)
            if record is not None:
                record.append((
                    c,
                    TRAV_DIRECT_LEAF
                    if adapter.is_leaf(c)
                    else TRAV_DIRECT_INTERNAL,
                ))
    return approx, direct, mac_evals


def build_interaction_lists(
    batches: TargetBatches,
    tree: ClusterTree | TreeAdapter,
    params: TreecodeParams,
) -> InteractionLists:
    """Build interaction lists for every batch against one source tree."""
    adapter: TreeAdapter
    if isinstance(tree, ClusterTree):
        adapter = LocalTreeAdapter(tree)
    else:
        adapter = tree
    lists = InteractionLists()
    for b in range(len(batches)):
        node = batches.batch(b)
        approx, direct, evals = traverse_batch(
            node.center, node.radius, adapter, params
        )
        lists.approx.append(np.asarray(approx, dtype=np.intp))
        lists.direct.append(np.asarray(direct, dtype=np.intp))
        lists.mac_evals += evals
    return lists


# ----------------------------------------------------------------------
# Dynamic geometry: decision traces, vectorized re-verify, dirty patch
# ----------------------------------------------------------------------
@dataclass
class TraversalRecord:
    """Per-batch decision trace of one full traversal.

    ``nodes[b]``/``cats[b]`` list every node batch ``b`` visited and
    which ``TRAV_*`` branch fired there.  A trace row count equals the
    batch's MAC evaluation count, so ``n_rows`` reproduces
    ``InteractionLists.mac_evals`` exactly.  After particles drift,
    :func:`verify_traversal` re-checks every recorded decision against
    the *new* geometry in a handful of vectorized passes; only batches
    with at least one invalidated (or numerically borderline) decision
    pay a scalar re-traversal.
    """

    nodes: list[np.ndarray]
    cats: list[np.ndarray]

    @property
    def n_rows(self) -> int:
        return int(sum(len(a) for a in self.nodes))

    def nbytes(self) -> int:
        return int(
            sum(a.nbytes for a in self.nodes)
            + sum(a.nbytes for a in self.cats)
        )


def record_traversal(
    batches: TargetBatches,
    tree: ClusterTree | TreeAdapter,
    params: TreecodeParams,
) -> TraversalRecord:
    """Re-run the full traversal, capturing the decision trace.

    The produced lists are discarded -- for a prepared session they are
    by construction identical to the session's stored lists; only the
    trace is new information.
    """
    adapter: TreeAdapter
    if isinstance(tree, ClusterTree):
        adapter = LocalTreeAdapter(tree)
    else:
        adapter = tree
    nodes: list[np.ndarray] = []
    cats: list[np.ndarray] = []
    for b in range(len(batches)):
        node = batches.batch(b)
        rec: list[tuple[int, int]] = []
        traverse_batch(node.center, node.radius, adapter, params, record=rec)
        nodes.append(np.array([r[0] for r in rec], dtype=np.intp))
        cats.append(np.array([r[1] for r in rec], dtype=np.int8))
    return TraversalRecord(nodes=nodes, cats=cats)


def verify_traversal(
    record: TraversalRecord,
    batches: TargetBatches,
    tree: ClusterTree,
    params: TreecodeParams,
    *,
    rel_margin: float = 1e-9,
) -> np.ndarray:
    """(n_batches,) bool: which batches' recorded decisions no longer hold.

    Every recorded decision is re-evaluated against the new batch and
    cluster geometry in one vectorized pass.  The scalar traversal
    computes its distances through ``np.linalg.norm`` on a 3-vector,
    which need not agree to the last ulp with the row-wise norm used
    here, so a decision only counts as *confirmed* when it holds under
    both ``theta * (1 - rel_margin)`` and ``theta * (1 + rel_margin)``
    -- any decision within the margin of the MAC boundary marks its
    batch dirty and the exact scalar traversal re-runs there.  The dirty
    mask is therefore conservative: a clean batch's lists are bitwise
    what a cold traversal would produce.
    """
    n_batches = len(batches)
    lengths = np.array([len(a) for a in record.nodes], dtype=np.intp)
    if int(lengths.sum()) == 0:
        return np.zeros(n_batches, dtype=bool)
    flat_nodes = np.concatenate(record.nodes)
    flat_cats = np.concatenate(record.cats)
    batch_ids = np.repeat(np.arange(n_batches, dtype=np.intp), lengths)

    centers = np.array([nd.center for nd in tree.nodes])
    radii = np.array([nd.radius for nd in tree.nodes])
    counts = tree.node_counts
    b_centers = batches.centers()
    b_radii = batches.radii()

    d = np.linalg.norm(
        b_centers[batch_ids] - centers[flat_nodes], axis=1
    )
    rsum = b_radii[batch_ids] + radii[flat_nodes]
    ratio = np.full(d.shape, np.inf)
    pos = d > 0.0
    ratio[pos] = rsum[pos] / d[pos]
    theta = params.theta
    n_ip = params.n_interpolation_points
    if params.size_check:
        size_ok = n_ip < counts[flat_nodes]
    else:
        size_ok = np.ones(d.shape, dtype=bool)

    def valid_under(g: np.ndarray) -> np.ndarray:
        ok = np.empty(d.shape, dtype=bool)
        is_approx = flat_cats == TRAV_APPROX
        is_dleaf = flat_cats == TRAV_DIRECT_LEAF
        is_dint = flat_cats == TRAV_DIRECT_INTERNAL
        is_rec = flat_cats == TRAV_RECURSED
        ok[is_approx] = (g & size_ok)[is_approx]
        ok[is_dleaf] = ~(g & size_ok)[is_dleaf]
        ok[is_dint] = (g & ~size_ok)[is_dint]
        ok[is_rec] = ~g[is_rec]
        return ok

    confirmed = valid_under(ratio < theta * (1.0 - rel_margin)) & valid_under(
        ratio < theta * (1.0 + rel_margin)
    )
    dirty = np.zeros(n_batches, dtype=bool)
    np.logical_or.at(dirty, batch_ids[~confirmed], True)
    return dirty


def patch_interaction_lists(
    lists: InteractionLists,
    record: TraversalRecord,
    batches: TargetBatches,
    tree: ClusterTree,
    params: TreecodeParams,
    dirty: np.ndarray,
) -> int:
    """Re-traverse the dirty batches; patch ``lists`` and ``record``.

    Returns the number of MAC evaluations spent on the re-traversals.
    ``lists.mac_evals`` is reset to the trace's total row count, which
    equals what a cold :func:`build_interaction_lists` at the new
    geometry would report (clean batches' traversals are
    decision-identical by the verify guarantee).
    """
    adapter = LocalTreeAdapter(tree)
    redone = 0
    for b in np.nonzero(dirty)[0]:
        node = batches.batch(int(b))
        rec: list[tuple[int, int]] = []
        approx, direct, evals = traverse_batch(
            node.center, node.radius, adapter, params, record=rec
        )
        lists.approx[b] = np.asarray(approx, dtype=np.intp)
        lists.direct[b] = np.asarray(direct, dtype=np.intp)
        record.nodes[b] = np.array([r[0] for r in rec], dtype=np.intp)
        record.cats[b] = np.array([r[1] for r in rec], dtype=np.int8)
        redone += evals
    lists.mac_evals = record.n_rows
    return redone
