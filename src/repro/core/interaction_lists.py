"""Batch/cluster dual traversal building interaction lists.

Implements the recursive ``COMPUTEPOTENTIAL`` logic of the BLTC algorithm
(paper Sec. 2.4, lines 10-20), restructured -- as in the paper's GPU
implementation -- into a phase that *builds interaction lists* (which
clusters each batch approximates, which it sums directly) and a phase that
*executes* them as kernel launches:

* MAC satisfied (both conditions)                -> approximation list;
* geometric condition fails, cluster is a leaf   -> direct list;
* geometric condition fails, cluster is internal -> recurse on children;
* geometric passes but cluster too small
  ``(n+1)^3 >= N_C``                             -> direct list.

The MAC is applied to the batch as a whole (Sec. 3.2) so all targets in a
batch share one interaction list -- no thread divergence on the GPU.

The traversal is written against a minimal *tree adapter* interface so the
same code runs over a local :class:`~repro.tree.octree.ClusterTree` and
over the packed tree arrays fetched from remote ranks during LET
construction (Sec. 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from ..config import TreecodeParams
from ..tree.batches import TargetBatches
from ..tree.octree import ClusterTree
from .mac import mac_geometric

__all__ = [
    "TreeAdapter",
    "LocalTreeAdapter",
    "InteractionLists",
    "traverse_batch",
    "build_interaction_lists",
]


class TreeAdapter(Protocol):
    """Read-only view of a cluster tree, local or remote."""

    def n_nodes(self) -> int: ...
    def center(self, i: int) -> np.ndarray: ...
    def radius(self, i: int) -> float: ...
    def count(self, i: int) -> int: ...
    def is_leaf(self, i: int) -> bool: ...
    def children(self, i: int) -> Sequence[int]: ...


class LocalTreeAdapter:
    """Adapter over an in-memory :class:`ClusterTree`."""

    def __init__(self, tree: ClusterTree) -> None:
        self._tree = tree

    def n_nodes(self) -> int:
        return len(self._tree)

    def center(self, i: int) -> np.ndarray:
        return self._tree.nodes[i].center

    def radius(self, i: int) -> float:
        return self._tree.nodes[i].radius

    def count(self, i: int) -> int:
        return self._tree.nodes[i].count

    def is_leaf(self, i: int) -> bool:
        return self._tree.nodes[i].is_leaf

    def children(self, i: int) -> Sequence[int]:
        return self._tree.nodes[i].children


@dataclass
class InteractionLists:
    """Per-batch interaction lists plus traversal statistics."""

    #: approx[b] -- node indices approximated by eq. 11 for batch b.
    approx: list[np.ndarray] = field(default_factory=list)
    #: direct[b] -- node indices summed directly by eq. 9 for batch b.
    direct: list[np.ndarray] = field(default_factory=list)
    #: Number of MAC evaluations performed (host-side setup work).
    mac_evals: int = 0

    @property
    def n_batches(self) -> int:
        return len(self.approx)

    @property
    def n_approx(self) -> int:
        """Total batch-cluster approximation interactions."""
        return int(sum(len(a) for a in self.approx))

    @property
    def n_direct(self) -> int:
        """Total batch-cluster direct interactions."""
        return int(sum(len(d) for d in self.direct))

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat CSR view ``(approx_ptr, approx_ids, direct_ptr, direct_ids)``.

        ``approx_ids[approx_ptr[b]:approx_ptr[b+1]]`` are the cluster
        indices batch ``b`` approximates (same order as ``approx[b]``),
        and likewise for the direct side.  This is the array form the
        execution-plan compiler consumes -- per-batch python lists never
        reach the hot path.
        """
        approx_ptr = np.zeros(len(self.approx) + 1, dtype=np.intp)
        np.cumsum([len(a) for a in self.approx], out=approx_ptr[1:])
        direct_ptr = np.zeros(len(self.direct) + 1, dtype=np.intp)
        np.cumsum([len(d) for d in self.direct], out=direct_ptr[1:])
        # astype(copy=False) keeps the freshly concatenated intp arrays
        # as-is (the common case) instead of duplicating them; the empty
        # branches produce the same intp dtype so both paths agree.
        approx_ids = (
            np.concatenate(self.approx)
            if self.approx
            else np.empty(0, dtype=np.intp)
        ).astype(np.intp, copy=False)
        direct_ids = (
            np.concatenate(self.direct)
            if self.direct
            else np.empty(0, dtype=np.intp)
        ).astype(np.intp, copy=False)
        return approx_ptr, approx_ids, direct_ptr, direct_ids


def traverse_batch(
    batch_center: np.ndarray,
    batch_radius: float,
    adapter: TreeAdapter,
    params: TreecodeParams,
    *,
    root: int = 0,
) -> tuple[list[int], list[int], int]:
    """Traverse one batch against a cluster tree.

    Returns ``(approx_ids, direct_ids, mac_evals)``.  The logic follows the
    BLTC algorithm exactly; see the module docstring for the case split.
    """
    n_ip = params.n_interpolation_points
    approx: list[int] = []
    direct: list[int] = []
    mac_evals = 0
    stack = [root]
    while stack:
        c = stack.pop()
        dist = float(np.linalg.norm(batch_center - adapter.center(c)))
        mac_evals += 1
        geometric_ok = mac_geometric(
            batch_radius, adapter.radius(c), dist, params.theta
        )
        if geometric_ok and (not params.size_check or n_ip < adapter.count(c)):
            approx.append(c)
        elif not geometric_ok:
            if adapter.is_leaf(c):
                direct.append(c)
            else:
                stack.extend(adapter.children(c))
        else:
            # Geometric MAC passed but the cluster is too small for the
            # approximation to pay off: compute it directly (line 19-20).
            direct.append(c)
    return approx, direct, mac_evals


def build_interaction_lists(
    batches: TargetBatches,
    tree: ClusterTree | TreeAdapter,
    params: TreecodeParams,
) -> InteractionLists:
    """Build interaction lists for every batch against one source tree."""
    adapter: TreeAdapter
    if isinstance(tree, ClusterTree):
        adapter = LocalTreeAdapter(tree)
    else:
        adapter = tree
    lists = InteractionLists()
    for b in range(len(batches)):
        node = batches.batch(b)
        approx, direct, evals = traverse_batch(
            node.center, node.radius, adapter, params
        )
        lists.approx.append(np.asarray(approx, dtype=np.intp))
        lists.direct.append(np.asarray(direct, dtype=np.intp))
        lists.mac_evals += evals
    return lists
