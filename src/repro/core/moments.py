"""Modified charges ("moments") for source clusters, paper Sec. 2.2-2.3.

For a cluster C with particles ``y_j`` and charges ``q_j``, the modified
charge at Chebyshev grid point ``s_k`` (k a 3D multi-index) is

    qhat_k = sum_{y_j in C} L_k1(y_j1) L_k2(y_j2) L_k3(y_j3) q_j    (eq. 12)

Each ``qhat_k`` is independent of the targets, so it is computed once per
cluster and reused by every batch that approximates the cluster.

GPU kernel correspondence
-------------------------
The paper computes eq. 12 with two kernels (Sec. 3.2): kernel 1 forms the
intermediate quantities ``qtilde_j`` (eq. 14, the product of the three
barycentric denominator sums, O((n+1) N_C) work), kernel 2 assembles
``qhat_k`` from them (eq. 15, O((n+1)^3 N_C) work).  That factorization is
exactly the barycentric quotient of eq. 4 split into denominator and
numerator passes; here the numerics evaluate the per-dimension basis
matrices (which handle the removable singularities the way Sec. 2.3
prescribes -- the factored form would divide by zero when a source
coordinate coincides with a Chebyshev coordinate) and contract them with a
single ``einsum``, which is algebraically identical.  The simulated device
is still charged for both kernels with the paper's operation counts.
"""

from __future__ import annotations

import numpy as np

from ..config import TreecodeParams
from ..gpu.device import Device
from ..interpolation.barycentric import lagrange_basis
from ..interpolation.grid import ChebyshevGrid3D
from ..tree.octree import ClusterTree, TreeNode

__all__ = [
    "cluster_grid",
    "modified_charges",
    "moment_flop_counts",
    "precompute_moments",
    "prepare_moment_grids",
    "refresh_moments",
    "refresh_moment_geometry",
    "ClusterMoments",
]


def cluster_grid(node: TreeNode, degree: int) -> ChebyshevGrid3D:
    """The tensor-product Chebyshev grid spanning a cluster's box."""
    return ChebyshevGrid3D.for_box(node.box.lo, node.box.hi, degree)


def _contract_basis(lx, ly, lz, charges: np.ndarray) -> np.ndarray:
    """Contract eq. 12's basis matrices with one or many charge columns.

    1-D charges return the flattened ``((n+1)^3,)`` moments.  A
    ``(N_C, n_rhs)`` block returns ``((n+1)^3, n_rhs)``: the basis (the
    expensive part) is shared and each column runs the identical
    single-vector einsum on a contiguous copy, so column ``j`` is
    bitwise what a single-vector pass on ``charges[:, j]`` yields.
    """
    if charges.ndim == 1:
        return np.einsum(
            "aj,bj,cj,j->abc", lx, ly, lz, charges, optimize=True
        ).ravel()
    cols = [
        np.ascontiguousarray(charges[:, r]) for r in range(charges.shape[1])
    ]
    # The contraction path depends only on the operand shapes, which are
    # identical for every column: compute it once and reuse it, executing
    # exactly the operation order ``optimize=True`` would pick per column
    # (same intermediates -> same bits, minus the per-call path search).
    path = np.einsum_path(
        "aj,bj,cj,j->abc", lx, ly, lz, cols[0], optimize=True
    )[0]
    if path == ["einsum_path", (0, 3), (0, 1, 2)]:
        # The path every non-tiny cluster gets.  Run its two contraction
        # steps directly -- the exact strings and operand order numpy's
        # path executor emits for it, so the bits match ``optimize=True``
        # while skipping the per-column path bookkeeping (~4x less call
        # overhead; this loop is the multi-RHS moment refresh hot spot).
        out_cols = []
        for col in cols:
            tmp = np.einsum("j,aj->aj", col, lx)
            out_cols.append(np.einsum("aj,cj,bj->abc", tmp, lz, ly).ravel())
        return np.stack(out_cols, axis=1)
    return np.stack(
        [
            np.einsum(
                "aj,bj,cj,j->abc", lx, ly, lz, col, optimize=path
            ).ravel()
            for col in cols
        ],
        axis=1,
    )


def _as_moment_charges(charges, n: int, what: str) -> np.ndarray:
    """Validate per-cluster/particle charges as ``(n,)`` or ``(n, n_rhs)``."""
    charges = np.asarray(charges, dtype=np.float64)
    if charges.ndim not in (1, 2) or charges.shape[0] != n:
        raise ValueError(
            f"expected ({n},) or ({n}, n_rhs) charges for {n} {what}; "
            f"got shape {charges.shape}"
        )
    return charges


def modified_charges(
    points: np.ndarray,
    charges: np.ndarray,
    grid: ChebyshevGrid3D,
) -> np.ndarray:
    """Compute eq. 12 for one cluster; returns ``((n+1)^3,)`` flattened.

    Flattening is C-order over ``(k1, k2, k3)``, matching
    :func:`repro.interpolation.grid.tensor_grid_points`.  A
    ``(N_C, n_rhs)`` charge block yields ``((n+1)^3, n_rhs)`` moments,
    every column re-momented on the one shared basis evaluation.
    """
    points = np.atleast_2d(points)
    charges = _as_moment_charges(charges, points.shape[0], "points")
    lx = lagrange_basis(points[:, 0], grid.points_1d[0], grid.weights)
    ly = lagrange_basis(points[:, 1], grid.points_1d[1], grid.weights)
    lz = lagrange_basis(points[:, 2], grid.points_1d[2], grid.weights)
    return _contract_basis(lx, ly, lz, charges)


def moment_flop_counts(n_cluster: int, degree: int) -> tuple[float, float]:
    """(kernel-1, kernel-2) interaction counts for the device model.

    Kernel 1 (eq. 14): each of the N_C sources evaluates three
    (n+1)-term denominator sums -> 3 (n+1) N_C "interactions".
    Kernel 2 (eq. 15): each of the (n+1)^3 grid points reduces over the
    N_C sources -> (n+1)^3 N_C interactions.
    """
    np1 = degree + 1
    return 3.0 * np1 * n_cluster, float(np1**3) * n_cluster


class ClusterMoments:
    """Grids and modified charges for the clusters of one source tree.

    Under a model-only backend (``numerics=False``) the set of
    qualifying clusters (``node_ids``) is tracked without computing any
    numerical moments.
    """

    def __init__(self, degree: int) -> None:
        self.degree = degree
        self.node_ids: set[int] = set()
        self.grids: dict[int, ChebyshevGrid3D] = {}
        self.qhat: dict[int, np.ndarray] = {}
        #: Cached per-cluster Lagrange basis matrices ``(lx, ly, lz)``
        #: (charge-independent; filled by :func:`prepare_moment_grids`
        #: so :func:`refresh_moments` re-moments without re-evaluating
        #: the basis).
        self.basis: dict[int, tuple] = {}

    def __contains__(self, node_index: int) -> bool:
        return node_index in self.node_ids

    @property
    def n_clusters(self) -> int:
        """Number of clusters carrying moments."""
        return len(self.node_ids)

    def grid(self, node_index: int) -> ChebyshevGrid3D:
        return self.grids[node_index]

    def charges(self, node_index: int) -> np.ndarray:
        return self.qhat[node_index]

    def packed(self, n_nodes: int) -> np.ndarray:
        """Dense ``(n_nodes, (n+1)^3)`` array (rows of absent nodes zero).

        This is the "cluster charges" array placed in an RMA window for
        remote ranks to get during LET construction (Sec. 3.1).  When
        the stored moments carry an RHS axis the packed array does too:
        ``(n_nodes, (n+1)^3, n_rhs)``.
        """
        np3 = (self.degree + 1) ** 3
        width = None
        for q in self.qhat.values():
            if q.ndim == 2:
                width = q.shape[1]
            break
        shape = (n_nodes, np3) if width is None else (n_nodes, np3, width)
        out = np.zeros(shape)
        for i, q in self.qhat.items():
            out[i] = q
        return out


def precompute_moments(
    tree: ClusterTree,
    charges: np.ndarray,
    params: TreecodeParams,
    *,
    device: Device | None = None,
    numerics: bool = True,
) -> ClusterMoments:
    """Compute modified charges for every approximable cluster.

    The BLTC algorithm (lines 6-7) computes moments for each source
    cluster before any traversal -- required in the distributed setting,
    where remote ranks may request any cluster's moments.  Clusters that
    can never be approximated under the size condition
    (``(n+1)^3 >= N_C``) are skipped; the criterion is parameter-only, so
    every rank makes the same decision.

    ``device`` (optional) is charged for the paper's two preprocessing
    kernels per cluster: kernel 1 with one thread block per source
    particle, kernel 2 with one block per grid point (Sec. 3.2).

    ``numerics=False`` (driven by a model-only backend's
    ``needs_numerics``) records the qualifying clusters and charges the
    device but skips the numerical tensor contractions; used by the
    large-scale benchmark harnesses where only the timing model is
    exercised.
    """
    charges = _as_moment_charges(charges, tree.n_particles, "particles")
    moments = ClusterMoments(params.degree)
    n_ip = params.n_interpolation_points
    for node in tree.nodes:
        if params.size_check and not (n_ip < node.count):
            continue
        moments.node_ids.add(node.index)
        if numerics:
            grid = cluster_grid(node, params.degree)
            idx = tree.node_indices(node)
            qhat = modified_charges(tree.positions[idx], charges[idx], grid)
            moments.grids[node.index] = grid
            moments.qhat[node.index] = qhat
        if device is not None:
            _charge_moment_kernels(device, node, params, n_ip)
    return moments


def _charge_moment_kernels(device, node, params, n_ip) -> None:
    """Charge the paper's two preprocessing kernels for one cluster."""
    ops1, ops2 = moment_flop_counts(node.count, params.degree)
    device.launch(
        ops1,
        blocks=node.count,
        kind="moments-1",
        flops_per_interaction=8.0,
    )
    device.launch(
        ops2,
        blocks=n_ip,
        kind="moments-2",
        flops_per_interaction=7.0,
    )


def prepare_moment_grids(
    tree: ClusterTree,
    params: TreecodeParams,
    *,
    numerics: bool = True,
    cache_basis: bool = True,
) -> ClusterMoments:
    """The charge-independent half of :func:`precompute_moments`.

    Records the qualifying clusters and builds their Chebyshev grids --
    plus, with ``cache_basis``, the per-cluster Lagrange basis matrices
    of eq. 12 evaluated at the cluster's own source coordinates -- but
    computes no modified charges and charges no device (grids and basis
    depend only on geometry; the paper's two moment kernels are
    charge-dependent work charged per :func:`refresh_moments` call).
    Pair with :func:`refresh_moments` for the prepare/apply session
    seam; ``numerics=False`` tracks only the qualifying ids, as in the
    model-only pipeline.
    """
    moments = ClusterMoments(params.degree)
    n_ip = params.n_interpolation_points
    for node in tree.nodes:
        if params.size_check and not (n_ip < node.count):
            continue
        moments.node_ids.add(node.index)
        if numerics:
            grid = cluster_grid(node, params.degree)
            moments.grids[node.index] = grid
            if cache_basis:
                pts = tree.positions[tree.node_indices(node)]
                moments.basis[node.index] = (
                    lagrange_basis(pts[:, 0], grid.points_1d[0], grid.weights),
                    lagrange_basis(pts[:, 1], grid.points_1d[1], grid.weights),
                    lagrange_basis(pts[:, 2], grid.points_1d[2], grid.weights),
                )
    return moments


def refresh_moment_geometry(
    moments: ClusterMoments,
    tree: ClusterTree,
    params: TreecodeParams,
    *,
    numerics: bool = True,
    dirty: np.ndarray | None = None,
) -> int:
    """Update the charge-independent moment state after particles moved.

    Re-qualifies every node under the size condition (counts may have
    changed), drops state for clusters that no longer qualify, and
    rebuilds the Chebyshev grid -- plus the cached Lagrange basis, when
    the session caches one -- for every *dirty* qualifying cluster
    (``dirty`` is a per-node bool mask; ``None`` refreshes all).  Newly
    qualifying clusters are always built.  Grids and basis are rebuilt
    with exactly the calls :func:`prepare_moment_grids` makes, so a
    refreshed session's next :func:`refresh_moments` produces bitwise
    what a cold prepare at the new positions would.  Stale ``qhat``
    entries are left in place -- every apply overwrites them.  Returns
    the number of clusters rebuilt.
    """
    n_ip = params.n_interpolation_points
    new_ids: set[int] = set()
    for node in tree.nodes:
        if params.size_check and not (n_ip < node.count):
            continue
        new_ids.add(node.index)
    for i in moments.node_ids - new_ids:
        moments.grids.pop(i, None)
        moments.qhat.pop(i, None)
        moments.basis.pop(i, None)
    cache_basis = bool(moments.basis) or not moments.grids
    added = new_ids - moments.node_ids
    moments.node_ids = new_ids
    if not numerics:
        return 0
    rebuilt = 0
    for i in sorted(new_ids):
        if i not in added and dirty is not None and not dirty[i]:
            continue
        node = tree.nodes[i]
        grid = cluster_grid(node, params.degree)
        moments.grids[i] = grid
        if cache_basis:
            pts = tree.positions[tree.node_indices(node)]
            moments.basis[i] = (
                lagrange_basis(pts[:, 0], grid.points_1d[0], grid.weights),
                lagrange_basis(pts[:, 1], grid.points_1d[1], grid.weights),
                lagrange_basis(pts[:, 2], grid.points_1d[2], grid.weights),
            )
        rebuilt += 1
    return rebuilt


def refresh_moments(
    moments: ClusterMoments,
    tree: ClusterTree,
    charges: np.ndarray,
    params: TreecodeParams,
    *,
    device: Device | None = None,
    numerics: bool = True,
) -> ClusterMoments:
    """Recompute every cluster's modified charges for new ``charges``.

    Re-runs eq. 12 on the grids cached by :func:`prepare_moment_grids`
    (contracting the cached basis matrices when present -- the same
    einsum on the same operands, so the resulting ``qhat`` is bitwise
    identical to a fresh :func:`precompute_moments`), charging
    ``device`` for the paper's two moment kernels per cluster exactly
    as the fresh path does: re-momenting is real per-step device work,
    only the geometry bookkeeping is amortized.  ``numerics=False``
    charges the kernels without computing values (model-only applies).
    A ``(N, n_rhs)`` charge block re-moments every column in this one
    pass, reusing each cluster's cached basis for all columns.
    """
    charges = _as_moment_charges(charges, tree.n_particles, "particles")
    n_ip = params.n_interpolation_points
    for node in tree.nodes:
        if node.index not in moments.node_ids:
            continue
        if numerics:
            idx = tree.node_indices(node)
            basis = moments.basis.get(node.index)
            if basis is None:
                qhat = modified_charges(
                    tree.positions[idx], charges[idx],
                    moments.grids[node.index],
                )
            else:
                lx, ly, lz = basis
                qhat = _contract_basis(lx, ly, lz, charges[idx])
            moments.qhat[node.index] = qhat
        if device is not None:
            _charge_moment_kernels(device, node, params, n_ip)
    return moments
