"""Batched backend: shape-bucketed stacked evaluation of a plan.

The far field of a compiled plan is thousands of identically shaped
small interactions (every approximation segment of a degree-``p`` plan
carries ``(p+1)^3`` rows).  The fused backend still walks them one group
at a time -- a Python-loop iteration, a handful of small array calls and
a tiny GEMV per group.  This backend consumes the plan's
:class:`~repro.core.plan.BatchedLayout` instead: equal-kind segment runs
are evaluated per *bucket* with stacked batched kernels
(:meth:`~repro.kernels.base.Kernel.pairwise_batched`), one fancy-indexed
output scatter per bucket, and no per-group Python iteration.  The near
field -- ragged runs with per-cluster row counts -- is bucketed too,
padded to a common source width with zero-weight repeats of real points
(see the plan module docstring); on the default regimes over 95% of the
plan's rows execute inside buckets (``BatchedLayout.coverage``), and
only sub-minimum slab leftovers fall back to the fused per-group
arithmetic inside the same ``execute()``.

This is the single-core analogue of the paper's uniform cluster-kernel
batching: the GPU gets its throughput from launching many identical
blocks at once; on the numpy substrate the equivalent move is a few
large GEMMs over compile-time shape buckets.

Results agree with the fused backend to the established roundoff
tolerance (the bucketed accumulation splits a group's approx/direct
halves into separate sums and shares one coincidence noise floor per
bucket chunk); repeated executions are bitwise identical (the layout,
chunking and scatter order are all deterministic functions of the plan).
Kernels without batched primitives fall back to the fused per-group path
wholesale -- bitwise what :class:`~.fused.FusedBackend` returns.  Device
accounting derives from the plan alone (bulk charging), so counters and
simulated time match every other backend by construction.
"""

from __future__ import annotations

import numpy as np

from ...errors import BackendExecutionError
from ..resilience import get_fault_injector
from .base import Backend, charge_plan_launches
from .batcheval import eval_bucket, eval_ragged_runs
from .groupeval import eval_group_range, plan_arrays

__all__ = ["BatchedBackend"]


class BatchedBackend(Backend):
    """Stacked bucket evaluation with a fused fallback for ragged work."""

    name = "batched"
    needs_numerics = True

    def execute(
        self,
        plan,
        kernel,
        device,
        *,
        dtype=np.float64,
        compute_forces: bool = False,
        n_rhs: int | None = None,
    ):
        if not plan.has_numerics:
            raise ValueError(
                f"backend {self.name!r} needs a plan compiled with numerics"
            )
        width = plan.rhs_width
        charge_plan_launches(
            plan, kernel, device,
            dtype=dtype, compute_forces=compute_forces, bulk=True,
            n_rhs=width or 1,
        )
        out = np.zeros(
            plan.out_size if width is None else (plan.out_size, width),
            dtype=np.float64,
        )
        forces = (
            np.zeros(
                (plan.out_size, 3)
                if width is None
                else (plan.out_size, 3, width),
                dtype=np.float64,
            )
            if compute_forces
            else None
        )
        # cast_geometry: repeated applies of a prepared session stop
        # re-casting targets/points every step.
        arrays = plan_arrays(plan, cast_geometry=dtype)
        if not getattr(kernel, "supports_batched_pairwise", False):
            # No stacked primitives: evaluate the whole plan through the
            # fused per-group arithmetic (bitwise == FusedBackend).
            t_lo, t_hi, phi, f_rows = eval_group_range(
                arrays, kernel, dtype, compute_forces, 0, plan.n_groups
            )
            idx = plan.out_index[t_lo:t_hi]
            out[idx] += phi
            if forces is not None and f_rows is not None:
                forces[idx] += f_rows
            return out, forces
        try:
            if get_fault_injector().fire("batched_layout") is not None:
                raise RuntimeError("injected fault: batched_layout")
            layout = plan.ensure_batched_layout()
        except Exception as exc:
            # A failed (lazy) layout build is recoverable: the fused
            # arithmetic evaluates the same plan, so surface the
            # structured error and let the session degrade.
            raise BackendExecutionError(
                f"building the batched execution layout failed: {exc}",
                backend=self.name,
            ) from exc
        for bucket in layout.buckets:
            eval_bucket(
                bucket, arrays["targets"], arrays["src_points"],
                kernel, dtype, compute_forces, out, forces,
            )
        eval_ragged_runs(
            arrays, layout.ragged_runs, kernel, dtype, compute_forces,
            out, forces,
        )
        return out, forces
