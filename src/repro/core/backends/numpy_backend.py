"""Reference NumPy backend: the seed implementation's blocked semantics.

Per group, per kind: concatenate the segment sources, cast once, one
blocked :meth:`~repro.kernels.base.Kernel.potential` accumulation --
exactly the arithmetic (and the same floating-point summation order) as
the original per-batch executor loop, so results are byte-for-byte
stable across the refactor.  This backend is the correctness reference
the fused backend is tested against.
"""

from __future__ import annotations

import numpy as np

from .base import Backend, charge_plan_launches

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    """Per-group, per-kind blocked evaluation (the reference)."""

    name = "numpy"
    needs_numerics = True

    def execute(
        self,
        plan,
        kernel,
        device,
        *,
        dtype=np.float64,
        compute_forces: bool = False,
        n_rhs: int | None = None,
    ):
        if not plan.has_numerics:
            raise ValueError(
                f"backend {self.name!r} needs a plan compiled with numerics"
            )
        # Multi-RHS is a property of the plan's weight state; the n_rhs
        # parameter is for buffer-free backends (see Backend.execute).
        width = plan.rhs_width
        charge_plan_launches(
            plan, kernel, device, dtype=dtype, compute_forces=compute_forces,
            n_rhs=width or 1,
        )
        out = np.zeros(
            plan.out_size if width is None else (plan.out_size, width),
            dtype=np.float64,
        )
        forces = (
            np.zeros(
                (plan.out_size, 3)
                if width is None
                else (plan.out_size, 3, width),
                dtype=np.float64,
            )
            if compute_forces
            else None
        )
        # Hoisted locals keep the per-segment range resolution out of
        # the (potentially 100k+-segment) hot loop.
        seg_src_lo = plan.seg_src_lo
        seg_sizes = np.diff(plan.seg_ptr)
        for g in range(plan.n_groups):
            t_lo, t_hi = int(plan.group_ptr[g]), int(plan.group_ptr[g + 1])
            m = t_hi - t_lo
            if m == 0:
                continue
            tgt = np.ascontiguousarray(plan.targets[t_lo:t_hi], dtype=dtype)
            idx = plan.out_index[t_lo:t_hi]
            phi = np.zeros(
                m if width is None else (m, width), dtype=np.float64
            )
            f_acc = (
                np.zeros(
                    (m, 3) if width is None else (m, 3, width),
                    dtype=np.float64,
                )
                if compute_forces
                else None
            )
            for _, s_lo, s_hi in plan.group_kind_runs(g):
                # Re-concatenating per kind reproduces the seed executor's
                # per-batch gather (same values: the physical rows are
                # exact copies of the cluster arrays, resolved through the
                # per-segment ``seg_src_lo`` offsets).
                ranges = [
                    (seg_src_lo[s], seg_src_lo[s] + seg_sizes[s])
                    for s in range(s_lo, s_hi)
                ]
                src = np.concatenate(
                    [plan.src_points[lo:hi] for lo, hi in ranges], axis=0
                )
                q = np.concatenate(
                    [plan.src_weights[lo:hi] for lo, hi in ranges]
                )
                src = np.ascontiguousarray(src, dtype=dtype)
                q = np.ascontiguousarray(q, dtype=dtype)
                kernel.potential(tgt, src, q, out=phi)
                if f_acc is not None:
                    kernel.force(tgt, src, q, out=f_acc)
            out[idx] += phi
            if f_acc is not None:
                forces[idx] += f_acc
        return out, forces
