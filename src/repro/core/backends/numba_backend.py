"""Numba backend: JIT-compiled per-group gather+GEMV accumulation.

The plan seam hands this backend the same flat buffers every other
backend consumes; here the per-group loop -- gather the group's source
rows, evaluate the kernel row block, accumulate the GEMV -- is compiled
to machine code with :func:`numba.njit`, with the kernel's scalar form
(:meth:`~repro.kernels.base.Kernel.scalar_functions`) inlined into the
innermost loop.  This is the reproduction's stand-in for the paper's
compiled GPU kernels: no NumPy temporaries, one pass over each
(target row, source row) pair.

Numerics: the squared distance uses the same expanded form
``r^2 = |t|^2 + |s|^2 - 2 t.s`` and the same coincidence noise floor as
:meth:`~repro.kernels.base.RadialKernel.pairwise`, so coincident pairs
(removable singularities) are classified identically; remaining
differences against the BLAS-based backends are pure summation-order
roundoff, within the tolerance the fused backend meets in the
equivalence suite.

Parallelism: groups write disjoint output rows (``group_ptr`` slices),
so the outer group loop is embarrassingly parallel and compiles with
``numba.njit(parallel=True)`` + ``prange`` -- each group's inner
accumulation stays serial, so results are **bitwise identical** to the
serial compile whatever the thread count.  The parallel compile is
guarded: it is attempted once per process and any compilation/threading
-layer failure (single-core CI images without a working threading
backend, exotic platforms) falls back to the serial loops with results
unchanged.

Availability: the module imports everywhere (the loop bodies are plain
Python, also runnable un-jitted for testing), but the backend class is
registered only when ``numba`` is importable
(``importlib.util.find_spec``); constructing it without numba raises a
clean :class:`~repro.errors.BackendUnavailableError` (a
``RuntimeError`` subclass) naming the missing dependency -- the session
core's fallback chain degrades such sessions to ``"fused"`` instead of
failing, e.g. a pickled numba session restored on a host without
numba.  The ``numba_import`` fault site
(``REPRO_FAULT="numba_import"``) simulates the missing dependency
deterministically: registration is skipped when the fault is armed at
import time, and construction always consults the injector.
"""

from __future__ import annotations

import importlib.util
import os

import numpy as np

from ...errors import BackendUnavailableError
from ..resilience import fault_active, get_fault_injector
from .base import Backend, charge_plan_launches

__all__ = ["NUMBA_AVAILABLE", "NumbaBackend", "build_group_loops"]

NUMBA_AVAILABLE = (
    importlib.util.find_spec("numba") is not None
    and not fault_active("numba_import")
)

#: Compiled (potential_loop, force_loop) per kernel configuration.
_LOOP_CACHE: dict = {}


def _kernel_cache_key(kernel):
    """``(key, cacheable)`` identity of a kernel's scalar configuration.

    Kernels whose state is unsortable/unhashable get ``cacheable=False``
    rather than a repr-based key: the default repr is identical for
    every instance of a class, so caching on it could silently hand one
    instance the loops compiled around another's parameters.
    """
    try:
        params = tuple(sorted(vars(kernel).items()))
        hash(params)
    except TypeError:
        return (type(kernel), id(kernel)), False
    return (type(kernel), params), True


def _make_loops(eval_r, eval_dr_over_r, r0, jit, prange_fn=range):
    """Build the per-group loops around a kernel's scalar functions.

    ``jit`` wraps each function (identity for pure-Python testing,
    ``numba.njit`` in production); the scalar functions are wrapped too
    so numba can inline them into the compiled loop.  ``prange_fn`` is
    the outer group iterator: ``range`` for serial loops,
    ``numba.prange`` when compiling with ``parallel=True`` (numba
    resolves the closure to its parallel range; groups touch disjoint
    ``phi``/``force`` rows, so the parallel schedule cannot change a
    single bit of the result).
    """
    eval_r = jit(eval_r)
    if eval_dr_over_r is not None:
        eval_dr_over_r = jit(eval_dr_over_r)

    def potential_loop(
        targets, src_points, src_weights,
        group_ptr, seg_group_ptr, seg_lo_arr, seg_sizes,
        phi, eps16,
    ):
        n_groups = group_ptr.shape[0] - 1
        for g in prange_fn(n_groups):
            t_lo = group_ptr[g]
            t_hi = group_ptr[g + 1]
            m = t_hi - t_lo
            if m == 0:
                continue
            s_lo = seg_group_ptr[g]
            s_hi = seg_group_ptr[g + 1]
            rows = 0
            for s in range(s_lo, s_hi):
                rows += seg_sizes[s]
            if rows == 0:
                continue
            # Gather the group's source rows (aliased segments resolve
            # through seg_lo_arr) into dense per-group arrays.
            sx = np.empty(rows, src_points.dtype)
            sy = np.empty(rows, src_points.dtype)
            sz = np.empty(rows, src_points.dtype)
            sq = np.empty(rows, src_weights.dtype)
            s2 = np.empty(rows, src_points.dtype)
            pos = 0
            s2max = 0.0
            for s in range(s_lo, s_hi):
                lo = seg_lo_arr[s]
                for j in range(seg_sizes[s]):
                    x = src_points[lo + j, 0]
                    y = src_points[lo + j, 1]
                    z = src_points[lo + j, 2]
                    sx[pos] = x
                    sy[pos] = y
                    sz[pos] = z
                    sq[pos] = src_weights[lo + j]
                    v = x * x + y * y + z * z
                    s2[pos] = v
                    if v > s2max:
                        s2max = v
                    pos += 1
            t2max = 0.0
            for i in range(m):
                tx = targets[t_lo + i, 0]
                ty = targets[t_lo + i, 1]
                tz = targets[t_lo + i, 2]
                v = tx * tx + ty * ty + tz * tz
                if v > t2max:
                    t2max = v
            noise = eps16 * max(t2max + s2max, 1e-300)
            for i in range(m):
                tx = targets[t_lo + i, 0]
                ty = targets[t_lo + i, 1]
                tz = targets[t_lo + i, 2]
                t2 = tx * tx + ty * ty + tz * tz
                acc = 0.0
                for j in range(rows):
                    r2 = (t2 + s2[j]) - 2.0 * (
                        tx * sx[j] + ty * sy[j] + tz * sz[j]
                    )
                    if r2 <= noise:
                        acc += r0 * sq[j]
                    else:
                        acc += eval_r(np.sqrt(r2)) * sq[j]
                phi[t_lo + i] += acc

    force_loop = None
    if eval_dr_over_r is not None:
        _dr = eval_dr_over_r

        def force_loop(
            targets, src_points, src_weights,
            group_ptr, seg_group_ptr, seg_lo_arr, seg_sizes,
            force, eps16,
        ):
            n_groups = group_ptr.shape[0] - 1
            for g in prange_fn(n_groups):
                t_lo = group_ptr[g]
                t_hi = group_ptr[g + 1]
                m = t_hi - t_lo
                if m == 0:
                    continue
                s_lo = seg_group_ptr[g]
                s_hi = seg_group_ptr[g + 1]
                rows = 0
                for s in range(s_lo, s_hi):
                    rows += seg_sizes[s]
                if rows == 0:
                    continue
                sx = np.empty(rows, src_points.dtype)
                sy = np.empty(rows, src_points.dtype)
                sz = np.empty(rows, src_points.dtype)
                sq = np.empty(rows, src_weights.dtype)
                s2 = np.empty(rows, src_points.dtype)
                pos = 0
                s2max = 0.0
                for s in range(s_lo, s_hi):
                    lo = seg_lo_arr[s]
                    for j in range(seg_sizes[s]):
                        x = src_points[lo + j, 0]
                        y = src_points[lo + j, 1]
                        z = src_points[lo + j, 2]
                        sx[pos] = x
                        sy[pos] = y
                        sz[pos] = z
                        sq[pos] = src_weights[lo + j]
                        v = x * x + y * y + z * z
                        s2[pos] = v
                        if v > s2max:
                            s2max = v
                        pos += 1
                t2max = 0.0
                for i in range(m):
                    tx = targets[t_lo + i, 0]
                    ty = targets[t_lo + i, 1]
                    tz = targets[t_lo + i, 2]
                    v = tx * tx + ty * ty + tz * tz
                    if v > t2max:
                        t2max = v
                noise = eps16 * max(t2max + s2max, 1e-300)
                for i in range(m):
                    tx = targets[t_lo + i, 0]
                    ty = targets[t_lo + i, 1]
                    tz = targets[t_lo + i, 2]
                    t2 = tx * tx + ty * ty + tz * tz
                    fx = 0.0
                    fy = 0.0
                    fz = 0.0
                    for j in range(rows):
                        r2 = (t2 + s2[j]) - 2.0 * (
                            tx * sx[j] + ty * sy[j] + tz * sz[j]
                        )
                        if r2 <= noise:
                            continue  # coincident pairs contribute no force
                        factor = _dr(np.sqrt(r2)) * sq[j]
                        fx += factor * (tx - sx[j])
                        fy += factor * (ty - sy[j])
                        fz += factor * (tz - sz[j])
                    # force = -sum grad = -(factor * diff) accumulated above
                    force[t_lo + i, 0] -= fx
                    force[t_lo + i, 1] -= fy
                    force[t_lo + i, 2] -= fz

    return jit(potential_loop), jit(force_loop) if force_loop is not None else None


def _make_multi_loops(eval_r, eval_dr_over_r, r0, jit, prange_fn=range):
    """Multi-RHS variants of :func:`_make_loops` (2-D weight buffers).

    The distance work -- gather, expanded r^2, noise-floor test, one
    scalar kernel evaluation per (target, source) pair -- runs exactly
    as in the single-vector loops; an innermost loop then accumulates
    every RHS column with the identical multiply-add (coincident and
    regular branches kept separate so operand types match the
    single-vector expressions).  Column ``j`` of the result is
    therefore bitwise what the single-vector loop produces on
    ``src_weights[:, j]``.
    """
    eval_r = jit(eval_r)
    if eval_dr_over_r is not None:
        eval_dr_over_r = jit(eval_dr_over_r)

    def potential_loop(
        targets, src_points, src_weights,
        group_ptr, seg_group_ptr, seg_lo_arr, seg_sizes,
        phi, eps16,
    ):
        n_groups = group_ptr.shape[0] - 1
        n_rhs = src_weights.shape[1]
        for g in prange_fn(n_groups):
            t_lo = group_ptr[g]
            t_hi = group_ptr[g + 1]
            m = t_hi - t_lo
            if m == 0:
                continue
            s_lo = seg_group_ptr[g]
            s_hi = seg_group_ptr[g + 1]
            rows = 0
            for s in range(s_lo, s_hi):
                rows += seg_sizes[s]
            if rows == 0:
                continue
            sx = np.empty(rows, src_points.dtype)
            sy = np.empty(rows, src_points.dtype)
            sz = np.empty(rows, src_points.dtype)
            sq = np.empty((rows, n_rhs), src_weights.dtype)
            s2 = np.empty(rows, src_points.dtype)
            pos = 0
            s2max = 0.0
            for s in range(s_lo, s_hi):
                lo = seg_lo_arr[s]
                for j in range(seg_sizes[s]):
                    x = src_points[lo + j, 0]
                    y = src_points[lo + j, 1]
                    z = src_points[lo + j, 2]
                    sx[pos] = x
                    sy[pos] = y
                    sz[pos] = z
                    for rr in range(n_rhs):
                        sq[pos, rr] = src_weights[lo + j, rr]
                    v = x * x + y * y + z * z
                    s2[pos] = v
                    if v > s2max:
                        s2max = v
                    pos += 1
            t2max = 0.0
            for i in range(m):
                tx = targets[t_lo + i, 0]
                ty = targets[t_lo + i, 1]
                tz = targets[t_lo + i, 2]
                v = tx * tx + ty * ty + tz * tz
                if v > t2max:
                    t2max = v
            noise = eps16 * max(t2max + s2max, 1e-300)
            for i in range(m):
                tx = targets[t_lo + i, 0]
                ty = targets[t_lo + i, 1]
                tz = targets[t_lo + i, 2]
                t2 = tx * tx + ty * ty + tz * tz
                # A list, not an array: each element then follows exactly
                # the type evolution of the solo loop's scalar ``acc``
                # (float32 accumulation in the pure-Python loops, float64
                # under numba's literal unification), keeping column bits
                # equal to the single-vector loop in both modes.
                acc = [0.0] * n_rhs
                for j in range(rows):
                    r2 = (t2 + s2[j]) - 2.0 * (
                        tx * sx[j] + ty * sy[j] + tz * sz[j]
                    )
                    if r2 <= noise:
                        for rr in range(n_rhs):
                            acc[rr] = acc[rr] + r0 * sq[j, rr]
                    else:
                        gval = eval_r(np.sqrt(r2))
                        for rr in range(n_rhs):
                            acc[rr] = acc[rr] + gval * sq[j, rr]
                for rr in range(n_rhs):
                    phi[t_lo + i, rr] += acc[rr]

    force_loop = None
    if eval_dr_over_r is not None:
        _dr = eval_dr_over_r

        def force_loop(
            targets, src_points, src_weights,
            group_ptr, seg_group_ptr, seg_lo_arr, seg_sizes,
            force, eps16,
        ):
            n_groups = group_ptr.shape[0] - 1
            n_rhs = src_weights.shape[1]
            for g in prange_fn(n_groups):
                t_lo = group_ptr[g]
                t_hi = group_ptr[g + 1]
                m = t_hi - t_lo
                if m == 0:
                    continue
                s_lo = seg_group_ptr[g]
                s_hi = seg_group_ptr[g + 1]
                rows = 0
                for s in range(s_lo, s_hi):
                    rows += seg_sizes[s]
                if rows == 0:
                    continue
                sx = np.empty(rows, src_points.dtype)
                sy = np.empty(rows, src_points.dtype)
                sz = np.empty(rows, src_points.dtype)
                sq = np.empty((rows, n_rhs), src_weights.dtype)
                s2 = np.empty(rows, src_points.dtype)
                pos = 0
                s2max = 0.0
                for s in range(s_lo, s_hi):
                    lo = seg_lo_arr[s]
                    for j in range(seg_sizes[s]):
                        x = src_points[lo + j, 0]
                        y = src_points[lo + j, 1]
                        z = src_points[lo + j, 2]
                        sx[pos] = x
                        sy[pos] = y
                        sz[pos] = z
                        for rr in range(n_rhs):
                            sq[pos, rr] = src_weights[lo + j, rr]
                        v = x * x + y * y + z * z
                        s2[pos] = v
                        if v > s2max:
                            s2max = v
                        pos += 1
                t2max = 0.0
                for i in range(m):
                    tx = targets[t_lo + i, 0]
                    ty = targets[t_lo + i, 1]
                    tz = targets[t_lo + i, 2]
                    v = tx * tx + ty * ty + tz * tz
                    if v > t2max:
                        t2max = v
                noise = eps16 * max(t2max + s2max, 1e-300)
                for i in range(m):
                    tx = targets[t_lo + i, 0]
                    ty = targets[t_lo + i, 1]
                    tz = targets[t_lo + i, 2]
                    t2 = tx * tx + ty * ty + tz * tz
                    # Lists for the same reason as the potential loop's
                    # ``acc``: solo-scalar type evolution per column.
                    fx = [0.0] * n_rhs
                    fy = [0.0] * n_rhs
                    fz = [0.0] * n_rhs
                    for j in range(rows):
                        r2 = (t2 + s2[j]) - 2.0 * (
                            tx * sx[j] + ty * sy[j] + tz * sz[j]
                        )
                        if r2 <= noise:
                            continue  # coincident pairs contribute no force
                        fr = _dr(np.sqrt(r2))
                        dx = tx - sx[j]
                        dy = ty - sy[j]
                        dz = tz - sz[j]
                        for rr in range(n_rhs):
                            factor = fr * sq[j, rr]
                            fx[rr] = fx[rr] + factor * dx
                            fy[rr] = fy[rr] + factor * dy
                            fz[rr] = fz[rr] + factor * dz
                    for rr in range(n_rhs):
                        force[t_lo + i, 0, rr] -= fx[rr]
                        force[t_lo + i, 1, rr] -= fy[rr]
                        force[t_lo + i, 2, rr] -= fz[rr]

    return jit(potential_loop), jit(force_loop) if force_loop is not None else None


def build_group_loops(kernel, jit=None, *, parallel=False, multi=False):
    """Resolve (and cache) the compiled loops for ``kernel``.

    ``jit=None`` uses ``numba.njit`` (requires numba); pass an identity
    function to obtain the pure-Python loops for testing the algorithm
    without a compiler.  ``parallel=True`` compiles the outer group
    loop as a ``prange`` under ``njit(parallel=True)`` (bitwise-equal
    results; jitted path only -- the pure-Python loops always iterate
    serially).  ``multi=True`` compiles the multi-RHS variants, which
    expect a 2-D ``src_weights`` buffer and 2-D ``phi`` / 3-D ``force``
    outputs.  Returns ``(potential_loop, force_loop_or_None)``.
    """
    jitted = jit is None
    prange_fn = range
    if jitted:
        if not NUMBA_AVAILABLE:  # pragma: no cover - exercised via backend
            raise BackendUnavailableError(
                "numba is not installed; the 'numba' backend is unavailable "
                "(pip install numba, or select backend='fused')",
                backend="numba",
            )
        import numba

        jit = numba.njit(cache=False, parallel=bool(parallel))
        if parallel:
            prange_fn = numba.prange
    kernel_key, cacheable = _kernel_cache_key(kernel)
    cacheable = cacheable and jitted
    key = (kernel_key, jitted, bool(parallel) and jitted, bool(multi))
    if cacheable and key in _LOOP_CACHE:
        return _LOOP_CACHE[key]
    try:
        eval_r, eval_dr = kernel.scalar_functions()
    except NotImplementedError as exc:
        raise ValueError(
            f"kernel {kernel.name!r} provides no scalar functions; "
            "the numba backend needs them to compile its loops"
        ) from exc
    r0 = float(kernel.evaluate_r0()) if hasattr(kernel, "evaluate_r0") else 0.0
    make = _make_multi_loops if multi else _make_loops
    loops = make(eval_r, eval_dr, r0, jit, prange_fn)
    if cacheable:
        _LOOP_CACHE[key] = loops
    return loops


class NumbaBackend(Backend):
    """JIT-compiled gather+GEMV evaluation of a compiled plan.

    Parameters
    ----------
    parallel : compile the outer group loop as ``prange`` under
        ``njit(parallel=True)``.  ``None`` (the default) enables it on
        multi-core hosts and stays serial on single-core ones; either
        way a failed parallel compile or a broken threading layer falls
        back to the serial loops transparently (the results are bitwise
        identical, so the fallback is unobservable except in speed).
    """

    name = "numba"
    needs_numerics = True

    def __init__(self, *, parallel: bool | None = None) -> None:
        if (
            not NUMBA_AVAILABLE
            or get_fault_injector().fire("numba_import") is not None
        ):
            raise BackendUnavailableError(
                "numba is not installed; the 'numba' backend is unavailable "
                "(pip install numba, or select backend='fused')",
                backend="numba",
            )
        if parallel is None:
            parallel = (os.cpu_count() or 1) > 1
        self.parallel = bool(parallel)

    def execute(
        self,
        plan,
        kernel,
        device,
        *,
        dtype=np.float64,
        compute_forces: bool = False,
        n_rhs: int | None = None,
    ):
        if not plan.has_numerics:
            raise ValueError(
                f"backend {self.name!r} needs a plan compiled with numerics"
            )
        charge_plan_launches(
            plan, kernel, device,
            dtype=dtype, compute_forces=compute_forces, bulk=True,
            n_rhs=plan.rhs_width or 1,
        )
        if self.parallel:
            try:
                return self._run(plan, kernel, dtype, compute_forces, True)
            except Exception:
                # Parallel compilation / threading-layer failure (e.g. a
                # single-core CI image without a usable backend).  The
                # serial loops compute the identical bits; if they fail
                # too, *that* error is the real one and propagates.
                out = self._run(plan, kernel, dtype, compute_forces, False)
                self.parallel = False  # don't retry every execute
                return out
        return self._run(plan, kernel, dtype, compute_forces, False)

    def _run(self, plan, kernel, dtype, compute_forces, parallel):
        potential_loop, force_loop = build_group_loops(
            kernel, parallel=parallel, multi=plan.src_weights.ndim == 2,
        )
        if compute_forces and force_loop is None:
            raise NotImplementedError(
                f"kernel {kernel.name!r} does not implement gradients"
            )
        return run_plan_loops(
            plan, potential_loop,
            force_loop if compute_forces else None,
            dtype=dtype,
        )


def run_plan_loops(plan, potential_loop, force_loop, *, dtype=np.float64):
    """Drive the (jitted or plain) loops over a plan's buffers.

    A 2-D ``plan.src_weights`` buffer selects the multi-RHS shapes: the
    supplied loops must then be the ``multi=True`` variants, and the
    returned potential/forces gain a trailing RHS axis.
    """
    targets = np.ascontiguousarray(plan.targets, dtype=dtype)
    src_points = np.ascontiguousarray(plan.src_points, dtype=dtype)
    src_weights = np.ascontiguousarray(plan.src_weights, dtype=dtype)
    multi = src_weights.ndim == 2
    n_rhs = src_weights.shape[1] if multi else 1
    out = np.zeros(
        (plan.out_size, n_rhs) if multi else plan.out_size,
        dtype=np.float64,
    )
    forces = (
        np.zeros(
            (plan.out_size, 3, n_rhs) if multi else (plan.out_size, 3),
            dtype=np.float64,
        )
        if force_loop is not None
        else None
    )
    seg_sizes = np.ascontiguousarray(np.diff(plan.seg_ptr))
    seg_lo_arr = np.ascontiguousarray(plan.seg_src_lo)
    group_ptr = np.ascontiguousarray(plan.group_ptr)
    seg_group_ptr = np.ascontiguousarray(plan.seg_group_ptr)
    eps16 = 16.0 * float(np.finfo(np.dtype(dtype)).eps)
    phi = np.zeros(
        (plan.n_target_rows, n_rhs) if multi else plan.n_target_rows,
        dtype=np.float64,
    )
    potential_loop(
        targets, src_points, src_weights,
        group_ptr, seg_group_ptr, seg_lo_arr, seg_sizes,
        phi, eps16,
    )
    out[plan.out_index] += phi
    if force_loop is not None:
        f_rows = np.zeros(
            (plan.n_target_rows, 3, n_rhs)
            if multi
            else (plan.n_target_rows, 3),
            dtype=np.float64,
        )
        force_loop(
            targets, src_points, src_weights,
            group_ptr, seg_group_ptr, seg_lo_arr, seg_sizes,
            f_rows, eps16,
        )
        forces[plan.out_index] += f_rows
    return out, forces
