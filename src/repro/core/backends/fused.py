"""Fused backend: zero-copy evaluation straight from the plan buffers.

The plan compiler already gathered every group's sources behind
per-segment ``seg_src_lo`` offsets into de-duplicated buffers, so this
backend evaluates each group with *one* blocked accumulation over its
whole source range -- no per-batch ``np.concatenate`` when the aliases
land contiguously and at most one dtype cast of the buffers for the
whole run.  Forces reuse the same gathered buffers.
The arithmetic itself lives in :mod:`.groupeval` and is shared verbatim
with the multiprocessing backend's shards (which is why the two are
bitwise identical by construction).  Results agree with
:class:`~.numpy_backend.NumpyBackend` to floating-point roundoff (the
accumulation merges the per-kind partial sums into one pass); the
recorded device counters are identical, since launch charging derives
from the plan, not from how the numerics are blocked.
"""

from __future__ import annotations

import numpy as np

from .base import Backend, charge_plan_launches
from .groupeval import eval_group_range, plan_arrays

__all__ = ["FusedBackend"]


class FusedBackend(Backend):
    """One fused accumulation per group over pre-gathered buffers."""

    name = "fused"
    needs_numerics = True

    def execute(
        self,
        plan,
        kernel,
        device,
        *,
        dtype=np.float64,
        compute_forces: bool = False,
        n_rhs: int | None = None,
    ):
        if not plan.has_numerics:
            raise ValueError(
                f"backend {self.name!r} needs a plan compiled with numerics"
            )
        width = plan.rhs_width
        charge_plan_launches(
            plan, kernel, device,
            dtype=dtype, compute_forces=compute_forces, bulk=True,
            n_rhs=width or 1,
        )
        out = np.zeros(
            plan.out_size if width is None else (plan.out_size, width),
            dtype=np.float64,
        )
        forces = (
            np.zeros(
                (plan.out_size, 3)
                if width is None
                else (plan.out_size, 3, width),
                dtype=np.float64,
            )
            if compute_forces
            else None
        )
        # cast_geometry: mixed-precision sessions then cast targets and
        # points once per plan instead of re-running
        # np.ascontiguousarray on every apply (the per-group casts
        # inside eval_group_range become zero-copy views); float64
        # passes the stored buffers straight through.
        t_lo, t_hi, phi, f_rows = eval_group_range(
            plan_arrays(plan, cast_geometry=dtype), kernel, dtype,
            compute_forces, 0, plan.n_groups,
        )
        idx = plan.out_index[t_lo:t_hi]
        out[idx] += phi
        if forces is not None and f_rows is not None:
            forces[idx] += f_rows
        return out, forces
