"""Fused backend: zero-copy evaluation straight from the plan buffers.

The plan compiler already gathered every group's sources contiguously,
so this backend evaluates each group with *one* blocked accumulation
over its whole source range -- no per-batch ``np.concatenate``, no
per-call ``ascontiguousarray`` copies, and at most one dtype cast of the
shared buffers for the whole run.  Forces reuse the same gathered
buffers.  Results agree with :class:`~.numpy_backend.NumpyBackend` to
floating-point roundoff (the accumulation merges the per-kind partial
sums into one pass); the recorded device counters are identical, since
launch charging derives from the plan, not from how the numerics are
blocked.
"""

from __future__ import annotations

import numpy as np

from .base import Backend, charge_plan_launches

__all__ = ["FusedBackend"]


class FusedBackend(Backend):
    """One fused accumulation per group over pre-gathered buffers."""

    name = "fused"
    needs_numerics = True

    def execute(
        self,
        plan,
        kernel,
        device,
        *,
        dtype=np.float64,
        compute_forces: bool = False,
    ):
        if not plan.has_numerics:
            raise ValueError(
                f"backend {self.name!r} needs a plan compiled with numerics"
            )
        charge_plan_launches(
            plan, kernel, device,
            dtype=dtype, compute_forces=compute_forces, bulk=True,
        )
        out = np.zeros(plan.out_size, dtype=np.float64)
        forces = (
            np.zeros((plan.out_size, 3), dtype=np.float64)
            if compute_forces
            else None
        )
        # Cast the shared buffers once; float64 plans pass through as-is.
        tgt_all = np.ascontiguousarray(plan.targets, dtype=dtype)
        src_all = np.ascontiguousarray(plan.src_points, dtype=dtype)
        q_all = np.ascontiguousarray(plan.src_weights, dtype=dtype)
        group_ptr = plan.group_ptr
        seg_group_ptr = plan.seg_group_ptr
        seg_ptr = plan.seg_ptr
        for g in range(plan.n_groups):
            t_lo, t_hi = int(group_ptr[g]), int(group_ptr[g + 1])
            m = t_hi - t_lo
            if m == 0:
                continue
            r_lo = int(seg_ptr[seg_group_ptr[g]])
            r_hi = int(seg_ptr[seg_group_ptr[g + 1]])
            if r_hi == r_lo:
                continue
            tgt = tgt_all[t_lo:t_hi]
            idx = plan.out_index[t_lo:t_hi]
            phi = np.zeros(m, dtype=np.float64)
            kernel.potential(tgt, src_all[r_lo:r_hi], q_all[r_lo:r_hi], out=phi)
            out[idx] += phi
            if forces is not None:
                f_acc = np.zeros((m, 3), dtype=np.float64)
                kernel.force(
                    tgt, src_all[r_lo:r_hi], q_all[r_lo:r_hi], out=f_acc
                )
                forces[idx] += f_acc
        return out, forces
