"""Pluggable evaluation backends for compiled execution plans.

The pipeline (single-device BLTC, distributed driver and the Sec. 5
extension schemes) compiles its work into an
:class:`~repro.core.plan.ExecutionPlan` and hands it to one of these
backends:

* :class:`NumpyBackend` (``"numpy"``) -- the reference; reproduces the
  seed implementation's blocked per-batch arithmetic byte-for-byte.
* :class:`FusedBackend` (``"fused"``) -- evaluates from the shared
  pre-gathered buffers with no per-batch concatenation or copies;
  bitwise-close results, measurably faster wall-clock.
* :class:`BatchedBackend` (``"batched"``) -- shape-bucketed stacked
  evaluation: uniform far-field groups collapse into a few large
  batched GEMMs (no per-group Python loop), ragged work falls back to
  the fused per-group path inside the same execute.
* :class:`MultiprocessingBackend` (``"multiprocessing"``) -- shards the
  plan's groups across a persistent worker pool, shipping the flat
  buffers through POSIX shared memory; the paper's outer (multi-rank)
  parallelism on one host.
* :class:`NumbaBackend` (``"numba"``) -- JIT-compiled per-group
  gather+GEMV loops; registered only when ``numba`` is importable.
* :class:`ModelBackend` (``"model"``) -- launch accounting only (the
  old ``dry_run`` mode); runs the timing model at paper scale.

Select one with ``TreecodeParams(backend="fused")`` or register your own
(a real GPU, ...) via :func:`register_backend`.  The name -> class store
itself lives in :mod:`repro.registry` so the config layer can validate
backend names without importing this package.
"""

from __future__ import annotations

from ...registry import (
    backend_names,
    backend_type,
    register_backend_type,
    shared_backend_instance,
)
from .base import (
    Backend,
    charge_plan_launches,
    charge_segment_launches,
    launch_cost_multiplier,
)
from .batched import BatchedBackend
from .fused import FusedBackend
from .model import ModelBackend
from .multiproc import MultiprocessingBackend
from .numba_backend import NUMBA_AVAILABLE, NumbaBackend
from .numpy_backend import NumpyBackend

__all__ = [
    "Backend",
    "NumpyBackend",
    "FusedBackend",
    "BatchedBackend",
    "MultiprocessingBackend",
    "NumbaBackend",
    "ModelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "charge_plan_launches",
    "charge_segment_launches",
    "launch_cost_multiplier",
]


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Register a backend class under ``cls.name`` (decorator-friendly)."""
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise ValueError(f"backend class {cls!r} needs a distinct name")
    register_backend_type(name, cls)
    return cls


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends."""
    return backend_names()


def get_backend(name: str | Backend) -> Backend:
    """Resolve a backend instance from a registry name.

    Backend instances pass through unchanged, so drivers accept either a
    name (registry lookup) or a ready-made object (custom backends that
    carry their own state).  Classes marked ``share_instance`` resolve
    through the process-wide store in :mod:`repro.registry`, so
    selecting e.g. ``TreecodeParams(backend="multiprocessing")`` reuses
    the same worker pool across every session in the process -- live or
    restored from a pickle -- instead of forking a fresh one each time.
    """
    if isinstance(name, Backend):
        return name
    try:
        cls = backend_type(name)
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    if getattr(cls, "share_instance", False):
        return shared_backend_instance(name, cls)
    return cls()


register_backend(NumpyBackend)
register_backend(FusedBackend)
register_backend(BatchedBackend)
register_backend(ModelBackend)
register_backend(MultiprocessingBackend)
if NUMBA_AVAILABLE:
    # Gated registration: without numba the name is absent from the
    # registry (selection fails with the standard unknown-backend error
    # listing what *is* available) and constructing NumbaBackend directly
    # raises a clean RuntimeError.
    register_backend(NumbaBackend)
