"""Pluggable evaluation backends for compiled execution plans.

The pipeline (single-device BLTC, distributed driver and the Sec. 5
extension schemes) compiles its work into an
:class:`~repro.core.plan.ExecutionPlan` and hands it to one of these
backends:

* :class:`NumpyBackend` (``"numpy"``) -- the reference; reproduces the
  seed implementation's blocked per-batch arithmetic byte-for-byte.
* :class:`FusedBackend` (``"fused"``) -- evaluates from the shared
  pre-gathered buffers with no per-batch concatenation or copies;
  bitwise-close results, measurably faster wall-clock.
* :class:`ModelBackend` (``"model"``) -- launch accounting only (the
  old ``dry_run`` mode); runs the timing model at paper scale.

Select one with ``TreecodeParams(backend="fused")`` or register your own
(numba, multiprocessing, a real GPU) via :func:`register_backend`.
"""

from __future__ import annotations

from .base import (
    Backend,
    charge_plan_launches,
    charge_segment_launches,
    launch_cost_multiplier,
)
from .fused import FusedBackend
from .model import ModelBackend
from .numpy_backend import NumpyBackend

__all__ = [
    "Backend",
    "NumpyBackend",
    "FusedBackend",
    "ModelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "charge_plan_launches",
    "charge_segment_launches",
    "launch_cost_multiplier",
]

_REGISTRY: dict[str, type[Backend]] = {}


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Register a backend class under ``cls.name`` (decorator-friendly)."""
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise ValueError(f"backend class {cls!r} needs a distinct name")
    _REGISTRY[name] = cls
    return cls


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str | Backend) -> Backend:
    """Resolve a backend instance from a registry name.

    Backend instances pass through unchanged, so drivers accept either a
    name (registry lookup) or a ready-made object (custom backends that
    carry their own state).
    """
    if isinstance(name, Backend):
        return name
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    return cls()


register_backend(NumpyBackend)
register_backend(FusedBackend)
register_backend(ModelBackend)
