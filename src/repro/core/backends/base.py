"""Backend protocol and the one device-charging path for execution plans.

A backend turns an :class:`~repro.core.plan.ExecutionPlan` into numbers
(or, for the model backend, into nothing but simulated time).  All
backends charge the simulated device through
:func:`charge_plan_launches` -- the single place that converts plan
segments into :meth:`~repro.gpu.device.Device.launch` calls -- so every
backend records byte-identical :class:`~repro.gpu.device.DeviceCounters`
on the same plan by construction.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...gpu.device import Device
    from ...kernels.base import Kernel
    from ..plan import ExecutionPlan

__all__ = [
    "Backend",
    "launch_cost_multiplier",
    "charge_segment_launches",
    "charge_plan_launches",
]

#: Gradient kernels cost roughly 2x the potential kernel (three
#: components sharing one distance evaluation).
FORCE_FLOP_FACTOR = 2.0


def launch_cost_multiplier(kernel: "Kernel", device: "Device", dtype) -> float:
    """Combined per-launch cost factor: transcendental mix x precision.

    The float32 half-cost rule lives on
    :meth:`~repro.perf.machine.MachineSpec.precision_multiplier`; this
    helper is the one call site pattern all executors share.
    """
    return kernel.cost_multiplier(
        device.spec.transcendental_penalty
    ) * device.spec.precision_multiplier(dtype)


def charge_segment_launches(
    device: "Device",
    kernel: "Kernel",
    n_targets: int,
    sizes,
    kind: str,
    *,
    cost_multiplier: float,
    flops_factor: float = 1.0,
    n_rhs: int = 1,
) -> None:
    """Charge one launch per segment size against the device.

    ``n_rhs`` scales the interaction count for multi-RHS execution: the
    widened GEMV evaluates every charge column against the same kernel
    block, so one launch carries ``n_rhs`` times the work (block count
    is unchanged -- the launch grid is the target rows either way).
    """
    for sz in sizes:
        interactions = float(n_targets) * float(sz)
        if n_rhs != 1:
            interactions *= float(n_rhs)
        device.launch(
            interactions,
            blocks=n_targets,
            kind=kind,
            flops_per_interaction=flops_factor * kernel.flops_per_interaction,
            cost_multiplier=cost_multiplier,
        )


def charge_plan_launches(
    plan: "ExecutionPlan",
    kernel: "Kernel",
    device: "Device",
    *,
    dtype=np.float64,
    compute_forces: bool = False,
    bulk: bool = False,
    n_rhs: int = 1,
) -> None:
    """Charge the device for every launch the plan describes.

    Per group: one launch per segment with ``group_size x seg_size``
    interactions and ``group_size`` thread blocks, potential kinds first;
    with ``compute_forces`` the same segments are charged again as
    ``<kind>-force`` launches at :data:`FORCE_FLOP_FACTOR` flops.
    ``n_rhs > 1`` multiplies every launch's interaction count (multi-RHS
    execution evaluates that many charge columns per kernel block;
    block counts are unchanged).

    ``bulk=True`` computes every launch duration in one vectorized pass
    and streams them to :meth:`~repro.gpu.device.Device.launch_many` --
    byte-identical counters and simulated time (the vector math mirrors
    the scalar operation order and accumulation stays in launch order),
    at a fraction of the per-launch accounting cost.  The reference
    backend keeps the scalar path, which is the seed implementation's
    behaviour; the fused and model backends charge in bulk.
    """
    cost_mult = launch_cost_multiplier(kernel, device, dtype)
    if bulk:
        _charge_bulk(plan, kernel, device, cost_mult, compute_forces, n_rhs)
        return
    seg_sizes = np.diff(plan.seg_ptr)
    for g in range(plan.n_groups):
        m = plan.group_size(g)
        if m == 0:
            continue
        for kind, s_lo, s_hi in plan.group_kind_runs(g):
            charge_segment_launches(
                device, kernel, m, seg_sizes[s_lo:s_hi], kind,
                cost_multiplier=cost_mult,
                n_rhs=n_rhs,
            )
        if compute_forces:
            for kind, s_lo, s_hi in plan.group_kind_runs(g):
                charge_segment_launches(
                    device, kernel, m, seg_sizes[s_lo:s_hi], f"{kind}-force",
                    cost_multiplier=cost_mult,
                    flops_factor=FORCE_FLOP_FACTOR,
                    n_rhs=n_rhs,
                )


def _charge_bulk(plan, kernel, device, cost_mult, compute_forces, n_rhs=1) -> None:
    spec = device.spec
    seg_sizes = np.diff(plan.seg_ptr).astype(np.float64)
    blocks = np.repeat(
        np.diff(plan.group_ptr), np.diff(plan.seg_group_ptr)
    )
    interactions = blocks.astype(np.float64) * seg_sizes
    if n_rhs != 1:
        interactions *= float(n_rhs)
    occ_blocks = blocks if spec.kind == "gpu" else None
    pot_dur = spec.interaction_times(
        interactions,
        occ_blocks,
        flops_per_interaction=kernel.flops_per_interaction,
        cost_multiplier=cost_mult,
    )
    kinds = [plan.kind_names[k] for k in plan.seg_kind.tolist()]
    force_dur = None
    force_kinds = None
    if compute_forces:
        force_dur = spec.interaction_times(
            interactions,
            occ_blocks,
            flops_per_interaction=(
                FORCE_FLOP_FACTOR * kernel.flops_per_interaction
            ),
            cost_multiplier=cost_mult,
        )
        force_kinds = [f"{k}-force" for k in kinds]
    seg_group_ptr = plan.seg_group_ptr
    group_sizes = np.diff(plan.group_ptr)
    for g in range(plan.n_groups):
        if group_sizes[g] == 0:
            continue
        lo, hi = int(seg_group_ptr[g]), int(seg_group_ptr[g + 1])
        if hi == lo:
            continue
        device.launch_many(
            kinds[lo:hi], interactions[lo:hi], pot_dur[lo:hi]
        )
        if compute_forces:
            device.launch_many(
                force_kinds[lo:hi], interactions[lo:hi], force_dur[lo:hi]
            )


class Backend(abc.ABC):
    """Evaluation backend: executes a compiled plan on a device.

    ``needs_numerics`` tells the pipeline whether moments and plan
    buffers must carry floating-point data (False for the model-only
    backend, which lets the timing model run at paper scale).
    """

    #: Registry name (``TreecodeParams(backend=...)``).
    name: str = "abstract"
    #: Whether the pipeline must compute moments / gather plan buffers.
    needs_numerics: bool = True
    #: Reuse one shared instance for by-name registry lookups.  Set True
    #: on backends whose state is expensive to recreate (a worker pool,
    #: a JIT cache); stateless backends keep fresh instances per lookup.
    share_instance: bool = False

    @abc.abstractmethod
    def execute(
        self,
        plan: "ExecutionPlan",
        kernel: "Kernel",
        device: "Device",
        *,
        dtype=np.float64,
        compute_forces: bool = False,
        n_rhs: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Run the plan; returns ``(out, forces_or_None)``.

        ``out`` has length ``plan.out_size`` (accumulated through
        ``plan.out_index``); ``forces`` is ``(out_size, 3)`` when
        requested.  Implementations must charge the device exclusively
        via :func:`charge_plan_launches`.

        Multi-RHS: numerics backends detect a widened weight buffer
        through ``plan.rhs_width`` and return ``(out_size, n_rhs)`` /
        ``(out_size, 3, n_rhs)``; the ``n_rhs`` parameter exists so
        sessions can tell buffer-free executions (the model backend,
        whose plan may carry stale or absent weights) how many columns
        to charge and shape for.  Sessions only pass it on the multi
        path, so externally registered backends with the pre-multi-RHS
        signature keep working for single-vector applies.
        """

    def health_stats(self) -> dict:
        """Recovery/health counters of this backend instance.

        Stateless backends have nothing to report (empty dict);
        pool-carrying backends override with their retry / rebuild /
        last-error counters, surfaced through
        ``SessionCore.health_stats``.
        """
        return {}

    def is_healthy(self) -> bool:
        """Whether by-name registry lookups may keep sharing this
        instance; unhealthy shared instances are replaced with fresh
        ones at resolution time (see
        :func:`repro.registry.shared_backend_instance`)."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
