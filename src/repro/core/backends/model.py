"""Model-only backend: simulated time and counters, no numerics.

Subsumes the seed's ``dry_run`` branches: the device is charged for
exactly the launches a real run would make (same interaction counts,
same block counts, same kinds -- all derived from the plan structure),
but no potential is evaluated and the returned arrays are zeros.  This
lets the timing model run at paper scale (10^6-10^9 particles) where
python numerics would be prohibitive; it works on plans compiled with
``numerics=False``, which carry only index arrays and sizes.
"""

from __future__ import annotations

import numpy as np

from .base import Backend, charge_plan_launches

__all__ = ["ModelBackend"]


class ModelBackend(Backend):
    """Launch accounting only; potentials and forces stay zero."""

    name = "model"
    needs_numerics = False

    def execute(
        self,
        plan,
        kernel,
        device,
        *,
        dtype=np.float64,
        compute_forces: bool = False,
        n_rhs: int | None = None,
    ):
        # Model-only plans carry no weight buffers (and dry runs of a
        # prepared numerics session skip the weight refresh), so the
        # session tells us the RHS width explicitly; None keeps the
        # single-vector shapes and charging.
        charge_plan_launches(
            plan, kernel, device,
            dtype=dtype, compute_forces=compute_forces, bulk=True,
            n_rhs=n_rhs or 1,
        )
        out = np.zeros(
            plan.out_size if n_rhs is None else (plan.out_size, n_rhs),
            dtype=np.float64,
        )
        forces = (
            np.zeros(
                (plan.out_size, 3)
                if n_rhs is None
                else (plan.out_size, 3, n_rhs),
                dtype=np.float64,
            )
            if compute_forces
            else None
        )
        return out, forces
