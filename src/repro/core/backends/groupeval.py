"""The fused per-group evaluation shared by the fused and mp backends.

One implementation of the per-group "gather sources, one blocked
kernel accumulation" arithmetic, operating on a plain dict of the
plan's flat arrays so it runs identically in-process (FusedBackend, the
multiprocessing backend's inline path) and inside pool workers (which
rebuild the dict from shared memory).  Keeping it single-sourced is
what makes the multiprocessing backend's "bitwise == fused" contract a
structural property instead of a hand-synchronized one.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PLAN_ARRAY_FIELDS",
    "plan_arrays",
    "run_source_slices",
    "eval_group_range",
]

#: The ExecutionPlan fields a group evaluation needs.
PLAN_ARRAY_FIELDS = (
    "targets",
    "out_index",
    "src_points",
    "src_weights",
    "group_ptr",
    "seg_group_ptr",
    "seg_ptr",
    "seg_src_lo",
)


def plan_arrays(plan, *, cast_geometry=None) -> dict:
    """The plan's non-None flat arrays keyed by field name.

    ``cast_geometry`` swaps in the plan's dtype-keyed cast caches for
    the geometry-constant buffers (targets / source points), so
    mixed-precision executions cast once per plan instead of per call;
    the in-process backends pass their evaluation dtype here.  Leave it
    None when shipping buffers elsewhere (the multiprocessing
    shipment): workers cast their own shard slices, which is
    elementwise-identical.
    """
    arrays = {
        f: getattr(plan, f)
        for f in PLAN_ARRAY_FIELDS
        if getattr(plan, f) is not None
    }
    if cast_geometry is not None:
        arrays["targets"] = plan.targets_as(cast_geometry)
        arrays["src_points"] = plan.src_points_as(cast_geometry)
    return arrays


def run_source_slices(arrays, s_lo: int, s_hi: int):
    """Physical (lo, hi) source row ranges of segments ``[s_lo, s_hi)``.

    One range per segment, resolved through the per-segment
    ``seg_src_lo`` offsets (aliases may scatter).  Shared by the
    per-group evaluation here and the batched backend's ragged
    fallback.
    """
    seg_ptr = arrays["seg_ptr"]
    seg_src_lo = arrays["seg_src_lo"]
    out = []
    for s in range(s_lo, s_hi):
        lo = int(seg_src_lo[s])
        out.append((lo, lo + int(seg_ptr[s + 1] - seg_ptr[s])))
    return out


def _group_source_slices(arrays, g):
    """Physical (lo, hi) source row ranges of group ``g``, in order."""
    seg_group_ptr = arrays["seg_group_ptr"]
    return run_source_slices(
        arrays, int(seg_group_ptr[g]), int(seg_group_ptr[g + 1])
    )


def eval_group_range(arrays, kernel, dtype, compute_forces, g_lo, g_hi):
    """Fused per-group accumulation over groups ``[g_lo, g_hi)``.

    Returns ``(t_lo, t_hi, phi, forces)`` where ``phi`` covers the
    contiguous target rows of the range; the caller scatters through
    ``out_index`` (injective, so shards of disjoint group ranges never
    race on the output).

    A 2-D weight buffer widens ``phi`` to ``(rows, n_rhs)`` and
    ``forces`` to ``(rows, 3, n_rhs)``: the kernel hoists each group's
    pairwise matrix / gradient once and contracts all columns against
    it -- this is where the per-group GEMV grows into a GEMM.
    """
    group_ptr = arrays["group_ptr"]
    t_lo_all = int(group_ptr[g_lo])
    t_hi_all = int(group_ptr[g_hi])
    # The temporary-free r^2 primitive reorders the three-term sum; at
    # double precision the difference sits at the coincidence noise
    # floor, but at single precision that cancellation dominates the
    # mixed-precision error budget -- so float32 keeps the reference
    # operation order and only the float64 path opts in.
    fused = np.dtype(dtype) == np.float64
    rows = t_hi_all - t_lo_all
    rhs_width = (
        arrays["src_weights"].shape[1]
        if arrays["src_weights"].ndim == 2
        else None
    )
    phi = np.zeros(
        rows if rhs_width is None else (rows, rhs_width), dtype=np.float64
    )
    f_out = (
        np.zeros(
            (rows, 3) if rhs_width is None else (rows, 3, rhs_width),
            dtype=np.float64,
        )
        if compute_forces
        else None
    )
    # Cast once per range; float64 passes through as views.  The shared
    # layout's physical rows are scattered through ``seg_src_lo``
    # aliases (and already de-duplicated), so the cast covers the full
    # -- compact -- buffers.
    base = 0
    src_all = np.ascontiguousarray(arrays["src_points"], dtype=dtype)
    q_all = np.ascontiguousarray(arrays["src_weights"], dtype=dtype)
    for g in range(g_lo, g_hi):
        t_lo, t_hi = int(group_ptr[g]), int(group_ptr[g + 1])
        m = t_hi - t_lo
        if m == 0:
            continue
        slices = [
            (lo - base, hi - base)
            for lo, hi in _group_source_slices(arrays, g)
            if hi > lo
        ]
        if not slices:
            continue
        # Contiguity fast path: a single run needs no gather at all.
        contiguous = len(slices) == 1 or all(
            slices[i][1] == slices[i + 1][0] for i in range(len(slices) - 1)
        )
        if contiguous:
            lo, hi = slices[0][0], slices[-1][1]
            src, q = src_all[lo:hi], q_all[lo:hi]
        else:
            src = np.concatenate([src_all[lo:hi] for lo, hi in slices], axis=0)
            q = np.concatenate([q_all[lo:hi] for lo, hi in slices])
        tgt = np.ascontiguousarray(
            arrays["targets"][t_lo:t_hi], dtype=dtype
        )
        o_lo = t_lo - t_lo_all
        # fused selects the temporary-free r^2 primitive on kernels
        # that provide one (RadialKernel); the reference numpy backend
        # never passes it, keeping the byte-stable path untouched.
        kernel.potential(tgt, src, q, out=phi[o_lo:o_lo + m], fused=fused)
        if f_out is not None:
            kernel.force(tgt, src, q, out=f_out[o_lo:o_lo + m], fused=fused)
    return t_lo_all, t_hi_all, phi, f_out
