"""Shape-bucketed batched evaluation shared across backends.

The numerics of the batched backend, kept free-standing (plain arrays +
:class:`~repro.core.plan.BatchedBucket` objects in, accumulations out)
so the same functions run in-process for :class:`~.batched.BatchedBackend`
and are usable inside multiprocessing shards: a pool worker holding the
flat buffers and a pickled bucket calls :func:`eval_bucket` exactly as
the parent would.

Per bucket the evaluation is a handful of stacked array passes -- one
batched GEMM for the r^2 cross term, elementwise kernel passes over the
``(G, m, k)`` stack, one batched GEMV against the bucket's weight matrix
-- followed by a single fancy-indexed scatter of the valid rows.  No
per-group Python iteration, no per-group target-block materialization.
Buckets are chunked along the entry axis so the live ``(g, m, k)`` stack
stays bounded (the same role :data:`~repro.kernels.base.DEFAULT_BLOCK_ELEMENTS`
plays in the blocked direct sum); chunk boundaries depend only on the
bucket shape, so repeated executions are bitwise identical.

Padded (near-field) buckets need no special casing here: their pad
columns are real repeated coordinates, so ``pairwise_batched``'s
per-chunk coincidence scan patches any zero-distance pair (self-target
groups, coincident pads) to a zero kernel value exactly as it does for
true coincidences, and the zero weight stored for every pad makes the
non-coincident pads contribute an exact ``0.0`` to the GEMV.  Direct
kinds therefore run through the same stacked passes as the far field.

The runs the layout could not bucket profitably (pool slabs below the
minimum entry count) are evaluated by :func:`eval_ragged_runs` through
the same per-group fused arithmetic as :mod:`.groupeval`, one kernel
accumulation per run -- a thin remainder, not the near-field path.
"""

from __future__ import annotations

import numpy as np

from ...util import chunk_ranges
from .groupeval import run_source_slices

__all__ = ["BUCKET_BLOCK_ELEMENTS", "eval_bucket", "eval_ragged_runs"]

#: Cap on the number of (g, m, k) stack elements live per bucket chunk.
BUCKET_BLOCK_ELEMENTS = 4_000_000


def eval_bucket(
    bucket,
    targets: np.ndarray,
    src_points: np.ndarray,
    kernel,
    dtype,
    compute_forces: bool,
    out: np.ndarray,
    forces: np.ndarray | None,
    *,
    block_elements: int = BUCKET_BLOCK_ELEMENTS,
) -> None:
    """Evaluate one bucket and accumulate into ``out`` (and ``forces``).

    ``targets`` / ``src_points`` are the plan's (pre-cast) coordinate
    buffers; the bucket gathers and caches its stacks from them.  The
    weight matrix is the bucket's own (refreshed in place by
    ``ExecutionPlan.refresh_weights``), cast per call for mixed
    precision.  The scatter uses the bucket's precomputed valid
    positions, so padded rows are computed but never accumulated.

    Multi-RHS: a ``(G, k, n_rhs)`` bucket weight matrix hoists each
    chunk's kernel-matrix stack once and re-contracts it per column
    with the identical single-column batched GEMV on a contiguous
    column copy.  Chunk boundaries never depend on ``n_rhs`` (the
    coincidence noise floor derives from the chunk), so column ``j``
    is bitwise the single-vector result on weight column ``j``.
    """
    tgt, src = bucket.stacks(targets, src_points, dtype)
    w = bucket.weights
    if w.dtype != tgt.dtype:
        w = w.astype(tgt.dtype)
    multi = w.ndim == 3
    n_rhs = w.shape[2] if multi else 1
    n, m_max, _ = tgt.shape
    k = src.shape[1]
    phi = np.empty(
        (n, m_max, n_rhs) if multi else (n, m_max), dtype=tgt.dtype
    )
    f_stack = None
    if compute_forces:
        f_stack = np.empty(
            (n, m_max, 3, n_rhs) if multi else (n, m_max, 3), dtype=tgt.dtype
        )
    per_entry = m_max * max(k, 1) * (2 if compute_forces else 1)
    chunk = max(1, block_elements // per_entry)
    for lo, hi in chunk_ranges(n, chunk):
        mat = kernel.pairwise_batched(tgt[lo:hi], src[lo:hi])
        if multi:
            for r in range(n_rhs):
                w_col = np.ascontiguousarray(w[lo:hi, :, r])
                phi[lo:hi, :, r] = np.matmul(mat, w_col[:, :, None])[..., 0]
        else:
            phi[lo:hi] = np.matmul(mat, w[lo:hi, :, None])[..., 0]
        if f_stack is not None:
            f_stack[lo:hi] = kernel.force_batched(
                tgt[lo:hi], src[lo:hi], w[lo:hi]
            )
    vals = phi.reshape((-1, n_rhs) if multi else -1)
    if bucket.scatter_pos is not None:
        vals = vals[bucket.scatter_pos]
    out[bucket.out_slots] += vals
    if forces is not None and f_stack is not None:
        f_vals = f_stack.reshape((-1, 3, n_rhs) if multi else (-1, 3))
        if bucket.scatter_pos is not None:
            f_vals = f_vals[bucket.scatter_pos]
        forces[bucket.out_slots] += f_vals


def eval_ragged_runs(
    arrays: dict,
    runs: np.ndarray,
    kernel,
    dtype,
    compute_forces: bool,
    out: np.ndarray,
    forces: np.ndarray | None,
) -> None:
    """Per-group fallback for the runs the bucketing could not batch.

    Same fused per-group arithmetic as :func:`.groupeval.eval_group_range`
    (one blocked kernel accumulation per run, float64 opts into the
    temporary-free r^2 primitive), but scoped to explicit segment runs so
    a group whose approximation half went through a bucket is not
    double-counted.  Pass pre-cast ``targets``/``src_points`` in
    ``arrays`` to keep the per-run casts zero-copy.
    """
    if runs.size == 0:
        return
    fused = np.dtype(dtype) == np.float64
    group_ptr = arrays["group_ptr"]
    out_index = arrays["out_index"]
    targets = arrays["targets"]
    src_all = np.ascontiguousarray(arrays["src_points"], dtype=dtype)
    q_all = np.ascontiguousarray(arrays["src_weights"], dtype=dtype)
    for g, s_lo, s_hi in runs:
        t_lo, t_hi = int(group_ptr[g]), int(group_ptr[g + 1])
        m = t_hi - t_lo
        if m == 0:
            continue
        slices = [
            (lo, hi)
            for lo, hi in run_source_slices(arrays, int(s_lo), int(s_hi))
            if hi > lo
        ]
        contiguous = len(slices) == 1 or all(
            slices[i][1] == slices[i + 1][0] for i in range(len(slices) - 1)
        )
        if not slices:
            continue
        if contiguous:
            lo, hi = slices[0][0], slices[-1][1]
            src, q = src_all[lo:hi], q_all[lo:hi]
        else:
            src = np.concatenate([src_all[lo:hi] for lo, hi in slices], axis=0)
            q = np.concatenate([q_all[lo:hi] for lo, hi in slices])
        if src.shape[0] == 0:
            continue
        tgt = np.ascontiguousarray(targets[t_lo:t_hi], dtype=dtype)
        idx = out_index[t_lo:t_hi]
        out[idx] += kernel.potential(tgt, src, q, fused=fused)
        if forces is not None:
            forces[idx] += kernel.force(tgt, src, q, fused=fused)
