"""Multiprocessing backend: shard plan groups across a worker pool.

The paper's headline speedups come from executing the compiled
interaction work on parallel hardware (MPI ranks x GPU kernel
launches); this backend is the single-host analogue on the plan seam.
The compiled :class:`~repro.core.plan.ExecutionPlan` is exactly the
right shipping container for that: flat, immutable, picklable arrays
with CSR-style indices, and an injective ``out_index`` -- so contiguous
runs of groups touch disjoint target rows and shards never race on the
accumulator.

Execution model
---------------
* A **persistent** :class:`~concurrent.futures.ProcessPoolExecutor` is
  created lazily on first use and reused across ``execute`` calls, so
  repeated runs (benchmarks, time stepping) pay the fork cost once.
* Per plan the flat buffers are packed into **one POSIX shared-memory
  block**; workers attach by name, build zero-copy NumPy views for
  their shard, and detach before returning (groups are sharded into at
  most one range per worker, so there is nothing to cache between
  shards -- and detaching keeps unlinked blocks from lingering in the
  persistent workers after the run).  The shipment is **cached per
  plan** for the plan's lifetime: a second ``execute`` of the same plan
  ships nothing, and after
  :meth:`~repro.core.plan.ExecutionPlan.refresh_weights` (the
  prepare/apply session seam) only the ``src_weights`` region of the
  existing block is rewritten -- detected through the plan's
  ``weights_version``, never by re-creating the block.  The one
  exception is a multi-RHS width change (``(R,)`` <-> ``(R, n_rhs)``):
  the fixed layout cannot hold a re-shaped buffer, so the old block is
  unlinked immediately and the plan re-packed wholesale.  Blocks are
  unlinked when the plan is garbage-collected or the backend is closed.
  When shared memory is unavailable the buffers fall back to being
  pickled into each shard's task: one copy per shard through the
  executor pipe (re-pickled only when the weights version moves),
  trading bandwidth for portability.
* Groups are split into contiguous shards balanced by *estimated
  per-group cost*.  The first split uses the modeled interaction count
  (``group_size x seg_size`` summed per group); each sharded run then
  feeds the workers' measured shard wall times back into a per-group
  EWMA rate multiplier, so repeated executions of the same plan (a
  prepared session stepping charges) converge onto the machine's actual
  cost profile instead of the model's.  Shard boundaries never affect
  values: every target row is written by exactly one shard
  (``out_index`` is injective over groups), and the per-shard casts are
  elementwise, so any split produces bitwise-identical output.  Each
  worker runs the same per-group fused accumulation as
  :class:`~repro.core.backends.fused.FusedBackend` (bitwise-identical
  results), and the parent scatters each shard's rows through
  ``out_index``.

Device accounting is unchanged: launches are charged in bulk from the
plan structure before the numerics start, exactly as the fused backend
charges them, so counters and simulated time stay backend-independent.

The batched layout (including its zero-weight-padded near-field
buckets) is parent-side state and is **never shipped**: workers consume
only the flat CSR buffers through ``eval_group_range``, so structural
plan updates (``patch_groups``) and geometry refreshes keep shards
coherent purely through the version-gated re-pack above -- the
bucketing cannot go stale in a worker because no worker ever holds it.

Crash recovery / re-pack protocol
---------------------------------
A long-running session must survive a dying worker, so shard execution
runs under a bounded :class:`~repro.core.resilience.RetryPolicy`:

1. A ``BrokenProcessPool`` (a worker crashed mid-shard) or a shard
   timeout (``RetryPolicy.timeout``; a worker hung) aborts the apply's
   collection loop before any partial result is accumulated -- shard
   results only ever merge after *all* futures resolved, so a recovered
   apply is bitwise-identical to an uninterrupted one by construction.
2. ``_recover`` tears the broken pool down (``shutdown(wait=False,
   cancel_futures=True)``), **unlinks the plan's SHM shipment** (a dead
   worker may have held an attachment; re-packing from the parent's
   plan buffers is the only state that needs to survive), reclaims any
   orphaned blocks via :func:`audit_shared_memory`, and counts the
   rebuild in :meth:`MultiprocessingBackend.health_stats`.
3. The retry re-packs the shipment lazily, rebuilds the pool on first
   submit and re-runs *all* shards.  After ``RetryPolicy.max_attempts``
   total attempts a :class:`~repro.errors.WorkerCrashError` escapes
   with the original failure chained; the instance marks itself
   unhealthy so by-name registry lookups hand out a fresh one, and the
   session core degrades along its fallback chain.

Every SHM block this process creates is tracked in a module-level
registry; :func:`audit_shared_memory` inventories the live blocks and
(with ``reclaim=True``) unlinks orphans whose owning shipment died
without running its finalizer.  An ``atexit`` hook performs a final
sweep so no ``/dev/shm`` block outlives the interpreter.  Faults are
injectable deterministically through :mod:`repro.core.resilience`
(``REPRO_FAULT="mp_worker_crash:shard=2:times=1"``), so all of the
above is CI-testable without racing ``kill`` against the pool.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from ...errors import ShipmentError, WorkerCrashError
from ..resilience import RetryPolicy, get_fault_injector
from .base import Backend, charge_plan_launches
from .groupeval import eval_group_range, plan_arrays

__all__ = ["MultiprocessingBackend", "audit_shared_memory"]

#: Below this many logical source rows the pool overhead dwarfs the
#: work; the backend computes inline (same arithmetic, same results).
MIN_PARALLEL_ROWS = 8_192


class _PlanCost:
    """Per-plan shard-cost state: modeled cost + learned rate multipliers.

    ``modeled`` is the interaction-count cost per group (fixed geometry);
    ``rate`` starts at one everywhere and is nudged by
    :meth:`MultiprocessingBackend._observe_shard_times` toward the
    measured relative cost, so the product is the adaptive estimate.
    """

    __slots__ = ("modeled", "rate")

    def __init__(self, modeled: np.ndarray, rate: np.ndarray) -> None:
        self.modeled = modeled
        self.rate = rate


# ----------------------------------------------------------------------
# Shared-memory block accounting: every block this process creates is
# registered here so leaks are auditable (and reclaimable) even when a
# shipment's finalizer never ran (a crashed apply, a hard interpreter
# teardown ordering).
# ----------------------------------------------------------------------

#: SHM block name -> weakref to the owning :class:`_Shipment`.
_SHM_BLOCKS: dict = {}
_SHM_BLOCKS_LOCK = threading.Lock()


def _register_block(name: str, ship: "_Shipment") -> None:
    with _SHM_BLOCKS_LOCK:
        _SHM_BLOCKS[name] = weakref.ref(ship)


def _unregister_block(name: str) -> None:
    with _SHM_BLOCKS_LOCK:
        _SHM_BLOCKS.pop(name, None)


def audit_shared_memory(*, reclaim: bool = False) -> dict:
    """Inventory the SHM blocks this process created and still owns.

    Returns ``{"live": [{"name", "size"}...], "live_bytes", "orphans",
    "reclaimed"}``.  A block is *live* while its owning shipment still
    holds it; it is an *orphan* when the shipment died (or was closed)
    without the block being unlinked -- which the shipment finalizers
    normally prevent, so a non-empty ``orphans`` list is itself a
    finding.  With ``reclaim=True`` orphaned blocks are unlinked on the
    spot (counted in ``"reclaimed"``); the pool-rebuild path and the
    interpreter-exit hook both sweep with it so a worker crash can
    never strand ``/dev/shm`` segments.
    """
    with _SHM_BLOCKS_LOCK:
        items = list(_SHM_BLOCKS.items())
    live, orphans = [], []
    for name, ref in items:
        ship = ref()
        shm = None if ship is None else ship.shm
        if shm is not None and shm.name == name:
            live.append({"name": name, "size": int(shm.size)})
        else:
            orphans.append(name)
    reclaimed = 0
    if reclaim and orphans:
        from multiprocessing import shared_memory

        for name in orphans:
            _unregister_block(name)
            try:
                blk = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError):
                continue  # already gone: nothing leaked
            try:
                blk.close()
                blk.unlink()
                reclaimed += 1
            except OSError:  # pragma: no cover - raced unlink
                pass
    return {
        "live": live,
        "live_bytes": sum(b["size"] for b in live),
        "orphans": orphans,
        "reclaimed": reclaimed,
    }


def _reclaim_at_exit() -> None:  # pragma: no cover - interpreter exit
    """Final sweep: unlink every block this process still owns."""
    with _SHM_BLOCKS_LOCK:
        items = list(_SHM_BLOCKS.items())
    for _, ref in items:
        ship = ref()
        if ship is not None:
            ship.close()
    audit_shared_memory(reclaim=True)


atexit.register(_reclaim_at_exit)


# ----------------------------------------------------------------------
# Plan shipping: the flat buffers packed into one shared-memory block.
# ----------------------------------------------------------------------


def _pack_shipment(plan):
    """Copy the plan's arrays into one SHM block; returns (shm, spec).

    ``spec`` maps field -> (offset, shape, dtype-str) plus the block
    name, everything a worker needs to rebuild read-only views.  Falls
    back to ``None`` (pickle shipping) when shared memory is unusable.
    """
    injector = get_fault_injector()
    if injector.fire("shipment_pack_fatal") is not None:
        raise OSError("injected fault: shipment_pack_fatal")
    arrays = {
        field: np.ascontiguousarray(arr)
        for field, arr in plan_arrays(plan).items()
    }
    total = sum(a.nbytes for a in arrays.values())
    if total == 0:
        return None, None
    try:
        from multiprocessing import shared_memory

        if injector.fire("shipment_pack") is not None:
            raise OSError("injected fault: shipment_pack")
        shm = shared_memory.SharedMemory(create=True, size=total)
    except (ImportError, OSError):
        return None, None
    layout = {}
    offset = 0
    for field, arr in arrays.items():
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf[offset:])
        view[...] = arr
        layout[field] = (offset, arr.shape, arr.dtype.str)
        offset += arr.nbytes
    return shm, {"shm_name": shm.name, "layout": layout}


def _pickle_payload(plan) -> bytes:
    """The pickle-shipping fallback: one self-contained task payload."""
    arrays = {
        f: np.ascontiguousarray(arr) for f, arr in plan_arrays(plan).items()
    }
    return pickle.dumps(arrays, protocol=pickle.HIGHEST_PROTOCOL)


class _Shipment:
    """One plan's shipped buffers, cached for the plan's lifetime.

    Either a shared-memory block (``shm``/``spec``) or a pickled
    payload; ``version`` mirrors the plan's ``weights_version`` at the
    last (re)ship, so :meth:`refresh` rewrites only the weight region
    (or re-pickles) when the session refreshed the charges in between.
    ``geom_version``/``struct_version`` mirror the plan's dynamic-
    geometry counters: an in-place geometry refresh rewrites only the
    targets/out_index/src_points regions, a structural patch (changed
    array shapes) unlinks the block and re-packs wholesale.
    """

    __slots__ = (
        "shm", "spec", "payload", "version", "geom_version",
        "struct_version", "__weakref__",
    )

    def __init__(
        self, shm, spec, payload, version: int,
        geom_version: int, struct_version: int,
    ) -> None:
        self.shm = shm
        self.spec = spec
        self.payload = payload
        self.version = version
        self.geom_version = geom_version
        self.struct_version = struct_version
        if shm is not None:
            _register_block(shm.name, self)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` already released this shipment's state.

        A closed shipment must never be handed to workers: its SHM
        block is unlinked and its payload dropped.  The shipment cache
        re-packs when it finds one (``close()`` -> ``apply()`` safety).
        """
        return self.shm is None and self.payload is None

    @classmethod
    def pack(cls, plan, *, use_shared_memory: bool) -> "_Shipment":
        shm = spec = payload = None
        if use_shared_memory:
            shm, spec = _pack_shipment(plan)
        if spec is None:
            payload = _pickle_payload(plan)
        return cls(
            shm, spec, payload, plan.weights_version,
            getattr(plan, "geometry_version", 0),
            getattr(plan, "structure_version", 0),
        )

    def refresh(self, plan) -> None:
        """Re-ship only the charge-dependent weight buffer."""
        if self.shm is not None:
            offset, shape, dtype = self.spec["layout"]["src_weights"]
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self.shm.buf[offset:]
            )
            view[...] = plan.src_weights
        else:
            self.payload = _pickle_payload(plan)
        self.version = plan.weights_version

    def refresh_geometry(self, plan) -> None:
        """Rewrite the in-place-refreshed geometry regions of the block.

        Only valid when the plan's structure (hence every region's
        shape) is unchanged -- the caller gates on ``struct_version``
        first.  The pickle fallback re-ships everything, so it also
        brings the weight version current.
        """
        if self.shm is not None:
            for fld in ("targets", "out_index", "src_points"):
                offset, shape, dtype = self.spec["layout"][fld]
                view = np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=self.shm.buf[offset:]
                )
                view[...] = getattr(plan, fld)
        else:
            self.payload = _pickle_payload(plan)
            self.version = plan.weights_version
        self.geom_version = plan.geometry_version

    def close(self) -> None:
        """Release the block (idempotent; safe from a GC finalizer)."""
        shm, self.shm = self.shm, None
        if shm is not None:
            _unregister_block(shm.name)
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - already unlinked
                pass
        self.payload = None


def _attach_shipment(spec):
    """Attach the parent's SHM block; returns ``(shm, arrays)`` views.

    The parent owns the block's lifetime: workers fork after the
    parent's create has started the (shared) resource tracker, so
    attach-side registrations land in the same tracker set and the
    parent's unlink() performs the single matching unregister.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=spec["shm_name"])
    arrays = {}
    for field, (offset, shape, dtype) in spec["layout"].items():
        arrays[field] = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf[offset:]
        )
    return shm, arrays


def _worker_run(
    spec, payload, kernel, dtype, compute_forces, g_lo, g_hi, fault=None
):
    """Pool entry point: attach (or unpickle) the plan, run one shard.

    The shard arithmetic is :func:`.groupeval.eval_group_range` -- the
    same function FusedBackend runs in-process, so results are bitwise
    identical by construction.  The evaluation wall time (attach /
    unpickle overhead excluded -- it is per-shard-constant, not
    per-group) is appended to the result tuple so the parent's adaptive
    shard sizing learns the measured per-group cost.

    ``fault`` is the parent-decided injection token (deterministic:
    the parent's injector matched this shard): ``("crash", _)`` kills
    the process before the shipment is touched -- the real-worker-death
    path, surfacing parent-side as ``BrokenProcessPool`` -- and
    ``("hang", seconds)`` sleeps first, exercising the shard timeout.
    """
    if fault is not None:
        kind, arg = fault
        if kind == "crash":
            os._exit(17)
        elif kind == "hang":
            time.sleep(arg)
    if spec is None:
        arrays = pickle.loads(payload)
        t0 = time.perf_counter()
        result = eval_group_range(
            arrays, kernel, dtype, compute_forces, g_lo, g_hi
        )
        return result + (time.perf_counter() - t0,)
    shm, arrays = _attach_shipment(spec)
    try:
        # The returned phi/force blocks are freshly allocated; only the
        # transient per-shard views reference the mapping.
        t0 = time.perf_counter()
        result = eval_group_range(
            arrays, kernel, dtype, compute_forces, g_lo, g_hi
        )
        return result + (time.perf_counter() - t0,)
    finally:
        del arrays
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view outlived the call
            pass


# ----------------------------------------------------------------------


class MultiprocessingBackend(Backend):
    """Shard plan groups across a persistent process pool.

    Parameters
    ----------
    n_workers : worker processes; defaults to ``os.cpu_count()``.  With
        one worker (or a plan below :data:`MIN_PARALLEL_ROWS` logical
        rows) the shard evaluation runs inline -- identical results,
        no pool spin-up.
    use_shared_memory : ship plan buffers through one POSIX SHM block
        (the default); ``False`` pickles them into each shard's task,
        which is slower but exercises the portable path.
    adaptive_shards : refine the shard split from measured shard wall
        times (per-plan EWMA over the modeled per-group cost; the
        default).  ``False`` keeps the purely modeled
        interaction-count split.
    shard_ewma_alpha : weight of the newest observation in the EWMA.
    retry : bounded-recovery policy for worker crashes and hangs (see
        the module docstring's crash-recovery protocol); defaults to
        ``RetryPolicy()`` -- 3 total attempts, exponential backoff, no
        shard timeout.  ``RetryPolicy(timeout=...)`` additionally
        bounds how long one apply waits on its shard futures.
    """

    name = "multiprocessing"
    needs_numerics = True
    # By-name lookups reuse one instance so the pool really persists
    # across compute() calls (see get_backend).
    share_instance = True

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        use_shared_memory: bool = True,
        min_parallel_rows: int = MIN_PARALLEL_ROWS,
        adaptive_shards: bool = True,
        shard_ewma_alpha: float = 0.5,
        retry: RetryPolicy | None = None,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if not (0.0 < shard_ewma_alpha <= 1.0):
            raise ValueError(
                f"shard_ewma_alpha must lie in (0, 1], got {shard_ewma_alpha}"
            )
        self.n_workers = int(n_workers or (os.cpu_count() or 1))
        self.use_shared_memory = bool(use_shared_memory)
        self.min_parallel_rows = int(min_parallel_rows)
        self.adaptive_shards = bool(adaptive_shards)
        self.shard_ewma_alpha = float(shard_ewma_alpha)
        self.retry = retry if retry is not None else RetryPolicy()
        #: Recovery counters surfaced through :meth:`health_stats`.
        self._health = {"retries": 0, "pool_rebuilds": 0, "last_error": None}
        #: Set when bounded recovery was exhausted: the instance keeps
        #: working (the next apply still tries) but :meth:`is_healthy`
        #: reports False so by-name registry lookups -- e.g. a session
        #: restored from a pickle -- get a fresh instance instead.
        self._poisoned = False
        #: plan -> _PlanCost (modeled per-group cost + learned rates).
        self._cost_state: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        self._pool: ProcessPoolExecutor | None = None
        # Registry lookups share one instance (share_instance), so pool
        # creation must be race-free under concurrent first computes.
        self._pool_lock = threading.Lock()
        #: plan -> _Shipment; plans hash by identity and the weak keys
        #: let a plan's block be unlinked as soon as the plan dies.
        self._shipments: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        self._ship_lock = threading.Lock()

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
            return self._pool

    def close(self) -> None:
        """Shut the pool down and unlink cached shipments (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        with self._ship_lock:
            ships = list(self._shipments.values())
            self._shipments.clear()
        for ship in ships:
            ship.close()

    # -- health ---------------------------------------------------------
    def health_stats(self) -> dict:
        """Recovery counters: retries, pool rebuilds, last error seen."""
        return dict(self._health)

    def is_healthy(self) -> bool:
        """False once bounded recovery was exhausted (pool poisoned).

        :func:`repro.registry.shared_backend_instance` consults this so
        a session resolving the backend by name -- e.g. one restored
        from a pickle -- transparently gets a fresh healthy instance
        instead of the broken shared one.
        """
        return not self._poisoned

    # -- shipment cache -------------------------------------------------
    def _pack_checked(self, plan) -> _Shipment:
        """Pack a fresh shipment; unexpected failures become
        :class:`~repro.errors.ShipmentError` (the pickle fallback
        absorbs *expected* SHM unavailability before this point)."""
        try:
            return _Shipment.pack(
                plan, use_shared_memory=self.use_shared_memory
            )
        except Exception as exc:
            raise ShipmentError(
                f"packing the plan shipment failed: {exc}",
                backend=self.name,
            ) from exc

    def _get_shipment(self, plan) -> _Shipment:
        """The plan's cached shipment, weight-refreshed if stale."""
        with self._ship_lock:
            ship = self._shipments.get(plan)
            if ship is not None and ship.closed:
                # close() -> apply() safety: a shipment released behind
                # the cache's back (backend close, recovery teardown,
                # a finalizer) must never reach a worker -- its block
                # is unlinked.  Drop the stale entry and re-pack.
                ship = None
            if ship is None:
                ship = self._pack_checked(plan)
                self._shipments[plan] = ship
                # Unlink the block when the plan is collected; the
                # finalizer holds the shipment, not the plan.
                weakref.finalize(plan, ship.close)
                return ship
            if ship.struct_version != getattr(plan, "structure_version", 0):
                # A group patch changed the plan arrays' shapes: the
                # fixed-layout block cannot be rewritten region by
                # region, so unlink it and re-pack wholesale (no leaked
                # block; the new shipment gets its own plan finalizer).
                ship.close()
                ship = self._pack_checked(plan)
                self._shipments[plan] = ship
                weakref.finalize(plan, ship.close)
                return ship
            if ship.geom_version != getattr(plan, "geometry_version", 0):
                # In-place geometry refresh: same shapes, new values.
                ship.refresh_geometry(plan)
            if ship.version != plan.weights_version:
                if ship.shm is not None and tuple(
                    ship.spec["layout"]["src_weights"][1]
                ) != tuple(plan.src_weights.shape):
                    # The RHS width changed: the fixed-layout block
                    # cannot hold the re-shaped weight buffer, so unlink
                    # it and re-pack wholesale (no leaked block; the new
                    # shipment gets its own plan finalizer).
                    ship.close()
                    ship = self._pack_checked(plan)
                    self._shipments[plan] = ship
                    weakref.finalize(plan, ship.close)
                else:
                    ship.refresh(plan)
            return ship

    def shipment_nbytes(self, plan) -> int:
        """Bytes held by the plan's cached shipment (0 when unshipped).

        Memory-accounting hook for session eviction: the SHM block size
        when shared memory backs the shipment, the pickled payload size
        on the fallback path.
        """
        with self._ship_lock:
            ship = self._shipments.get(plan)
        if ship is None:
            return 0
        if ship.shm is not None:
            return int(ship.shm.size)
        if ship.payload is not None:
            return len(ship.payload)
        return 0

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # -- sharding -------------------------------------------------------
    def _plan_cost(self, plan) -> "_PlanCost":
        """The plan's cached cost state (modeled cost + learned rates)."""
        state = self._cost_state.get(plan)
        if state is None:
            seg_sizes = np.diff(plan.seg_ptr).astype(np.float64)
            blocks = np.repeat(
                np.diff(plan.group_ptr), np.diff(plan.seg_group_ptr)
            ).astype(np.float64)
            per_seg = seg_sizes * blocks
            cum_seg = np.concatenate(([0.0], np.cumsum(per_seg)))
            modeled = cum_seg[plan.seg_group_ptr[1:]] - cum_seg[
                plan.seg_group_ptr[:-1]
            ]
            state = _PlanCost(modeled, np.ones(plan.n_groups))
            self._cost_state[plan] = state
        return state

    def _observe_shard_times(self, plan, shards, seconds) -> None:
        """Fold measured shard wall times into the per-group EWMA rates.

        Each shard's observed seconds-per-modeled-interaction, normalized
        over this run's shards (only relative cost matters for the
        split), nudges the rate of every group it covered; the next
        :meth:`_shards` call balances ``modeled x rate`` instead of the
        bare model.  The fallback is structural: with no observations the
        rates are all one and the split is exactly the modeled
        interaction-count split.
        """
        state = self._plan_cost(plan)
        work = np.array(
            [float(state.modeled[lo:hi].sum()) for lo, hi in shards]
        )
        secs = np.asarray(seconds, dtype=np.float64)
        ok = (work > 0.0) & (secs > 0.0)
        if ok.sum() < 2:
            return
        rates = secs[ok] / work[ok]
        rates /= rates.mean()
        a = self.shard_ewma_alpha
        for (lo, hi), r in zip(
            (s for s, use in zip(shards, ok) if use), rates
        ):
            state.rate[lo:hi] = (1.0 - a) * state.rate[lo:hi] + a * r

    def _shards(self, plan) -> list[tuple[int, int]]:
        """Contiguous group ranges with roughly equal estimated cost."""
        n_shards = min(self.n_workers, plan.n_groups)
        if n_shards <= 1:
            return [(0, plan.n_groups)]
        state = self._plan_cost(plan)
        group_cost = state.modeled
        if self.adaptive_shards:
            group_cost = group_cost * state.rate
        cum = np.cumsum(group_cost)
        total = cum[-1]
        if total <= 0.0:
            bounds = np.linspace(0, plan.n_groups, n_shards + 1).astype(int)
        else:
            targets = total * np.arange(1, n_shards) / n_shards
            cuts = np.searchsorted(cum, targets, side="left") + 1
            bounds = np.concatenate(([0], cuts, [plan.n_groups]))
        shards = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            lo, hi = int(lo), int(hi)
            if hi > lo:
                shards.append((lo, hi))
        return shards or [(0, plan.n_groups)]

    # -- execution ------------------------------------------------------
    def execute(
        self,
        plan,
        kernel,
        device,
        *,
        dtype=np.float64,
        compute_forces: bool = False,
        n_rhs: int | None = None,
    ):
        if not plan.has_numerics:
            raise ValueError(
                f"backend {self.name!r} needs a plan compiled with numerics"
            )
        width = plan.rhs_width
        charge_plan_launches(
            plan, kernel, device,
            dtype=dtype, compute_forces=compute_forces, bulk=True,
            n_rhs=width or 1,
        )
        out = np.zeros(
            plan.out_size if width is None else (plan.out_size, width),
            dtype=np.float64,
        )
        forces = (
            np.zeros(
                (plan.out_size, 3)
                if width is None
                else (plan.out_size, 3, width),
                dtype=np.float64,
            )
            if compute_forces
            else None
        )
        shards = self._shards(plan)
        parallel = (
            len(shards) > 1 and plan.n_source_rows >= self.min_parallel_rows
        )
        if not parallel:
            # cast_geometry: same dtype-keyed cast caches as the fused
            # backend (elementwise-identical values, so the bitwise
            # contract with the sharded path holds either way).
            results = [
                eval_group_range(
                    plan_arrays(plan, cast_geometry=dtype), kernel, dtype,
                    compute_forces, 0, plan.n_groups,
                )
            ]
        else:
            results = self._run_sharded(plan, kernel, dtype, compute_forces, shards)
        for t_lo, t_hi, phi, f_blk in results:
            idx = plan.out_index[t_lo:t_hi]
            out[idx] += phi
            if forces is not None and f_blk is not None:
                forces[idx] += f_blk
        return out, forces

    def _run_sharded(self, plan, kernel, dtype, compute_forces, shards):
        """Submit all shards and collect results, recovering from a
        broken or hung pool under the retry policy.

        Shard results only merge into the output after *every* future
        resolved, so a recovered apply (pool torn down, shipment
        unlinked and re-packed, all shards re-run) returns exactly the
        bits an uninterrupted apply would have.
        """
        policy = self.retry
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._submit_shards(
                    plan, kernel, dtype, compute_forces, shards
                )
            except (BrokenProcessPool, FutureTimeoutError, OSError) as exc:
                self._health["last_error"] = f"{type(exc).__name__}: {exc}"
                # Tear down + reclaim even when out of attempts: the
                # escaping error must not leave a broken pool or an SHM
                # block attached to dead workers behind.
                self._recover(plan)
                if attempt >= policy.max_attempts:
                    self._poisoned = True
                    raise WorkerCrashError(
                        f"multiprocessing pool failed {attempt} time(s) "
                        f"executing the plan (last: {self._health['last_error']}); "
                        "recovery attempts exhausted",
                        backend=self.name,
                        attempts=attempt,
                    ) from exc
                self._health["retries"] += 1
                delay = policy.delay(attempt)
                if delay > 0.0:
                    time.sleep(delay)

    def _submit_shards(self, plan, kernel, dtype, compute_forces, shards):
        injector = get_fault_injector()
        if injector.fire("mp_pool_broken") is not None:
            raise BrokenProcessPool("injected fault: mp_pool_broken")
        pool = self._ensure_pool()
        ship = self._get_shipment(plan)
        futures = []
        for i, (g_lo, g_hi) in enumerate(shards):
            fault = None
            spec = injector.fire("mp_worker_crash", shard=i)
            if spec is not None:
                fault = ("crash", 0.0)
            else:
                spec = injector.fire("mp_worker_hang", shard=i)
                if spec is not None:
                    fault = ("hang", float(spec.get("seconds", 30.0)))
            futures.append(
                pool.submit(
                    _worker_run,
                    ship.spec, ship.payload, kernel, dtype, compute_forces,
                    g_lo, g_hi, fault,
                )
            )
        deadline = (
            None
            if self.retry.timeout is None
            else time.monotonic() + self.retry.timeout
        )
        results = []
        seconds = []
        for f in futures:
            remaining = (
                None
                if deadline is None
                else max(deadline - time.monotonic(), 0.0)
            )
            t_lo, t_hi, phi, f_blk, dt = f.result(timeout=remaining)
            results.append((t_lo, t_hi, phi, f_blk))
            seconds.append(dt)
        if self.adaptive_shards:
            self._observe_shard_times(plan, shards, seconds)
        return results

    def _recover(self, plan) -> None:
        """Tear down after a pool failure: discard the pool, unlink the
        plan's shipment (dead workers may have held attachments) and
        reclaim any orphaned SHM blocks.  The next attempt re-packs and
        rebuilds lazily through ``_ensure_pool``/``_get_shipment``."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        with self._ship_lock:
            ship = self._shipments.pop(plan, None)
        if ship is not None:
            ship.close()
        audit_shared_memory(reclaim=True)
        self._health["pool_rebuilds"] += 1
