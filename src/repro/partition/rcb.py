"""Recursive coordinate bisection (RCB) for particle domain decomposition.

RCB recursively partitions the domain with a hyperplane that (1) is
perpendicular to a coordinate axis and (2) balances the number of particles
with the number of ranks on each side (paper Sec. 3.1, Fig. 2).  For
``P`` ranks, each split assigns ``floor(P/2)`` ranks to one side and the
rest to the other, with the particle cut at the matching weighted quantile,
so every rank ends up with ``N/P`` particles up to rounding -- including
non-power-of-two ``P`` (Fig. 2b's six partitions).

Axis selection follows Zoltan's default of cutting the longest extent of
the current region; ``axis_policy="cycle"`` reproduces the fixed y-then-x
alternation illustrated in Fig. 2.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rcb_partition", "partition_sizes"]


def partition_sizes(n: int, parts: int) -> np.ndarray:
    """Balanced particle counts per part: sizes differ by at most one."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    base, extra = divmod(n, parts)
    sizes = np.full(parts, base, dtype=np.intp)
    sizes[:extra] += 1
    return sizes


def _pick_axis(points: np.ndarray, policy: str, depth: int) -> int:
    if policy == "cycle":
        # Fig. 2 alternation: y first, then x, then z.
        return (1, 0, 2)[depth % 3]
    ext = points.max(axis=0) - points.min(axis=0)
    return int(np.argmax(ext))


def rcb_partition(
    positions: np.ndarray,
    n_parts: int,
    *,
    axis_policy: str = "longest",
) -> np.ndarray:
    """Assign each particle a part label in ``[0, n_parts)`` via RCB.

    Parameters
    ----------
    positions : (N, 3) particle coordinates.
    n_parts : number of partitions (MPI ranks / GPUs).
    axis_policy : ``"longest"`` (Zoltan default) or ``"cycle"``.

    Returns
    -------
    (N,) integer labels.  Part sizes are balanced to within one particle.
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError(f"positions must be (N, 3), got {positions.shape}")
    if axis_policy not in ("longest", "cycle"):
        raise ValueError(f"unknown axis_policy {axis_policy!r}")
    n = positions.shape[0]
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if n_parts > n:
        raise ValueError(
            f"cannot split {n} particles across {n_parts} parts"
        )
    labels = np.empty(n, dtype=np.intp)
    # Work stack: (particle indices, first part id, number of parts, depth).
    stack: list[tuple[np.ndarray, int, int, int]] = [
        (np.arange(n, dtype=np.intp), 0, n_parts, 0)
    ]
    while stack:
        idx, part0, parts, depth = stack.pop()
        if parts == 1:
            labels[idx] = part0
            continue
        left_parts = parts // 2
        right_parts = parts - left_parts
        # Cut so the left side's particle count matches its rank share.
        k = int(round(idx.size * left_parts / parts))
        k = min(max(k, 1), idx.size - 1)
        axis = _pick_axis(positions[idx], axis_policy, depth)
        coords = positions[idx, axis]
        order = np.argpartition(coords, k - 1)
        left = idx[order[:k]]
        right = idx[order[k:]]
        stack.append((left, part0, left_parts, depth + 1))
        stack.append((right, part0 + left_parts, right_parts, depth + 1))
    return labels
