"""Domain decomposition via recursive coordinate bisection (paper Sec. 3.1).

The paper uses the Zoltan library's RCB; this package implements RCB from
scratch with the same observable properties: hyperplane cuts perpendicular
to a coordinate axis, particle counts balanced proportionally to the number
of ranks on each side (supporting non-power-of-two rank counts, Fig. 2b).
"""

from .rcb import rcb_partition, partition_sizes

__all__ = ["rcb_partition", "partition_sizes"]
