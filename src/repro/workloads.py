"""Particle distributions used by the examples, tests and benchmarks.

The paper's evaluation (Sec. 4) uses particles randomly uniformly
distributed in the ``[-1, 1]^3`` cube with charges uniform on ``[-1, 1]``;
:func:`random_cube` reproduces that exactly.  The remaining generators
provide the "irregular particle distributions arising from various physical
systems" that the paper defers to future work: a Plummer sphere (the
standard gravitational N-body test), Gaussian clusters (clustered sources
such as charged residues in a biomolecule), and a surface distribution
(boundary-element quadrature points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .util import as_charges, as_points, default_rng

__all__ = [
    "ParticleSet",
    "random_cube",
    "plummer_sphere",
    "gaussian_clusters",
    "sphere_surface",
    "charge_waveform",
]


@dataclass(frozen=True)
class ParticleSet:
    """A set of particles: positions ``(N, 3)`` and charges ``(N,)``.

    Instances are immutable; the arrays are validated at construction.
    Targets and sources may be the same :class:`ParticleSet` (the paper's
    test cases) or different sets (boundary-element style usage).
    """

    positions: np.ndarray
    charges: np.ndarray

    def __post_init__(self) -> None:
        pos = as_points(self.positions, name="positions")
        q = as_charges(self.charges, pos.shape[0], name="charges")
        object.__setattr__(self, "positions", pos)
        object.__setattr__(self, "charges", q)

    def __len__(self) -> int:
        return self.positions.shape[0]

    @property
    def n(self) -> int:
        return self.positions.shape[0]

    def subset(self, idx) -> "ParticleSet":
        """Return the particle subset selected by ``idx`` (any NumPy index)."""
        return ParticleSet(self.positions[idx], self.charges[idx])

    def nbytes(self) -> int:
        """Total memory footprint of the particle data in bytes."""
        return self.positions.nbytes + self.charges.nbytes


def random_cube(
    n: int,
    *,
    seed=None,
    low: float = -1.0,
    high: float = 1.0,
    charge_low: float = -1.0,
    charge_high: float = 1.0,
) -> ParticleSet:
    """Particles uniform in ``[low, high]^3`` with uniform random charges.

    This is the paper's test case: "the particles are randomly uniformly
    distributed in the [-1,1]^3 cube, with charges randomly uniformly
    distributed on [-1,1]" (Sec. 4).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = default_rng(seed)
    pos = rng.uniform(low, high, size=(n, 3))
    q = rng.uniform(charge_low, charge_high, size=n)
    return ParticleSet(pos, q)


def plummer_sphere(n: int, *, seed=None, scale: float = 1.0, total_mass: float = 1.0) -> ParticleSet:
    """A Plummer-model sphere of equal-mass particles.

    The classical gravitational N-body initial condition: radius sampled
    from the Plummer cumulative mass profile, isotropic directions.  All
    charges (masses) are positive and equal, ``total_mass / n``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = default_rng(seed)
    # Inverse-CDF sampling of the Plummer profile, clipping the enclosed
    # mass fraction away from 1 to avoid unbounded radii.
    m = rng.uniform(0.0, 0.999, size=n)
    r = scale / np.sqrt(m ** (-2.0 / 3.0) - 1.0)
    costheta = rng.uniform(-1.0, 1.0, size=n)
    sintheta = np.sqrt(1.0 - costheta**2)
    phi = rng.uniform(0.0, 2.0 * np.pi, size=n)
    pos = np.column_stack(
        (r * sintheta * np.cos(phi), r * sintheta * np.sin(phi), r * costheta)
    )
    q = np.full(n, total_mass / n)
    return ParticleSet(pos, q)


def gaussian_clusters(
    n: int,
    *,
    n_clusters: int = 8,
    seed=None,
    spread: float = 0.08,
    box: float = 1.0,
) -> ParticleSet:
    """Particles drawn from ``n_clusters`` isotropic Gaussian blobs.

    A strongly non-uniform distribution stressing the adaptive octree and
    the aspect-ratio splitting rule.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    rng = default_rng(seed)
    centers = rng.uniform(-box, box, size=(n_clusters, 3))
    which = rng.integers(0, n_clusters, size=n)
    pos = centers[which] + rng.normal(0.0, spread, size=(n, 3))
    q = rng.uniform(-1.0, 1.0, size=n)
    return ParticleSet(pos, q)


def charge_waveform(
    base: ParticleSet,
    steps: int,
    *,
    amplitude: float = 0.25,
    seed=None,
):
    """Yield ``steps`` charge vectors for repeated evaluation on fixed geometry.

    The MD-like scenario the prepare/apply session API targets: particle
    *positions* persist across evaluations while the *charges* change
    every step -- fluctuating partial charges in a polarizable force
    field, or the successive right-hand sides of a BEM solve.  Each step
    modulates the base charges with a per-particle sinusoid,

        q_i(t) = q_i (1 + amplitude sin(omega_i t + phi_i)),

    with random frequencies/phases drawn from ``seed`` -- smooth in t
    (like real charge dynamics), different every step, and
    deterministic.  Step 0 yields the base charges unchanged when every
    phase is zero; in general all steps differ.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if amplitude < 0.0:
        raise ValueError(f"amplitude must be >= 0, got {amplitude}")
    rng = default_rng(seed)
    n = base.n
    omega = rng.uniform(0.5, 2.0, size=n)
    phi = rng.uniform(0.0, 2.0 * np.pi, size=n)
    for t in range(steps):
        yield base.charges * (1.0 + amplitude * np.sin(omega * t + phi))


def sphere_surface(n: int, *, seed=None, radius: float = 1.0) -> ParticleSet:
    """Particles uniform on a sphere surface (BEM quadrature-point style).

    Expressions like eq. (1) "arise ... in boundary element methods where
    the particles are quadrature points of a discretized convolution
    integral" (paper Sec. 2); this workload mimics that geometry.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = default_rng(seed)
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    q = rng.uniform(-1.0, 1.0, size=n)
    return ParticleSet(radius * v, q)
