"""Distributed-memory BLTC: RCB decomposition + locally essential trees.

Reproduces Sec. 3.1 of the paper on the simulated MPI layer: each rank
owns an RCB partition of the particles, builds a local source tree,
exposes its tree array / source particles / cluster charges through RMA
windows, and constructs its locally essential tree (LET) by getting remote
tree arrays, building interaction lists against them, and fetching exactly
the remote clusters those lists reference.
"""

from .letree import LocallyEssentialTree, RemoteTreeAdapter
from .driver import (
    DistributedBLTC,
    DistributedResult,
    PreparedDistributedBLTC,
)

__all__ = [
    "RemoteTreeAdapter",
    "LocallyEssentialTree",
    "DistributedBLTC",
    "PreparedDistributedBLTC",
    "DistributedResult",
]
