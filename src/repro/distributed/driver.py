"""MPI + GPU distributed BLTC driver (paper Sec. 3 algorithm).

Executes the paper's "MPI + OpenACC BLTC" procedure over the simulated
substrates, one simulated GPU per rank:

1.  RCB domain decomposition assigns each rank its particles.
2.  Each rank builds a local source tree and target batches     [setup]
3.  HtD source copy; modified-charge kernels; DtH moments       [precompute]
4.  Ranks expose tree array / particles / moments in RMA windows.
5.  Each rank gets remote tree arrays, builds interaction
    lists, and fills its LET via RMA gets                       [setup]
6.  HtD LET copy; each rank's merged local+LET work is compiled
    into an execution plan and run by the configured backend
    (``params.backend``; ``dry_run`` forces the model backend);
    DtH potentials                                              [compute]

Rank programs are executed sequentially but deterministically; passive-
target RMA means the interleaving cannot change any value read (windows
are read-only after exposure).  The per-rank simulated clocks advance
with device work, host work, and modeled communication time; the run
time is aggregated with the one true dependency barrier -- a rank's LET
gets require every peer to have exposed its moments:

    T = max_r(setup_local_r + precompute_r)
        + max_r(let_setup_r + compute_r)

``overlap_comm=True`` models the paper's future-work item of overlapping
communication with computation: each rank hides its LET communication
behind its own precompute phase to the extent possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import DEFAULT_PARAMS, TreecodeParams
from ..core.backends import get_backend
from ..core.interaction_lists import build_interaction_lists
from ..core.moments import precompute_moments, prepare_moment_grids
from ..core.plan import PlanBuilder
from ..core.session import (
    DistributedWeightSource,
    GeometryState,
    SessionCore,
    format_health_stats,
    format_memory_stats,
)
from ..gpu.device import make_device
from ..kernels.base import Kernel
from ..mpi.comm import SimComm
from ..partition.rcb import rcb_partition
from ..perf.comm import CommModel, INFINIBAND_COMET
from ..perf.machine import GPU_P100, MachineSpec
from ..perf.timer import PhaseTimes, Stopwatch
from ..tree.batches import TargetBatches
from ..tree.octree import ClusterTree
from ..util import as_charge_block
from ..workloads import ParticleSet
from .letree import build_let, build_let_geometry, refresh_let_charges

__all__ = ["DistributedBLTC", "PreparedDistributedBLTC", "DistributedResult"]

FLOAT_BYTES = 8


@dataclass
class DistributedResult:
    """Global potentials plus per-rank timing of one distributed run."""

    #: (N,) potential at every particle, in the input (global) order.
    potential: np.ndarray
    #: Per-rank simulated phase times.
    rank_phases: list[PhaseTimes]
    #: Per-rank modeled communication seconds (contained in setup).
    comm_seconds: list[float]
    #: Wall-clock seconds of the whole simulation (diagnostic).
    wall_seconds: float
    stats: dict = field(default_factory=dict)
    #: (N, 3) force per unit target charge, when requested.
    forces: np.ndarray | None = None

    @property
    def n_ranks(self) -> int:
        return len(self.rank_phases)

    @property
    def total_seconds(self) -> float:
        """Simulated run time with the precompute/LET dependency barrier."""
        first = max(p.setup_local + p.precompute for p in self._split())
        second = max(p.let_setup + p.compute for p in self._split())
        return first + second

    def _split(self):
        # rank_phases stores setup = setup_local + let_setup; the split is
        # kept in stats for the barrier computation.
        splits = self.stats["phase_split"]
        return [
            _SplitPhases(
                setup_local=s["setup_local"],
                let_setup=s["let_setup"],
                precompute=p.precompute,
                compute=p.compute,
            )
            for s, p in zip(splits, self.rank_phases)
        ]

    def aggregate_phases(self) -> PhaseTimes:
        """Max-over-ranks time per phase (the Fig. 6cd decomposition)."""
        agg = PhaseTimes()
        for p in self.rank_phases:
            agg = agg.max_with(p)
        return agg


@dataclass
class _SplitPhases:
    setup_local: float
    let_setup: float
    precompute: float
    compute: float


class DistributedBLTC:
    """Distributed BLTC: one simulated GPU per MPI rank.

    Parameters
    ----------
    kernel, params : as for :class:`~repro.core.treecode.BarycentricTreecode`.
    n_ranks : number of MPI ranks == number of GPUs.
    machine : per-rank device spec (default: the P100s of Figs. 5-6).
    comm_model : interconnect alpha-beta model.
    async_streams : asynchronous kernel queueing per device.
    overlap_comm : hide LET communication behind precompute (Sec. 5
        future work).
    axis_policy : RCB axis selection ("longest" or "cycle").
    """

    def __init__(
        self,
        kernel: Kernel,
        params: TreecodeParams = DEFAULT_PARAMS,
        *,
        n_ranks: int = 4,
        machine: MachineSpec = GPU_P100,
        comm_model: CommModel = INFINIBAND_COMET,
        async_streams: bool = True,
        overlap_comm: bool = False,
        axis_policy: str = "longest",
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.kernel = kernel
        self.params = params
        self.n_ranks = int(n_ranks)
        self.machine = machine
        self.comm_model = comm_model
        self.async_streams = bool(async_streams)
        self.overlap_comm = bool(overlap_comm)
        self.axis_policy = axis_policy

    # ------------------------------------------------------------------
    def compute(
        self,
        particles: ParticleSet,
        *,
        dry_run: bool = False,
        compute_forces: bool = False,
    ) -> DistributedResult:
        """Potential at every particle (targets == sources, as in Sec. 4).

        ``compute_forces=True`` additionally evaluates forces at every
        particle, reusing the LETs and modified charges.

        ``dry_run=True`` forces the model backend on every rank:
        partitioning, tree builds, RMA traffic (real bytes through the
        simulated windows) and device launch accounting all happen, but
        the floating-point kernels are skipped -- used by the weak/strong
        scaling benchmarks at paper scale.  Otherwise the backend named
        by ``params.backend`` executes each rank's compiled plan.
        """
        params = self.params
        backend = get_backend("model" if dry_run else params.backend)
        n = particles.n
        if n < self.n_ranks:
            raise ValueError(
                f"{n} particles cannot be split over {self.n_ranks} ranks"
            )
        watch = Stopwatch()
        with watch:
            comm = SimComm(self.n_ranks, comm_model=self.comm_model)
            labels = rcb_partition(
                particles.positions, self.n_ranks, axis_policy=self.axis_policy
            )
            rank_idx = [
                np.nonzero(labels == r)[0] for r in range(self.n_ranks)
            ]
            devices = [
                make_device(self.machine, async_streams=self.async_streams)
                for _ in range(self.n_ranks)
            ]
            phases = [PhaseTimes() for _ in range(self.n_ranks)]
            split = [
                {"setup_local": 0.0, "let_setup": 0.0}
                for _ in range(self.n_ranks)
            ]
            trees: list[ClusterTree] = []
            batch_sets: list[TargetBatches] = []
            moment_sets = []

            # -- phase A: local trees and batches (setup) ---------------
            for r in range(self.n_ranks):
                local = particles.subset(rank_idx[r])
                tree = ClusterTree(
                    local.positions,
                    params.max_leaf_size,
                    aspect_ratio_splitting=params.aspect_ratio_splitting,
                    shrink_to_fit=params.shrink_to_fit,
                )
                batches = TargetBatches(
                    local.positions,
                    params.max_batch_size,
                    aspect_ratio_splitting=params.aspect_ratio_splitting,
                    shrink_to_fit=params.shrink_to_fit,
                )
                dev = devices[r]
                dev.host_work(local.n * 2 * (tree.max_level + 1))
                dt = dev.take_phase()
                phases[r].setup += dt
                split[r]["setup_local"] += dt
                trees.append(tree)
                batch_sets.append(batches)

            # -- phase B: moments on-device (precompute) ----------------
            for r in range(self.n_ranks):
                dev = devices[r]
                local = particles.subset(rank_idx[r])
                dev.upload(local.nbytes(), label="source data")
                moments = precompute_moments(
                    trees[r], local.charges, params, device=dev,
                    numerics=backend.needs_numerics,
                )
                mbytes = (
                    moments.n_clusters
                    * params.n_interpolation_points
                    * FLOAT_BYTES
                )
                dev.download(mbytes, label="modified charges")
                phases[r].precompute += dev.take_phase()
                moment_sets.append(moments)

            # -- expose RMA windows --------------------------------------
            for r in range(self.n_ranks):
                tree = trees[r]
                local = particles.subset(rank_idx[r])
                handle = comm.rank_handle(r)
                handle.create_window("tree", tree.tree_array())
                handle.create_window("srcpos", local.positions[tree.perm])
                handle.create_window("srcq", local.charges[tree.perm])
                handle.create_window(
                    "moments", moment_sets[r].packed(len(tree))
                )

            # -- phase C: LET construction (setup) -----------------------
            lets = []
            local_lists = []
            for r in range(self.n_ranks):
                dev = devices[r]
                handle = comm.rank_handle(r)
                comm_before = float(comm.clocks[r])
                let, mac_evals = build_let(handle, batch_sets[r], params)
                comm_delta = float(comm.clocks[r]) - comm_before
                lists = build_interaction_lists(
                    batch_sets[r], trees[r], params
                )
                dev.host_work((mac_evals + lists.mac_evals) * 4)
                dev.comm_wait(comm_delta)
                dev.upload(
                    let.nbytes()
                    + particles.subset(rank_idx[r]).positions.nbytes,
                    label="targets + LET",
                )
                dt = dev.take_phase()
                if self.overlap_comm:
                    # Hide communication behind this rank's own precompute
                    # (paper Sec. 5 future work); cannot hide more than
                    # either quantity.
                    hidden = min(comm_delta, phases[r].precompute)
                    dt = max(dt - hidden, 0.0)
                phases[r].setup += dt
                split[r]["let_setup"] += dt
                lets.append(let)
                local_lists.append(lists)

            # -- phase D: potential evaluation (compute) -----------------
            potential = np.zeros(n, dtype=np.float64)
            forces = (
                np.zeros((n, 3), dtype=np.float64) if compute_forces else None
            )
            comm_totals = []
            for r in range(self.n_ranks):
                dev = devices[r]
                local = particles.subset(rank_idx[r])
                plan = self._compile_rank_plan(
                    trees[r],
                    batch_sets[r],
                    moment_sets[r],
                    local_lists[r],
                    lets[r],
                    local.charges,
                    numerics=backend.needs_numerics,
                )
                phi_local, f_local = backend.execute(
                    plan,
                    self.kernel,
                    dev,
                    dtype=params.dtype,
                    compute_forces=compute_forces,
                )
                dev.download(phi_local.nbytes, label="potentials")
                if f_local is not None:
                    dev.download(f_local.nbytes, label="forces")
                phases[r].compute += dev.take_phase()
                potential[rank_idx[r]] = phi_local
                if forces is not None:
                    forces[rank_idx[r]] = f_local
                comm_totals.append(float(comm.clocks[r]))

            stats = self._stats(
                comm, trees, batch_sets, local_lists, lets, devices
            )
            stats["phase_split"] = split
        return DistributedResult(
            potential=potential,
            rank_phases=phases,
            comm_seconds=comm_totals,
            wall_seconds=watch.elapsed,
            stats=stats,
            forces=forces,
        )

    # ------------------------------------------------------------------
    def prepare(
        self,
        particles: ParticleSet,
        *,
        dry_run: bool = False,
    ) -> "PreparedDistributedBLTC":
        """Capture the charge-independent distributed state once.

        Runs the RCB partition, the per-rank tree/batch builds, the
        charge-independent LET half (remote tree arrays, interaction
        lists, direct-cluster *positions* -- no charges or moments move)
        and compiles each rank's geometry-only plan skeleton.  The
        returned session evaluates any number of charge vectors on this
        decomposition via :meth:`PreparedDistributedBLTC.apply`,
        re-shipping only the charge-dependent payload per step.

        ``dry_run=True`` prepares a model-only session (every apply runs
        the timing model; structure-only plans, no coordinate gathers).
        """
        params = self.params
        backend_spec = "model" if dry_run else params.backend
        backend = get_backend(backend_spec)
        numerics = backend.needs_numerics
        n = particles.n
        if n < self.n_ranks:
            raise ValueError(
                f"{n} particles cannot be split over {self.n_ranks} ranks"
            )
        watch = Stopwatch()
        with watch:
            comm = SimComm(self.n_ranks, comm_model=self.comm_model)
            labels = rcb_partition(
                particles.positions, self.n_ranks, axis_policy=self.axis_policy
            )
            rank_idx = [
                np.nonzero(labels == r)[0] for r in range(self.n_ranks)
            ]
            devices = [
                make_device(self.machine, async_streams=self.async_streams)
                for _ in range(self.n_ranks)
            ]
            phases = [PhaseTimes() for _ in range(self.n_ranks)]
            split = [
                {"setup_local": 0.0, "let_setup": 0.0}
                for _ in range(self.n_ranks)
            ]
            trees: list[ClusterTree] = []
            batch_sets: list[TargetBatches] = []
            moment_sets = []

            # -- phase A: local trees and batches (setup) ---------------
            for r in range(self.n_ranks):
                local = particles.subset(rank_idx[r])
                tree = ClusterTree(
                    local.positions,
                    params.max_leaf_size,
                    aspect_ratio_splitting=params.aspect_ratio_splitting,
                    shrink_to_fit=params.shrink_to_fit,
                )
                batches = TargetBatches(
                    local.positions,
                    params.max_batch_size,
                    aspect_ratio_splitting=params.aspect_ratio_splitting,
                    shrink_to_fit=params.shrink_to_fit,
                )
                dev = devices[r]
                dev.host_work(local.n * 2 * (tree.max_level + 1))
                dt = dev.take_phase()
                phases[r].setup += dt
                split[r]["setup_local"] += dt
                trees.append(tree)
                batch_sets.append(batches)
                # Charge-independent moment state (grids + cached basis;
                # the moment kernels themselves are charged per apply).
                moment_sets.append(
                    prepare_moment_grids(tree, params, numerics=numerics)
                )

            # -- expose the geometry windows ----------------------------
            for r in range(self.n_ranks):
                tree = trees[r]
                local = particles.subset(rank_idx[r])
                handle = comm.rank_handle(r)
                handle.create_window("tree", tree.tree_array())
                handle.create_window("srcpos", local.positions[tree.perm])

            # -- phase C (geometry half): remote trees, lists, positions
            lets = []
            local_lists = []
            for r in range(self.n_ranks):
                dev = devices[r]
                handle = comm.rank_handle(r)
                comm_before = float(comm.clocks[r])
                let, mac_evals = build_let_geometry(
                    handle, batch_sets[r], params, numerics=numerics
                )
                comm_delta = float(comm.clocks[r]) - comm_before
                lists = build_interaction_lists(
                    batch_sets[r], trees[r], params
                )
                dev.host_work((mac_evals + lists.mac_evals) * 4)
                dev.comm_wait(comm_delta)
                dev.upload(
                    let.nbytes_geometry()
                    + particles.subset(rank_idx[r]).positions.nbytes,
                    label="targets + LET geometry",
                )
                dt = dev.take_phase()
                phases[r].setup += dt
                split[r]["let_setup"] += dt
                lets.append(let)
                local_lists.append(lists)

            # -- geometry-only plan skeletons (host-side; no device time)
            plans = [
                self._compile_rank_plan(
                    trees[r], batch_sets[r], moment_sets[r],
                    local_lists[r], lets[r], None,
                    numerics=numerics, deferred_weights=True,
                )
                for r in range(self.n_ranks)
            ]

        cores = [
            SessionCore(
                kernel=self.kernel,
                params=params,
                backend=backend_spec,
                device=devices[r],
                geometry=GeometryState(
                    plan=plans[r], tree=trees[r], batches=batch_sets[r],
                    lists=local_lists[r], moments=moment_sets[r],
                    aux=lets[r],
                ),
                weight_source=DistributedWeightSource(),
                n_charges=trees[r].n_particles,
                first_upload_nbytes=trees[r].n_particles * 3 * FLOAT_BYTES,
            )
            for r in range(self.n_ranks)
        ]
        return PreparedDistributedBLTC(
            driver=self,
            comm=comm,
            rank_idx=rank_idx,
            cores=cores,
            phases=phases,
            split=split,
            wall_seconds=watch.elapsed,
        )

    # ------------------------------------------------------------------
    def _compile_rank_plan(
        self,
        tree: ClusterTree,
        batches: TargetBatches,
        moments,
        local_lists,
        let,
        charges: np.ndarray | None,
        *,
        numerics: bool = True,
        deferred_weights: bool = False,
    ):
        """Compile one rank's merged (local + LET) work into a plan.

        Per batch the approximation segments come first (local clusters,
        then each remote rank's in ascending rank order), then the direct
        segments in the same local-then-remote order -- the merge order
        of the seed implementation, preserved so the blocked reference
        backend reproduces its arithmetic exactly.

        Every (local or remote) cluster's rows are stored once per rank
        plan however many batches list it; share keys carry the owning
        rank so distinct ranks' clusters never collide -- and double as
        the weight-refresh keys of the prepared session, which compiles
        with ``deferred_weights=True`` (geometry only; ``charges`` may
        be None and the LET may hold positions without charge payloads
        yet).
        """
        deferred = bool(deferred_weights) and numerics
        if charges is not None:
            charges = np.asarray(charges, dtype=np.float64)
            if charges.ndim not in (1, 2):
                raise ValueError(
                    "charges must be a vector or an (n, n_rhs) block; "
                    f"got shape {charges.shape!r}"
                )
        n_ip = self.params.n_interpolation_points
        remote_ranks = sorted(let.lists)
        builder = PlanBuilder(
            batches.n_targets,
            numerics=numerics,
            deferred_weights=deferred,
            batched=self.params.batched,
        )
        for b in range(len(batches)):
            if numerics:
                builder.add_group(
                    targets=batches.batch_points(b),
                    out_index=batches.batch_indices(b),
                )
                for c in local_lists.approx[b]:
                    c = int(c)
                    key = ("approx", -1, c)
                    if builder.has_shared(key):
                        builder.add_segment("approx", share_key=key)
                        continue
                    builder.add_segment(
                        "approx",
                        points=moments.grid(c).points,
                        weights=None if deferred else moments.charges(c),
                        share_key=key,
                    )
                for s in remote_ranks:
                    for c in let.lists[s].approx[b]:
                        c = int(c)
                        key = ("approx", s, c)
                        if builder.has_shared(key):
                            builder.add_segment("approx", share_key=key)
                            continue
                        grid, qhat = let.approx_data[s][c]
                        builder.add_segment(
                            "approx", points=grid.points,
                            weights=None if deferred else qhat,
                            share_key=key,
                        )
                for c in local_lists.direct[b]:
                    c = int(c)
                    key = ("direct", -1, c)
                    if builder.has_shared(key):
                        builder.add_segment("direct", share_key=key)
                        continue
                    idx = tree.node_indices(c)
                    builder.add_segment(
                        "direct",
                        points=tree.positions[idx],
                        weights=None if deferred else charges[idx],
                        share_key=key,
                    )
                for s in remote_ranks:
                    for c in let.lists[s].direct[b]:
                        c = int(c)
                        key = ("direct", s, c)
                        if builder.has_shared(key):
                            builder.add_segment("direct", share_key=key)
                            continue
                        pos, q = let.direct_data[s][c]
                        builder.add_segment(
                            "direct", points=pos,
                            weights=None if deferred else q,
                            share_key=key,
                        )
            else:
                builder.add_group(size=batches.batch(b).count)
                n_approx = len(local_lists.approx[b]) + sum(
                    len(let.lists[s].approx[b]) for s in remote_ranks
                )
                for _ in range(n_approx):
                    builder.add_segment("approx", size=n_ip)
                for c in local_lists.direct[b]:
                    builder.add_segment(
                        "direct", size=tree.nodes[int(c)].count
                    )
                for s in remote_ranks:
                    for c in let.lists[s].direct[b]:
                        builder.add_segment(
                            "direct",
                            size=let.direct_data[s][int(c)][0].shape[0],
                        )
        return builder.build()

    # ------------------------------------------------------------------
    def _stats(self, comm, trees, batch_sets, local_lists, lets, devices) -> dict:
        per_rank = []
        for r in range(self.n_ranks):
            c = devices[r].counters
            per_rank.append(
                {
                    "n_local": trees[r].n_particles,
                    "n_tree_nodes": len(trees[r]),
                    "n_batches": len(batch_sets[r]),
                    "local_approx": local_lists[r].n_approx,
                    "local_direct": local_lists[r].n_direct,
                    "remote_approx": sum(
                        l.n_approx for l in lets[r].lists.values()
                    ),
                    "remote_direct": sum(
                        l.n_direct for l in lets[r].lists.values()
                    ),
                    "let_bytes": lets[r].nbytes(),
                    "rma_bytes": comm.stats[r].bytes_remote,
                    "rma_ops": comm.stats[r].ops,
                    "launches": c.launches,
                    "kernel_evaluations": c.interactions,
                    "busy_by_kind": dict(c.busy_by_kind),
                }
            )
        return {
            "kernel": self.kernel.name,
            "machine": self.machine.name,
            "n_ranks": self.n_ranks,
            "per_rank": per_rank,
            "total_rma_bytes": sum(s.bytes_remote for s in comm.stats),
        }


class PreparedDistributedBLTC:
    """A distributed session with fixed decomposition, refreshable charges.

    Produced by :meth:`DistributedBLTC.prepare`.  The RCB partition,
    per-rank trees/batches, interaction lists, LET geometry (remote tree
    arrays + direct-cluster positions) and geometry-only rank plans are
    all cached; each :meth:`apply` evaluates one global charge vector,
    re-shipping only the charge-dependent payload: the local charge
    upload, the moment kernels on the cached grids, the RMA gets of
    remote charges and modified charges, and the compute phase.  Rank
    devices and the communicator persist across applies (counters and
    RMA statistics accumulate; the first apply therefore reports exactly
    the numbers of a monolithic ``compute()``); per-apply cost is in the
    returned ``rank_phases``, whose setup component is always zero.
    """

    def __init__(
        self,
        *,
        driver: DistributedBLTC,
        comm: SimComm,
        rank_idx,
        cores,
        phases,
        split,
        wall_seconds: float,
    ) -> None:
        self.driver = driver
        self.comm = comm
        self.rank_idx = rank_idx
        #: One shared :class:`~repro.core.session.SessionCore` per rank;
        #: all per-rank session state (device, geometry, plan, LET)
        #: lives there, this shell adds the RMA re-ship between the
        #: phases.
        self.cores = cores
        #: Per-rank setup-phase cost charged once at prepare time.
        self.phases = phases
        self.split = split
        self.wall_seconds = wall_seconds
        self._n = int(sum(len(idx) for idx in rank_idx))

    # -- session-core delegation ---------------------------------------
    @property
    def backend(self):
        return self.cores[0].backend

    @property
    def devices(self):
        return [core.device for core in self.cores]

    @property
    def trees(self):
        return [core.geometry.tree for core in self.cores]

    @property
    def batch_sets(self):
        return [core.geometry.batches for core in self.cores]

    @property
    def moment_sets(self):
        return [core.geometry.moments for core in self.cores]

    @property
    def local_lists(self):
        return [core.geometry.lists for core in self.cores]

    @property
    def lets(self):
        return [core.geometry.aux for core in self.cores]

    @property
    def plans(self):
        return [core.geometry.plan for core in self.cores]

    @property
    def n_applies(self) -> int:
        return self.cores[0].n_applies

    @property
    def n_ranks(self) -> int:
        return self.driver.n_ranks

    def geometry_key(self) -> str:
        """Stable content hash over all rank geometries (cache key)."""
        import hashlib

        h = hashlib.sha256()
        for core in self.cores:
            h.update(core.geometry_key().encode())
        return h.hexdigest()

    def memory_stats(self) -> dict:
        """Summed per-rank resident bytes (see ``SessionCore.memory_stats``)."""
        totals: dict = {}
        for core in self.cores:
            for k, v in core.memory_stats().items():
                totals[k] = totals.get(k, 0) + v
        return totals

    def health_stats(self) -> dict:
        """Aggregated per-rank fault-tolerance counters (see
        ``SessionCore.health_stats``): numeric counters sum, fallback
        events concatenate, ``degraded_to``/``last_error`` report the
        first degraded rank (ranks share one backend instance, so they
        degrade together in practice)."""
        per_rank = [core.health_stats() for core in self.cores]
        stats = dict(per_rank[0])
        stats["fallbacks"] = [
            e for s in per_rank for e in s["fallbacks"]
        ]
        # Shared pool-backend counters would multiply by n_ranks if
        # summed; every rank reads the same instance, so take rank 0's.
        for s in per_rank[1:]:
            if stats["degraded_to"] is None:
                stats["degraded_to"] = s["degraded_to"]
            if stats["last_error"] is None:
                stats["last_error"] = s["last_error"]
        return stats

    def __repr__(self) -> str:
        return (
            f"<PreparedDistributedBLTC n_ranks={self.n_ranks} "
            f"n_particles={self._n} n_applies={self.n_applies} "
            f"{format_memory_stats(self.memory_stats())} "
            f"{format_health_stats(self.health_stats())}>"
        )

    # ------------------------------------------------------------------
    def apply(
        self,
        charges: np.ndarray,
        *,
        compute_forces: bool = False,
        dry_run: bool = False,
    ) -> DistributedResult:
        """Evaluate the prepared decomposition for one or many charge
        vectors.

        ``charges`` may be a global ``(N,)`` vector or an ``(N, n_rhs)``
        block; a block evaluates every column in one traversal (the LET
        re-ships ``(n, n_rhs)`` charges and modified charges through the
        same windows) and returns ``(N, n_rhs)`` potentials /
        ``(N, 3, n_rhs)`` forces, column ``j`` bitwise equal to a solo
        apply of ``charges[:, j]``.

        Per rank: upload the local charges (the first apply ships the
        full local particle data, as the monolithic precompute does),
        re-run the moment kernels on the cached grids, re-expose the
        charge windows, get the LET's remote charges/modified charges
        (the only RMA traffic of an apply), refresh the rank plan's
        weight buffer in place, and execute through the session backend.
        With ``overlap_comm`` the re-ship communication hides behind the
        rank's own precompute, mirroring the monolithic driver's
        treatment of LET communication.  The returned result's phases
        carry no setup time -- that was charged at prepare -- so
        ``total_seconds`` reduces to the precompute/compute barrier of
        this apply alone.
        """
        driver = self.driver
        charges = as_charge_block(charges, self._n)
        multi = charges.ndim == 2
        n_rhs = int(charges.shape[1]) if multi else 1
        # dry_run forces the model backend as an explicit override on
        # every rank core (overrides never degrade); normal applies let
        # each core resolve through its session so the fallback chain
        # can serve when the configured backend fails.  All fallback
        # backends need numerics, so the flag stays valid across a
        # degradation.
        backend = get_backend("model") if dry_run else self.backend
        cores = self.cores
        numerics = (
            backend.needs_numerics
            and all(core.plan.has_numerics for core in cores)
        )
        comm = self.comm
        n_ranks = self.n_ranks
        watch = Stopwatch()
        with watch:
            phases = [PhaseTimes() for _ in range(n_ranks)]
            local_qs = [charges[self.rank_idx[r]] for r in range(n_ranks)]

            # -- precompute: charge upload + moment kernels per rank,
            # through each rank's session core (the first apply ships
            # the full local particle data, later ones the charges).
            for r in range(n_ranks):
                cores[r].precompute(
                    local_qs[r], phases[r], numerics=numerics, n_rhs=n_rhs
                )

            # -- re-expose the charge-dependent windows -----------------
            for r in range(n_ranks):
                core = cores[r]
                handle = comm.rank_handle(r)
                handle.refresh_window(
                    "srcq", local_qs[r][core.geometry.tree.perm]
                )
                handle.refresh_window(
                    "moments",
                    core.geometry.moments.packed(len(core.geometry.tree)),
                )

            # -- charge re-ship + plan refresh + compute ----------------
            potential = np.zeros(
                (self._n, n_rhs) if multi else self._n, dtype=np.float64
            )
            forces = (
                np.zeros(
                    (self._n, 3, n_rhs) if multi else (self._n, 3),
                    dtype=np.float64,
                )
                if compute_forces
                else None
            )
            comm_totals = []
            for r in range(n_ranks):
                core = cores[r]
                dev = core.device
                handle = comm.rank_handle(r)
                let = core.geometry.aux
                comm_before = float(comm.clocks[r])
                refresh_let_charges(handle, let)
                comm_delta = float(comm.clocks[r]) - comm_before
                dev.comm_wait(comm_delta)
                dev.upload(let.nbytes_charges(), label="LET charges")
                dt = dev.take_phase()
                if driver.overlap_comm:
                    # Hide the re-ship behind this rank's own precompute
                    # (the monolithic driver's Sec. 5 treatment of LET
                    # communication).
                    hidden = min(comm_delta, phases[r].precompute)
                    dt = max(dt - hidden, 0.0)
                phases[r].precompute += dt

                phi_local, f_local = core.execute_plan(
                    local_qs[r], phases[r],
                    backend=backend if dry_run else None, numerics=numerics,
                    compute_forces=compute_forces, multi=multi, n_rhs=n_rhs,
                )
                potential[self.rank_idx[r]] = phi_local
                if forces is not None:
                    forces[self.rank_idx[r]] = f_local
                comm_totals.append(float(comm.clocks[r]))

            stats = driver._stats(
                comm, self.trees, self.batch_sets, self.local_lists,
                self.lets, self.devices,
            )
            # Per-apply there is no setup half: total_seconds reduces to
            # max(precompute) + max(compute).  The prepare-time split is
            # kept alongside for whole-session accounting.
            stats["phase_split"] = [
                {"setup_local": 0.0, "let_setup": 0.0}
                for _ in range(n_ranks)
            ]
            stats["prepare_split"] = [dict(s) for s in self.split]
            stats["n_applies"] = self.n_applies + 1

        for core in cores:
            core.n_applies += 1
        return DistributedResult(
            potential=potential,
            rank_phases=phases,
            comm_seconds=comm_totals,
            wall_seconds=watch.elapsed,
            stats=stats,
            forces=forces,
        )
