"""Remote tree views and locally essential trees (paper Sec. 3.1).

LET construction happens in two steps (paper's two-rank example):

1. the origin rank *gets* each remote rank's packed tree array (cluster
   midpoints, radii, counts, topology -- no particle data) and runs the
   batch/cluster traversal against it, producing per-remote interaction
   lists;
2. the origin *gets* exactly the data those lists reference: source
   particles and charges of directly-summed remote clusters, and modified
   charges of approximated remote clusters.

The union of that data over all remote ranks -- plus the rank's own local
tree -- is the rank's locally essential tree: everything required to
evaluate its targets with no further communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..config import TreecodeParams
from ..core.interaction_lists import InteractionLists, traverse_batch
from ..interpolation.grid import ChebyshevGrid3D
from ..mpi.comm import RankHandle
from ..tree.batches import TargetBatches
from ..tree.octree import ClusterTree

__all__ = [
    "RemoteTreeAdapter",
    "LocallyEssentialTree",
    "build_let",
    "build_let_geometry",
    "refresh_let_charges",
]

# Field offsets in the packed tree array (ClusterTree.tree_array layout).
_CENTER = slice(0, 3)
_RADIUS = 3
_LO = slice(4, 7)
_HI = slice(7, 10)
_COUNT = 10
_START = 11
_END = 12
_IS_LEAF = 13
_FIRST_CHILD = 14
_N_CHILDREN = 15


class RemoteTreeAdapter:
    """Tree-adapter view over a packed tree array fetched via RMA.

    Implements the :class:`~repro.core.interaction_lists.TreeAdapter`
    protocol, so the same traversal code used locally builds the
    interaction lists against remote trees.
    """

    def __init__(self, tree_array: np.ndarray) -> None:
        arr = np.asarray(tree_array, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != ClusterTree.TREE_ARRAY_FIELDS:
            raise ValueError(
                f"tree array must be (M, {ClusterTree.TREE_ARRAY_FIELDS}), "
                f"got {arr.shape}"
            )
        self._arr = arr

    def n_nodes(self) -> int:
        return self._arr.shape[0]

    def center(self, i: int) -> np.ndarray:
        return self._arr[i, _CENTER]

    def radius(self, i: int) -> float:
        return float(self._arr[i, _RADIUS])

    def count(self, i: int) -> int:
        return int(self._arr[i, _COUNT])

    def is_leaf(self, i: int) -> bool:
        return self._arr[i, _IS_LEAF] != 0.0

    def children(self, i: int) -> Sequence[int]:
        first = int(self._arr[i, _FIRST_CHILD])
        n = int(self._arr[i, _N_CHILDREN])
        if first < 0 or n == 0:
            return ()
        return range(first, first + n)

    def box(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        return self._arr[i, _LO], self._arr[i, _HI]

    def particle_slice(self, i: int) -> slice:
        """Slice into the owner's permuted particle arrays for node ``i``."""
        return slice(int(self._arr[i, _START]), int(self._arr[i, _END]))


@dataclass
class LocallyEssentialTree:
    """All remote data one rank needs for its potential evaluation.

    Keyed by remote rank: interaction lists per local batch, the fetched
    particle data for direct interactions, and the fetched modified
    charges (with grids reconstructed locally from the node boxes -- the
    Chebyshev grid is determined by the box and the degree, so grids never
    travel over the network, matching the paper which communicates only
    particles and cluster charges).
    """

    #: lists[s] -- InteractionLists of local batches vs remote rank s.
    lists: dict[int, InteractionLists] = field(default_factory=dict)
    #: direct_data[s][node] = (positions, charges) for remote node.
    #: ``charges`` is None between a geometry-only build and the first
    #: :func:`refresh_let_charges`.
    direct_data: dict[int, dict[int, tuple[np.ndarray, np.ndarray]]] = field(
        default_factory=dict
    )
    #: approx_data[s][node] = (grid, modified_charges) for remote node;
    #: ``modified_charges`` is None until the first charge refresh.
    approx_data: dict[int, dict[int, tuple[ChebyshevGrid3D, np.ndarray]]] = field(
        default_factory=dict
    )
    #: direct_slices[s][node] -- the owner-side particle slice of each
    #: direct cluster, retained so charge refreshes re-get exactly the
    #: referenced rows without re-fetching the remote tree array.
    direct_slices: dict[int, dict[int, slice]] = field(default_factory=dict)

    def n_remote_clusters(self) -> int:
        return sum(len(d) for d in self.approx_data.values()) + sum(
            len(d) for d in self.direct_data.values()
        )

    def nbytes(self) -> int:
        """Bytes of remote payload held in the LET."""
        return self.nbytes_geometry() + self.nbytes_charges()

    def nbytes_geometry(self) -> int:
        """Charge-independent payload bytes (direct-cluster positions)."""
        total = 0
        for per_rank in self.direct_data.values():
            for pos, _ in per_rank.values():
                total += pos.nbytes
        return total

    def nbytes_charges(self) -> int:
        """Charge-dependent payload bytes (charges + modified charges)."""
        total = 0
        for per_rank in self.direct_data.values():
            for _, q in per_rank.values():
                if q is not None:
                    total += q.nbytes
        for per_rank in self.approx_data.values():
            for _, qhat in per_rank.values():
                if qhat is not None:
                    total += qhat.nbytes
        return total


def build_let(
    handle: RankHandle,
    batches: TargetBatches,
    params: TreecodeParams,
    *,
    tree_window: str = "tree",
    pos_window: str = "srcpos",
    charge_window: str = "srcq",
    moments_window: str = "moments",
) -> tuple[LocallyEssentialTree, int]:
    """Construct this rank's LET over the simulated RMA windows.

    Returns ``(let, mac_evals)`` where ``mac_evals`` counts the host-side
    traversal work (for the setup-phase cost model).  Communication costs
    are charged to the origin's clock by the communicator.  Composed of
    the geometry half (:func:`build_let_geometry`) plus one charge
    re-ship (:func:`refresh_let_charges`): the per-get costs are
    additive, so the composition charges exactly the bytes and ops of
    the original interleaved construction.
    """
    let, mac_evals = build_let_geometry(
        handle, batches, params,
        tree_window=tree_window, pos_window=pos_window,
    )
    refresh_let_charges(
        handle, let,
        charge_window=charge_window, moments_window=moments_window,
    )
    return let, mac_evals


def build_let_geometry(
    handle: RankHandle,
    batches: TargetBatches,
    params: TreecodeParams,
    *,
    tree_window: str = "tree",
    pos_window: str = "srcpos",
    numerics: bool = True,
) -> tuple[LocallyEssentialTree, int]:
    """The charge-independent half of LET construction.

    Gets each remote rank's packed tree array, traverses it to build
    the per-remote interaction lists, fetches the *positions* of every
    directly-summed remote cluster, and reconstructs approximated
    clusters' Chebyshev grids from their boxes (``numerics=False``
    skips the grid objects, as in the model-only pipeline).  No charge
    or moment data moves; the retained ``direct_slices`` let
    :func:`refresh_let_charges` re-ship exactly the referenced rows per
    charge vector -- the prepare/apply session's amortization of the
    remote-tree traversal and position traffic.
    """
    let = LocallyEssentialTree()
    mac_evals = 0
    for s in handle.remote_ranks():
        # Step 1: get the remote tree array, build interaction lists.
        remote = RemoteTreeAdapter(handle.get(s, tree_window))
        lists = InteractionLists()
        for b in range(len(batches)):
            node = batches.batch(b)
            approx, direct, evals = traverse_batch(
                node.center, node.radius, remote, params
            )
            lists.approx.append(np.asarray(approx, dtype=np.intp))
            lists.direct.append(np.asarray(direct, dtype=np.intp))
            mac_evals += evals
        lists.mac_evals = mac_evals
        let.lists[s] = lists

        # Step 2 (geometry part): referenced remote positions + grids.
        direct_nodes = sorted(
            {int(c) for d in lists.direct for c in d}
        )
        approx_nodes = sorted(
            {int(c) for a in lists.approx for c in a}
        )
        dd: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        slices: dict[int, slice] = {}
        for c in direct_nodes:
            sl = remote.particle_slice(c)
            slices[c] = sl
            dd[c] = (handle.get(s, pos_window, sl), None)
        ad: dict[int, tuple[ChebyshevGrid3D, np.ndarray]] = {}
        for c in approx_nodes:
            grid = None
            if numerics:
                lo, hi = remote.box(c)
                grid = ChebyshevGrid3D.for_box(lo, hi, params.degree)
            ad[c] = (grid, None)
        let.direct_data[s] = dd
        let.approx_data[s] = ad
        let.direct_slices[s] = slices
    return let, mac_evals


def refresh_let_charges(
    handle: RankHandle,
    let: LocallyEssentialTree,
    *,
    charge_window: str = "srcq",
    moments_window: str = "moments",
) -> None:
    """Re-ship the LET's charge-dependent payload (and nothing else).

    Gets the charges of every directly-summed remote cluster (the
    slices recorded at geometry build) and the modified charges of
    every approximated remote cluster from the owners' refreshed
    windows, updating the LET in place.  Per charge vector this is the
    only remote traffic a prepared rank needs -- the tree arrays,
    interaction lists and positions stay cached.
    """
    for s in sorted(let.lists):
        slices = let.direct_slices[s]
        dd = let.direct_data[s]
        for c in sorted(dd):
            pos, _ = dd[c]
            dd[c] = (pos, handle.get(s, charge_window, slices[c]))
        ad = let.approx_data[s]
        for c in sorted(ad):
            grid, _ = ad[c]
            ad[c] = (grid, handle.get(s, moments_window, c))
