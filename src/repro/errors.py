"""Structured exception taxonomy for the execution layer.

The treecode is pitched as a long-running workload (MD trajectories,
many applies per prepared geometry, eventually a multi-tenant session
server), so failures in the execution layer must be *classifiable*:
a caller -- or the session core's own degradation logic -- needs to
tell "a worker process died" apart from "the backend cannot exist in
this process" apart from "the user passed a bad array".  Bare
``RuntimeError``\\ s cannot carry that distinction; these classes can,
and every one of them chains its original cause (``raise ... from``)
so nothing about the underlying failure is lost.

Hierarchy
---------
* :class:`ReproError` -- common base; subclasses ``RuntimeError`` so
  pre-existing ``except RuntimeError`` call sites keep working.

  * :class:`BackendExecutionError` -- a backend failed to execute a
    compiled plan.  Carries the backend's registry ``name`` and the
    number of ``attempts`` made before giving up.

    * :class:`WorkerCrashError` -- the multiprocessing backend's worker
      pool broke (a worker crashed or timed out) and bounded recovery
      (pool rebuild + shipment re-pack under the
      :class:`~repro.core.resilience.RetryPolicy`) did not restore it.
    * :class:`BackendUnavailableError` -- the backend cannot run in
      this process at all (numba not importable, a future ``cupy``
      without a GPU); raised at construction/resolution time.
    * :class:`ShipmentError` -- packing or refreshing a plan's
      shared-memory shipment failed in a way the pickle fallback could
      not absorb.

  * :class:`GeometryUpdateError` -- an incremental
    ``update_geometry`` failed midway; the session's geometry may be
    partially patched and should be re-prepared.

* :class:`BackendDegradedWarning` -- the structured warning the
  session core emits exactly once per fallback transition when it
  degrades to the next backend in the chain instead of raising.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BackendExecutionError",
    "WorkerCrashError",
    "BackendUnavailableError",
    "ShipmentError",
    "GeometryUpdateError",
    "BackendDegradedWarning",
]


class ReproError(RuntimeError):
    """Base class of every structured error this package raises."""


class BackendExecutionError(ReproError):
    """A backend failed to execute a compiled plan.

    ``backend`` is the failing backend's registry name (``None`` when
    unknown); ``attempts`` the number of execution attempts made before
    the error escaped (1 when there was no retry loop involved).  The
    underlying failure is chained as ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        backend: str | None = None,
        attempts: int | None = None,
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.attempts = attempts


class WorkerCrashError(BackendExecutionError):
    """The worker pool broke and bounded recovery did not restore it."""


class BackendUnavailableError(BackendExecutionError):
    """The backend cannot run in this process (missing dependency)."""


class ShipmentError(BackendExecutionError):
    """Packing/refreshing a plan's shared-memory shipment failed."""


class GeometryUpdateError(ReproError):
    """An incremental ``update_geometry`` failed midway through.

    The session's geometry may be partially patched; callers should
    re-prepare at the new positions rather than keep applying.
    """


class BackendDegradedWarning(UserWarning):
    """A session degraded to a fallback backend and keeps serving."""
