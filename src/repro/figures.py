"""Command-line runner for the figure-regeneration harnesses.

Usage::

    python -m repro.figures fig4 [--full]
    python -m repro.figures fig5 [--full]
    python -m repro.figures fig6 [--full]

Prints the same rows/series the paper's figure plots.  ``--full`` runs
the complete parameter sweeps (the default trims sweep points for
CI-speed runs).  The pytest benchmarks in ``benchmarks/`` wrap the same
harnesses and additionally assert the paper's qualitative findings.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.report import format_table
from .experiments import (
    Fig4Config,
    Fig5Config,
    Fig6Config,
    run_fig4,
    run_fig5,
    run_fig6,
)

__all__ = ["main"]


def _progress(*args) -> None:
    print(f"  running {args} ...", file=sys.stderr)


def _fig4(full: bool) -> None:
    cfg = Fig4Config() if full else Fig4Config().quick()
    out = run_fig4(cfg, progress=_progress)
    rows = [
        [r.kernel, r.theta, r.degree, r.error, r.gpu_time, r.cpu_time,
         r.speedup]
        for r in out["rows"]
    ]
    print(
        format_table(
            ["kernel", "theta", "n", "error", "GPU (s)", "CPU (s)", "speedup"],
            rows,
            title="Fig. 4 -- run time vs error (model times, measured errors)",
        )
    )
    for kname, t in out["direct"].items():
        print(f"direct sum {kname}: GPU {t['gpu']:.2f} s, CPU {t['cpu']:.1f} s")


def _fig5(full: bool) -> None:
    cfg = Fig5Config() if full else Fig5Config().quick()
    out = run_fig5(cfg, progress=_progress)
    rows = [
        [r.kernel, f"{r.paper_per_gpu // 1_000_000}M", r.n_gpus, r.n_total,
         r.time, r.setup, r.compute]
        for r in out["rows"]
    ]
    print(
        format_table(
            ["kernel", "paper N/GPU", "GPUs", "N model", "time (s)",
             "setup", "compute"],
            rows,
            title="Fig. 5 -- weak scaling (simulated P100 cluster)",
        )
    )
    for kname, err in out["verify_error"].items():
        print(f"accuracy verification ({kname}): {err:.2e}")


def _fig6(full: bool) -> None:
    cfg = Fig6Config() if full else Fig6Config().quick()
    out = run_fig6(cfg, progress=_progress)
    rows = [
        [r.kernel, f"{r.paper_total // 1_000_000}M", r.n_gpus, r.time,
         f"{r.efficiency * 100:.0f}%", f"{r.setup_frac * 100:.0f}",
         f"{r.precompute_frac * 100:.1f}", f"{r.compute_frac * 100:.0f}"]
        for r in out["rows"]
    ]
    print(
        format_table(
            ["kernel", "paper N", "GPUs", "time (s)", "eff", "setup %",
             "precomp %", "compute %"],
            rows,
            title="Fig. 6 -- strong scaling + phase distribution",
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.figures",
        description="Regenerate the paper's figures.",
    )
    parser.add_argument("figure", choices=["fig4", "fig5", "fig6"])
    parser.add_argument(
        "--full", action="store_true", help="run the full parameter sweeps"
    )
    args = parser.parse_args(argv)
    {"fig4": _fig4, "fig5": _fig5, "fig6": _fig6}[args.figure](args.full)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
