"""Tensor-product 3D Chebyshev grids for source clusters (paper eq. 8).

Each source cluster carries an ``(n+1)^3`` tensor-product grid of Chebyshev
points spanning its (minimal) bounding box.  The grid exposes the flattened
``(n+1)^3 x 3`` point coordinates -- the "proxy particles" that the
batch-cluster approximation kernel interacts with -- and the per-dimension
1D points/weights needed to compute modified charges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .chebyshev import barycentric_weights, chebyshev_points

__all__ = ["ChebyshevGrid3D", "tensor_grid_points"]


def tensor_grid_points(
    sx: np.ndarray, sy: np.ndarray, sz: np.ndarray
) -> np.ndarray:
    """Flattened tensor-product points ``(len(sx)*len(sy)*len(sz), 3)``.

    Flattening follows C order of the index triple ``(k1, k2, k3)``,
    matching the ``einsum``/``reshape`` layout used for modified charges.
    """
    X, Y, Z = np.meshgrid(sx, sy, sz, indexing="ij")
    return np.column_stack((X.ravel(), Y.ravel(), Z.ravel()))


@dataclass(frozen=True)
class ChebyshevGrid3D:
    """Tensor-product Chebyshev grid over a 3D box.

    Attributes
    ----------
    degree : interpolation degree ``n``; ``(n+1)`` points per dimension.
    points_1d : tuple of three ``(n+1,)`` arrays, per-dimension points.
    weights : ``(n+1,)`` barycentric weights (dimension-independent).
    points : ``((n+1)^3, 3)`` flattened tensor-product coordinates.
    """

    degree: int
    points_1d: tuple[np.ndarray, np.ndarray, np.ndarray]
    weights: np.ndarray
    points: np.ndarray

    @classmethod
    def for_box(cls, lo: np.ndarray, hi: np.ndarray, degree: int) -> "ChebyshevGrid3D":
        """Build the grid spanning the box ``[lo, hi]`` per dimension.

        Degenerate dimensions (``lo == hi``, e.g. planar particle sets) are
        legal: all points of that dimension coincide, and the coincidence
        branch of the barycentric basis keeps the computation exact.
        """
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        if lo.shape != (3,) or hi.shape != (3,):
            raise ValueError("lo and hi must be length-3 vectors")
        if np.any(hi < lo):
            raise ValueError(f"invalid box: lo={lo}, hi={hi}")
        pts = tuple(chebyshev_points(degree, lo[d], hi[d]) for d in range(3))
        w = barycentric_weights(degree)
        return cls(
            degree=degree,
            points_1d=pts,  # type: ignore[arg-type]
            weights=w,
            points=tensor_grid_points(*pts),
        )

    @property
    def n_points(self) -> int:
        """Total number of grid points, ``(n+1)^3``."""
        return (self.degree + 1) ** 3
