"""Barycentric Lagrange interpolation at Chebyshev points of the 2nd kind.

Implements Sec. 2.1-2.3 of the paper: Chebyshev points and their barycentric
weights (eqs. 6-7), the barycentric form of the Lagrange basis (eq. 4) with
removable-singularity handling (Sec. 2.3), and tensor-product 3D grids
(eq. 8).
"""

from .chebyshev import barycentric_weights, chebyshev_points
from .barycentric import (
    interpolate_1d,
    lagrange_basis,
)
from .grid import ChebyshevGrid3D, tensor_grid_points

__all__ = [
    "chebyshev_points",
    "barycentric_weights",
    "lagrange_basis",
    "interpolate_1d",
    "ChebyshevGrid3D",
    "tensor_grid_points",
]
