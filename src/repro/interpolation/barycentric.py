"""Barycentric Lagrange basis evaluation with removable singularities.

The barycentric form of the Lagrange basis (paper eq. 4),

    L_k(x) = (w_k / (x - s_k)) / sum_k' (w_k' / (x - s_k')),

has removable singularities at the interpolation points ``x = s_k'`` where
``L_k(s_k') = delta_{k k'}`` (eq. 5).  Following the paper (Sec. 2.3), when
an evaluation coordinate coincides with an interpolation-point coordinate
to within the smallest positive IEEE normal double, the Kronecker-delta
condition is enforced explicitly instead of evaluating the quotient.
"""

from __future__ import annotations

import numpy as np

from ..util import TINY

__all__ = ["lagrange_basis", "interpolate_1d"]


def lagrange_basis(
    x: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    *,
    tol: float = TINY,
) -> np.ndarray:
    """Evaluate all barycentric Lagrange basis polynomials at ``x``.

    Parameters
    ----------
    x : (M,) evaluation coordinates.
    points : (n+1,) interpolation points ``s_k``.
    weights : (n+1,) barycentric weights ``w_k``.
    tol : coincidence tolerance; coordinates within ``tol`` of an
        interpolation point take the exact Kronecker-delta column.

    Returns
    -------
    (n+1, M) array ``L[k, j] = L_k(x_j)``.  Every column sums to 1
    (partition of unity), exactly for coincident columns.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    points = np.asarray(points, dtype=np.float64).ravel()
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if points.shape != weights.shape:
        raise ValueError(
            f"points and weights must have equal length; got "
            f"{points.shape[0]} and {weights.shape[0]}"
        )
    diff = x[None, :] - points[:, None]  # (n+1, M)
    coincident = np.abs(diff) <= tol  # (n+1, M)
    hit_cols = coincident.any(axis=0)  # (M,)
    # Regular barycentric evaluation, with coincident entries masked so no
    # division by (near-)zero occurs.  Overwritten below for hit columns.
    safe = np.where(coincident, 1.0, diff)
    ratio = weights[:, None] / safe
    denom = ratio.sum(axis=0)
    # Columns flagged coincident are overwritten below; their quotient may
    # legitimately be 0/0 or x/0 (e.g. degenerate boxes where all
    # interpolation points coincide and the weights cancel), so silence
    # the intermediate arithmetic.
    with np.errstate(divide="ignore", invalid="ignore"):
        basis = ratio / denom
    if np.any(hit_cols):
        # Enforce L_k(s_k') = delta_{kk'} (paper eq. 5 / Sec. 2.3).  A
        # column can only hit one interpolation point when the points are
        # distinct; take the first hit defensively.
        cols = np.nonzero(hit_cols)[0]
        basis[:, cols] = 0.0
        rows = np.argmax(coincident[:, cols], axis=0)
        basis[rows, cols] = 1.0
    return basis


def interpolate_1d(
    values: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """Evaluate the interpolant of ``(points, values)`` at ``x`` (eq. 3).

    ``p_n(x) = sum_k f(s_k) L_k(x)`` with the basis evaluated in
    barycentric form.  Used by tests and the Hermite/extension modules;
    the treecode itself consumes :func:`lagrange_basis` directly.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    basis = lagrange_basis(x, points, weights)
    if values.shape[0] != basis.shape[0]:
        raise ValueError(
            f"values has length {values.shape[0]}, expected {basis.shape[0]}"
        )
    return values @ basis
