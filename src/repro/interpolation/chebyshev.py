"""Chebyshev points of the second kind and their barycentric weights.

Paper eqs. 6-7: on ``[-1, 1]`` the points are ``s_k = cos(pi k / n)`` for
``k = 0..n`` and the barycentric weights are ``w_k = (-1)^k delta_k`` with
``delta_k = 1/2`` at the endpoints and ``1`` otherwise.  For a different
interval the points are mapped linearly and the weights are unchanged
(any common scale factor cancels in the barycentric quotient, eq. 4).
"""

from __future__ import annotations

import numpy as np

__all__ = ["chebyshev_points", "barycentric_weights"]


def chebyshev_points(n: int, a: float = -1.0, b: float = 1.0) -> np.ndarray:
    """Chebyshev points of the 2nd kind for degree ``n`` on ``[a, b]``.

    Returns ``n + 1`` points ordered from ``b`` down to ``a`` (the natural
    ``cos`` ordering: ``s_0 = b``, ``s_n = a``).  Both interval endpoints
    are included, which -- combined with minimal cluster bounding boxes --
    guarantees some source coordinates coincide with interpolation-point
    coordinates (paper Sec. 2.3).
    """
    if n < 1:
        raise ValueError(f"degree n must be >= 1, got {n}")
    if not (b >= a):
        raise ValueError(f"invalid interval [{a}, {b}]")
    theta = np.pi * np.arange(n + 1) / n
    s = np.cos(theta)
    # Force exact endpoint values so coincidence with the (minimal) box
    # boundary is bitwise, then map to [a, b].
    s[0] = 1.0
    s[n] = -1.0
    mid = 0.5 * (a + b)
    half = 0.5 * (b - a)
    pts = mid + half * s
    pts[0] = b
    pts[n] = a
    return pts


def barycentric_weights(n: int) -> np.ndarray:
    """Barycentric weights for Chebyshev points of the 2nd kind (eq. 7).

    ``w_k = (-1)^k delta_k`` with ``delta_0 = delta_n = 1/2`` and
    ``delta_k = 1`` otherwise.  Weights are interval-independent.
    """
    if n < 1:
        raise ValueError(f"degree n must be >= 1, got {n}")
    w = np.ones(n + 1)
    w[1::2] = -1.0
    w[0] *= 0.5
    w[n] *= 0.5
    return w
