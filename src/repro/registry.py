"""Low-level backend-name registry (import-cycle free).

The user-facing registry API lives in :mod:`repro.core.backends`
(``register_backend`` / ``get_backend`` / ``available_backends``); this
module is only the underlying name -> class store.  It exists as a
top-level leaf module so that :mod:`repro.config` can validate
``TreecodeParams(backend=...)`` names at construction time without
importing the backend package -- ``repro.core`` pulls in the whole
pipeline (which itself imports ``repro.config``), so a direct import
from the config dataclass would be circular.

Bootstrap note: while ``repro`` itself is still importing (the built-in
backends register as a side effect of importing
:mod:`repro.core.backends`), the store is empty and name validation is
a no-op.  That window only covers module-level constructions inside the
package (``DEFAULT_PARAMS``); by the time user code can construct a
``TreecodeParams`` the built-ins are registered.
"""

from __future__ import annotations

__all__ = [
    "register_backend_type",
    "unregister_backend_type",
    "backend_names",
    "backend_type",
    "shared_backend_instance",
    "clear_shared_instances",
]

_BACKEND_TYPES: dict[str, type] = {}

#: Process-wide shared instances for backends with ``share_instance``
#: (one worker pool per process, reused by every session -- including
#: sessions restored from a pickle, which re-resolve their backend by
#: name through this store).
_SHARED_INSTANCES: dict[str, object] = {}


def register_backend_type(name: str, cls: type) -> None:
    """Store ``cls`` under ``name`` (last registration wins)."""
    _BACKEND_TYPES[name] = cls


def unregister_backend_type(name: str) -> None:
    _BACKEND_TYPES.pop(name, None)


def backend_names() -> tuple[str, ...]:
    """Sorted names of all registered backend classes."""
    return tuple(sorted(_BACKEND_TYPES))


def backend_type(name: str) -> type:
    """Look up a backend class; raises KeyError for unknown names."""
    return _BACKEND_TYPES[name]


def shared_backend_instance(name: str, cls: type) -> object:
    """The process-wide shared instance of backend ``name``.

    Creates (and caches) one on first use, when a re-registration
    changed the class behind the name, or when the cached instance
    reports itself unhealthy (``is_healthy()`` returning False -- e.g.
    a multiprocessing backend whose pool recovery was exhausted).  All
    sessions selecting the same ``share_instance`` backend -- live or
    unpickled -- resolve to the same object, so e.g. one
    ``ProcessPoolExecutor`` serves them all; a session restored from a
    pickle therefore never inherits a broken pool: the unhealthy member
    is replaced by a fresh instance at resolution time.
    """
    inst = _SHARED_INSTANCES.get(name)
    if inst is not None and type(inst) is cls:
        probe = getattr(inst, "is_healthy", None)
        if probe is None or probe():
            return inst
    inst = cls()
    _SHARED_INSTANCES[name] = inst
    return inst


def clear_shared_instances() -> None:
    """Drop all cached shared instances (test isolation hook)."""
    _SHARED_INSTANCES.clear()
