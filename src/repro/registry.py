"""Low-level backend-name registry (import-cycle free).

The user-facing registry API lives in :mod:`repro.core.backends`
(``register_backend`` / ``get_backend`` / ``available_backends``); this
module is only the underlying name -> class store.  It exists as a
top-level leaf module so that :mod:`repro.config` can validate
``TreecodeParams(backend=...)`` names at construction time without
importing the backend package -- ``repro.core`` pulls in the whole
pipeline (which itself imports ``repro.config``), so a direct import
from the config dataclass would be circular.

Bootstrap note: while ``repro`` itself is still importing (the built-in
backends register as a side effect of importing
:mod:`repro.core.backends`), the store is empty and name validation is
a no-op.  That window only covers module-level constructions inside the
package (``DEFAULT_PARAMS``); by the time user code can construct a
``TreecodeParams`` the built-ins are registered.
"""

from __future__ import annotations

__all__ = [
    "register_backend_type",
    "unregister_backend_type",
    "backend_names",
    "backend_type",
]

_BACKEND_TYPES: dict[str, type] = {}


def register_backend_type(name: str, cls: type) -> None:
    """Store ``cls`` under ``name`` (last registration wins)."""
    _BACKEND_TYPES[name] = cls


def unregister_backend_type(name: str) -> None:
    _BACKEND_TYPES.pop(name, None)


def backend_names() -> tuple[str, ...]:
    """Sorted names of all registered backend classes."""
    return tuple(sorted(_BACKEND_TYPES))


def backend_type(name: str) -> type:
    """Look up a backend class; raises KeyError for unknown names."""
    return _BACKEND_TYPES[name]
