"""Phase-time containers matching the paper's reporting (Sec. 4).

"All reported times ... include the setup phase, precompute phase, and
compute phase.  The setup phase includes the data movements and
communication required for each rank to begin its local calculation ...
The precompute phase computes the modified charges for each locally owned
source cluster, and the compute phase computes the potential at each
target particle."
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields

__all__ = ["PhaseTimes", "Stopwatch"]


@dataclass
class PhaseTimes:
    """Simulated seconds spent in each phase of one BLTC run."""

    #: Tree/batch construction, LET communication, interaction lists, HtD.
    setup: float = 0.0
    #: Modified-charge kernels for locally owned clusters (+ DtH copy).
    precompute: float = 0.0
    #: Potential evaluation kernels (+ final DtH copy).
    compute: float = 0.0

    @property
    def total(self) -> float:
        return self.setup + self.precompute + self.compute

    def __add__(self, other: "PhaseTimes") -> "PhaseTimes":
        return PhaseTimes(
            setup=self.setup + other.setup,
            precompute=self.precompute + other.precompute,
            compute=self.compute + other.compute,
        )

    def max_with(self, other: "PhaseTimes") -> "PhaseTimes":
        """Elementwise max; used to aggregate per-rank phase times."""
        return PhaseTimes(
            setup=max(self.setup, other.setup),
            precompute=max(self.precompute, other.precompute),
            compute=max(self.compute, other.compute),
        )

    def fractions(self) -> dict[str, float]:
        """Phase fractions of the total (the Fig. 6cd bar charts)."""
        tot = self.total
        if tot <= 0.0:
            return {f.name: 0.0 for f in fields(self)}
        return {f.name: getattr(self, f.name) / tot for f in fields(self)}

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class Stopwatch:
    """Simple wall-clock stopwatch for instrumenting the Python host code."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None
