"""Machine specifications for the analytic performance model.

Each :class:`MachineSpec` describes one execution device (a GPU or a
multicore CPU) by a small set of published/derivable hardware parameters.
The simulated devices in :mod:`repro.gpu.device` convert the exact
per-launch interaction counts of the real algorithm into simulated seconds
using these parameters.

Calibration notes
-----------------
* ``interaction_rate`` is the saturated pairwise kernel-evaluation
  throughput for a ~20-flop kernel (Coulomb) in double precision.  For the
  Titan V (7.45 TFLOP/s DP peak) a sustained efficiency near 70% on this
  compute-bound kernel gives ~2.6e11 interactions/s (GPU N-body direct
  sums are famously near-peak, cf. the paper's refs. [1][2]); for the
  P100 (4.7 TFLOP/s DP) ~1.65e11; for the 6-core Xeon X5650 (2.67 GHz,
  Westmere SSE2, 64 GFLOP/s DP peak, ~34% sustained with OpenMP) ~1.1e9.
  The resulting GPU/CPU ratio of ~120x at the 1M-particle operating point
  matches the paper's ">= 100x" observation (Fig. 4).
* ``transcendental_penalty`` is tuned so the Yukawa kernel (one exp per
  interaction) costs ~1.8x Coulomb on the CPU and ~1.5x on the GPU, the
  ratios reported in Sec. 4.
* ``launch_latency`` of ~10 us/kernel and 4 streams reproduce the ~25%
  async-stream improvement quoted in Sec. 3.2 at the 1M-particle scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MachineSpec", "GPU_TITAN_V", "GPU_P100", "CPU_XEON_X5650"]

#: Reference flop count the interaction_rate is quoted against.
BASE_FLOPS_PER_INTERACTION = 20.0


@dataclass(frozen=True)
class MachineSpec:
    """One execution device of the simulated heterogeneous system."""

    name: str
    #: "gpu" or "cpu"; decides launch/transfer accounting.
    kind: str
    #: Saturated pairwise interaction throughput (20-flop kernel), 1/s.
    interaction_rate: float
    #: Cost multiplier applied to a kernel's transcendental fraction; see
    #: :meth:`repro.kernels.base.Kernel.cost_multiplier`.
    transcendental_penalty: float
    #: Per-kernel-launch fixed latency in seconds (GPU only).
    launch_latency: float = 0.0
    #: Number of asynchronous streams available (GPU only; paper uses 4).
    n_streams: int = 1
    #: Host<->device transfer bandwidth, bytes/s (GPU only; PCIe gen3).
    transfer_bandwidth: float = 12.0e9
    #: Host<->device transfer latency per data region, seconds.
    transfer_latency: float = 20.0e-6
    #: Thread blocks required to saturate the device; launches with fewer
    #: blocks run at proportionally reduced efficiency (occupancy model).
    saturation_blocks: int = 1
    #: Threads per block used by the compute kernels (Sec. 3.2).
    threads_per_block: int = 128
    #: Floor on the occupancy efficiency factor.
    min_efficiency: float = 0.02
    #: CPU tree-operation rate: traversal/bookkeeping steps per second,
    #: used for the host-side setup phase (tree build, interaction lists).
    host_op_rate: float = 5.0e7
    #: Single-precision throughput relative to double precision
    #: (DP:SP = 1:``sp_dp_ratio``).  2.0 for the paper's Titan V / P100
    #: class of devices; a future DP:SP != 1:2 machine changes only this.
    sp_dp_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu"):
            raise ValueError(f"kind must be 'cpu' or 'gpu', got {self.kind!r}")
        if self.interaction_rate <= 0:
            raise ValueError("interaction_rate must be positive")
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if self.saturation_blocks < 1:
            raise ValueError("saturation_blocks must be >= 1")
        if self.sp_dp_ratio <= 0:
            raise ValueError("sp_dp_ratio must be positive")

    def precision_multiplier(self, dtype) -> float:
        """Busy-time factor for kernels evaluated at ``dtype``.

        ``float32`` runs ``sp_dp_ratio``-times faster than the double-
        precision baseline (the paper's mixed-precision future-work mode);
        every other dtype costs the double-precision baseline.  This is
        the single home of the half-cost rule: the executor, the plan
        charger and the direct-sum baseline all consult it.
        """
        if np.dtype(dtype) == np.float32:
            return 1.0 / self.sp_dp_ratio
        return 1.0

    def occupancy(self, blocks: int) -> float:
        """Efficiency factor in (0, 1] for a launch with ``blocks`` blocks.

        High occupancy requires enough resident thread blocks to cover all
        compute units (Sec. 3.2, "Target Batching"); a launch with few
        blocks leaves most of the device idle.
        """
        if blocks <= 0:
            return self.min_efficiency
        return max(self.min_efficiency, min(1.0, blocks / self.saturation_blocks))

    def interaction_time(
        self,
        n_interactions: float,
        *,
        flops_per_interaction: float = BASE_FLOPS_PER_INTERACTION,
        cost_multiplier: float = 1.0,
        blocks: int | None = None,
    ) -> float:
        """Simulated compute time for ``n_interactions`` kernel evaluations."""
        eff = 1.0 if blocks is None else self.occupancy(blocks)
        rate = self.interaction_rate * eff
        scale = flops_per_interaction / BASE_FLOPS_PER_INTERACTION
        return n_interactions * scale * cost_multiplier / rate

    def interaction_times(
        self,
        n_interactions: np.ndarray,
        blocks: np.ndarray | None,
        *,
        flops_per_interaction: float = BASE_FLOPS_PER_INTERACTION,
        cost_multiplier: float = 1.0,
    ) -> np.ndarray:
        """Vectorized :meth:`interaction_time` over arrays of launches.

        Elementwise results are bitwise-identical to the scalar method
        (same operation order), so bulk charging of a launch sequence
        reproduces the per-launch accounting exactly.
        """
        n_interactions = np.asarray(n_interactions, dtype=np.float64)
        if blocks is None:
            eff = 1.0
        else:
            eff = np.maximum(
                self.min_efficiency,
                np.minimum(
                    1.0,
                    np.asarray(blocks, dtype=np.float64)
                    / self.saturation_blocks,
                ),
            )
        rate = self.interaction_rate * eff
        scale = flops_per_interaction / BASE_FLOPS_PER_INTERACTION
        return n_interactions * scale * cost_multiplier / rate

    def transfer_time(self, nbytes: float) -> float:
        """Simulated host<->device copy time (zero for CPU devices)."""
        if self.kind == "cpu":
            return 0.0
        return self.transfer_latency + nbytes / self.transfer_bandwidth


#: NVIDIA Titan V (Fig. 4 single-GPU study): 80 SMs, 7.45 TFLOP/s DP.
GPU_TITAN_V = MachineSpec(
    name="NVIDIA Titan V",
    kind="gpu",
    interaction_rate=2.6e11,
    transcendental_penalty=0.5,
    launch_latency=8.0e-6,
    n_streams=4,
    transfer_bandwidth=12.0e9,
    saturation_blocks=640,  # 80 SMs x 8 resident 128-thread blocks
)

#: NVIDIA P100 (Comet scaling studies, Figs. 5-6): 56 SMs, 4.7 TFLOP/s DP.
GPU_P100 = MachineSpec(
    name="NVIDIA P100",
    kind="gpu",
    interaction_rate=1.65e11,
    transcendental_penalty=0.5,
    launch_latency=8.0e-6,
    n_streams=4,
    transfer_bandwidth=10.0e9,
    saturation_blocks=448,  # 56 SMs x 8 resident 128-thread blocks
)

#: 6-core 2.67 GHz Intel Xeon X5650 with OpenMP (Fig. 4 CPU reference).
CPU_XEON_X5650 = MachineSpec(
    name="Intel Xeon X5650 (6 cores, OpenMP)",
    kind="cpu",
    interaction_rate=1.1e9,
    transcendental_penalty=0.8,
)
