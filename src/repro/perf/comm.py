"""Interconnect model for the simulated MPI layer.

Models each one-sided RMA operation as ``latency + nbytes / bandwidth``
(the standard alpha-beta model).  The simulated communicator in
:mod:`repro.mpi` counts the exact bytes moved by the real LET construction
and converts them to seconds with this model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CommModel", "INFINIBAND_COMET"]


@dataclass(frozen=True)
class CommModel:
    """Alpha-beta cost model for one-sided communication."""

    #: Per-operation latency (seconds): window lock + get initiation.
    latency: float = 3.0e-6
    #: Point-to-point bandwidth (bytes/second).
    bandwidth: float = 6.0e9
    #: Extra latency for lock/unlock epochs around each access.
    epoch_overhead: float = 2.0e-6

    def __post_init__(self) -> None:
        if self.latency < 0 or self.epoch_overhead < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def op_time(self, nbytes: float, *, n_ops: int = 1) -> float:
        """Simulated time for ``n_ops`` RMA ops moving ``nbytes`` total."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if n_ops < 0:
            raise ValueError("n_ops must be non-negative")
        return n_ops * (self.latency + self.epoch_overhead) + nbytes / self.bandwidth


#: 4x-EDR-class fabric of the Comet GPU nodes used in Figs. 5-6.
INFINIBAND_COMET = CommModel(latency=3.0e-6, bandwidth=6.0e9)
