"""Performance model: machine specifications, communication costs, timers.

No GPU or MPI cluster is available in this environment, so the paper's
wall-clock measurements are reproduced by a calibrated analytic model
driven by the *exact* operation counts of the real algorithm (see
DESIGN.md, "Hardware / software substitutions").  This package holds the
machine presets (Titan V, P100, Xeon X5650), the interconnect model, and
the phase-timing containers.
"""

from .machine import (
    MachineSpec,
    CPU_XEON_X5650,
    GPU_TITAN_V,
    GPU_P100,
)
from .comm import CommModel, INFINIBAND_COMET
from .timer import PhaseTimes, Stopwatch

__all__ = [
    "MachineSpec",
    "CPU_XEON_X5650",
    "GPU_TITAN_V",
    "GPU_P100",
    "CommModel",
    "INFINIBAND_COMET",
    "PhaseTimes",
    "Stopwatch",
]
