"""Figure 4: run time versus error, single GPU vs 6-core CPU.

Paper setting: 1M random particles in the cube, Coulomb (4a) and Yukawa
(4b) kernels, batch/leaf size NB = NL = 2000, curves of constant MAC
theta in {0.5, 0.7, 0.9} with the degree swept n = 1:2:13, plus direct-sum
reference lines; CPU is a 6-core Xeon X5650, GPU a Titan V.

Reproduction strategy (DESIGN.md):

* *Errors* are measured with real numerics at ``n_error`` particles
  against direct summation -- eq. 16 exactly.  Leaf/batch caps scale with
  N to keep the paper's N/NL ratio, so the MAC/size-condition interplay
  matches.
* *Run times* come from the device model driven by a dry run at the
  paper's true scale (``n_model`` = 1M, NL = NB = 2000): the launch
  counts, interaction counts and occupancy are those of the real data
  structures at the real size.  The CPU-model time is derived from the
  identical dry-run statistics (no launch latency, no transfers).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.errors import relative_l2_error
from ..config import TreecodeParams
from ..core.direct import direct_sum
from ..core.treecode import BarycentricTreecode
from ..kernels.base import Kernel
from ..kernels.coulomb import CoulombKernel
from ..kernels.yukawa import YukawaKernel
from ..perf.machine import CPU_XEON_X5650, GPU_TITAN_V, MachineSpec
from ..workloads import random_cube
from .common import cpu_time_from_stats, kernel_time_delta

__all__ = ["Fig4Config", "Fig4Row", "run_fig4"]


@dataclass(frozen=True)
class Fig4Config:
    """Scales and sweeps for the Fig. 4 reproduction."""

    #: Particle count for measured-error runs (real numerics).
    n_error: int = 8_000
    #: Leaf/batch cap for the error runs (keeps N/NL near the paper's 500).
    nl_error: int = 200
    #: Particle count for the model-scale dry runs (the paper's 1M).
    n_model: int = 1_000_000
    #: Leaf/batch cap for the model runs: the paper's 2000 with headroom
    #: so the octree lands as theirs did (1M / 8^3 = 1953-particle
    #: leaves) instead of fragmenting half the leaves one level deeper.
    nl_model: int = 2187
    #: MAC parameters (the paper's three curves).
    thetas: tuple = (0.5, 0.7, 0.9)
    #: Interpolation degrees (the paper's n = 1:2:13).
    degrees: tuple = (1, 3, 5, 7, 9, 11, 13)
    gpu: MachineSpec = GPU_TITAN_V
    cpu: MachineSpec = CPU_XEON_X5650
    seed: int = 2020

    def quick(self) -> "Fig4Config":
        """Reduced sweep for CI-speed benchmark runs."""
        return Fig4Config(
            n_error=self.n_error,
            nl_error=self.nl_error,
            n_model=self.n_model,
            nl_model=self.nl_model,
            thetas=(0.5, 0.9),
            degrees=(1, 5, 9, 13),
            gpu=self.gpu,
            cpu=self.cpu,
            seed=self.seed,
        )


@dataclass
class Fig4Row:
    """One point of one curve: (kernel, theta, degree)."""

    kernel: str
    theta: float
    degree: int
    error: float
    gpu_time: float
    cpu_time: float
    n_approx: int
    n_direct: int

    @property
    def speedup(self) -> float:
        return self.cpu_time / self.gpu_time if self.gpu_time > 0 else 0.0


def run_fig4(
    cfg: Fig4Config = Fig4Config(),
    *,
    kernels: tuple[Kernel, ...] | None = None,
    progress=None,
) -> dict:
    """Regenerate the Fig. 4 series.

    Returns ``{"rows": [Fig4Row...], "direct": {kernel: {"gpu": t,
    "cpu": t}}, "config": cfg}`` where ``direct`` holds the modeled
    direct-summation reference times (the red horizontal lines).
    """
    if kernels is None:
        kernels = (CoulombKernel(), YukawaKernel(kappa=0.5))

    error_particles = random_cube(cfg.n_error, seed=cfg.seed)
    model_particles = random_cube(cfg.n_model, seed=cfg.seed + 1)

    # Model-scale dry runs: the tree, interaction lists and launch
    # structure are kernel-independent, so one dry run per (theta, n)
    # serves every kernel -- times for other kernels are derived from the
    # recorded per-kind busy seconds (see experiments.common).
    base_kernel = CoulombKernel()
    model_runs: dict[tuple[float, int], object] = {}
    for theta in cfg.thetas:
        for degree in cfg.degrees:
            if progress is not None:
                progress("model", theta, degree)
            model_params = TreecodeParams(
                theta=theta,
                degree=degree,
                max_leaf_size=cfg.nl_model,
                max_batch_size=cfg.nl_model,
            )
            model_runs[(theta, degree)] = BarycentricTreecode(
                base_kernel, model_params, machine=cfg.gpu
            ).compute(model_particles, dry_run=True)

    rows: list[Fig4Row] = []
    direct_times: dict[str, dict[str, float]] = {}

    for kernel in kernels:
        reference = direct_sum(
            error_particles.positions,
            error_particles.positions,
            error_particles.charges,
            kernel,
        )
        n = float(cfg.n_model)
        direct_times[kernel.name] = {
            # One launch of the batch-cluster direct-sum kernel over
            # everything (paper Sec. 4).
            "gpu": cfg.gpu.interaction_time(
                n * n,
                flops_per_interaction=kernel.flops_per_interaction,
                cost_multiplier=kernel.cost_multiplier(
                    cfg.gpu.transcendental_penalty
                ),
                blocks=cfg.n_model,
            )
            + cfg.gpu.launch_latency,
            "cpu": cfg.cpu.interaction_time(
                n * n,
                flops_per_interaction=kernel.flops_per_interaction,
                cost_multiplier=kernel.cost_multiplier(
                    cfg.cpu.transcendental_penalty
                ),
            ),
        }

        for theta in cfg.thetas:
            for degree in cfg.degrees:
                if progress is not None:
                    progress(kernel.name, theta, degree)
                err_params = TreecodeParams(
                    theta=theta,
                    degree=degree,
                    max_leaf_size=cfg.nl_error,
                    max_batch_size=cfg.nl_error,
                )
                res = BarycentricTreecode(
                    kernel, err_params, machine=cfg.gpu
                ).compute(error_particles)
                err = relative_l2_error(reference, res.potential)

                gpu_res = model_runs[(theta, degree)]
                gpu_time = gpu_res.phases.total + kernel_time_delta(
                    gpu_res.stats["busy_by_kind"], base_kernel, kernel,
                    cfg.gpu,
                )
                rows.append(
                    Fig4Row(
                        kernel=kernel.name,
                        theta=theta,
                        degree=degree,
                        error=err,
                        gpu_time=gpu_time,
                        cpu_time=cpu_time_from_stats(
                            gpu_res.stats, kernel, cfg.cpu
                        ),
                        n_approx=gpu_res.stats["n_approx_interactions"],
                        n_direct=gpu_res.stats["n_direct_interactions"],
                    )
                )

    return {"rows": rows, "direct": direct_times, "config": cfg}
