"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

from dataclasses import replace

from ..kernels.base import Kernel
from ..perf.machine import MachineSpec
from ..perf.timer import PhaseTimes

__all__ = [
    "cpu_time_from_stats",
    "kernel_time_delta",
    "retime_distributed",
    "scaled_machine",
    "scaled_degree",
    "clean_leaf_size",
    "KIND_FLOPS",
]

#: The leaf/batch cap of the paper's scaling studies (NL = NB = 4000).
PAPER_SCALING_NL = 4000

#: Flops-per-interaction of the non-kernel-specific launch kinds (the two
#: modified-charge kernels; see repro.core.moments).
KIND_FLOPS = {"moments-1": 8.0, "moments-2": 7.0}


def cpu_time_from_stats(
    stats: dict, kernel: Kernel, cpu: MachineSpec
) -> float:
    """Derive the CPU-model run time from a GPU dry run's statistics.

    The CPU executes the identical interaction counts with no launch
    latency, no transfers and no occupancy effects, so its time is fully
    determined by the per-kind interaction totals plus the host-side
    bookkeeping -- both recorded in the run stats.  A direct CPU dry run
    gives the same number (tested); this avoids running the pipeline
    twice per configuration.
    """
    total = 0.0
    for kind, (_launches, interactions) in stats["by_kind"].items():
        if kind in KIND_FLOPS:
            flops = KIND_FLOPS[kind]
            cost = 1.0
        else:
            flops = kernel.flops_per_interaction
            cost = kernel.cost_multiplier(cpu.transcendental_penalty)
        total += cpu.interaction_time(
            interactions, flops_per_interaction=flops, cost_multiplier=cost
        )
    # Host-side setup: tree + batch builds and the MAC traversal, same
    # accounting the treecode driver charges.
    n_src = stats["n_sources"]
    n_tgt = stats["n_targets"]
    depth = stats["tree_depth"]
    total += (n_src + n_tgt) * (depth + 1) / cpu.host_op_rate
    total += stats["mac_evals"] * 4 / cpu.host_op_rate
    return total


def _mult_ratio(old: Kernel, new: Kernel, machine: MachineSpec) -> float:
    """Busy-time ratio between two kernels on one device.

    Covers both the transcendental cost multiplier and the per-kernel
    flop count (busy time is proportional to flops x multiplier).
    """
    penalty = machine.transcendental_penalty
    old_cost = old.flops_per_interaction * old.cost_multiplier(penalty)
    new_cost = new.flops_per_interaction * new.cost_multiplier(penalty)
    return new_cost / old_cost


def kernel_time_delta(
    busy_by_kind: dict, old: Kernel, new: Kernel, machine: MachineSpec
) -> float:
    """Extra busy seconds when swapping ``old`` for ``new``.

    The tree, interaction lists, launch counts and communication of a
    BLTC run are kernel-independent; only the potential-evaluation busy
    time (kinds ``approx`` and ``direct``) scales with the kernel's cost.
    This lets a harness derive e.g. the Yukawa run time from a Coulomb
    dry run instead of re-running the whole pipeline.
    """
    ratio = _mult_ratio(old, new, machine)
    busy = busy_by_kind.get("approx", 0.0) + busy_by_kind.get("direct", 0.0)
    return busy * (ratio - 1.0)


def retime_distributed(
    result, old: Kernel, new: Kernel, machine: MachineSpec
) -> tuple[float, PhaseTimes]:
    """Re-time a distributed dry run for a different kernel.

    Returns ``(total_seconds, aggregate_phases)`` with each rank's
    compute phase rescaled by the kernel cost ratio and the run total
    recomputed with the same precompute/LET dependency barrier the
    driver uses.
    """
    splits = result.stats["phase_split"]
    per_rank = result.stats["per_rank"]
    first = 0.0
    second = 0.0
    agg = PhaseTimes()
    for split, phases, rstats in zip(splits, result.rank_phases, per_rank):
        delta = kernel_time_delta(
            rstats["busy_by_kind"], old, new, machine
        )
        compute = phases.compute + delta
        first = max(first, split["setup_local"] + phases.precompute)
        second = max(second, split["let_setup"] + compute)
        agg = agg.max_with(
            PhaseTimes(
                setup=phases.setup,
                precompute=phases.precompute,
                compute=compute,
            )
        )
    return first + second, agg


def scaled_machine(machine: MachineSpec, nl: int, paper_nl: int = PAPER_SCALING_NL) -> MachineSpec:
    """Rescale per-launch device constants for a scaled-down NL.

    The scaling studies shrink the paper's particle counts (and therefore
    NL/NB) by a large factor.  Two *dimensionless* ratios govern how the
    device model responds to a launch, and both must be preserved for the
    scaled runs to sit in the paper's operating regime:

    * ``NB / saturation_blocks`` -- the occupancy margin.  Keeping it
      stops artificially tiny batches from starving the simulated GPU.
    * ``launch_latency x interaction_rate / NL^2`` -- launch overhead
      relative to per-launch work (each launch performs ~NB x NC ~ NL^2
      interactions).  Keeping it stops launch latency from swamping the
      scaled runs the way it never did at 4000-particle batches.
    """
    factor = nl / paper_nl
    sat = max(8, int(round(machine.saturation_blocks * factor)))
    latency = machine.launch_latency * factor * factor
    return replace(
        machine, saturation_blocks=sat, launch_latency=latency
    )


def scaled_degree(nl: int, *, paper_degree: int = 8, paper_nl: int = PAPER_SCALING_NL) -> int:
    """Interpolation degree preserving the paper's (n+1)^3 / NL ratio.

    The cluster-size MAC condition ``(n+1)^3 < N_C`` partitions clusters
    into approximable and direct-only; its behaviour is governed by the
    dimensionless ratio of interpolation points to leaf population
    (729/4000 ~ 0.18 in the paper's scaling studies).  Scaled-down runs
    with the paper's absolute degree but much smaller leaves would flip
    the condition for entire leaf levels, distorting every interaction
    list; keeping the ratio keeps the algorithm in the paper's regime.
    """
    import math

    ratio = (paper_degree + 1) ** 3 / paper_nl
    m = (ratio * nl) ** (1.0 / 3.0)
    return max(1, int(round(m)) - 1)


def clean_leaf_size(
    n: int, *, target: int = 2000, cap: int = 4500, headroom: float = 1.12
) -> int:
    """Leaf/batch cap that lands the octree cleanly for ``n`` particles.

    Uniform octrees subdivide by ~8x per level, so the realized leaf size
    is ``n / 8^k`` for the first level k at or below the cap -- an
    unlucky cap can leave leaves 8x smaller than intended (e.g. NL = 2000
    with n = 200k gives ~390-particle leaves).  The paper's runs land
    cleanly (1M / 8^3 = 1953 with NL = 2000); this helper picks the level
    whose realized leaf size is log-closest to ``target`` (capped) and
    adds headroom so statistical overshoot does not trigger an extra
    split.  Used by the scaling harnesses so that scaled-down runs keep
    paper-like batch sizes.
    """
    import math

    if n <= target:
        return max(1, int(n * headroom))
    best = None
    best_dist = None
    size = float(n)
    while size >= 1.0:
        size /= 8.0
        if size > cap:
            continue
        dist = abs(math.log(size / target))
        if best_dist is None or dist < best_dist:
            best, best_dist = size, dist
    assert best is not None
    return max(8, int(best * headroom))
