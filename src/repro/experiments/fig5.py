"""Figure 5: weak scaling of the distributed BLTC on 1-32 GPUs.

Paper setting: NVIDIA P100s on Comet, MAC theta = 0.8, degree n = 8,
NL = NB = 4000 (5-6 digit accuracy), 8/16/32 million particles per GPU,
1 to 32 GPUs; largest system 1.024 billion particles (345 s Coulomb,
380 s Yukawa).  Run times increase only modestly with rank count --
the O(N log N) signature.

Reproduction strategy: per-GPU particle counts are scaled down by
``scale_divisor`` (default 128: 62.5k/125k/250k per rank) and the leaf
cap is scaled to keep the paper's N-per-rank/NL ratio of 2000; the runs
are model-only (dry) through the full distributed pipeline -- RCB, local
trees, real RMA traffic through the simulated windows, LET construction,
per-rank device accounting.  A separate small real-numerics run verifies
the 5-6 digit accuracy claim at the same (theta, n).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.errors import sampled_error
from ..config import TreecodeParams
from ..distributed.driver import DistributedBLTC
from ..kernels.base import Kernel
from ..kernels.coulomb import CoulombKernel
from ..kernels.yukawa import YukawaKernel
from ..perf.machine import GPU_P100, MachineSpec
from ..workloads import random_cube
from .common import (
    clean_leaf_size,
    retime_distributed,
    scaled_degree,
    scaled_machine,
)

__all__ = ["Fig5Config", "Fig5Row", "run_fig5"]

#: The paper's per-rank-N to NL ratio (8M per GPU min / NL 4000 = 2000).
#: Scaled runs cannot honour it exactly (NL would collapse below the
#: occupancy floor); see ``Fig5Config.leaf_size`` for the compromise.
PAPER_N_OVER_NL = 2000.0


@dataclass(frozen=True)
class Fig5Config:
    """Scales for the Fig. 5 reproduction."""

    #: Divide the paper's per-GPU particle counts by this factor.
    scale_divisor: int = 128
    #: Paper per-GPU counts (8, 16, 32 million).
    particles_per_gpu: tuple = (8_000_000, 16_000_000, 32_000_000)
    #: GPU counts along the x-axis.
    gpu_counts: tuple = (1, 2, 4, 8, 16, 32)
    theta: float = 0.8
    degree: int = 8
    machine: MachineSpec = GPU_P100
    #: Particle count of the real-numerics accuracy verification run.
    n_verify: int = 30_000
    verify_ranks: int = 4
    seed: int = 55

    def quick(self) -> "Fig5Config":
        return Fig5Config(
            scale_divisor=256,
            particles_per_gpu=(8_000_000, 32_000_000),
            gpu_counts=(1, 4, 16, 32),
            theta=self.theta,
            degree=self.degree,
            machine=self.machine,
            n_verify=self.n_verify,
            verify_ranks=self.verify_ranks,
            seed=self.seed,
        )

    def leaf_size(self, n_per_rank: int) -> int:
        """Leaf cap landing the per-rank octree cleanly (see common).

        The target of ~1000 keeps >= 64 batches per rank, so batch radii
        stay small relative to the rank's domain and the MAC separates
        remote work the way the paper's (much deeper) trees do.
        """
        return clean_leaf_size(n_per_rank, target=1000)


@dataclass
class Fig5Row:
    """One point of one weak-scaling curve."""

    kernel: str
    paper_per_gpu: int
    n_per_gpu: int
    n_gpus: int
    n_total: int
    time: float
    setup: float
    precompute: float
    compute: float
    rma_bytes: int


def run_fig5(
    cfg: Fig5Config = Fig5Config(),
    *,
    kernels: tuple[Kernel, ...] | None = None,
    progress=None,
) -> dict:
    """Regenerate the Fig. 5 series (plus the accuracy verification)."""
    if kernels is None:
        kernels = (CoulombKernel(), YukawaKernel(kappa=0.5))

    # One dry run per configuration with the structure-defining kernel
    # (Coulomb); other kernels' times are derived from the recorded
    # per-kind busy seconds -- the tree, lists and communication are
    # kernel-independent.
    base_kernel = kernels[0]
    rows: list[Fig5Row] = []
    for paper_n in cfg.particles_per_gpu:
        n_rank = paper_n // cfg.scale_divisor
        nl = cfg.leaf_size(n_rank)
        params = TreecodeParams(
            theta=cfg.theta,
            # Degree scaled with NL to preserve the paper's
            # interpolation-points-to-leaf ratio (see common.scaled_degree).
            degree=scaled_degree(nl, paper_degree=cfg.degree),
            max_leaf_size=nl,
            max_batch_size=nl,
        )
        machine = scaled_machine(cfg.machine, nl)
        for n_gpus in cfg.gpu_counts:
            if progress is not None:
                progress(base_kernel.name, paper_n, n_gpus)
            n_total = n_rank * n_gpus
            particles = random_cube(n_total, seed=cfg.seed)
            driver = DistributedBLTC(
                base_kernel,
                params,
                n_ranks=n_gpus,
                machine=machine,
            )
            res = driver.compute(particles, dry_run=True)
            for kernel in kernels:
                total, agg = retime_distributed(
                    res, base_kernel, kernel, machine
                )
                rows.append(
                    Fig5Row(
                        kernel=kernel.name,
                        paper_per_gpu=paper_n,
                        n_per_gpu=n_rank,
                        n_gpus=n_gpus,
                        n_total=n_total,
                        time=total,
                        setup=agg.setup,
                        precompute=agg.precompute,
                        compute=agg.compute,
                        rma_bytes=res.stats["total_rma_bytes"],
                    )
                )

    # Accuracy verification: real numerics at a reduced scale with the
    # paper's (theta, n); the paper reports 5-6 digits (e.g. 7.6e-6).
    verify = {}
    vparams = TreecodeParams(
        theta=cfg.theta,
        degree=cfg.degree,
        max_leaf_size=2000,
        max_batch_size=2000,
    )
    vparticles = random_cube(cfg.n_verify, seed=cfg.seed + 1)
    for kernel in kernels:
        res = DistributedBLTC(
            kernel, vparams, n_ranks=cfg.verify_ranks, machine=cfg.machine
        ).compute(vparticles)
        verify[kernel.name] = sampled_error(
            res.potential,
            vparticles.positions,
            vparticles.positions,
            vparticles.charges,
            kernel,
            n_samples=1000,
        )

    return {"rows": rows, "verify_error": verify, "config": cfg}
