"""Experiment harnesses regenerating every figure of the paper (Sec. 4).

Each module produces the rows/series of one figure:

* :mod:`~repro.experiments.fig4` -- run time vs error, single GPU vs
  6-core CPU, Coulomb and Yukawa, MAC sweep (Fig. 4ab).
* :mod:`~repro.experiments.fig5` -- weak scaling 1-32 GPUs (Fig. 5).
* :mod:`~repro.experiments.fig6` -- strong scaling + phase distribution
  (Fig. 6a-d).

The harnesses separate *measured accuracy* (real numerics at a reduced
particle count -- errors are genuinely computed against direct summation)
from *modeled run time* (the calibrated device model driven by the exact
operation counts of a model-scale dry run).  See DESIGN.md for the
substitution rationale; EXPERIMENTS.md records paper-vs-measured.
"""

from .fig4 import Fig4Config, Fig4Row, run_fig4
from .fig5 import Fig5Config, Fig5Row, run_fig5
from .fig6 import Fig6Config, Fig6Row, run_fig6

__all__ = [
    "Fig4Config",
    "Fig4Row",
    "run_fig4",
    "Fig5Config",
    "Fig5Row",
    "run_fig5",
    "Fig6Config",
    "Fig6Row",
    "run_fig6",
]
