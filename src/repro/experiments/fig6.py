"""Figure 6: strong scaling and phase-time distribution on 1-32 GPUs.

Paper setting: 16M and 64M particles, P100s, theta = 0.8, n = 8,
NL = NB = 4000.  Findings: (a,b) strong-scaling efficiency at 32 GPUs is
64%/73% (16M, Coulomb/Yukawa) and 83%/84% (64M); (c,d) the compute phase
dominates at few ranks, and the setup + precompute fractions grow with
rank count (communication grows; the modified-charge kernels stop
saturating the GPU as per-rank work shrinks).

Reproduction strategy: particle counts scaled by ``scale_divisor``
(default 128: 125k and 500k), model-only runs through the full
distributed pipeline; efficiency is measured against the 1-GPU run of
the same system, exactly as the paper defines it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import TreecodeParams
from ..distributed.driver import DistributedBLTC
from ..kernels.base import Kernel
from ..kernels.coulomb import CoulombKernel
from ..kernels.yukawa import YukawaKernel
from ..perf.machine import GPU_P100, MachineSpec
from ..workloads import random_cube
from .common import (
    clean_leaf_size,
    retime_distributed,
    scaled_degree,
    scaled_machine,
)

__all__ = ["Fig6Config", "Fig6Row", "run_fig6"]


@dataclass(frozen=True)
class Fig6Config:
    """Scales for the Fig. 6 reproduction."""

    scale_divisor: int = 128
    #: Paper totals: 16M and 64M particles.
    totals: tuple = (16_000_000, 64_000_000)
    gpu_counts: tuple = (1, 2, 4, 8, 16, 32)
    theta: float = 0.8
    degree: int = 8
    machine: MachineSpec = GPU_P100
    seed: int = 77

    def quick(self) -> "Fig6Config":
        return Fig6Config(
            scale_divisor=128,
            totals=(16_000_000, 64_000_000),
            gpu_counts=(1, 4, 16, 32),
            theta=self.theta,
            degree=self.degree,
            machine=self.machine,
            seed=self.seed,
        )

    def leaf_size(self, n_total: int) -> int:
        # The paper uses one NL per system regardless of rank count; pick
        # a cap that lands the mid-sweep per-rank octrees cleanly.
        return clean_leaf_size(n_total // 8, target=1000)


@dataclass
class Fig6Row:
    """One point of one strong-scaling curve."""

    kernel: str
    paper_total: int
    n_total: int
    n_gpus: int
    time: float
    efficiency: float
    setup_frac: float
    precompute_frac: float
    compute_frac: float


def run_fig6(
    cfg: Fig6Config = Fig6Config(),
    *,
    kernels: tuple[Kernel, ...] | None = None,
    progress=None,
) -> dict:
    """Regenerate the Fig. 6 series (efficiency + phase distribution)."""
    if kernels is None:
        kernels = (CoulombKernel(), YukawaKernel(kappa=0.5))

    # One dry run per configuration; other kernels' rows are derived by
    # re-timing (the run structure is kernel-independent).
    base_kernel = kernels[0]
    rows: list[Fig6Row] = []
    for paper_total in cfg.totals:
        n_total = paper_total // cfg.scale_divisor
        nl = cfg.leaf_size(n_total)
        params = TreecodeParams(
            theta=cfg.theta,
            # Degree scaled with NL to preserve the paper's
            # interpolation-points-to-leaf ratio (see common.scaled_degree).
            degree=scaled_degree(nl, paper_degree=cfg.degree),
            max_leaf_size=nl,
            max_batch_size=nl,
        )
        machine = scaled_machine(cfg.machine, nl)
        particles = random_cube(n_total, seed=cfg.seed)
        base_times: dict[str, float] = {}
        for n_gpus in cfg.gpu_counts:
            if progress is not None:
                progress(base_kernel.name, paper_total, n_gpus)
            res = DistributedBLTC(
                base_kernel,
                params,
                n_ranks=n_gpus,
                machine=machine,
            ).compute(particles, dry_run=True)
            for kernel in kernels:
                t, agg = retime_distributed(res, base_kernel, kernel, machine)
                if kernel.name not in base_times:
                    # Efficiency is measured against the smallest GPU
                    # count in the sweep (the paper uses 1 GPU).
                    base_times[kernel.name] = t * cfg.gpu_counts[0]
                eff = base_times[kernel.name] / (n_gpus * t)
                fracs = agg.fractions()
                rows.append(
                    Fig6Row(
                        kernel=kernel.name,
                        paper_total=paper_total,
                        n_total=n_total,
                        n_gpus=n_gpus,
                        time=t,
                        efficiency=eff,
                        setup_frac=fracs["setup"],
                        precompute_frac=fracs["precompute"],
                        compute_frac=fracs["compute"],
                    )
                )
    return {"rows": rows, "config": cfg}
