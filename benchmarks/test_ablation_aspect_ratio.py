"""Ablation: sqrt(2) aspect-ratio splitting rule (paper Sec. 3.1).

"Typically a cluster is divided into eight children; however, a cluster
may be divided into only two or four children if dividing into more
would result in aspect ratios greater than sqrt(2)."  Elongated RCB
partitions are exactly where this matters: on a slab domain, naive
8-way splitting makes thin high-aspect clusters whose radii inflate the
MAC and degrade the accuracy/cost frontier.
"""

import numpy as np
import pytest

from conftest import write_result
from repro import (
    BarycentricTreecode,
    CoulombKernel,
    ParticleSet,
    direct_sum,
    relative_l2_error,
    TreecodeParams,
)
from repro.analysis import format_table
from repro.tree import ClusterTree
from repro.util import default_rng


def _slab(n: int, seed: int) -> ParticleSet:
    """An 8:1:1 slab -- like an RCB partition of a bigger domain."""
    rng = default_rng(seed)
    pos = rng.uniform(0, 1, size=(n, 3))
    pos[:, 0] *= 8.0
    return ParticleSet(pos, rng.uniform(-1, 1, size=n))


@pytest.fixture(scope="module")
def ablation():
    p = _slab(6000, seed=51)
    ref = direct_sum(p.positions, p.positions, p.charges, CoulombKernel())
    out = {}
    for label, aspect in (("sqrt(2) rule", True), ("always 8-way", False)):
        params = TreecodeParams(
            theta=0.7, degree=5, max_leaf_size=200, max_batch_size=200,
            aspect_ratio_splitting=aspect,
        )
        res = BarycentricTreecode(CoulombKernel(), params).compute(p)
        tree = ClusterTree(
            p.positions, 200, aspect_ratio_splitting=aspect
        )
        ratios = [
            nd.box.aspect_ratio
            for nd in tree.nodes
            if np.isfinite(nd.box.aspect_ratio)
        ]
        out[label] = {
            "res": res,
            "err": relative_l2_error(ref, res.potential),
            "max_aspect": max(ratios),
            "nodes": len(tree),
        }
    return out


def test_aspect_ratio_regenerate(benchmark, ablation, results_dir):
    result = benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    rows = [
        [label, d["err"], d["res"].phases.compute, d["nodes"],
         d["max_aspect"], d["res"].stats["kernel_evaluations"]]
        for label, d in result.items()
    ]
    write_result(
        results_dir,
        "ablation_aspect_ratio.txt",
        format_table(
            ["mode", "error", "compute (s)", "tree nodes", "max aspect",
             "kernel evals"],
            rows,
            title="Aspect-ratio splitting ablation on an 8:1:1 slab domain",
        ),
    )


def test_rule_controls_cluster_elongation(ablation):
    assert ablation["sqrt(2) rule"]["max_aspect"] < (
        ablation["always 8-way"]["max_aspect"]
    )


def test_rule_reduces_work(ablation):
    """The rule's payoff is cost: better-shaped clusters mean fewer
    kernel evaluations and less simulated compute on elongated domains."""
    ruled = ablation["sqrt(2) rule"]
    naive = ablation["always 8-way"]
    assert ruled["res"].phases.compute < naive["res"].phases.compute
    assert (
        ruled["res"].stats["kernel_evaluations"]
        < naive["res"].stats["kernel_evaluations"]
    )


def test_rule_keeps_accuracy_class(ablation):
    """...while the error stays in the same accuracy class (within an
    order of magnitude at the same (theta, n))."""
    ruled = ablation["sqrt(2) rule"]
    naive = ablation["always 8-way"]
    assert ruled["err"] < 10.0 * naive["err"] + 1e-15
    assert ruled["err"] < 1e-3
