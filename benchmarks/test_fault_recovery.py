"""Fault-recovery overhead: what one worker crash costs an apply.

The fault-tolerant execution layer promises that a worker crash in the
middle of a multiprocessing apply is invisible to the caller except in
wall-clock: the pool is rebuilt, the SHM shipment re-packed and every
shard re-run, with bitwise-identical results.  This benchmark measures
that promise's price on a warm prepared session:

* ``clean`` -- an uninterrupted sharded apply (the baseline);
* ``crash_recover`` -- the same apply with one injected worker crash
  (``mp_worker_crash``), so the wall-clock includes one pool teardown,
  one shipment re-pack and a full shard re-run;
* ``degraded`` -- the apply after bounded recovery was exhausted and
  the session fell back to the fused backend (the keep-serving path).

Rows additionally record the health counters so the JSON can assert the
recovery really happened (exactly one rebuild for ``crash_recover``)
and stayed bitwise.

Scales: ``quick`` (default) runs N=6k; ``smoke`` (CI) shrinks N but
keeps every assertion.
"""

import time
import warnings

import numpy as np
import pytest

from conftest import bench_scale, write_json, write_result
from repro import BarycentricTreecode, CoulombKernel, TreecodeParams, random_cube
from repro.analysis import format_table
from repro.core.backends.multiproc import (
    MultiprocessingBackend,
    audit_shared_memory,
)
from repro.core.resilience import RetryPolicy, configure_faults
from repro.errors import BackendDegradedWarning

SMOKE = bench_scale() == "smoke"

N = 2_000 if SMOKE else 6_000
THETA, DEGREE, LEAF = 0.8, 3, 60
ROUNDS = 2


def _session(backend):
    params = TreecodeParams(
        theta=THETA, degree=DEGREE, max_leaf_size=LEAF, max_batch_size=LEAF,
        backend=backend,
    )
    return BarycentricTreecode(CoulombKernel(), params).prepare(
        random_cube(N, seed=920)
    )


def _best_apply(prepared, charges, fault=None):
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        configure_faults(fault)
        t0 = time.perf_counter()
        result = prepared.apply(charges)
        best = min(best, time.perf_counter() - t0)
    configure_faults(None)
    return best, result


@pytest.fixture(scope="module")
def fault_recovery_sweep():
    rows = []
    charges = random_cube(N, seed=921).charges
    backend = MultiprocessingBackend(
        n_workers=2, min_parallel_rows=1, retry=RetryPolicy(backoff=0.0)
    )
    try:
        prepared = _session(backend)
        prepared.apply(charges)  # warm: pool forked, shipment packed

        clean_s, clean = _best_apply(prepared, charges)
        rebuilds_before = prepared.health_stats()["pool_rebuilds"]
        crash_s, crashed = _best_apply(
            prepared, charges, "mp_worker_crash:shard=0:times=1"
        )
        health = prepared.health_stats()
        rows.append(
            {
                "scenario": "clean",
                "n": N,
                "seconds": clean_s,
                "overhead_x": 1.0,
                "bitwise_equal": True,
                "pool_rebuilds": rebuilds_before,
            }
        )
        rows.append(
            {
                "scenario": "crash_recover",
                "n": N,
                "seconds": crash_s,
                "overhead_x": crash_s / clean_s,
                "bitwise_equal": bool(
                    np.array_equal(clean.potential, crashed.potential)
                ),
                # ROUNDS timed applies, one injected crash each round.
                "pool_rebuilds": health["pool_rebuilds"] - rebuilds_before,
            }
        )
        assert audit_shared_memory()["orphans"] == []
    finally:
        configure_faults(None)
        backend.close()

    backend2 = MultiprocessingBackend(
        n_workers=2, min_parallel_rows=1, retry=RetryPolicy(backoff=0.0)
    )
    try:
        prepared = _session(backend2)
        prepared.apply(charges)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", BackendDegradedWarning)
            configure_faults("mp_worker_crash:times=99")
            t0 = time.perf_counter()
            degraded = prepared.apply(charges)
            first_degraded_s = time.perf_counter() - t0
            configure_faults(None)
            # Sticky fallback: later applies skip the broken pool.
            sticky_s, sticky = _best_apply(prepared, charges)
        rows.append(
            {
                "scenario": "degraded",
                "n": N,
                "seconds": sticky_s,
                "overhead_x": sticky_s / rows[0]["seconds"],
                "bitwise_equal": bool(
                    np.array_equal(degraded.potential, sticky.potential)
                ),
                "pool_rebuilds": prepared.health_stats()["pool_rebuilds"],
            }
        )
        rows.append(
            {
                "scenario": "degrade_transition",
                "n": N,
                "seconds": first_degraded_s,
                "overhead_x": first_degraded_s / rows[0]["seconds"],
                "bitwise_equal": True,
                "pool_rebuilds": prepared.health_stats()["pool_rebuilds"],
            }
        )
        assert prepared.health_stats()["degraded_to"] == "fused"
    finally:
        configure_faults(None)
        backend2.close()
    return rows


def test_fault_recovery_regenerate(benchmark, fault_recovery_sweep, results_dir):
    rows = benchmark.pedantic(
        lambda: fault_recovery_sweep, rounds=1, iterations=1
    )
    headers = [
        "scenario", "N", "apply (s)", "overhead", "bitwise", "rebuilds",
    ]
    table = [
        [
            r["scenario"], r["n"], f"{r['seconds']:.3f}",
            f"{r['overhead_x']:.2f}x", str(r["bitwise_equal"]),
            r["pool_rebuilds"],
        ]
        for r in rows
    ]
    text = format_table(
        headers,
        table,
        title=(
            "Fault recovery -- warm multiprocessing session, wall-clock of "
            "one apply (min of 2 rounds; crash_recover injects one worker "
            "crash per round, degraded serves from the fused fallback)"
        ),
    )
    write_result(results_dir, "fault_recovery.txt", text)
    write_json(
        results_dir,
        "BENCH_fault_recovery.json",
        [
            {
                "scenario": r["scenario"],
                "n": r["n"],
                "seconds": round(r["seconds"], 6),
                "overhead_x": round(r["overhead_x"], 4),
                "bitwise_equal": r["bitwise_equal"],
                "pool_rebuilds": r["pool_rebuilds"],
            }
            for r in rows
        ],
    )


def test_crash_recovery_is_bitwise(fault_recovery_sweep):
    """The recovered apply returns exactly the uninterrupted bits."""
    row = next(
        r for r in fault_recovery_sweep if r["scenario"] == "crash_recover"
    )
    assert row["bitwise_equal"], row
    assert row["pool_rebuilds"] == ROUNDS, row


def test_recovery_overhead_is_bounded(fault_recovery_sweep):
    """One crash must not cost more than a few clean applies: the retry
    re-runs every shard once, plus pool fork + re-pack overhead."""
    clean = next(
        r for r in fault_recovery_sweep if r["scenario"] == "clean"
    )
    crash = next(
        r for r in fault_recovery_sweep if r["scenario"] == "crash_recover"
    )
    assert crash["seconds"] < 20.0 * max(clean["seconds"], 0.05), (
        clean, crash,
    )
