"""Prepared-session ablation: compute()-per-step vs prepare()+apply().

The repeated-evaluation scenario the session API exists for (MD
time-stepping, BEM multi-RHS): positions persist, charges change every
step.  For each regime this benchmark evolves a fluctuating-charge
waveform two ways --

* **monolithic**: one ``compute()`` per step (tree, batches,
  interaction lists, plan and moment basis rebuilt every time);
* **session**: one ``prepare()`` then one ``apply()`` per step (setup
  charged once; an apply ships the charge vector, re-runs the moment
  kernels on cached grids, refreshes the plan's weight buffer in place
  and executes).

Reported per regime: simulated per-step phase costs of both styles, the
simulated and wall-clock amortized speedups over the whole trajectory,
and the acceptance check that steady-state applies charge **zero**
setup-phase device time while staying bitwise-identical to a fresh
``compute()``.

Each regime also round-trips the prepared session through ``pickle``
(serialize/deserialize wall time and payload size, restored apply
bitwise-checked against the live session) --
``BENCH_session_serialization.json`` records the cost of moving a
session between processes or to disk.

``REPRO_BENCH_SCALE=smoke`` shrinks the regimes to seconds of runtime
(the CI smoke mode); ``full`` grows them toward paper scale.
"""

import pickle
import time

import numpy as np
import pytest

from conftest import bench_scale, write_json, write_result
from repro import (
    BarycentricTreecode,
    CoulombKernel,
    ParticleSet,
    TreecodeParams,
    charge_waveform,
    get_backend,
    random_cube,
)
from repro.analysis import format_table

SCALES = {
    #: scale -> (N list, steps)
    "smoke": ([1_500], 3),
    "quick": ([8_000, 20_000], 6),
    "full": ([20_000, 60_000], 10),
}
BACKEND = "fused"
DEGREE = 4
LEAF = 300


def _sweep_regime(n, steps):
    particles = random_cube(n, seed=900)
    params = TreecodeParams(
        theta=0.8, degree=DEGREE, max_leaf_size=LEAF, max_batch_size=LEAF,
        backend=BACKEND,
    )
    tc = BarycentricTreecode(CoulombKernel(), params)
    charge_steps = list(charge_waveform(particles, steps, seed=901))

    # Warm the numerics stack (BLAS threads, einsum paths) outside the
    # timed regions so neither style pays first-call costs.
    tc.compute(particles)

    # -- session style ---------------------------------------------------
    t0 = time.perf_counter()
    prepared = tc.prepare(particles)
    applies = [prepared.apply(q) for q in charge_steps]
    session_wall = time.perf_counter() - t0
    session_sim = prepared.phases.total + sum(
        r.phases.total for r in applies
    )

    # -- monolithic style ------------------------------------------------
    t0 = time.perf_counter()
    computes = [
        tc.compute(ParticleSet(particles.positions, q))
        for q in charge_steps
    ]
    mono_wall = time.perf_counter() - t0
    mono_sim = sum(r.phases.total for r in computes)

    # -- equivalence + amortization checks -------------------------------
    for r_apply, r_comp in zip(applies, computes):
        assert np.array_equal(r_apply.potential, r_comp.potential)
        assert r_apply.phases.setup == 0.0
    steady = applies[-1]  # steady state: charges-only upload
    fresh = computes[-1]

    # -- pickle round-trip ------------------------------------------------
    t0 = time.perf_counter()
    payload = pickle.dumps(prepared, protocol=pickle.HIGHEST_PROTOCOL)
    dumps_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    restored = pickle.loads(payload)
    loads_s = time.perf_counter() - t0
    restored_res = restored.apply(charge_steps[-1])
    assert np.array_equal(restored_res.potential, steady.potential)

    return {
        "n": n,
        "steps": steps,
        "prepare_sim": prepared.phases.total,
        "apply_sim": steady.phases.total,
        "apply_pre": steady.phases.precompute,
        "apply_comp": steady.phases.compute,
        "compute_sim": fresh.phases.total,
        "compute_setup": fresh.phases.setup,
        "session_sim": session_sim,
        "mono_sim": mono_sim,
        "session_wall": session_wall,
        "mono_wall": mono_wall,
        "sim_x": mono_sim / session_sim,
        "wall_x": mono_wall / session_wall,
        "steady_x": fresh.phases.total / steady.phases.total,
        "pickle_bytes": len(payload),
        "pickle_dumps_s": dumps_s,
        "pickle_loads_s": loads_s,
        "memory_stats": prepared.memory_stats(),
    }


@pytest.fixture(scope="module")
def amortization_sweep():
    sizes, steps = SCALES.get(bench_scale(), SCALES["quick"])
    return [_sweep_regime(n, steps) for n in sizes]


def test_prepare_apply_regenerate(benchmark, amortization_sweep, results_dir):
    rows = benchmark.pedantic(
        lambda: amortization_sweep, rounds=1, iterations=1
    )
    headers = [
        "N", "steps",
        "prepare (ms)", "apply (ms)", "compute() (ms)",
        "per-step sim", "trajectory sim", "trajectory wall",
    ]
    table = [
        [
            r["n"], r["steps"],
            f"{r['prepare_sim'] * 1e3:.3f}",
            f"{r['apply_sim'] * 1e3:.3f}",
            f"{r['compute_sim'] * 1e3:.3f}",
            f"{r['steady_x']:.2f}x",
            f"{r['sim_x']:.2f}x",
            f"{r['wall_x']:.2f}x",
        ]
        for r in rows
    ]
    text = format_table(
        headers,
        table,
        title=(
            "Prepared-session amortization -- fluctuating charges on fixed "
            f"geometry ({BACKEND} backend, n={DEGREE}, NL=NB={LEAF}; "
            "apply = steady-state per-step cost, speedups = "
            "compute()-per-step over prepare()+apply()-per-step; every "
            "apply bitwise-identical to a fresh compute() and charging "
            "zero setup-phase device time)"
        ),
    )
    write_result(results_dir, "prepare_apply_amortization.txt", text)
    write_json(
        results_dir,
        "BENCH_session_serialization.json",
        [
            {
                "n": r["n"],
                "backend": BACKEND,
                "pickle_bytes": r["pickle_bytes"],
                "pickle_dumps_seconds": round(r["pickle_dumps_s"], 6),
                "pickle_loads_seconds": round(r["pickle_loads_s"], 6),
                "resident_bytes": r["memory_stats"],
            }
            for r in rows
        ],
    )


def test_session_pickle_roundtrip_cheap(amortization_sweep):
    """The pickle carries the session's data, not its caches: payload
    stays within a small factor of the resident geometry bytes, and a
    restored session reproduces the live one bitwise (asserted in the
    sweep)."""
    for r in amortization_sweep:
        assert r["pickle_bytes"] > 0
        assert r["pickle_bytes"] < 4 * r["memory_stats"]["total_bytes"], r


def test_apply_charges_no_setup_time(amortization_sweep):
    """Acceptance: steady-state applies charge nothing to setup."""
    for r in amortization_sweep:
        assert r["apply_sim"] < r["compute_sim"], r
        # The amortized step saves at least the monolithic setup phase.
        assert (
            r["compute_sim"] - r["apply_sim"]
            >= 0.9 * r["compute_setup"]
        ), r


def test_trajectory_amortization_wins(amortization_sweep):
    """Whole-trajectory cost: session strictly cheaper both ways."""
    for r in amortization_sweep:
        assert r["sim_x"] > 1.0, r
        # Wall-clock margin kept modest: single-core CI boxes are noisy
        # at smoke scale (observed 1.13-1.28x locally).
        assert r["wall_x"] > 1.02, r
