"""Ablations for the paper's Sec. 5 future-work items.

* Mixed-precision arithmetic: float32 kernel evaluation with float64
  accumulation -- errors degrade to single-precision levels while the
  structure is unchanged (on real hardware this buys ~2x throughput;
  the numerics here demonstrate the accuracy side of the trade).
* Overlapping communication and computation: the distributed driver can
  hide LET communication behind the local precompute phase.
"""

import numpy as np
import pytest

from conftest import write_result
from repro import (
    BarycentricTreecode,
    CoulombKernel,
    DistributedBLTC,
    direct_sum,
    random_cube,
    relative_l2_error,
    TreecodeParams,
)
from repro.analysis import format_table


@pytest.fixture(scope="module")
def precision_runs():
    p = random_cube(5000, seed=61)
    ref = direct_sum(p.positions, p.positions, p.charges, CoulombKernel())
    out = {}
    for label, dtype in (("float64", np.float64), ("float32", np.float32)):
        params = TreecodeParams(
            theta=0.7, degree=6, max_leaf_size=250, max_batch_size=250,
            dtype=dtype,
        )
        res = BarycentricTreecode(CoulombKernel(), params).compute(p)
        out[label] = {"res": res, "err": relative_l2_error(ref, res.potential)}
    return out


@pytest.fixture(scope="module")
def overlap_runs():
    p = random_cube(60_000, seed=62)
    params = TreecodeParams(
        theta=0.8, degree=8, max_leaf_size=1000, max_batch_size=1000
    )
    out = {}
    for label, overlap in (("no overlap", False), ("comm/compute overlap", True)):
        res = DistributedBLTC(
            CoulombKernel(), params, n_ranks=8, overlap_comm=overlap
        ).compute(p, dry_run=True)
        out[label] = res
    return out


def test_extensions_regenerate(benchmark, precision_runs, overlap_runs, results_dir):
    result = benchmark.pedantic(
        lambda: (precision_runs, overlap_runs), rounds=1, iterations=1
    )
    prec, over = result
    lines = [
        format_table(
            ["precision", "error", "simulated time (s)"],
            [[label, d["err"], d["res"].phases.total]
             for label, d in prec.items()],
            title="Mixed-precision extension (Sec. 5 future work)",
        ),
        "",
        format_table(
            ["mode", "total (s)", "max setup (s)", "comm (s, rank 0)"],
            [[label, r.total_seconds, r.aggregate_phases().setup,
              r.comm_seconds[0]] for label, r in over.items()],
            title="Communication/computation overlap extension (8 ranks)",
        ),
    ]
    write_result(results_dir, "ablation_extensions.txt", "\n".join(lines))


def test_float32_accuracy_band(precision_runs):
    """Single precision lands at single-precision-level relative error."""
    err64 = precision_runs["float64"]["err"]
    err32 = precision_runs["float32"]["err"]
    assert err32 > err64
    assert 1e-8 < err32 < 1e-3


def test_float32_faster_on_device_model(precision_runs):
    """DP:SP = 1:2 on the modeled GPUs -> fp32 compute is cheaper."""
    t64 = precision_runs["float64"]["res"].phases.compute
    t32 = precision_runs["float32"]["res"].phases.compute
    assert t32 < t64


def test_float32_same_structure(precision_runs):
    s64 = precision_runs["float64"]["res"].stats
    s32 = precision_runs["float32"]["res"].stats
    assert s64["launches"] == s32["launches"]
    assert s64["n_approx_interactions"] == s32["n_approx_interactions"]


def test_overlap_hides_communication(overlap_runs):
    plain = overlap_runs["no overlap"]
    overlapped = overlap_runs["comm/compute overlap"]
    assert overlapped.total_seconds < plain.total_seconds
    # The hidden time is bounded by the communication actually performed.
    saved = plain.total_seconds - overlapped.total_seconds
    assert saved <= max(plain.comm_seconds) + 1e-9
