"""Multi-RHS ablation: many charge vectors per prepared-session apply.

One blocked ``apply(charges)`` with ``charges`` of shape ``(N, n_rhs)``
evaluates every column in a single traversal: the tree walk, the
pairwise distance work, the Lagrange bases and (on the batched backend)
the bucket GEMM set-up are all paid once instead of per column -- every
per-group GEMV grows into a GEMM.  This sweep times blocked applies for
``n_rhs in {1, 4, 16, 64}`` on the far-field regime (BEM-style shifted
targets, the workload whose solve loops actually carry many right-hand
sides) and reports **per-column** throughput: ``t(1) / (t(k) / k)``.

The acceptance bar is >= 2x per-column throughput at ``n_rhs=16`` over
the single-vector baseline on the batched backend.

Scales: the default ``quick`` runs N=12k; ``smoke`` (CI) shrinks N but
keeps every assertion.
"""

import time

import numpy as np
import pytest

from conftest import bench_scale, write_json, write_result
from repro import BarycentricTreecode, CoulombKernel, TreecodeParams, random_cube
from repro.analysis import format_table

SMOKE = bench_scale() == "smoke"

N = 4_000 if SMOKE else 12_000
N_RHS = (1, 4, 16, 64)
ROUNDS = 2
BACKENDS = ("numpy", "fused", "batched", "multiprocessing")
#: far-field regime: fully separated clouds, the plan is almost
#: entirely uniform approximation segments (the regime the batched
#: backend's bucket GEMMs are built for).
THETA, DEGREE, LEAF, SHIFT = 0.8, 2, 50, 2.5


def _session(backend):
    sources = random_cube(N, seed=910)
    targets = random_cube(N, seed=911).positions + np.array([SHIFT, 0.0, 0.0])
    params = TreecodeParams(
        theta=THETA, degree=DEGREE, max_leaf_size=LEAF, max_batch_size=LEAF,
        backend=backend,
    )
    return BarycentricTreecode(CoulombKernel(), params).prepare(
        sources, targets
    )


def _time_apply(prepared, charges):
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        result = prepared.apply(charges)
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def multi_rhs_sweep():
    rng = np.random.default_rng(912)
    block = rng.uniform(-1.0, 1.0, (N, max(N_RHS)))
    rows = []
    for backend in BACKENDS:
        prepared = _session(backend)
        base_seconds = None
        base_result = None
        for k in N_RHS:
            charges = (
                np.ascontiguousarray(block[:, 0])
                if k == 1
                else np.ascontiguousarray(block[:, :k])
            )
            seconds, result = _time_apply(prepared, charges)
            if k == 1:
                base_seconds, base_result = seconds, result
                per_column_speedup = 1.0
            else:
                per_column_speedup = base_seconds / (seconds / k)
                # the sweep is only meaningful if the blocked columns
                # reproduce the solo apply bitwise
                np.testing.assert_array_equal(
                    result.potential[:, 0], base_result.potential
                )
            rows.append(
                {
                    "backend": backend,
                    "n": N,
                    "n_rhs": k,
                    "seconds": seconds,
                    "applies_per_sec": 1.0 / seconds,
                    "columns_per_sec": k / seconds,
                    "per_column_speedup": per_column_speedup,
                }
            )
    return rows


def test_multi_rhs_regenerate(benchmark, multi_rhs_sweep, results_dir):
    rows = benchmark.pedantic(lambda: multi_rhs_sweep, rounds=1, iterations=1)
    headers = [
        "backend", "N", "n_rhs", "apply (s)", "applies/s", "columns/s",
        "per-column speedup",
    ]
    table = [
        [
            r["backend"], r["n"], r["n_rhs"], f"{r['seconds']:.3f}",
            f"{r['applies_per_sec']:.2f}", f"{r['columns_per_sec']:.2f}",
            f"{r['per_column_speedup']:.2f}x",
        ]
        for r in rows
    ]
    text = format_table(
        headers,
        table,
        title=(
            "Multi-RHS ablation -- far-field prepared session, wall-clock "
            "of one blocked apply (min of 2 rounds; per-column speedup = "
            "t(1) / (t(n_rhs) / n_rhs))"
        ),
    )
    write_result(results_dir, "ablation_multi_rhs.txt", text)
    write_json(
        results_dir,
        "BENCH_multi_rhs.json",
        [
            {
                "backend": r["backend"],
                "n": r["n"],
                "n_rhs": r["n_rhs"],
                "seconds": round(r["seconds"], 6),
                "applies_per_sec": round(r["applies_per_sec"], 4),
                "columns_per_sec": round(r["columns_per_sec"], 4),
                "per_column_speedup": round(r["per_column_speedup"], 4),
            }
            for r in rows
        ],
    )


def test_batched_2x_per_column_at_16(multi_rhs_sweep):
    """Acceptance bar: n_rhs=16 doubles per-column throughput (batched)."""
    row = next(
        r
        for r in multi_rhs_sweep
        if r["backend"] == "batched" and r["n_rhs"] == 16
    )
    assert row["per_column_speedup"] >= 2.0, row


def test_blocked_apply_never_slower_per_column(multi_rhs_sweep):
    """Growing the block must not cost per-column throughput anywhere."""
    for r in multi_rhs_sweep:
        if r["n_rhs"] > 1:
            assert r["per_column_speedup"] >= 1.0, r
