"""Direct-summation baseline benchmarks (paper Sec. 1 + Sec. 4 in-text).

Checks the in-text claims about direct summation:
 * GPU direct summation is dramatically faster than the CPU version (the
   paper's intro cites 25x over an optimized CPU code and 250x over a
   portable C code; our model gives the hardware throughput ratio);
 * direct summation does not improve the O(N^2) scaling with system
   size, so the treecode overtakes it as N grows -- the crossover.
"""

import pytest

from conftest import write_result
from repro import (
    BarycentricTreecode,
    CoulombKernel,
    CPU_XEON_X5650,
    GPU_TITAN_V,
    TreecodeParams,
    random_cube,
)
from repro.analysis import format_table


def _direct_times(n: int) -> tuple[float, float]:
    inter = float(n) * float(n)
    gpu = GPU_TITAN_V.interaction_time(inter, blocks=n) + GPU_TITAN_V.launch_latency
    cpu = CPU_XEON_X5650.interaction_time(inter)
    return gpu, cpu


@pytest.fixture(scope="module")
def crossover():
    """Model treecode vs direct times over an N sweep."""
    params = TreecodeParams(
        theta=0.8, degree=8, max_leaf_size=2000, max_batch_size=2000
    )
    rows = []
    for n in (10_000, 50_000, 200_000, 1_000_000):
        p = random_cube(n, seed=9)
        tc = BarycentricTreecode(CoulombKernel(), params).compute(
            p, dry_run=True
        )
        d_gpu, d_cpu = _direct_times(n)
        rows.append((n, tc.phases.total, d_gpu, d_cpu))
    return rows


def test_direct_sum_regenerate(benchmark, crossover, results_dir):
    rows = benchmark.pedantic(lambda: crossover, rounds=1, iterations=1)
    write_result(
        results_dir,
        "direct_sum_crossover.txt",
        format_table(
            ["N", "BLTC GPU (s)", "direct GPU (s)", "direct CPU (s)"],
            [list(r) for r in rows],
            title="Direct summation vs BLTC (device model, theta=0.8, n=8)",
        ),
    )


def test_gpu_direct_much_faster_than_cpu_direct(crossover):
    """Intro claim: GPU direct summation is orders of magnitude faster."""
    for n, _tc, d_gpu, d_cpu in crossover:
        assert d_cpu / d_gpu > 100.0


def test_treecode_overtakes_direct_sum(crossover):
    """O(N log N) beats O(N^2) from a few hundred thousand particles."""
    last_n, tc, d_gpu, _ = crossover[-1]
    assert last_n >= 1_000_000
    assert tc < d_gpu
    # The advantage grows with N.
    ratios = [d_gpu / tc for _, tc, d_gpu, _ in crossover]
    assert ratios[-1] > ratios[0]


def test_measured_direct_sum_numerics(benchmark):
    """Wall-clock micro-benchmark of the real (NumPy) direct sum."""
    from repro import direct_sum

    p = random_cube(4000, seed=10)

    def run():
        return direct_sum(
            p.positions, p.positions, p.charges, CoulombKernel()
        )

    phi = benchmark(run)
    assert phi.shape == (4000,)
