"""Ablation: the cluster-size MAC condition ``(n+1)^3 < N_C`` (eq. 13).

"If the cluster contains fewer source particles than interpolation
points, it is both faster and more accurate to compute the exact
interaction."  We disable the condition and verify both halves: error
gets worse (approximating tiny clusters) and the device does more work
per unit accuracy.
"""

import pytest

from conftest import write_result
from repro import (
    BarycentricTreecode,
    CoulombKernel,
    direct_sum,
    random_cube,
    relative_l2_error,
    TreecodeParams,
)
from repro.analysis import format_table


@pytest.fixture(scope="module")
def ablation():
    p = random_cube(6000, seed=41)
    ref = direct_sum(p.positions, p.positions, p.charges, CoulombKernel())
    out = {}
    # Degree 7 -> 512 interpolation points vs leaves of <= 150 particles:
    # without the size check, every well-separated leaf is "approximated"
    # by a grid 3x denser than its particles.
    for label, size_check in (("with size check", True), ("without", False)):
        params = TreecodeParams(
            theta=0.9, degree=7, max_leaf_size=150, max_batch_size=150,
            size_check=size_check,
        )
        res = BarycentricTreecode(CoulombKernel(), params).compute(p)
        out[label] = {
            "res": res,
            "err": relative_l2_error(ref, res.potential),
        }
    return out


def test_mac_size_condition_regenerate(benchmark, ablation, results_dir):
    result = benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    rows = [
        [label, d["err"], d["res"].phases.compute,
         d["res"].stats["kernel_evaluations"],
         d["res"].stats["n_approx_interactions"],
         d["res"].stats["n_direct_interactions"]]
        for label, d in result.items()
    ]
    write_result(
        results_dir,
        "ablation_mac_size_condition.txt",
        format_table(
            ["mode", "error", "compute (s)", "kernel evals", "approx",
             "direct"],
            rows,
            title=(
                "Cluster-size MAC condition ablation (N=6000, theta=0.9, "
                "n=7, NL=150: (n+1)^3=512 > NL)"
            ),
        ),
    )


def test_size_check_more_accurate(ablation):
    """Exact interaction beats approximating an undersized cluster."""
    assert (
        ablation["with size check"]["err"]
        < ablation["without"]["err"]
    )


def test_size_check_less_work(ablation):
    """(n+1)^3 > N_C means the approximation costs MORE kernel evals."""
    with_check = ablation["with size check"]["res"]
    without = ablation["without"]["res"]
    assert (
        with_check.stats["kernel_evaluations"]
        < without.stats["kernel_evaluations"]
    )
    assert with_check.phases.compute < without.phases.compute
