"""Figure 5 reproduction: weak scaling of the distributed BLTC, 1-32 GPUs.

Paper claims checked (Sec. 4, Fig. 5):
 * run times increase only modestly as ranks grow with fixed per-GPU
   load -- the O(N log N) signature (we assert < 2.2x growth 1 -> 32);
 * larger per-GPU loads take proportionally longer;
 * Yukawa tracks Coulomb with a modest constant factor;
 * the parameters (theta = 0.8, n = 8) deliver 5-6 digit accuracy
   (verified with real numerics at reduced scale; paper reports e.g.
   7.6e-6 at 1.024B particles).
"""

from collections import defaultdict

import pytest

from conftest import write_result
from repro.analysis import format_table
from repro.experiments import Fig5Config, run_fig5


@pytest.fixture(scope="module")
def fig5(full_scale):
    cfg = Fig5Config() if full_scale else Fig5Config().quick()
    return run_fig5(cfg)


def _curves(rows):
    curves = defaultdict(list)
    for r in rows:
        curves[(r.kernel, r.paper_per_gpu)].append(r)
    for pts in curves.values():
        pts.sort(key=lambda r: r.n_gpus)
    return curves


def test_fig5_regenerate(benchmark, fig5, results_dir):
    result = benchmark.pedantic(lambda: fig5, rounds=1, iterations=1)
    cfg = result["config"]
    headers = [
        "kernel", "paper N/GPU", "model N/GPU", "GPUs", "N total",
        "time (s)", "setup", "precompute", "compute", "RMA bytes",
    ]
    rows = [
        [r.kernel, f"{r.paper_per_gpu // 1_000_000}M", r.n_per_gpu,
         r.n_gpus, r.n_total, r.time, r.setup, r.precompute, r.compute,
         r.rma_bytes]
        for r in result["rows"]
    ]
    lines = [
        format_table(
            headers,
            rows,
            title=(
                "Fig. 5 -- weak scaling on the simulated P100 cluster "
                f"(paper scale / {cfg.scale_divisor}, theta={cfg.theta}, "
                f"n={cfg.degree})"
            ),
        ),
        "",
        "Accuracy verification at paper parameters (real numerics, "
        f"N={cfg.n_verify}, {cfg.verify_ranks} ranks):",
    ]
    for kname, err in result["verify_error"].items():
        lines.append(f"  {kname:>8s}: relative 2-norm error {err:.2e}")
    write_result(results_dir, "fig5_weak_scaling.txt", "\n".join(lines))


def test_weak_scaling_growth_is_modest(fig5):
    """Time from 1 to 32 GPUs (32x more particles) grows by far less
    than the 32x a linear-cost method would show."""
    for (kernel, per_gpu), pts in _curves(fig5["rows"]).items():
        t_first, t_last = pts[0].time, pts[-1].time
        growth = t_last / t_first
        # Paper curves grow ~1.5-2x over 1->32 GPUs; the scaled-down
        # model amplifies decomposition sensitivity somewhat (shallower
        # trees), so allow up to 3x -- still an order of magnitude below
        # what a linear-cost method would show (32x).
        assert growth < 3.0, (kernel, per_gpu, growth)
        assert growth > 0.8, (kernel, per_gpu, growth)


def test_bigger_per_gpu_load_takes_longer(fig5):
    curves = _curves(fig5["rows"])
    for kernel in {r.kernel for r in fig5["rows"]}:
        loads = sorted({k[1] for k in curves if k[0] == kernel})
        for small, big in zip(loads, loads[1:]):
            for p_small, p_big in zip(
                curves[(kernel, small)], curves[(kernel, big)]
            ):
                assert p_big.time > p_small.time


def test_yukawa_tracks_coulomb(fig5):
    curves = _curves(fig5["rows"])
    for (kernel, per_gpu), pts in curves.items():
        if kernel != "yukawa":
            continue
        c_pts = curves.get(("coulomb", per_gpu))
        if not c_pts:
            pytest.skip("coulomb curve not present in this sweep")
        for y, c in zip(pts, c_pts):
            ratio = y.time / c.time
            assert 1.0 < ratio < 2.0, (per_gpu, y.n_gpus, ratio)


def test_communication_grows_with_ranks(fig5):
    for (kernel, per_gpu), pts in _curves(fig5["rows"]).items():
        multi = [r for r in pts if r.n_gpus > 1]
        if len(multi) >= 2:
            assert multi[-1].rma_bytes > multi[0].rma_bytes


def test_accuracy_is_5_to_6_digits(fig5):
    """Paper: theta=0.8, n=8 yields 5-6 digit accuracy."""
    for kname, err in fig5["verify_error"].items():
        assert 1e-8 < err < 5e-5, (kname, err)
