"""Ablation: particle-cluster (BLTC) vs cluster-particle vs dual-tree.

Paper Sec. 5: "We will also explore GPU acceleration of barycentric
cluster-particle and cluster-cluster treecodes", citing Boateng & Krasny
(ref. [32]) who showed cluster-particle wins for disjoint target/source
sets with many more targets than sources.  We compare the three schemes
in that regime and in the symmetric one.
"""

import pytest

from conftest import write_result
from repro import (
    BarycentricTreecode,
    CoulombKernel,
    TreecodeParams,
    random_cube,
    relative_l2_error,
    sphere_surface,
)
from repro.analysis import format_table
from repro.extensions import ClusterParticleTreecode, DualTreeTreecode

SCHEMES = (
    ("particle-cluster", BarycentricTreecode),
    ("cluster-particle", ClusterParticleTreecode),
    ("dual-tree", DualTreeTreecode),
)


@pytest.fixture(scope="module")
def ablation():
    kernel = CoulombKernel()
    out = {}

    # Regime A: many targets, few sources (cluster-particle's home turf,
    # ref. [32]): 20k targets on a far shell, 1.5k sources in the cube.
    sources = random_cube(1500, seed=91)
    targets = sphere_surface(20_000, seed=92, radius=2.5)
    ref = kernel.potential(targets.positions, sources.positions, sources.charges)
    params = TreecodeParams(
        theta=0.7, degree=4, max_leaf_size=150, max_batch_size=500
    )
    for label, cls in SCHEMES:
        res = cls(kernel, params).compute(sources, targets=targets.positions)
        out[f"A:{label}"] = {
            "res": res,
            "err": relative_l2_error(ref, res.potential),
        }
    params = TreecodeParams(
        theta=0.7, degree=5, max_leaf_size=400, max_batch_size=400
    )

    # Regime B: symmetric targets == sources (the paper's setting).
    particles = random_cube(5000, seed=93)
    from repro import direct_sum

    ref_b = direct_sum(
        particles.positions, particles.positions, particles.charges, kernel
    )
    for label, cls in SCHEMES:
        res = cls(kernel, params).compute(particles)
        out[f"B:{label}"] = {
            "res": res,
            "err": relative_l2_error(ref_b, res.potential),
        }
    return out


def test_cluster_particle_regenerate(benchmark, ablation, results_dir):
    result = benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    rows = [
        [label, d["err"], d["res"].phases.total,
         d["res"].stats["kernel_evaluations"],
         d["res"].stats["launches"]]
        for label, d in result.items()
    ]
    write_result(
        results_dir,
        "ablation_cluster_particle.txt",
        format_table(
            ["regime:scheme", "error", "sim time (s)", "kernel evals",
             "launches"],
            rows,
            title=(
                "Treecode scheme comparison (A: 20k targets / 1.5k "
                "sources;  B: 5k == 5k)"
            ),
        ),
    )


def test_all_schemes_accurate(ablation):
    for label, d in ablation.items():
        assert d["err"] < 1e-3, (label, d["err"])


def test_cluster_particle_cheaper_with_many_targets(ablation):
    """Regime A: interpolating over the (large) target side amortizes
    better than interpolating over the (small) source side (ref. [32])."""
    cp = ablation["A:cluster-particle"]["res"]
    pc = ablation["A:particle-cluster"]["res"]
    assert (
        cp.stats["kernel_evaluations"] < pc.stats["kernel_evaluations"]
    )


def test_dual_tree_does_least_kernel_work(ablation):
    """The cluster-cluster interactions' population-independent cost
    gives the dual traversal the lowest kernel-evaluation count."""
    dt = ablation["A:dual-tree"]["res"]
    pc = ablation["A:particle-cluster"]["res"]
    cp = ablation["A:cluster-particle"]["res"]
    assert dt.stats["kernel_evaluations"] < pc.stats["kernel_evaluations"]
    assert dt.stats["kernel_evaluations"] < cp.stats["kernel_evaluations"]
