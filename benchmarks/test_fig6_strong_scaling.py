"""Figure 6 reproduction: strong scaling + phase-time distribution.

Paper claims checked (Sec. 4, Fig. 6):
 * (a,b) run time falls as GPUs are added; efficiency at 32 GPUs is
   higher for the larger system (paper: 83-84% at 64M vs 64-73% at 16M);
 * (c,d) the compute phase dominates at small rank counts, and the
   setup + precompute fractions grow with the number of GPUs
   (communication volume grows; the modified-charge kernels stop
   saturating the GPU as the per-rank load shrinks).
"""

from collections import defaultdict

import pytest

from conftest import write_result
from repro.analysis import format_table
from repro.experiments import Fig6Config, run_fig6


@pytest.fixture(scope="module")
def fig6(full_scale):
    cfg = Fig6Config() if full_scale else Fig6Config().quick()
    return run_fig6(cfg)


def _curves(rows):
    curves = defaultdict(list)
    for r in rows:
        curves[(r.kernel, r.paper_total)].append(r)
    for pts in curves.values():
        pts.sort(key=lambda r: r.n_gpus)
    return curves


def test_fig6_regenerate(benchmark, fig6, results_dir):
    result = benchmark.pedantic(lambda: fig6, rounds=1, iterations=1)
    cfg = result["config"]
    headers = [
        "kernel", "paper N", "model N", "GPUs", "time (s)", "efficiency",
        "setup %", "precompute %", "compute %",
    ]
    rows = [
        [r.kernel, f"{r.paper_total // 1_000_000}M", r.n_total, r.n_gpus,
         r.time, f"{r.efficiency * 100:.0f}%",
         f"{r.setup_frac * 100:.1f}", f"{r.precompute_frac * 100:.1f}",
         f"{r.compute_frac * 100:.1f}"]
        for r in result["rows"]
    ]
    write_result(
        results_dir,
        "fig6_strong_scaling.txt",
        format_table(
            headers,
            rows,
            title=(
                "Fig. 6 -- strong scaling + phase distribution, simulated "
                f"P100 cluster (paper scale / {cfg.scale_divisor}, "
                f"theta={cfg.theta}, n={cfg.degree})"
            ),
        ),
    )


def test_time_decreases_with_gpus(fig6):
    for (kernel, total), pts in _curves(fig6["rows"]).items():
        times = [r.time for r in pts]
        assert times == sorted(times, reverse=True), (kernel, total, times)
        assert times[-1] < times[0] / 4.0  # real speedup by 32 GPUs


def test_larger_system_scales_better(fig6):
    """Paper: the 64M case holds higher efficiency at 32 GPUs than 16M."""
    curves = _curves(fig6["rows"])
    totals = sorted({r.paper_total for r in fig6["rows"]})
    assert len(totals) >= 2
    small, large = totals[0], totals[-1]
    for kernel in {r.kernel for r in fig6["rows"]}:
        eff_small = curves[(kernel, small)][-1].efficiency
        eff_large = curves[(kernel, large)][-1].efficiency
        assert eff_large > eff_small, (kernel, eff_small, eff_large)


def test_efficiency_band_at_32_gpus(fig6):
    """Paper band: 64-84% efficiency at 32 GPUs; allow a generous
    45-100% window for the scaled-down model."""
    for (kernel, total), pts in _curves(fig6["rows"]).items():
        eff = pts[-1].efficiency
        assert 0.45 <= eff <= 1.05, (kernel, total, eff)


def test_compute_dominates_at_one_gpu(fig6):
    for (kernel, total), pts in _curves(fig6["rows"]).items():
        first = pts[0]
        assert first.compute_frac > 0.5, (kernel, total, first)


def test_setup_fraction_grows_with_gpus(fig6):
    """Fig. 6cd: work shifts toward setup (+ precompute) as ranks grow."""
    for (kernel, total), pts in _curves(fig6["rows"]).items():
        overhead_first = pts[0].setup_frac + pts[0].precompute_frac
        overhead_last = pts[-1].setup_frac + pts[-1].precompute_frac
        assert overhead_last > overhead_first, (kernel, total)
        assert pts[-1].compute_frac < pts[0].compute_frac
