"""Backend-fusion ablation: fused vs reference execution of one plan.

The execution-plan refactor separates *compiling* the work (gathering
CSR index arrays and shared source buffers) from *executing* it.  This
benchmark compiles one plan per regime and times each backend on it:

* ``numpy``  -- the seed implementation's blocked semantics: per-batch
  re-concatenation of segment sources plus per-launch device accounting
  interleaved with the numerics (the pre-refactor hot path);
* ``fused``  -- zero-copy evaluation from the shared pre-gathered
  buffers plus vectorized (bulk) launch charging;
* ``model``  -- launch accounting only (the dry-run path), showing what
  plan-derived bulk charging does for paper-scale timing studies.

The fusion advantage is largest where the seed path was overhead-bound
-- many small batches, shallow interpolation degree (exactly the
regime the paper's Sec. 3.2 batching discussion worries about) -- and
tapers toward 1x where dense kernel arithmetic dominates.
"""

import time

import numpy as np
import pytest

from conftest import write_result
from repro import CoulombKernel, TreecodeParams, get_backend, random_cube
from repro.analysis import format_table
from repro.core.interaction_lists import build_interaction_lists
from repro.core.moments import precompute_moments
from repro.core.plan import compile_plan
from repro.gpu.device import GpuDevice
from repro.perf.machine import GPU_TITAN_V
from repro.tree.batches import TargetBatches
from repro.tree.octree import ClusterTree

#: (label, n, theta, degree, NB=NL, compute_forces)
REGIMES = [
    ("small batches", 30_000, 0.8, 2, 60, False),
    ("balanced", 30_000, 0.8, 3, 100, False),
    ("small + forces", 15_000, 0.8, 2, 60, True),
]

BACKENDS = ("numpy", "fused", "model")
ROUNDS = 3


def _compiled_plan(n, theta, degree, leaf):
    p = random_cube(n, seed=900)
    params = TreecodeParams(
        theta=theta, degree=degree, max_leaf_size=leaf, max_batch_size=leaf
    )
    tree = ClusterTree(p.positions, leaf)
    batches = TargetBatches(p.positions, leaf)
    moments = precompute_moments(tree, p.charges, params)
    lists = build_interaction_lists(batches, tree, params)
    return compile_plan(tree, batches, moments, lists, p.charges, params)


def _time_backend(backend, plan, *, forces):
    kernel = CoulombKernel()
    best = float("inf")
    results = None
    for _ in range(ROUNDS):
        device = GpuDevice(GPU_TITAN_V)
        t0 = time.perf_counter()
        out = backend.execute(
            plan, kernel, device, compute_forces=forces
        )
        best = min(best, time.perf_counter() - t0)
        results = (out, device)
    return best, results


@pytest.fixture(scope="module")
def fusion_sweep():
    rows = []
    checks = []
    for label, n, theta, degree, leaf, forces in REGIMES:
        plan = _compiled_plan(n, theta, degree, leaf)
        seconds = {}
        outputs = {}
        for name in BACKENDS:
            seconds[name], outputs[name] = _time_backend(
                get_backend(name), plan, forces=forces
            )
        checks.append((label, outputs))
        rows.append(
            {
                "regime": label,
                "n": n,
                "degree": degree,
                "batch": leaf,
                "segments": plan.n_segments,
                "numpy_s": seconds["numpy"],
                "fused_s": seconds["fused"],
                "model_s": seconds["model"],
                "speedup": seconds["numpy"] / seconds["fused"],
                "model_x": seconds["numpy"] / seconds["model"],
            }
        )
    return rows, checks


def test_fusion_regenerate(benchmark, fusion_sweep, results_dir):
    rows, _ = benchmark.pedantic(lambda: fusion_sweep, rounds=1, iterations=1)
    headers = [
        "regime", "N", "n", "NB", "segments",
        "numpy (s)", "fused (s)", "model (s)",
        "fused speedup", "model speedup",
    ]
    table = [
        [
            r["regime"], r["n"], r["degree"], r["batch"], r["segments"],
            f"{r['numpy_s']:.3f}", f"{r['fused_s']:.3f}",
            f"{r['model_s']:.4f}",
            f"{r['speedup']:.2f}x", f"{r['model_x']:.0f}x",
        ]
        for r in rows
    ]
    text = format_table(
        headers,
        table,
        title=(
            "Backend fusion ablation -- wall-clock of one compiled plan "
            "(min of 3 rounds; numpy = seed per-batch semantics, fused = "
            "pre-gathered buffers + bulk launch charging)"
        ),
    )
    write_result(results_dir, "ablation_backend_fusion.txt", text)


def test_fused_wins_overhead_bound_regime(fusion_sweep):
    """Many small batches: the regime the refactor targets."""
    rows, _ = fusion_sweep
    small = next(r for r in rows if r["regime"] == "small batches")
    assert small["speedup"] > 1.15, small


def test_fused_never_substantially_slower(fusion_sweep):
    rows, _ = fusion_sweep
    for r in rows:
        assert r["speedup"] > 0.75, r


def test_model_backend_orders_of_magnitude_faster(fusion_sweep):
    rows, _ = fusion_sweep
    for r in rows:
        assert r["model_x"] > 5.0, r


def test_backends_agree_on_every_regime(fusion_sweep):
    """The timing comparison is only meaningful if results agree."""
    _, checks = fusion_sweep
    for label, outputs in checks:
        (phi_np, f_np), dev_np = outputs["numpy"]
        (phi_fu, f_fu), dev_fu = outputs["fused"]
        (phi_mo, _), dev_mo = outputs["model"]
        assert np.allclose(phi_np, phi_fu, rtol=1e-9, atol=1e-12), label
        if f_np is not None:
            assert np.allclose(f_np, f_fu, rtol=1e-8, atol=1e-11), label
        assert np.all(phi_mo == 0.0)
        for dev in (dev_fu, dev_mo):
            assert dev.counters.launches == dev_np.counters.launches
            assert dev.counters.interactions == dev_np.counters.interactions
            assert dev.elapsed() == pytest.approx(dev_np.elapsed())
