"""Backend ablation: every executing backend on one compiled plan.

The execution-plan refactor separates *compiling* the work (gathering
CSR index arrays and shared source buffers) from *executing* it.  This
benchmark compiles one plan per regime and times each backend on it:

* ``numpy``  -- the seed implementation's blocked semantics: per-batch
  re-concatenation of segment sources plus per-launch device accounting
  interleaved with the numerics (the pre-refactor hot path);
* ``fused``  -- zero-copy evaluation from the shared pre-gathered
  buffers plus vectorized (bulk) launch charging;
* ``batched`` -- shape-bucketed stacked evaluation (uniform far-field
  runs collapse into a few large batched GEMMs, ragged work falls back
  to the fused per-group path).  On these self-target regimes roughly
  half the interactions are ragged near field, so the column tracks
  ``fused``; the far-field regimes where bucketing dominates live in
  ``test_batched_backend.py``;
* ``multiprocessing`` -- the fused per-group arithmetic sharded over a
  persistent worker pool (one worker per CPU; on a single-core host it
  evaluates inline, so the column then tracks ``fused``);
* ``numba``  -- JIT-compiled gather+GEMV loops (column present only
  where numba is installed);
* ``model``  -- launch accounting only (the dry-run path), showing what
  plan-derived bulk charging does for paper-scale timing studies.

Each regime also reports the de-duplication shrink of the compiled
plan's source buffers -- logical (per-segment aliased) over physical
rows; clusters referenced by many batches are stored once -- the
memory saving that matters for large real-numerics runs.

The fusion advantage is largest where the seed path was overhead-bound
-- many small batches, shallow interpolation degree (exactly the
regime the paper's Sec. 3.2 batching discussion worries about) -- and
tapers toward 1x where dense kernel arithmetic dominates.
"""

import time

import numpy as np
import pytest

from conftest import write_json, write_result
from repro import CoulombKernel, TreecodeParams, get_backend, random_cube
from repro.analysis import format_table
from repro.core.backends.numba_backend import NUMBA_AVAILABLE
from repro.core.interaction_lists import build_interaction_lists
from repro.core.moments import precompute_moments
from repro.core.plan import compile_plan
from repro.gpu.device import GpuDevice
from repro.perf.machine import GPU_TITAN_V
from repro.tree.batches import TargetBatches
from repro.tree.octree import ClusterTree

#: (label, n, theta, degree, NB=NL, compute_forces)
REGIMES = [
    ("small batches", 30_000, 0.8, 2, 60, False),
    ("balanced", 30_000, 0.8, 3, 100, False),
    ("small + forces", 15_000, 0.8, 2, 60, True),
]

BACKENDS = ("numpy", "fused", "batched", "multiprocessing") + (
    ("numba",) if NUMBA_AVAILABLE else ()
) + ("model",)
ROUNDS = 3


def _compiled_plan(n, theta, degree, leaf):
    """One compiled (de-duplicated) plan for one regime."""
    p = random_cube(n, seed=900)
    params = TreecodeParams(
        theta=theta, degree=degree, max_leaf_size=leaf, max_batch_size=leaf
    )
    tree = ClusterTree(p.positions, leaf)
    batches = TargetBatches(p.positions, leaf)
    moments = precompute_moments(tree, p.charges, params)
    lists = build_interaction_lists(batches, tree, params)
    return compile_plan(tree, batches, moments, lists, p.charges, params)


def _time_backend(backend, plan, *, forces):
    kernel = CoulombKernel()
    best = float("inf")
    results = None
    for _ in range(ROUNDS):
        device = GpuDevice(GPU_TITAN_V)
        t0 = time.perf_counter()
        out = backend.execute(
            plan, kernel, device, compute_forces=forces
        )
        best = min(best, time.perf_counter() - t0)
        results = (out, device)
    return best, results


@pytest.fixture(scope="module")
def fusion_sweep():
    rows = []
    checks = []
    # One persistent instance per backend so the worker pool (and any
    # JIT compilation) is paid once across regimes and rounds.
    instances = {name: get_backend(name) for name in BACKENDS}
    try:
        for label, n, theta, degree, leaf, forces in REGIMES:
            plan = _compiled_plan(n, theta, degree, leaf)
            seconds = {}
            outputs = {}
            for name in BACKENDS:
                seconds[name], outputs[name] = _time_backend(
                    instances[name], plan, forces=forces
                )
            checks.append((label, outputs))
            rows.append(
                {
                    "regime": label,
                    "n": n,
                    "degree": degree,
                    "batch": leaf,
                    "segments": plan.n_segments,
                    "seconds": seconds,
                    "speedup": seconds["numpy"] / seconds["fused"],
                    "batched_vs_fused": seconds["fused"] / seconds["batched"],
                    "model_x": seconds["numpy"] / seconds["model"],
                    "rows_dup": plan.n_source_rows,
                    "rows_shared": plan.source_buffer_rows,
                }
            )
    finally:
        close = getattr(instances.get("multiprocessing"), "close", None)
        if close:
            close()
    return rows, checks


def test_fusion_regenerate(benchmark, fusion_sweep, results_dir):
    rows, _ = benchmark.pedantic(lambda: fusion_sweep, rounds=1, iterations=1)
    headers = (
        ["regime", "N", "n", "NB", "segments"]
        + [f"{name} (s)" for name in BACKENDS]
        + [
            "fused speedup", "batched vs fused", "model speedup",
            "shared-rows shrink",
        ]
    )
    table = [
        [
            r["regime"], r["n"], r["degree"], r["batch"], r["segments"],
        ]
        + [f"{r['seconds'][name]:.3f}" for name in BACKENDS]
        + [
            f"{r['speedup']:.2f}x",
            f"{r['batched_vs_fused']:.2f}x",
            f"{r['model_x']:.0f}x",
            f"{r['rows_dup'] / max(r['rows_shared'], 1):.1f}x",
        ]
        for r in rows
    ]
    text = format_table(
        headers,
        table,
        title=(
            "Backend ablation -- wall-clock of one compiled plan "
            "(min of 3 rounds; numpy = seed per-batch semantics, fused = "
            "pre-gathered buffers + bulk launch charging, batched = "
            "shape-bucketed stacked GEMMs with fused fallback, "
            "multiprocessing = fused arithmetic sharded over a process "
            "pool; shared-rows shrink = logical (aliased) / physical "
            "de-duplicated source-buffer rows)"
        ),
    )
    write_result(results_dir, "ablation_backend_fusion.txt", text)
    write_json(
        results_dir,
        "BENCH_backend_fusion.json",
        [
            {
                "regime": r["regime"],
                "n": r["n"],
                "degree": r["degree"],
                "batch": r["batch"],
                "segments": r["segments"],
                "seconds": {k: round(v, 6) for k, v in r["seconds"].items()},
                "fused_speedup_vs_numpy": round(r["speedup"], 4),
                "batched_speedup_vs_fused": round(r["batched_vs_fused"], 4),
                "model_speedup_vs_numpy": round(r["model_x"], 4),
                "shared_rows_shrink": round(
                    r["rows_dup"] / max(r["rows_shared"], 1), 4
                ),
            }
            for r in rows
        ],
    )


def test_fused_wins_overhead_bound_regime(fusion_sweep):
    """Many small batches: the regime the refactor targets."""
    rows, _ = fusion_sweep
    small = next(r for r in rows if r["regime"] == "small batches")
    assert small["speedup"] > 1.15, small


def test_fused_never_substantially_slower(fusion_sweep):
    rows, _ = fusion_sweep
    for r in rows:
        assert r["speedup"] > 0.75, r


def test_batched_tracks_fused_on_mixed_regimes(fusion_sweep):
    """Self-target plans are ~half ragged near field: batched must stay
    in fused's neighbourhood here (its wins live in the far-field
    regimes of test_batched_backend.py)."""
    rows, _ = fusion_sweep
    for r in rows:
        assert r["batched_vs_fused"] > 0.6, r


def test_model_backend_orders_of_magnitude_faster(fusion_sweep):
    rows, _ = fusion_sweep
    for r in rows:
        assert r["model_x"] > 5.0, r


def test_shared_gather_shrinks_buffers(fusion_sweep):
    """Clusters shared across batches stored once: strictly fewer
    physical rows than logical (per-segment aliased) rows."""
    rows, _ = fusion_sweep
    for r in rows:
        assert r["rows_shared"] < r["rows_dup"], r


def test_backends_agree_on_every_regime(fusion_sweep):
    """The timing comparison is only meaningful if results agree."""
    _, checks = fusion_sweep
    for label, outputs in checks:
        (phi_np, f_np), dev_np = outputs["numpy"]
        (phi_mo, _), dev_mo = outputs["model"]
        assert np.all(phi_mo == 0.0)
        for name in BACKENDS:
            if name in ("numpy", "model"):
                continue
            (phi, f), dev = outputs[name]
            # The fused-family backends evaluate the temporary-free
            # pairwise_fused r^2 accumulation: agreement with the
            # blocked reference is roundoff-level, amplified on targets
            # whose potential nearly cancels (observed ~4e-9 relative
            # at these scales) -- far below the ~1e-4 treecode
            # approximation error the regimes carry.
            assert np.allclose(phi_np, phi, rtol=1e-8, atol=1e-10), (
                label, name,
            )
            if f_np is not None:
                assert np.allclose(f_np, f, rtol=1e-7, atol=1e-8), (
                    label, name,
                )
        for name in BACKENDS:
            if name == "numpy":
                continue
            dev = outputs[name][1]
            assert dev.counters.launches == dev_np.counters.launches
            assert dev.counters.interactions == dev_np.counters.interactions
            assert dev.elapsed() == pytest.approx(dev_np.elapsed())
