"""Figure 4 reproduction: run time vs error, single GPU vs 6-core CPU.

Paper claims checked (Sec. 4, Fig. 4 discussion):
 (1) the BLTC is faster than direct summation on both devices over the
     whole error range;
 (2) the BLTC runs at least ~100x faster on the GPU than the CPU;
 (3) Coulomb and Yukawa behave qualitatively alike, Yukawa slightly
     slower (~1.8x CPU, ~1.5x GPU);
 (4) the GPU direct sum beats the CPU *treecode* at this problem size;
 plus the basic anatomy of the figure: error decreases with degree n
 along each constant-theta curve, down to machine precision.
"""

from collections import defaultdict

import pytest

from conftest import write_result
from repro.analysis import format_table
from repro.experiments import Fig4Config, run_fig4


@pytest.fixture(scope="module")
def fig4(full_scale):
    cfg = Fig4Config() if full_scale else Fig4Config().quick()
    return run_fig4(cfg)


def _curves(rows):
    curves = defaultdict(list)
    for r in rows:
        curves[(r.kernel, r.theta)].append(r)
    for pts in curves.values():
        pts.sort(key=lambda r: r.degree)
    return curves


def test_fig4_regenerate(benchmark, fig4, results_dir):
    result = benchmark.pedantic(lambda: fig4, rounds=1, iterations=1)
    headers = [
        "kernel", "theta", "n", "error", "GPU time (s)", "CPU time (s)",
        "speedup", "approx", "direct",
    ]
    rows = [
        [r.kernel, r.theta, r.degree, r.error, r.gpu_time, r.cpu_time,
         r.speedup, r.n_approx, r.n_direct]
        for r in result["rows"]
    ]
    direct = result["direct"]
    lines = [
        format_table(
            headers,
            rows,
            title=(
                "Fig. 4 -- BLTC run time vs error, 1M-particle model scale "
                "(times: calibrated device model; errors: measured at "
                f"N={result['config'].n_error})"
            ),
        ),
        "",
        "Direct-summation reference lines (model, 1M particles):",
    ]
    for kname, times in direct.items():
        lines.append(
            f"  {kname:>8s}: GPU {times['gpu']:10.2f} s   "
            f"CPU {times['cpu']:10.1f} s"
        )
    write_result(results_dir, "fig4_time_vs_error.txt", "\n".join(lines))


def test_error_decreases_with_degree(fig4):
    """Each constant-theta curve must descend (to ~machine precision)."""
    for (kernel, theta), pts in _curves(fig4["rows"]).items():
        errs = [r.error for r in pts]
        assert errs[-1] < errs[0] / 10.0, (kernel, theta, errs)
        # Monotone until the machine-precision floor (~1e-13).
        above_floor = [e for e in errs if e > 1e-12]
        assert above_floor == sorted(above_floor, reverse=True), (
            kernel, theta, errs,
        )
        assert errs[-1] < 1e-9


def test_machine_precision_reached(fig4):
    best = min(r.error for r in fig4["rows"])
    assert best < 1e-12


def test_gpu_speedup_at_least_paper_band(fig4):
    """Claim (2): >= 100x GPU/CPU across the sweep (we allow 80x floor)."""
    speedups = [r.speedup for r in fig4["rows"]]
    assert min(speedups) > 80.0
    assert max(speedups) > 100.0


def test_treecode_beats_direct_sum_everywhere(fig4):
    """Claim (1): on each device the BLTC undercuts direct summation for
    every point of every curve."""
    direct = fig4["direct"]
    for r in fig4["rows"]:
        assert r.gpu_time < direct[r.kernel]["gpu"], r
        assert r.cpu_time < direct[r.kernel]["cpu"], r


def test_gpu_direct_beats_cpu_treecode(fig4):
    """Claim (4): at 1M particles the GPU direct sum is faster than the
    CPU treecode (not true asymptotically -- O(N^2) vs O(N log N))."""
    direct = fig4["direct"]
    for r in fig4["rows"]:
        assert direct[r.kernel]["gpu"] < r.cpu_time


def test_yukawa_cost_ratio(fig4):
    """Claim (3): Yukawa ~1.5x GPU, ~1.8x CPU relative to Coulomb."""
    by_key = {(r.kernel, r.theta, r.degree): r for r in fig4["rows"]}
    gpu_ratios, cpu_ratios = [], []
    for (kernel, theta, degree), r in by_key.items():
        if kernel != "yukawa":
            continue
        c = by_key.get(("coulomb", theta, degree))
        if c is None:
            continue
        gpu_ratios.append(r.gpu_time / c.gpu_time)
        cpu_ratios.append(r.cpu_time / c.cpu_time)
    assert gpu_ratios and cpu_ratios
    mean_gpu = sum(gpu_ratios) / len(gpu_ratios)
    mean_cpu = sum(cpu_ratios) / len(cpu_ratios)
    assert 1.2 < mean_gpu < 1.9
    assert 1.4 < mean_cpu < 2.4
    assert mean_cpu > mean_gpu  # the exponential hurts the CPU more
