"""Dynamic-geometry ablation: warm-start updates vs rebuild-every-step.

A velocity-Verlet trajectory in the small-drift MD regime (per-step
displacement well below the leaf box size) is integrated twice over the
*same* recorded positions:

* **warm** -- one ``prepare()`` up front, then per step
  ``update_geometry(pos)`` + ``apply(mass, compute_forces=True)``: the
  incremental re-prepare re-bins only escaped particles, patches only
  touched interaction lists and plan groups;
* **cold** -- a fresh ``prepare()`` + ``apply`` every step, repaying
  the full setup phase for a geometry that barely changed.

Both paths must produce bitwise-identical potentials step for step
(the warm path's correctness contract), so the comparison is pure
performance: steps/sec, with the re-binned fraction per step recorded
alongside.  The acceptance bar is >= 2x steps/sec for the warm path at
the default ``quick`` scale.

Scales: ``quick`` runs N=6k for 8 steps; ``smoke`` (CI) shrinks both
but keeps every assertion except the 2x bar (small problems leave too
little setup work to amortise, so smoke only requires parity and a
net win).
"""

import time

import numpy as np
import pytest

from conftest import bench_scale, write_json, write_result
from repro import (
    BarycentricTreecode,
    InverseMultiquadricKernel,
    ParticleSet,
    TreecodeParams,
    random_cube,
)
from repro.analysis import format_table

SMOKE = bench_scale() == "smoke"

N = 1_000 if SMOKE else 3_000
STEPS = 3 if SMOKE else 8
#: deep-tree regime: small leaves and a tight MAC make the setup phase
#: (tree build, traversal, moment grids, plan compile) the dominant
#: per-step cost that the warm path amortises away.
THETA, DEGREE, LEAF = 0.3, 2, 30
DT = 0.002
SOFTENING = 0.05
#: velocity dispersion; per-step drift ~ DT * VEL_SCALE = 2e-5, far
#: below the ~0.2 leaf box edge, so only a small fraction of
#: particles change leaves each step.
VEL_SCALE = 0.01


def _params():
    return TreecodeParams(
        theta=THETA, degree=DEGREE, max_leaf_size=LEAF, max_batch_size=LEAF,
        backend="fused",
    )


def _system():
    cube = random_cube(N, seed=700)
    mass = np.full(N, 1.0 / N)
    rng = np.random.default_rng(701)
    vel = rng.normal(0.0, VEL_SCALE, size=cube.positions.shape)
    return cube.positions.copy(), vel, mass


@pytest.fixture(scope="module")
def dynamic_geometry_sweep():
    kernel = InverseMultiquadricKernel(c=SOFTENING)
    pos, vel, mass = _system()

    # -- warm path: prepare once, update_geometry every step.  The
    # trajectory (and each step's potentials) is recorded so the cold
    # path replays the exact same geometry work.
    prepared = BarycentricTreecode(kernel, _params()).prepare(
        ParticleSet(pos, mass)
    )
    res = prepared.apply(mass, compute_forces=True)
    acc = -res.forces
    # One untimed warm-up update builds the one-time traversal record
    # that later steps verify against.
    vel += 0.5 * DT * acc
    pos = pos + DT * vel
    prepared.update_geometry(pos)
    res = prepared.apply(mass, compute_forces=True)
    vel += 0.5 * DT * (-res.forces)
    acc = -res.forces

    rows = []
    trajectory = []
    warm_potentials = []
    for step in range(1, STEPS + 1):
        vel += 0.5 * DT * acc
        pos = pos + DT * vel
        t0 = time.perf_counter()
        upd = prepared.update_geometry(pos)
        res = prepared.apply(mass, compute_forces=True)
        warm_seconds = time.perf_counter() - t0
        acc = -res.forces
        vel += 0.5 * DT * acc
        trajectory.append(pos.copy())
        warm_potentials.append(res.potential.copy())
        rows.append(
            {
                "step": step,
                "n": N,
                "warm_seconds": warm_seconds,
                "rebinned_fraction": upd.rebinned_fraction,
                "n_rebinned": upd.n_rebinned,
                "rebuilt": upd.rebuilt,
                "dirty_batches": upd.n_dirty_batches,
                "patched_groups": upd.n_patched_groups,
            }
        )

    # -- cold path: rebuild the whole session at every recorded step.
    driver = BarycentricTreecode(kernel, _params())
    for row, step_pos, warm_phi in zip(rows, trajectory, warm_potentials):
        t0 = time.perf_counter()
        cold = driver.prepare(ParticleSet(step_pos, mass))
        res = cold.apply(mass, compute_forces=True)
        row["cold_seconds"] = time.perf_counter() - t0
        # The warm path's whole point is bitwise equality with this.
        np.testing.assert_array_equal(res.potential, warm_phi)

    warm_total = sum(r["warm_seconds"] for r in rows)
    cold_total = sum(r["cold_seconds"] for r in rows)
    for r in rows:
        r["warm_steps_per_sec"] = STEPS / warm_total
        r["cold_steps_per_sec"] = STEPS / cold_total
        r["speedup"] = cold_total / warm_total
    return rows


def test_dynamic_geometry_regenerate(
    benchmark, dynamic_geometry_sweep, results_dir
):
    rows = benchmark.pedantic(
        lambda: dynamic_geometry_sweep, rounds=1, iterations=1
    )
    headers = [
        "step", "warm (s)", "cold (s)", "re-binned", "frac", "dirty batches",
        "patched groups", "rebuilt",
    ]
    table = [
        [
            r["step"], f"{r['warm_seconds']:.3f}", f"{r['cold_seconds']:.3f}",
            r["n_rebinned"], f"{r['rebinned_fraction']:.4f}",
            r["dirty_batches"], r["patched_groups"],
            "yes" if r["rebuilt"] else "no",
        ]
        for r in rows
    ]
    head = rows[0]
    text = format_table(
        headers,
        table,
        title=(
            f"Dynamic geometry ablation -- N={N} velocity-Verlet, "
            f"{STEPS} timed steps: warm {head['warm_steps_per_sec']:.2f} "
            f"steps/s vs cold {head['cold_steps_per_sec']:.2f} steps/s "
            f"({head['speedup']:.2f}x)"
        ),
    )
    write_result(results_dir, "ablation_dynamic_geometry.txt", text)
    write_json(
        results_dir,
        "BENCH_dynamic_geometry.json",
        [
            {
                "step": r["step"],
                "n": r["n"],
                "warm_seconds": round(r["warm_seconds"], 6),
                "cold_seconds": round(r["cold_seconds"], 6),
                "rebinned_fraction": round(r["rebinned_fraction"], 6),
                "n_rebinned": r["n_rebinned"],
                "rebuilt": r["rebuilt"],
                "warm_steps_per_sec": round(r["warm_steps_per_sec"], 4),
                "cold_steps_per_sec": round(r["cold_steps_per_sec"], 4),
                "speedup": round(r["speedup"], 4),
            }
            for r in rows
        ],
    )


def test_warm_path_2x_steps_per_sec(dynamic_geometry_sweep):
    """Acceptance bar: warm updates at least double the MD step rate."""
    speedup = dynamic_geometry_sweep[0]["speedup"]
    floor = 1.0 if SMOKE else 2.0
    assert speedup >= floor, dynamic_geometry_sweep[0]


def test_drift_stays_incremental(dynamic_geometry_sweep):
    """Small-drift steps must take the incremental path, not rebuild.

    At most one step may fall back: a cluster count hovering exactly at
    the leaf threshold can legitimately flip the topology.
    """
    rebuilds = sum(r["rebuilt"] for r in dynamic_geometry_sweep)
    assert rebuilds <= 1, dynamic_geometry_sweep
    for r in dynamic_geometry_sweep:
        assert r["rebinned_fraction"] <= 0.05, r
