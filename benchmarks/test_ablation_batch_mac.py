"""Ablation: batch-level MAC vs per-target MAC (paper Sec. 3.2).

"While applying the MAC uniformly is sub-optimal for individual targets,
it is nearly optimal because the batch consists of localized target
particles; moreover the increased GPU performance that comes from
avoiding thread divergence more than compensates."

A per-target MAC is equivalent to singleton batches (batch radius zero):
slightly fewer kernel evaluations per target and slightly smaller error,
but catastrophic occupancy/launch overhead on the GPU.  We verify both
halves of the claim.
"""

import pytest

from conftest import write_result
from repro import (
    BarycentricTreecode,
    CoulombKernel,
    direct_sum,
    random_cube,
    relative_l2_error,
    TreecodeParams,
)
from repro.analysis import format_table


@pytest.fixture(scope="module")
def ablation():
    p = random_cube(3000, seed=31)
    ref = direct_sum(p.positions, p.positions, p.charges, CoulombKernel())
    out = {}
    for label, nb in (("batch-MAC (NB=200)", 200), ("per-target MAC (NB=1)", 1)):
        params = TreecodeParams(
            theta=0.7, degree=4, max_leaf_size=200, max_batch_size=nb
        )
        res = BarycentricTreecode(CoulombKernel(), params).compute(p)
        out[label] = {
            "res": res,
            "err": relative_l2_error(ref, res.potential),
        }
    return out


def test_batch_mac_regenerate(benchmark, ablation, results_dir):
    result = benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    rows = []
    for label, d in result.items():
        res = d["res"]
        rows.append(
            [label, d["err"], res.phases.compute,
             res.stats["launches"],
             res.stats["kernel_evaluations"]]
        )
    write_result(
        results_dir,
        "ablation_batch_mac.txt",
        format_table(
            ["mode", "error", "GPU compute (s)", "launches", "kernel evals"],
            rows,
            title="Batch-level vs per-target MAC (N=3000, theta=0.7, n=4)",
        ),
    )


def test_batch_mac_is_conservative(ablation):
    """The batch MAC inflates the criterion by the batch radius r_B, so
    it does *more* kernel evaluations than the per-target MAC (r_B = 0)
    and lands at a *smaller* error -- "sub-optimal for individual
    targets" in cost, conservative in accuracy (Sec. 3.2)."""
    batch = ablation["batch-MAC (NB=200)"]["res"]
    per_t = ablation["per-target MAC (NB=1)"]["res"]
    assert (
        per_t.stats["kernel_evaluations"]
        <= batch.stats["kernel_evaluations"] * 1.05
    )
    assert (
        ablation["batch-MAC (NB=200)"]["err"]
        <= ablation["per-target MAC (NB=1)"]["err"] + 1e-15
    )
    # Both stay within the accuracy class set by theta.
    assert ablation["per-target MAC (NB=1)"]["err"] < 1e-3


def test_batch_mac_wins_on_gpu_time(ablation):
    """...but the batched version is far faster on the GPU model."""
    batch = ablation["batch-MAC (NB=200)"]["res"]
    per_t = ablation["per-target MAC (NB=1)"]["res"]
    assert batch.phases.compute < per_t.phases.compute / 5.0
    assert batch.stats["launches"] < per_t.stats["launches"] / 10.0
