"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark regenerates one table/figure of the paper: it runs the
corresponding harness once (``benchmark.pedantic(rounds=1)`` -- these are
experiment harnesses, not micro-benchmarks), prints the same rows/series
the figure plots, writes them to ``benchmarks/results/``, and asserts the
paper's qualitative findings (who wins, by roughly what factor, where the
crossovers fall).

Environment knobs:

* ``REPRO_BENCH_SCALE=full`` -- run the full parameter sweeps (the
  default ``quick`` trims sweep points, not scales).
"""

import json
import os
import sys

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return bench_scale() == "full"


def write_result(results_dir: str, name: str, text: str) -> None:
    """Persist a rendered table and echo it to stdout."""
    path = os.path.join(results_dir, name)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    print(f"[written to {path}]")


def write_json(results_dir: str, name: str, payload) -> None:
    """Persist a machine-readable result (``BENCH_*.json``).

    The JSON sibling of :func:`write_result`: one file per benchmark
    holding a ``{"scale": ..., "rows": [...]}`` document whose rows
    carry at least regime / backend / wall-clock seconds / speedup, so
    the perf trajectory can be diffed across PRs without re-parsing the
    rendered tables.
    """
    path = os.path.join(results_dir, name)
    document = {"scale": bench_scale(), "rows": payload}
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[json written to {path}]")
