"""Batched-backend ablation: shape-bucketed GEMMs on far-field plans.

The standard far-field regime evaluates a target cloud displaced from
the source cube (BEM-style disjoint targets), so the MAC accepts nearly
every (batch, cluster) pair and the compiled plan is almost entirely
uniform ``(p+1)^3``-row approximation segments -- exactly the workload
conf_ipps_VaughnWK20 batches into large uniform kernel launches.  The
fused backend walks those thousands of identically shaped segments one
Python-loop group at a time; the batched backend collapses each shape
bucket into a few large stacked GEMMs.  Since the near field buckets
too (ragged direct runs are padded to a common row count with
zero-weight columns), the mixed and near-field-heavy regimes now hold
the same **>= 2x over fused** bar as the pure far field, and every
default regime must keep ``coverage() >= 0.95`` -- the ragged Python
fallback is a thin remainder, not a second execution path.

Scales: the default ``quick`` runs the full regimes; ``smoke`` (CI)
shrinks N but keeps every assertion.
"""

import time

import numpy as np
import pytest

from conftest import bench_scale, write_json, write_result
from repro import CoulombKernel, TreecodeParams, get_backend, random_cube
from repro.analysis import format_table
from repro.core.interaction_lists import build_interaction_lists
from repro.core.moments import precompute_moments
from repro.core.plan import compile_plan
from repro.gpu.device import GpuDevice
from repro.perf.machine import GPU_TITAN_V
from repro.tree.batches import TargetBatches
from repro.tree.octree import ClusterTree

SMOKE = bench_scale() == "smoke"

#: (label, n, theta, degree, NB=NL, target x-shift, compute_forces,
#:  min speedup asserted).  shift 2.5 fully separates the [-1,1]^3
#: clouds (pure far field); 2.2 leaves a near-field sliver and 0.0
#: overlaps the clouds completely, so most accepted pairs are direct
#: segments and the padded near-field buckets carry the plan (the
#: near-field regime observes ~2x but is direct-sum flop-bound, so its
#: asserted floor leaves timing headroom).  The deep (degree-3) regime
#: is flop-bound rather than overhead-bound -- its margin is
#: structurally small (~1.0-1.6x observed, shrinking with N), so it is
#: reported but not bounded.
REGIMES = [
    ("far-field", 8_000 if SMOKE else 40_000, 0.8, 2, 50, 2.5, False, 2.0),
    ("far-field deep", 8_000 if SMOKE else 30_000, 0.8, 3, 100, 2.5, False,
     None),
    ("near-far mix", 6_000 if SMOKE else 30_000, 0.8, 2, 60, 2.2, False,
     2.0),
    ("near-field heavy", 5_000 if SMOKE else 20_000, 0.6, 2, 40, 0.0, False,
     1.5),
    ("far-field forces", 6_000 if SMOKE else 15_000, 0.8, 2, 60, 2.5, True,
     1.2),
]
ROUNDS = 3
BACKENDS = ("fused", "batched")


def _compiled_plan(n, theta, degree, leaf, shift):
    sources = random_cube(n, seed=900)
    targets = random_cube(n, seed=901).positions + np.array([shift, 0.0, 0.0])
    params = TreecodeParams(
        theta=theta, degree=degree, max_leaf_size=leaf, max_batch_size=leaf
    )
    tree = ClusterTree(sources.positions, leaf)
    batches = TargetBatches(targets, leaf)
    moments = precompute_moments(tree, sources.charges, params)
    lists = build_interaction_lists(batches, tree, params)
    return compile_plan(
        tree, batches, moments, lists, sources.charges, params, batched=True
    )


def _time_backend(backend, plan, *, forces):
    kernel = CoulombKernel()
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        device = GpuDevice(GPU_TITAN_V)
        t0 = time.perf_counter()
        result = backend.execute(plan, kernel, device, compute_forces=forces)
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def batched_sweep():
    rows = []
    checks = []
    for label, n, theta, degree, leaf, shift, forces, min_speedup in REGIMES:
        plan = _compiled_plan(n, theta, degree, leaf, shift)
        layout = plan.batched_layout
        seconds = {}
        outputs = {}
        for name in BACKENDS:
            seconds[name], outputs[name] = _time_backend(
                get_backend(name), plan, forces=forces
            )
        phi32 = {
            name: get_backend(name).execute(
                plan, CoulombKernel(), GpuDevice(GPU_TITAN_V),
                dtype=np.float32,
            )[0]
            for name in BACKENDS
        }
        checks.append((label, outputs, phi32))
        rows.append(
            {
                "regime": label,
                "n": n,
                "degree": degree,
                "batch": leaf,
                "forces": forces,
                "groups": plan.n_groups,
                "buckets": len(layout.buckets),
                "ragged_runs": int(layout.ragged_runs.shape[0]),
                "batched_fraction": (
                    layout.batched_interactions() / plan.interactions_total()
                ),
                "coverage": layout.coverage(),
                "padding_waste": layout.padding_waste(),
                "seconds": seconds,
                "speedup": seconds["fused"] / seconds["batched"],
                "min_speedup": min_speedup,
            }
        )
    return rows, checks


def test_batched_regenerate(benchmark, batched_sweep, results_dir):
    rows, _ = benchmark.pedantic(lambda: batched_sweep, rounds=1, iterations=1)
    headers = [
        "regime", "N", "n", "NB", "groups", "buckets", "ragged",
        "coverage", "waste", "fused (s)", "batched (s)", "speedup",
    ]
    table = [
        [
            r["regime"], r["n"], r["degree"], r["batch"], r["groups"],
            r["buckets"], r["ragged_runs"], f"{r['coverage']:.3f}",
            f"{r['padding_waste']:.3f}",
            f"{r['seconds']['fused']:.3f}", f"{r['seconds']['batched']:.3f}",
            f"{r['speedup']:.2f}x",
        ]
        for r in rows
    ]
    text = format_table(
        headers,
        table,
        title=(
            "Batched-backend ablation -- wall-clock of one compiled "
            "plan (min of 3 rounds; fused = per-group Python loop over "
            "pre-gathered buffers, batched = shape-bucketed stacked "
            "GEMMs with zero-weight-padded near-field buckets and a "
            "thin ragged remainder)"
        ),
    )
    write_result(results_dir, "ablation_batched_backend.txt", text)
    write_json(
        results_dir,
        "BENCH_batched_backend.json",
        [
            {
                "regime": r["regime"],
                "n": r["n"],
                "degree": r["degree"],
                "batch": r["batch"],
                "forces": r["forces"],
                "groups": r["groups"],
                "buckets": r["buckets"],
                "ragged_runs": r["ragged_runs"],
                "batched_fraction": round(r["batched_fraction"], 4),
                "bucketed_row_fraction": round(r["coverage"], 4),
                "padding_waste": round(r["padding_waste"], 4),
                "seconds": {k: round(v, 6) for k, v in r["seconds"].items()},
                "batched_speedup_vs_fused": round(r["speedup"], 4),
            }
            for r in rows
        ],
    )


def test_batched_2x_on_far_field_regime(batched_sweep):
    """The acceptance bar: >= 2x over fused on the far-field regime."""
    rows, _ = batched_sweep
    far = next(r for r in rows if r["regime"] == "far-field")
    assert far["batched_fraction"] > 0.9, far
    assert far["speedup"] >= 2.0, far


def test_batched_2x_on_near_far_mix(batched_sweep):
    """With the near field bucketed, the mixed regime holds 2x too."""
    rows, _ = batched_sweep
    mix = next(r for r in rows if r["regime"] == "near-far mix")
    assert mix["speedup"] >= 2.0, mix


def test_batched_meets_per_regime_bounds(batched_sweep):
    """Every bounded regime must come out ahead of fused by its margin."""
    rows, _ = batched_sweep
    for r in rows:
        if r["min_speedup"] is not None:
            assert r["speedup"] >= r["min_speedup"], r


def test_coverage_at_least_95_percent(batched_sweep):
    """Bucketed rows must dominate: the ragged path is a remainder."""
    rows, _ = batched_sweep
    for r in rows:
        assert r["coverage"] >= 0.95, r
        assert 0.0 <= r["padding_waste"] <= 0.25, r


def test_batched_results_match_fused(batched_sweep):
    """The timing comparison is only meaningful if results agree."""
    rows, checks = batched_sweep
    for label, outputs, phi32 in checks:
        phi_f, f_f = outputs["fused"]
        phi_b, f_b = outputs["batched"]
        assert np.allclose(phi_f, phi_b, rtol=1e-8, atol=1e-10), label
        if f_f is not None:
            assert np.allclose(f_f, f_b, rtol=1e-7, atol=1e-8), label


def test_batched_float32_tracks_fused_float32(batched_sweep):
    """Padded buckets do not degrade single precision.

    The absolute f32 error is regime-dependent (the overlapping-cloud
    near-field regime has large signed cancellation, so *any* f32
    evaluation sits at ~3e-2 relative to f64 truth); the invariant the
    buckets must preserve is that batched f32 stays finite and as
    accurate against f64 truth as the fused reference, within 2x.
    """
    rows, checks = batched_sweep
    for label, outputs, phi32 in checks:
        phi64, _ = outputs["fused"]
        assert np.all(np.isfinite(phi32["batched"])), label
        scale = np.linalg.norm(phi64)
        rel = {
            name: np.linalg.norm(phi32[name] - phi64) / scale
            for name in BACKENDS
        }
        assert rel["batched"] < 2 * rel["fused"] + 1e-7, (label, rel)
