"""Ablation: asynchronous streams (paper Sec. 3.2).

"Asynchronous streams reduce the computation time in a typical case by
about 25%" for the 1M-particle test.  We run the paper-scale dry run with
async queueing on and off and check the improvement band.
"""

import pytest

from conftest import write_result
from repro import (
    BarycentricTreecode,
    CoulombKernel,
    GPU_TITAN_V,
    TreecodeParams,
    random_cube,
)
from repro.analysis import format_table


@pytest.fixture(scope="module")
def ablation():
    # NL = 2187 is the paper's NL = 2000 with headroom so the octree
    # lands exactly as theirs did (1M / 8^3 = 1953-particle leaves);
    # NL = 2000 exactly would fragment ~half the leaves and double the
    # launch count, overstating the async-stream gain.
    params = TreecodeParams(
        theta=0.8, degree=8, max_leaf_size=2187, max_batch_size=2187
    )
    p = random_cube(1_000_000, seed=21)
    out = {}
    for mode, async_streams in (("async-4-streams", True), ("synchronous", False)):
        res = BarycentricTreecode(
            CoulombKernel(), params, machine=GPU_TITAN_V,
            async_streams=async_streams,
        ).compute(p, dry_run=True)
        out[mode] = res
    return out


def test_async_streams_regenerate(benchmark, ablation, results_dir):
    result = benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    rows = []
    for mode, res in result.items():
        rows.append(
            [mode, res.phases.compute, res.phases.total,
             res.stats["launches"]]
        )
    sync = result["synchronous"].phases.compute
    fast = result["async-4-streams"].phases.compute
    rows.append(
        ["improvement", (sync - fast) / sync, 0.0, 0]
    )
    write_result(
        results_dir,
        "ablation_async_streams.txt",
        format_table(
            ["mode", "compute (s)", "total (s)", "launches"],
            rows,
            title=(
                "Async-stream ablation, 1M particles, theta=0.8, n=8 "
                "(paper: ~25% compute-time reduction)"
            ),
        ),
    )


def test_async_improvement_in_paper_band(ablation):
    sync = ablation["synchronous"].phases.compute
    fast = ablation["async-4-streams"].phases.compute
    improvement = (sync - fast) / sync
    # Paper reports ~25%; accept a 10-45% band for the model.
    assert 0.10 < improvement < 0.45, improvement
