"""Smoke tests: every example script runs end-to-end at reduced size."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _run(script: str, *args: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script), *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py", "3000")
        assert "relative 2-norm error" in out

    def test_yukawa(self):
        out = _run("yukawa_screened_electrostatics.py", "2500")
        assert "yukawa/coulomb" in out.lower()

    def test_gravity(self):
        out = _run("gravitational_nbody.py", "2500")
        assert "Plummer theory" in out

    def test_multi_gpu(self):
        out = _run("multi_gpu_weak_scaling.py", "1500", "4")
        assert "Weak scaling" in out

    def test_custom_kernel(self):
        out = _run("custom_kernel_bem.py", "4000")
        assert "screened-multiquadric" in out

    def test_dynamics(self):
        out = _run("nbody_dynamics.py", "800", "6")
        assert "conserve energy" in out

    def test_repeated_evaluation(self):
        out = _run("repeated_evaluation.py", "2000", "4")
        assert "bitwise-identical" in out
