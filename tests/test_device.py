"""Tests for the simulated execution devices (repro.gpu.device)."""

import pytest

from repro.gpu.device import CpuDevice, GpuDevice, make_device
from repro.perf.machine import CPU_XEON_X5650, GPU_P100, GPU_TITAN_V


class TestConstruction:
    def test_make_device_dispatch(self):
        assert isinstance(make_device(GPU_TITAN_V), GpuDevice)
        assert isinstance(make_device(CPU_XEON_X5650), CpuDevice)

    def test_kind_mismatch(self):
        with pytest.raises(ValueError):
            GpuDevice(CPU_XEON_X5650)
        with pytest.raises(ValueError):
            CpuDevice(GPU_TITAN_V)


class TestGpuDevice:
    def test_async_hides_launch_latency(self):
        """Sec. 3.2: asynchronous streams overlap launch initialization
        with computation; the synchronous baseline pays it serially."""
        def run(async_streams):
            dev = GpuDevice(GPU_TITAN_V, async_streams=async_streams)
            for _ in range(1000):
                dev.launch(1e6, blocks=2000)
            return dev.elapsed()

        sync = run(False)
        async_ = run(True)
        assert async_ < sync
        # The hidden portion is (1 - 1/n_streams) of total launch latency.
        hidden = 1000 * GPU_TITAN_V.launch_latency * (
            1 - 1 / GPU_TITAN_V.n_streams
        )
        assert sync - async_ == pytest.approx(
            hidden - GPU_TITAN_V.launch_latency, rel=1e-6
        )

    def test_compute_time_matches_spec(self):
        dev = GpuDevice(GPU_TITAN_V, async_streams=False)
        dev.launch(GPU_TITAN_V.interaction_rate, blocks=10**6)
        t = dev.elapsed()
        assert t == pytest.approx(1.0 + GPU_TITAN_V.launch_latency)

    def test_occupancy_penalty_applies(self):
        work = 1e8
        full = GpuDevice(GPU_TITAN_V, async_streams=False)
        full.launch(work, blocks=GPU_TITAN_V.saturation_blocks)
        tiny = GpuDevice(GPU_TITAN_V, async_streams=False)
        tiny.launch(work, blocks=8)
        assert tiny.elapsed() > full.elapsed()

    def test_transfers_accounted(self):
        dev = GpuDevice(GPU_TITAN_V)
        dev.upload(1 << 20)
        dev.download(1 << 20)
        assert dev.counters.bytes_h2d == 1 << 20
        assert dev.counters.bytes_d2h == 1 << 20
        assert dev.elapsed() == pytest.approx(
            2 * GPU_TITAN_V.transfer_time(1 << 20)
        )

    def test_transfer_synchronizes_queue(self):
        dev = GpuDevice(GPU_TITAN_V, async_streams=True)
        dev.launch(1e6, blocks=100)
        dev.download(8)  # must drain the stream first
        t_after_sync = dev.time
        assert t_after_sync > 0.0

    def test_take_phase_deltas(self):
        dev = GpuDevice(GPU_TITAN_V, async_streams=False)
        dev.launch(1e9, blocks=10**5)
        p1 = dev.take_phase()
        dev.launch(2e9, blocks=10**5)
        p2 = dev.take_phase()
        assert p1 > 0 and p2 > 0
        assert dev.elapsed() == pytest.approx(p1 + p2)
        assert dev.take_phase() == 0.0

    def test_counters_by_kind(self):
        dev = GpuDevice(GPU_TITAN_V)
        dev.launch(10.0, blocks=1, kind="approx")
        dev.launch(20.0, blocks=1, kind="approx")
        dev.launch(5.0, blocks=1, kind="direct")
        assert dev.counters.by_kind["approx"] == [2, 30.0]
        assert dev.counters.by_kind["direct"] == [1, 5.0]
        assert dev.counters.launches == 3

    def test_cost_multiplier_scales_time(self):
        a = GpuDevice(GPU_TITAN_V, async_streams=False)
        a.launch(1e9, blocks=10**5, cost_multiplier=1.0)
        b = GpuDevice(GPU_TITAN_V, async_streams=False)
        b.launch(1e9, blocks=10**5, cost_multiplier=1.5)
        ratio = (b.elapsed() - GPU_TITAN_V.launch_latency) / (
            a.elapsed() - GPU_TITAN_V.launch_latency
        )
        assert ratio == pytest.approx(1.5)

    def test_comm_wait(self):
        dev = GpuDevice(GPU_P100)
        dev.comm_wait(0.25)
        assert dev.elapsed() == pytest.approx(0.25)


class TestCpuDevice:
    def test_no_launch_latency(self):
        dev = CpuDevice(CPU_XEON_X5650)
        dev.launch(CPU_XEON_X5650.interaction_rate, blocks=100)
        assert dev.elapsed() == pytest.approx(1.0)

    def test_transfers_free(self):
        dev = CpuDevice(CPU_XEON_X5650)
        dev.upload(1 << 30)
        dev.download(1 << 30)
        assert dev.elapsed() == 0.0

    def test_host_work(self):
        dev = CpuDevice(CPU_XEON_X5650)
        dev.host_work(CPU_XEON_X5650.host_op_rate)
        assert dev.elapsed() == pytest.approx(1.0)

    def test_gpu_vs_cpu_treecode_ratio(self):
        """Same workload must run >= 100x faster on the GPU model."""
        work = 1e12
        gpu = GpuDevice(GPU_TITAN_V)
        gpu.launch(work, blocks=10**6)
        cpu = CpuDevice(CPU_XEON_X5650)
        cpu.launch(work, blocks=10**6)
        assert cpu.elapsed() / gpu.elapsed() >= 100.0
