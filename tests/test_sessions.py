"""The prepared-session seam: prepare()/apply() across every driver.

Contracts under test:

* ``compute()`` IS ``prepare()`` + one ``apply()`` -- bitwise-identical
  potentials/forces on every executing backend and both dtypes.
* a second ``apply()`` with mutated charges equals a fresh ``compute()``
  with those charges bitwise, and charges **zero setup-phase device
  time** (the amortization the session exists for).
* ``refresh_weights`` rewrites the plan's weight buffer in place and
  bumps the version (the multiprocessing backend refreshes its cached
  shared-memory block instead of re-shipping the plan).
* dry-run applies run the model backend on a prepared session.
* the distributed session reuses the RCB partition and LET geometry and
  re-ships only charges.
* both extension schemes expose the same session seam.
"""

import numpy as np
import pytest

from repro import (
    BarycentricTreecode,
    ClusterParticleTreecode,
    CoulombKernel,
    DistributedBLTC,
    DualTreeTreecode,
    MultiprocessingBackend,
    ParticleSet,
    TreecodeParams,
    YukawaKernel,
    charge_waveform,
    random_cube,
)
from repro.core.backends.numba_backend import NUMBA_AVAILABLE
from repro.core.plan import PlanBuilder

EXEC_BACKENDS = ["numpy", "fused", "batched", "multiprocessing"] + (
    ["numba"] if NUMBA_AVAILABLE else []
)


def _params(**kw):
    base = dict(theta=0.7, degree=4, max_leaf_size=150, max_batch_size=150)
    base.update(kw)
    return TreecodeParams(**base)


@pytest.fixture(scope="module")
def cube():
    return random_cube(2000, seed=71)


@pytest.fixture(scope="module")
def new_charges(cube):
    rng = np.random.default_rng(72)
    return rng.uniform(-1.0, 1.0, cube.n)


class TestSingleDeviceSession:
    @pytest.mark.parametrize("backend", EXEC_BACKENDS)
    @pytest.mark.parametrize(
        "dtype", [np.float64, np.float32], ids=["f64", "f32"]
    )
    def test_apply_matches_fresh_compute_bitwise(
        self, cube, new_charges, backend, dtype
    ):
        params = _params(backend=backend, dtype=dtype)
        tc = BarycentricTreecode(YukawaKernel(0.5), params)
        prepared = tc.prepare(cube)
        forces = dtype is np.float64  # one force pass is enough
        first = prepared.apply(cube.charges, compute_forces=forces)
        ref = tc.compute(cube, compute_forces=forces)
        assert np.array_equal(first.potential, ref.potential)
        if forces:
            assert np.array_equal(first.forces, ref.forces)
        # Charge refresh: same geometry, new charges.
        second = prepared.apply(new_charges, compute_forces=forces)
        ref2 = tc.compute(
            ParticleSet(cube.positions, new_charges), compute_forces=forces
        )
        assert np.array_equal(second.potential, ref2.potential)
        if forces:
            assert np.array_equal(second.forces, ref2.forces)

    def test_compute_is_prepare_plus_apply(self, cube):
        params = _params()
        tc = BarycentricTreecode(CoulombKernel(), params)
        res = tc.compute(cube, compute_forces=True)
        prepared = tc.prepare(cube)
        manual = prepared.apply(cube.charges, compute_forces=True)
        assert np.array_equal(res.potential, manual.potential)
        assert np.array_equal(res.forces, manual.forces)
        # compute() phases == prepare phases + apply phases.
        assert res.phases.setup == prepared.phases.setup
        assert res.phases.precompute == manual.phases.precompute
        assert res.phases.compute == manual.phases.compute
        # First apply reports the monolithic counters exactly.
        ref_stats = {k: v for k, v in res.stats.items() if k != "n_applies"}
        man_stats = {k: v for k, v in manual.stats.items() if k != "n_applies"}
        assert ref_stats == man_stats

    def test_second_apply_charges_no_setup_time(self, cube, new_charges):
        prepared = BarycentricTreecode(
            CoulombKernel(), _params(backend="fused")
        ).prepare(cube)
        first = prepared.apply(cube.charges)
        second = prepared.apply(new_charges)
        assert first.phases.setup == 0.0
        assert second.phases.setup == 0.0
        # An apply re-ships only the charge vector: its precompute phase
        # is strictly cheaper than the first (full source upload) one.
        assert second.phases.precompute < first.phases.precompute
        # ... and strictly cheaper than a whole fresh pipeline.
        fresh = BarycentricTreecode(
            CoulombKernel(), _params(backend="fused")
        ).compute(ParticleSet(cube.positions, new_charges))
        assert second.phases.total < fresh.phases.total
        assert second.stats["n_applies"] == 2

    def test_session_device_accumulates(self, cube, new_charges):
        prepared = BarycentricTreecode(
            CoulombKernel(), _params()
        ).prepare(cube)
        a = prepared.apply(cube.charges)
        b = prepared.apply(new_charges)
        assert b.stats["launches"] > a.stats["launches"]

    def test_dry_run_apply_on_prepared_session(self, cube):
        prepared = BarycentricTreecode(
            CoulombKernel(), _params(backend="fused")
        ).prepare(cube)
        dry = prepared.apply(cube.charges, dry_run=True)
        assert np.all(dry.potential == 0.0)
        assert dry.phases.setup == 0.0
        assert dry.phases.compute > 0.0
        # A later real apply on the same session is still exact.
        real = prepared.apply(cube.charges)
        ref = BarycentricTreecode(
            CoulombKernel(), _params(backend="fused")
        ).compute(cube)
        assert np.array_equal(real.potential, ref.potential)

    def test_dry_prepared_session_runs_model(self, cube):
        tc = BarycentricTreecode(CoulombKernel(), _params())
        prepared = tc.prepare(cube, dry_run=True)
        res = prepared.apply(cube.charges, dry_run=True)
        ref = tc.compute(cube, dry_run=True)
        assert np.all(res.potential == 0.0)
        assert res.stats["launches"] == ref.stats["launches"]
        assert res.stats["kernel_evaluations"] == pytest.approx(
            ref.stats["kernel_evaluations"]
        )
        assert (
            prepared.phases.total + res.phases.total
            == pytest.approx(ref.phases.total)
        )

    def test_apply_rejects_wrong_length(self, cube):
        prepared = BarycentricTreecode(
            CoulombKernel(), _params()
        ).prepare(cube)
        with pytest.raises(ValueError, match="charges"):
            prepared.apply(np.ones(cube.n + 1))

    def test_waveform_steps_stay_exact(self, cube):
        params = _params(backend="fused")
        tc = BarycentricTreecode(CoulombKernel(), params)
        prepared = tc.prepare(cube)
        for charges in charge_waveform(cube, 3, seed=5):
            res = prepared.apply(charges)
            ref = tc.compute(ParticleSet(cube.positions, charges))
            assert np.array_equal(res.potential, ref.potential)

    def test_yukawa_session_refresh(self, cube, new_charges):
        params = _params(backend="fused")
        tc = BarycentricTreecode(YukawaKernel(0.5), params)
        prepared = tc.prepare(cube)
        prepared.apply(cube.charges)
        res = prepared.apply(new_charges)
        ref = tc.compute(ParticleSet(cube.positions, new_charges))
        assert np.array_equal(res.potential, ref.potential)


class TestBatchedSession:
    """apply()/refresh_weights on plans carrying the bucketed layout."""

    def test_repeated_applies_bitwise_equal(self, cube):
        # The acceptance contract: a prepared batched session is
        # bitwise-reproducible across applies of the same charges.
        params = _params(backend="batched", batched=True)
        prepared = BarycentricTreecode(YukawaKernel(0.5), params).prepare(cube)
        assert prepared.plan.batched_layout is not None
        a = prepared.apply(cube.charges, compute_forces=True)
        b = prepared.apply(cube.charges, compute_forces=True)
        assert np.array_equal(a.potential, b.potential)
        assert np.array_equal(a.forces, b.forces)

    def test_charge_refresh_matches_fresh_compute(self, cube, new_charges):
        params = _params(backend="batched", batched=True)
        tc = BarycentricTreecode(CoulombKernel(), params)
        prepared = tc.prepare(cube)
        prepared.apply(cube.charges)
        res = prepared.apply(new_charges)
        ref = tc.compute(ParticleSet(cube.positions, new_charges))
        assert np.array_equal(res.potential, ref.potential)

    def test_refresh_rewrites_bucket_weight_views(self, cube):
        # After every apply the bucket weight matrices must equal a
        # fresh gather from the flat (refreshed) weight buffer.
        params = _params(backend="batched", batched=True)
        prepared = BarycentricTreecode(CoulombKernel(), params).prepare(cube)
        plan = prepared.plan
        layout = plan.batched_layout
        assert layout.buckets
        for bucket in layout.buckets:  # deferred skeleton: still zeroed
            assert np.all(bucket.weights == 0.0)
        prepared.apply(cube.charges)
        for bucket in layout.buckets:
            expect = plan.src_weights[bucket.src_index]
            if bucket.src_valid is not None:
                # Padded buckets gather only their valid columns; the
                # zero-weight pads never pick up the repeated row's
                # charge.
                expect = np.where(bucket.src_valid, expect, 0.0)
            assert np.array_equal(bucket.weights, expect)
            assert np.any(bucket.weights != 0.0)

    def test_lazy_layout_session_without_params_flag(self, cube):
        # backend="batched" alone: the layout is built on first execute
        # and weight refreshes keep maintaining it afterwards.
        params = _params(backend="batched")
        tc = BarycentricTreecode(CoulombKernel(), params)
        prepared = tc.prepare(cube)
        assert prepared.plan.batched_layout is None
        first = prepared.apply(cube.charges)
        assert prepared.plan.batched_layout is not None
        rng = np.random.default_rng(3)
        q2 = rng.uniform(-1.0, 1.0, cube.n)
        res = prepared.apply(q2)
        ref = tc.compute(ParticleSet(cube.positions, q2))
        assert np.array_equal(res.potential, ref.potential)
        assert np.array_equal(
            first.potential, tc.compute(cube).potential
        )

    def test_yukawa_batched_session_refresh(self, cube, new_charges):
        params = _params(backend="batched", batched=True)
        tc = BarycentricTreecode(YukawaKernel(0.5), params)
        prepared = tc.prepare(cube)
        prepared.apply(cube.charges)
        res = prepared.apply(new_charges)
        ref = tc.compute(ParticleSet(cube.positions, new_charges))
        assert np.array_equal(res.potential, ref.potential)


class TestWeightRefresh:
    """The plan-level geometry/weight split."""

    def _plan(self, *, deferred=False):
        b = PlanBuilder(4, numerics=True, deferred_weights=deferred)
        pts_a = np.arange(6.0).reshape(2, 3)
        pts_b = np.arange(6.0, 15.0).reshape(3, 3)
        b.add_group(targets=np.zeros((2, 3)), out_index=np.array([0, 1]))
        b.add_segment(
            "direct", points=pts_a,
            weights=None if deferred else np.array([1.0, 2.0]),
            share_key="a",
        )
        b.add_group(targets=np.zeros((2, 3)), out_index=np.array([2, 3]))
        b.add_segment("direct", share_key="a")
        b.add_segment(
            "approx", points=pts_b,
            weights=None if deferred else np.array([3.0, 4.0, 5.0]),
            share_key="b",
        )
        return b.build()

    def test_refresh_overwrites_every_alias(self):
        plan = self._plan()
        assert plan.refreshable
        weights = {"a": np.array([10.0, 20.0]), "b": np.array([30.0, 40.0, 50.0])}
        v0 = plan.weights_version
        plan.refresh_weights(lambda k: weights[k])
        assert plan.weights_version == v0 + 1
        for s in range(plan.n_segments):
            lo, hi = plan.segment_source_range(s)
            expected = weights["a" if hi - lo == 2 else "b"]
            assert np.array_equal(plan.src_weights[lo:hi], expected)

    def test_deferred_plan_starts_zeroed(self):
        plan = self._plan(deferred=True)
        assert plan.refreshable
        assert np.all(plan.src_weights == 0.0)
        plan.refresh_weights(
            lambda k: {"a": np.ones(2), "b": np.ones(3)}[k]
        )
        assert np.all(plan.src_weights == 1.0)

    def test_deferred_requires_share_key(self):
        b = PlanBuilder(2, numerics=True, deferred_weights=True)
        b.add_group(targets=np.zeros((2, 3)), out_index=np.array([0, 1]))
        with pytest.raises(ValueError, match="share_key"):
            b.add_segment("direct", points=np.zeros((2, 3)))

    def test_keyless_plan_not_refreshable(self):
        b = PlanBuilder(2, numerics=True)
        b.add_group(targets=np.zeros((2, 3)), out_index=np.array([0, 1]))
        b.add_segment(
            "direct", points=np.zeros((2, 3)), weights=np.zeros(2)
        )
        plan = b.build()
        assert not plan.refreshable
        with pytest.raises(ValueError, match="share_key"):
            plan.refresh_weights(lambda k: np.zeros(2))

    def test_refresh_validates_row_count(self):
        plan = self._plan()
        with pytest.raises(ValueError, match="rows"):
            plan.refresh_weights(lambda k: np.zeros(7))

    def test_model_plan_has_no_weights(self):
        b = PlanBuilder(4, numerics=False)
        b.add_group(size=2)
        b.add_segment("direct", size=2)
        plan = b.build()
        with pytest.raises(ValueError, match="model-only"):
            plan.refresh_weights(lambda k: np.zeros(2))

    def test_multiprocessing_shipment_refreshes_in_place(self, cube):
        # Pool-sharded execution of the SAME plan object across a weight
        # refresh must pick up the new weights from the cached
        # shared-memory block (version bump), not stale ones.
        params = _params(backend="fused")
        tc = BarycentricTreecode(YukawaKernel(0.5), params)
        prepared = tc.prepare(cube)
        backend = MultiprocessingBackend(n_workers=2, min_parallel_rows=1)
        try:
            from repro.gpu.device import GpuDevice
            from repro.perf.machine import GPU_TITAN_V

            prepared.apply(cube.charges)  # fills the deferred weights
            phi1, _ = backend.execute(
                prepared.plan, YukawaKernel(0.5), GpuDevice(GPU_TITAN_V)
            )
            rng = np.random.default_rng(3)
            q2 = rng.uniform(-1, 1, cube.n)
            prepared.apply(q2)  # refreshes weights in place
            phi2, _ = backend.execute(
                prepared.plan, YukawaKernel(0.5), GpuDevice(GPU_TITAN_V)
            )
        finally:
            backend.close()
        ref1 = tc.compute(cube)
        ref2 = tc.compute(ParticleSet(cube.positions, q2))
        assert np.array_equal(phi1, ref1.potential)
        assert np.array_equal(phi2, ref2.potential)
        assert not np.array_equal(phi1, phi2)


class TestFusedPairwisePrimitive:
    """The temporary-free r^2 accumulation (fused-only path)."""

    def test_matches_reference_to_roundoff(self):
        cube = random_cube(800, seed=9)
        t, s = cube.positions[:300], cube.positions[300:]
        for k in (CoulombKernel(), YukawaKernel(0.5)):
            ref = k.pairwise(t, s)
            fus = k.pairwise_fused(t, s)
            assert np.allclose(ref, fus, rtol=1e-9, atol=1e-12)

    def test_coincident_pairs_identical_classification(self):
        k = CoulombKernel()
        pts = np.array([[0.25, 0.5, 0.75], [0.5, 0.5, 0.5]])
        ref = k.pairwise(pts, pts)
        fus = k.pairwise_fused(pts, pts)
        assert ref[0, 0] == fus[0, 0] == k.evaluate_r0()
        assert ref[1, 1] == fus[1, 1] == k.evaluate_r0()
        assert np.isfinite(fus).all()

    def test_reference_path_untouched_by_flag(self):
        cube = random_cube(500, seed=10)
        k = CoulombKernel()
        a = k.potential(cube.positions, cube.positions, cube.charges)
        b = k.potential(
            cube.positions, cube.positions, cube.charges, fused=False
        )
        assert np.array_equal(a, b)

    def test_fused_potential_and_force_close(self):
        cube = random_cube(700, seed=12)
        k = YukawaKernel(0.5)
        pot_ref = k.potential(cube.positions, cube.positions, cube.charges)
        pot_fus = k.potential(
            cube.positions, cube.positions, cube.charges, fused=True
        )
        assert np.allclose(pot_ref, pot_fus, rtol=1e-9, atol=1e-12)
        f_ref = k.force(cube.positions, cube.positions, cube.charges)
        f_fus = k.force(
            cube.positions, cube.positions, cube.charges, fused=True
        )
        assert np.allclose(f_ref, f_fus, rtol=1e-8, atol=1e-11)

    def test_kernel_without_fused_support_falls_back(self):
        class Plain(CoulombKernel):
            supports_fused_pairwise = False

        cube = random_cube(300, seed=13)
        k = Plain()
        a = k.potential(cube.positions, cube.positions, cube.charges)
        b = k.potential(
            cube.positions, cube.positions, cube.charges, fused=True
        )
        assert np.array_equal(a, b)


class TestVectorizedLetBytes:
    def test_matches_set_based_accounting(self, cube):
        from repro.core.interaction_lists import build_interaction_lists
        from repro.tree.batches import TargetBatches
        from repro.tree.octree import ClusterTree

        params = _params()
        tree = ClusterTree(cube.positions, params.max_leaf_size)
        batches = TargetBatches(cube.positions, params.max_batch_size)
        lists = build_interaction_lists(batches, tree, params)
        # Reference: the original per-entry Python set loops.
        direct_nodes, approx_nodes = set(), set()
        for d in lists.direct:
            direct_nodes.update(int(c) for c in d)
        for a in lists.approx:
            approx_nodes.update(int(c) for c in a)
        expected = (
            sum(tree.nodes[c].count for c in direct_nodes) * 4 * 8
            + len(approx_nodes) * params.n_interpolation_points * 8
        )
        assert (
            BarycentricTreecode._let_bytes(tree, lists, params) == expected
        )


class TestDistributedSession:
    @pytest.fixture(scope="class")
    def big(self):
        return random_cube(4000, seed=73)

    def test_apply_matches_compute_bitwise(self, big, new_charges_big):
        params = _params()
        d = DistributedBLTC(CoulombKernel(), params, n_ranks=3)
        ref = d.compute(big, compute_forces=True)
        sess = d.prepare(big)
        res = sess.apply(big.charges, compute_forces=True)
        assert np.array_equal(ref.potential, res.potential)
        assert np.array_equal(ref.forces, res.forces)
        # First apply reproduces the monolithic RMA traffic exactly.
        assert (
            ref.stats["total_rma_bytes"] == res.stats["total_rma_bytes"]
        )
        # Refresh: only charges travel; result still exact.
        rma_before = res.stats["total_rma_bytes"]
        res2 = sess.apply(new_charges_big)
        fresh = d.compute(ParticleSet(big.positions, new_charges_big))
        assert np.array_equal(fresh.potential, res2.potential)
        reship = res2.stats["total_rma_bytes"] - rma_before
        assert 0 < reship < rma_before  # strictly less than a full LET
        assert all(p.setup == 0.0 for p in res2.rank_phases)
        assert res2.total_seconds < fresh.total_seconds

    @pytest.fixture(scope="class")
    def new_charges_big(self, big):
        rng = np.random.default_rng(74)
        return rng.uniform(-1.0, 1.0, big.n)

    @pytest.mark.parametrize("backend", ["fused", "multiprocessing"])
    def test_backend_sessions_match_compute(self, big, backend):
        params = _params(backend=backend)
        d = DistributedBLTC(YukawaKernel(0.5), params, n_ranks=2)
        ref = d.compute(big)
        res = d.prepare(big).apply(big.charges)
        assert np.array_equal(ref.potential, res.potential)

    def test_dry_run_session(self, big):
        d = DistributedBLTC(CoulombKernel(), _params(), n_ranks=2)
        sess = d.prepare(big, dry_run=True)
        res = sess.apply(big.charges, dry_run=True)
        ref = d.compute(big, dry_run=True)
        assert np.all(res.potential == 0.0)
        launches = lambda r: [  # noqa: E731
            p["launches"] for p in r.stats["per_rank"]
        ]
        assert launches(res) == launches(ref)

    def test_overlap_comm_session(self, big):
        d = DistributedBLTC(
            CoulombKernel(), _params(), n_ranks=2, overlap_comm=True
        )
        sess = d.prepare(big)
        res = sess.apply(big.charges)
        ref = d.compute(big)
        assert np.array_equal(ref.potential, res.potential)


class TestExtensionSessions:
    def test_cluster_particle_session(self):
        srcs = random_cube(900, seed=75)
        tgts = random_cube(2400, seed=76)
        params = _params()
        cp = ClusterParticleTreecode(CoulombKernel(), params)
        sess = cp.prepare(srcs, tgts)
        res = sess.apply(srcs.charges)
        ref = cp.compute(srcs, tgts)
        assert np.array_equal(ref.potential, res.potential)
        rng = np.random.default_rng(77)
        q2 = rng.uniform(-1, 1, srcs.n)
        res2 = sess.apply(q2)
        fresh = cp.compute(ParticleSet(srcs.positions, q2), tgts)
        assert np.array_equal(fresh.potential, res2.potential)
        assert res2.phases.setup == 0.0
        assert res2.phases.total < fresh.phases.total

    def test_dual_tree_session(self):
        cube = random_cube(2600, seed=78)
        params = _params(degree=3, max_leaf_size=120, max_batch_size=120)
        dt = DualTreeTreecode(YukawaKernel(0.5), params)
        sess = dt.prepare(cube)
        res = sess.apply(cube.charges)
        ref = dt.compute(cube)
        assert np.array_equal(ref.potential, res.potential)
        rng = np.random.default_rng(79)
        q2 = rng.uniform(-1, 1, cube.n)
        res2 = sess.apply(q2)
        fresh = dt.compute(ParticleSet(cube.positions, q2))
        assert np.array_equal(fresh.potential, res2.potential)
        assert res2.phases.setup == 0.0

    def test_extension_sessions_reject_bad_length(self):
        cube = random_cube(600, seed=80)
        cp = ClusterParticleTreecode(CoulombKernel(), _params())
        with pytest.raises(ValueError, match="charges"):
            cp.prepare(cube).apply(np.ones(3))
        dt = DualTreeTreecode(CoulombKernel(), _params())
        with pytest.raises(ValueError, match="charges"):
            dt.prepare(cube).apply(np.ones(3))


class TestChargeWaveform:
    def test_deterministic_and_shaped(self, cube):
        a = list(charge_waveform(cube, 4, seed=1))
        b = list(charge_waveform(cube, 4, seed=1))
        assert len(a) == 4
        for qa, qb in zip(a, b):
            assert qa.shape == (cube.n,)
            assert np.array_equal(qa, qb)
        # Different steps really differ.
        assert not np.array_equal(a[0], a[1])

    def test_validation(self, cube):
        with pytest.raises(ValueError, match="steps"):
            list(charge_waveform(cube, 0))
        with pytest.raises(ValueError, match="amplitude"):
            list(charge_waveform(cube, 2, amplitude=-0.1))
