"""Unit tests for repro.workloads."""

import numpy as np
import pytest

from repro.workloads import (
    ParticleSet,
    gaussian_clusters,
    plummer_sphere,
    random_cube,
    sphere_surface,
)


class TestParticleSet:
    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((3, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((3, 3)), np.zeros(4))

    def test_len_and_n(self):
        p = random_cube(17, seed=0)
        assert len(p) == 17 and p.n == 17

    def test_subset_preserves_pairs(self):
        p = random_cube(30, seed=0)
        s = p.subset(np.array([3, 7, 11]))
        assert np.array_equal(s.positions, p.positions[[3, 7, 11]])
        assert np.array_equal(s.charges, p.charges[[3, 7, 11]])

    def test_nbytes(self):
        p = random_cube(10, seed=0)
        assert p.nbytes() == 10 * 3 * 8 + 10 * 8


class TestRandomCube:
    def test_bounds(self):
        p = random_cube(500, seed=1)
        assert np.all(p.positions >= -1.0) and np.all(p.positions <= 1.0)
        assert np.all(p.charges >= -1.0) and np.all(p.charges <= 1.0)

    def test_deterministic_by_seed(self):
        a = random_cube(100, seed=9)
        b = random_cube(100, seed=9)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.charges, b.charges)

    def test_custom_box(self):
        p = random_cube(200, seed=2, low=0.0, high=2.0)
        assert p.positions.min() >= 0.0 and p.positions.max() <= 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            random_cube(0)


class TestPlummer:
    def test_equal_masses_sum_to_total(self):
        p = plummer_sphere(400, seed=3, total_mass=2.0)
        assert np.allclose(p.charges, 2.0 / 400)
        assert p.charges.sum() == pytest.approx(2.0)

    def test_centrally_concentrated(self):
        p = plummer_sphere(5000, seed=4, scale=1.0)
        r = np.linalg.norm(p.positions, axis=1)
        # Plummer half-mass radius ~ 1.3 * scale.
        assert np.median(r) < 2.5

    def test_finite(self):
        p = plummer_sphere(1000, seed=5)
        assert np.all(np.isfinite(p.positions))


class TestGaussianClusters:
    def test_shape_and_charges(self):
        p = gaussian_clusters(300, n_clusters=4, seed=6)
        assert p.n == 300
        assert np.all(np.abs(p.charges) <= 1.0)

    def test_clustered_tighter_than_uniform(self):
        p = gaussian_clusters(2000, n_clusters=3, seed=7, spread=0.01)
        # Nearest-cluster-center spread should be tiny compared to the box.
        from scipy.spatial import cKDTree

        tree = cKDTree(p.positions)
        d, _ = tree.query(p.positions, k=2)
        assert np.median(d[:, 1]) < 0.05

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gaussian_clusters(0)
        with pytest.raises(ValueError):
            gaussian_clusters(10, n_clusters=0)


class TestSphereSurface:
    def test_on_sphere(self):
        p = sphere_surface(500, seed=8, radius=2.0)
        r = np.linalg.norm(p.positions, axis=1)
        assert np.allclose(r, 2.0)

    def test_roughly_isotropic(self):
        p = sphere_surface(20000, seed=9)
        mean = p.positions.mean(axis=0)
        assert np.all(np.abs(mean) < 0.05)
