"""Unit and property tests for repro.partition.rcb."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import partition_sizes, rcb_partition
from repro.workloads import gaussian_clusters, random_cube


class TestPartitionSizes:
    def test_even(self):
        assert np.array_equal(partition_sizes(12, 4), [3, 3, 3, 3])

    def test_uneven(self):
        assert np.array_equal(partition_sizes(13, 4), [4, 3, 3, 3])

    def test_six_parts_of_unit_square(self):
        """Fig. 2b: six partitions, each with 1/6 of the load."""
        sizes = partition_sizes(6000, 6)
        assert np.all(sizes == 1000)

    def test_invalid(self):
        with pytest.raises(ValueError):
            partition_sizes(5, 0)


class TestRcb:
    @pytest.mark.parametrize("parts", [1, 2, 3, 4, 6, 7, 8, 32])
    def test_balance(self, parts):
        p = random_cube(3200, seed=0)
        labels = rcb_partition(p.positions, parts)
        counts = np.bincount(labels, minlength=parts)
        assert counts.max() - counts.min() <= parts  # near-perfect balance
        assert counts.sum() == 3200
        assert set(np.unique(labels)) == set(range(parts))

    def test_exact_balance_power_of_two(self):
        p = random_cube(4096, seed=1)
        labels = rcb_partition(p.positions, 8)
        counts = np.bincount(labels)
        assert np.all(counts == 512)

    def test_partitions_are_spatially_separable(self):
        """Each pair of partitions is separated by an axis-aligned cut at
        the top level: the first cut splits cleanly."""
        p = random_cube(2000, seed=2)
        labels = rcb_partition(p.positions, 2)
        a = p.positions[labels == 0]
        b = p.positions[labels == 1]
        # There must exist an axis where a and b barely overlap.
        overlaps = []
        for d in range(3):
            overlaps.append(
                min(a[:, d].max(), b[:, d].max())
                - max(a[:, d].min(), b[:, d].min())
            )
        assert min(overlaps) <= 1e-6  # cut plane => near-zero overlap

    def test_clustered_input_still_balanced(self):
        p = gaussian_clusters(3000, n_clusters=3, seed=3, spread=0.01)
        labels = rcb_partition(p.positions, 5)
        counts = np.bincount(labels, minlength=5)
        assert counts.max() - counts.min() <= 5

    def test_cycle_axis_policy(self):
        """Fig. 2 alternation: the first cut is in y."""
        p = random_cube(1000, seed=4)
        labels = rcb_partition(p.positions, 2, axis_policy="cycle")
        a = p.positions[labels == 0]
        b = p.positions[labels == 1]
        # y-ranges must be disjoint (the cut was perpendicular to y).
        assert a[:, 1].max() <= b[:, 1].min() or b[:, 1].max() <= a[:, 1].min()

    def test_single_part(self):
        p = random_cube(100, seed=5)
        labels = rcb_partition(p.positions, 1)
        assert np.all(labels == 0)

    def test_errors(self):
        p = random_cube(10, seed=6)
        with pytest.raises(ValueError):
            rcb_partition(p.positions, 0)
        with pytest.raises(ValueError):
            rcb_partition(p.positions, 11)
        with pytest.raises(ValueError):
            rcb_partition(p.positions, 2, axis_policy="diagonal")

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=500),
        parts=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_balance_and_coverage(self, n, parts, seed):
        if parts > n:
            return
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-1, 1, size=(n, 3))
        labels = rcb_partition(pts, parts)
        counts = np.bincount(labels, minlength=parts)
        assert counts.sum() == n
        assert counts.min() >= 1
        # Weighted-median splitting keeps parts within a small additive
        # band of perfect balance.
        assert counts.max() - counts.min() <= max(2, parts)
