"""Warm-start ``update_geometry``: incremental re-prepare for drift.

The contract under test: after ``session.update_geometry(new_positions)``
every ``apply()`` is **bitwise equal** to a cold ``prepare()`` at the new
positions -- on every executing backend, both dtypes, and for whole
``(N, n_rhs)`` charge blocks -- whether the update took the incremental
path (re-bin + list verify + group patch) or fell back to a full
rebuild.  Plus the control surface around it: the zero-motion no-op, the
``rebuild_threshold`` trigger, geometry-key staleness, the
``update_scratch`` memory category, and the multiprocessing backend's
shipment refresh/re-pack (no leaked SHM block).
"""

import numpy as np
import pytest

from repro import (
    BarycentricTreecode,
    ClusterParticleTreecode,
    CoulombKernel,
    DistributedBLTC,
    DualTreeTreecode,
    TreecodeParams,
    random_cube,
)
from repro.core.backends.numba_backend import NUMBA_AVAILABLE
from repro.workloads import ParticleSet

needs_numba = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="numba is not installed"
)

BACKENDS = (
    "numpy",
    "fused",
    "batched",
    "multiprocessing",
    pytest.param("numba", marks=needs_numba),
)


def _params(backend="fused", **kw):
    base = dict(
        theta=0.7, degree=3, max_leaf_size=50, max_batch_size=50,
        backend=backend,
    )
    base.update(kw)
    return TreecodeParams(**base)


@pytest.fixture(scope="module")
def cube():
    return random_cube(600, seed=31)


def _drift(rng, pos, scale):
    return pos + rng.normal(scale=scale, size=pos.shape)


class TestWarmColdParity:
    """update_geometry + apply == cold prepare + apply, bitwise."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend(self, backend, cube):
        rng = np.random.default_rng(11)
        drv = BarycentricTreecode(CoulombKernel(), _params(backend))
        sess = drv.prepare(cube)
        sess.apply(cube.charges)
        pos = cube.positions.copy()
        for _ in range(3):
            pos = _drift(rng, pos, 0.004)
            result = sess.update_geometry(pos)
            assert not result.noop
            warm = sess.apply(cube.charges)
            cold = drv.prepare(ParticleSet(pos, cube.charges)).apply(
                cube.charges
            )
            assert np.array_equal(warm.potential, cold.potential)

    def test_float32(self, cube):
        rng = np.random.default_rng(12)
        drv = BarycentricTreecode(
            CoulombKernel(), _params(dtype=np.float32)
        )
        sess = drv.prepare(cube)
        pos = _drift(rng, cube.positions, 0.004)
        sess.update_geometry(pos)
        warm = sess.apply(cube.charges)
        cold = drv.prepare(ParticleSet(pos, cube.charges)).apply(
            cube.charges
        )
        assert np.array_equal(warm.potential, cold.potential)

    def test_multi_rhs_block(self, cube):
        rng = np.random.default_rng(13)
        block = rng.uniform(-1.0, 1.0, (cube.n, 5))
        drv = BarycentricTreecode(CoulombKernel(), _params("batched"))
        sess = drv.prepare(cube)
        sess.apply(block)  # widen the weight buffer before the update
        pos = _drift(rng, cube.positions, 0.004)
        sess.update_geometry(pos)
        warm = sess.apply(block)
        cold = drv.prepare(ParticleSet(pos, cube.charges)).apply(block)
        assert warm.potential.shape == (cube.n, 5)
        assert np.array_equal(warm.potential, cold.potential)

    def test_forces(self, cube):
        rng = np.random.default_rng(14)
        drv = BarycentricTreecode(CoulombKernel(), _params())
        sess = drv.prepare(cube)
        pos = _drift(rng, cube.positions, 0.004)
        sess.update_geometry(pos)
        warm = sess.apply(cube.charges, compute_forces=True)
        cold = drv.prepare(ParticleSet(pos, cube.charges)).apply(
            cube.charges, compute_forces=True
        )
        assert np.array_equal(warm.forces, cold.forces)

    def test_disjoint_targets(self, cube):
        rng = np.random.default_rng(15)
        targets = rng.random((300, 3))
        drv = BarycentricTreecode(CoulombKernel(), _params())
        sess = drv.prepare(cube, targets)
        # Sources move, disjoint targets stay put...
        pos = _drift(rng, cube.positions, 0.004)
        sess.update_geometry(pos)
        warm = sess.apply(cube.charges)
        cold = drv.prepare(ParticleSet(pos, cube.charges), targets).apply(
            cube.charges
        )
        assert np.array_equal(warm.potential, cold.potential)
        # ... then both sets move.
        pos = _drift(rng, pos, 0.004)
        tgt2 = _drift(rng, targets, 0.003)
        sess.update_geometry(pos, targets=tgt2)
        warm = sess.apply(cube.charges)
        cold = drv.prepare(ParticleSet(pos, cube.charges), tgt2).apply(
            cube.charges
        )
        assert np.array_equal(warm.potential, cold.potential)


class TestRebuildControls:
    """The no-op fast path and the drift-threshold rebuild trigger."""

    def test_zero_motion_noop(self, cube):
        drv = BarycentricTreecode(CoulombKernel(), _params())
        sess = drv.prepare(cube)
        key = sess.geometry_key()
        before = sess.apply(cube.charges)
        result = sess.update_geometry(cube.positions.copy())
        assert result.noop and not result.rebuilt
        assert sess.geometry_key() == key
        after = sess.apply(cube.charges)
        assert np.array_equal(before.potential, after.potential)

    def test_threshold_zero_forces_rebuild(self, cube):
        rng = np.random.default_rng(16)
        drv = BarycentricTreecode(
            CoulombKernel(), _params(rebuild_threshold=0.0)
        )
        sess = drv.prepare(cube)
        pos = _drift(rng, cube.positions, 0.02)  # re-bins at least one
        result = sess.update_geometry(pos)
        assert result.rebuilt
        assert "threshold" in result.reason
        warm = sess.apply(cube.charges)
        cold = drv.prepare(ParticleSet(pos, cube.charges)).apply(
            cube.charges
        )
        assert np.array_equal(warm.potential, cold.potential)

    def test_threshold_one_small_drift_stays_incremental(self, cube):
        rng = np.random.default_rng(17)
        drv = BarycentricTreecode(
            CoulombKernel(), _params(rebuild_threshold=1.0)
        )
        sess = drv.prepare(cube)
        pos = _drift(rng, cube.positions, 1e-5)
        result = sess.update_geometry(pos)
        assert not result.rebuilt and not result.noop
        warm = sess.apply(cube.charges)
        cold = drv.prepare(ParticleSet(pos, cube.charges)).apply(
            cube.charges
        )
        assert np.array_equal(warm.potential, cold.potential)

    def test_large_drift_still_bitwise(self, cube):
        # Scrambling every position exceeds any topology-preserving
        # re-bin; whichever fallback fires, parity must hold.
        rng = np.random.default_rng(18)
        drv = BarycentricTreecode(CoulombKernel(), _params())
        sess = drv.prepare(cube)
        pos = rng.random(cube.positions.shape)
        result = sess.update_geometry(pos)
        assert result.rebuilt
        warm = sess.apply(cube.charges)
        cold = drv.prepare(ParticleSet(pos, cube.charges)).apply(
            cube.charges
        )
        assert np.array_equal(warm.potential, cold.potential)

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="rebuild_threshold"):
            _params(rebuild_threshold=-0.1)
        with pytest.raises(ValueError, match="rebuild_threshold"):
            _params(rebuild_threshold=1.5)

    def test_bad_shape_rejected(self, cube):
        sess = BarycentricTreecode(CoulombKernel(), _params()).prepare(cube)
        with pytest.raises(ValueError, match="shape"):
            sess.update_geometry(cube.positions[:-1])


class TestMultiStepStress:
    """Randomized drift trajectory with per-step cold comparison."""

    def test_mixed_steps(self, cube):
        rng = np.random.default_rng(19)
        drv = BarycentricTreecode(CoulombKernel(), _params())
        sess = drv.prepare(cube)
        pos = cube.positions.copy()
        scales = [0.002, 0.0, 0.01, 0.002, 0.2, 0.002, 0.0005, 0.05]
        seen_incremental = seen_rebuild = seen_noop = False
        for scale in scales:
            pos = _drift(rng, pos, scale) if scale else pos.copy()
            result = sess.update_geometry(pos)
            seen_incremental |= not result.rebuilt and not result.noop
            seen_rebuild |= result.rebuilt
            seen_noop |= result.noop
            warm = sess.apply(cube.charges)
            cold = drv.prepare(ParticleSet(pos, cube.charges)).apply(
                cube.charges
            )
            assert np.array_equal(warm.potential, cold.potential)
        assert seen_incremental and seen_rebuild and seen_noop

    def test_mixed_steps_batched_near_field_buckets(self, cube):
        # Regression for the full-plan bucketed layout: a trajectory
        # mixing incremental patches and full rebuilds must keep the
        # zero-weight-padded near-field buckets coherent -- every warm
        # apply bitwise equal to a cold prepare, with direct-kind
        # buckets actually present (the self-target cube is
        # near-field-heavy at this theta).
        rng = np.random.default_rng(23)
        params = _params(backend="batched", batched=True)
        drv = BarycentricTreecode(CoulombKernel(), params)
        sess = drv.prepare(cube)
        sess.apply(cube.charges)
        pos = cube.positions.copy()
        seen_incremental = seen_rebuild = False
        for scale in [0.002, 0.01, 0.2, 0.002, 0.05]:
            pos = _drift(rng, pos, scale)
            result = sess.update_geometry(pos)
            seen_incremental |= not result.rebuilt and not result.noop
            seen_rebuild |= result.rebuilt
            layout = sess.plan.batched_layout
            assert layout is not None
            assert any(
                b.kind == "direct" for b in layout.buckets
            ), "near field must stay bucketed across updates"
            for b in layout.buckets:
                if b.src_valid is not None:
                    assert np.all(b.weights[~b.src_valid] == 0.0)
            warm = sess.apply(cube.charges)
            cold = drv.prepare(ParticleSet(pos, cube.charges)).apply(
                cube.charges
            )
            assert np.array_equal(warm.potential, cold.potential)
            assert np.isfinite(warm.potential).all()
        assert seen_incremental and seen_rebuild


class TestExtensions:
    """Sec. 5 sessions update through the rebuild-based path."""

    @pytest.mark.parametrize(
        "make",
        [ClusterParticleTreecode, DualTreeTreecode],
        ids=["cluster_particle", "dual_tree"],
    )
    def test_rebuild_parity(self, make, cube):
        rng = np.random.default_rng(20)
        drv = make(CoulombKernel(), _params())
        sess = drv.prepare(cube)
        sess.apply(cube.charges)
        key = sess.geometry_key()
        assert sess.update_geometry(cube.positions.copy()).noop
        pos = _drift(rng, cube.positions, 0.004)
        result = sess.update_geometry(pos)
        assert result.rebuilt
        assert sess.geometry_key() != key
        warm = sess.apply(cube.charges)
        cold = drv.prepare(ParticleSet(pos, cube.charges)).apply(
            cube.charges
        )
        assert np.array_equal(warm.potential, cold.potential)

    def test_distributed_has_no_updater(self, cube):
        sess = DistributedBLTC(
            CoulombKernel(), _params(), n_ranks=2
        ).prepare(cube)
        with pytest.raises(NotImplementedError):
            sess.cores[0].update_geometry(cube.positions + 0.01)


class TestAccounting:
    """geometry_key staleness, update_scratch memory, shipment hygiene."""

    def test_geometry_key_changes_after_update(self, cube):
        rng = np.random.default_rng(22)
        drv = BarycentricTreecode(CoulombKernel(), _params())
        sess = drv.prepare(cube)
        keys = {sess.geometry_key()}
        pos = cube.positions.copy()
        for _ in range(3):
            pos = _drift(rng, pos, 0.003)
            sess.update_geometry(pos)
            keys.add(sess.geometry_key())
        assert len(keys) == 4

    def test_single_interior_particle_changes_key(self, cube):
        # One particle nudged within its leaf box can leave every plan
        # byte untouched; the key must still move.
        drv = BarycentricTreecode(CoulombKernel(), _params())
        sess = drv.prepare(cube)
        key = sess.geometry_key()
        pos = cube.positions.copy()
        pos[0] += 1e-12
        result = sess.update_geometry(pos)
        assert not result.noop
        assert sess.geometry_key() != key

    def test_update_scratch_in_memory_stats(self, cube):
        rng = np.random.default_rng(23)
        drv = BarycentricTreecode(CoulombKernel(), _params())
        sess = drv.prepare(cube)
        stats = sess.memory_stats()
        assert stats["update_scratch_bytes"] == 0
        sess.update_geometry(_drift(rng, cube.positions, 0.001))
        stats = sess.memory_stats()
        assert stats["update_scratch_bytes"] > 0
        assert stats["total_bytes"] >= stats["update_scratch_bytes"]
        assert "update=" in repr(sess)

    @pytest.mark.parametrize(
        "make",
        [ClusterParticleTreecode, DualTreeTreecode],
        ids=["cluster_particle", "dual_tree"],
    )
    def test_update_scratch_in_extension_reprs(self, make, cube):
        sess = make(CoulombKernel(), _params()).prepare(cube)
        assert "update_scratch_bytes" in sess.memory_stats()
        assert "update=" in repr(sess)

    def test_shipment_refresh_and_repack(self, cube):
        from multiprocessing import shared_memory

        from repro.core.backends.multiproc import MultiprocessingBackend

        rng = np.random.default_rng(24)
        drv = BarycentricTreecode(CoulombKernel(), _params("numpy"))
        sess = drv.prepare(cube)
        sess.apply(cube.charges)
        plan = sess.plan
        backend = MultiprocessingBackend(n_workers=1)
        ship = backend._get_shipment(plan)
        assert ship.shm is not None
        name = ship.shm.name

        # Geometry-only refresh rewrites the block in place.
        plan.refresh_geometry(targets=plan.targets.copy())
        again = backend._get_shipment(plan)
        assert again is ship and again.shm.name == name
        assert again.geom_version == plan.geometry_version

        # A structural patch must re-pack -- and unlink the old block.
        result = sess.update_geometry(_drift(rng, cube.positions, 0.01))
        assert not result.rebuilt and result.n_patched_groups > 0
        repacked = backend._get_shipment(plan)
        assert repacked is not ship
        assert repacked.struct_version == plan.structure_version
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        repacked_view = np.ndarray(
            repacked.spec["layout"]["targets"][1],
            dtype=np.dtype(repacked.spec["layout"]["targets"][2]),
            buffer=repacked.shm.buf[repacked.spec["layout"]["targets"][0]:],
        )
        assert np.array_equal(repacked_view, plan.targets)
        backend._get_shipment(plan).close()
