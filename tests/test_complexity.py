"""Complexity verification: the BLTC's O(N log N) operation count.

"The BLTC algorithm requires O(N log N) operations compared to the
O(N^2) operations for direct summation" (paper Sec. 2.4).  We measure
kernel-evaluation counts over an N sweep (dry runs -- exact counts, no
numerics) and check the growth exponent sits near 1, far from 2.
Also: distributed force evaluation correctness.
"""

import numpy as np
import pytest

from repro import (
    BarycentricTreecode,
    CoulombKernel,
    DistributedBLTC,
    TreecodeParams,
    random_cube,
)
from repro.experiments.common import clean_leaf_size


class TestComplexity:
    @pytest.fixture(scope="class")
    def sweep(self):
        """Kernel evals for N in a geometric sweep at fixed accuracy."""
        counts = {}
        for n in (10_000, 40_000, 160_000, 640_000):
            nl = clean_leaf_size(n, target=500)
            params = TreecodeParams(
                theta=0.8, degree=4, max_leaf_size=nl, max_batch_size=nl
            )
            p = random_cube(n, seed=131)
            res = BarycentricTreecode(CoulombKernel(), params).compute(
                p, dry_run=True
            )
            counts[n] = res.stats["kernel_evaluations"]
        return counts

    def test_growth_exponent_near_linear(self, sweep):
        ns = sorted(sweep)
        # Effective exponent over the largest decade:
        # log(evals ratio) / log(N ratio).
        lo, hi = ns[0], ns[-1]
        exponent = np.log(sweep[hi] / sweep[lo]) / np.log(hi / lo)
        assert exponent < 1.5, (exponent, sweep)
        assert exponent > 0.8, (exponent, sweep)

    def test_fraction_of_direct_sum_decays(self, sweep):
        """The treecode's advantage over O(N^2) grows with N: at small N
        (shallow trees) it degenerates to direct summation, at large N
        it does a vanishing fraction of the direct-sum work."""
        ns = sorted(sweep)
        fracs = [sweep[n] / (float(n) * n) for n in ns]
        assert fracs == sorted(fracs, reverse=True)
        assert fracs[-1] < 0.2

    def test_per_particle_work_grows_slowly(self, sweep):
        """Work per particle ~ log N: grows, but by far less than N."""
        ns = sorted(sweep)
        per_particle = [sweep[n] / n for n in ns]
        assert per_particle[-1] > per_particle[0] * 0.5
        assert per_particle[-1] < per_particle[0] * 10.0


class TestDistributedForces:
    def test_matches_direct_force_sum(self):
        p = random_cube(2000, seed=132)
        params = TreecodeParams(
            theta=0.6, degree=6, max_leaf_size=150, max_batch_size=150
        )
        res = DistributedBLTC(
            CoulombKernel(), params, n_ranks=3
        ).compute(p, compute_forces=True)
        ref = CoulombKernel().force(p.positions, p.positions, p.charges)
        err = np.linalg.norm(res.forces - ref) / np.linalg.norm(ref)
        assert err < 1e-5

    def test_forces_none_by_default(self):
        p = random_cube(600, seed=133)
        params = TreecodeParams(
            theta=0.7, degree=3, max_leaf_size=100, max_batch_size=100
        )
        res = DistributedBLTC(CoulombKernel(), params, n_ranks=2).compute(p)
        assert res.forces is None

    def test_distributed_matches_single_device_forces(self):
        p = random_cube(1500, seed=134)
        params = TreecodeParams(
            theta=0.7, degree=4, max_leaf_size=150, max_batch_size=150
        )
        dist = DistributedBLTC(
            CoulombKernel(), params, n_ranks=1
        ).compute(p, compute_forces=True)
        single = BarycentricTreecode(CoulombKernel(), params).compute(
            p, compute_forces=True
        )
        assert np.allclose(dist.forces, single.forces)
