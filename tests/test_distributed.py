"""Integration tests for the distributed BLTC (RCB + LET + RMA)."""

import numpy as np
import pytest

from repro import (
    CoulombKernel,
    DistributedBLTC,
    BarycentricTreecode,
    TreecodeParams,
    YukawaKernel,
    direct_sum,
    random_cube,
    relative_l2_error,
)
from repro.distributed.letree import RemoteTreeAdapter, build_let
from repro.core.interaction_lists import LocalTreeAdapter
from repro.tree import ClusterTree


@pytest.fixture(scope="module")
def cube():
    return random_cube(2400, seed=11)


@pytest.fixture(scope="module")
def ref(cube):
    return direct_sum(
        cube.positions, cube.positions, cube.charges, CoulombKernel()
    )


def _params(**kw):
    base = dict(theta=0.7, degree=4, max_leaf_size=150, max_batch_size=150)
    base.update(kw)
    return TreecodeParams(**base)


class TestRemoteTreeAdapter:
    def test_matches_local_adapter(self, cube):
        tree = ClusterTree(cube.positions, 150)
        local = LocalTreeAdapter(tree)
        remote = RemoteTreeAdapter(tree.tree_array())
        assert remote.n_nodes() == local.n_nodes()
        for i in range(local.n_nodes()):
            assert np.allclose(remote.center(i), local.center(i))
            assert remote.radius(i) == pytest.approx(local.radius(i))
            assert remote.count(i) == local.count(i)
            assert remote.is_leaf(i) == local.is_leaf(i)
            assert list(remote.children(i)) == list(local.children(i))

    def test_box_roundtrip(self, cube):
        tree = ClusterTree(cube.positions, 200)
        remote = RemoteTreeAdapter(tree.tree_array())
        for nd in tree.nodes:
            lo, hi = remote.box(nd.index)
            assert np.array_equal(lo, nd.box.lo)
            assert np.array_equal(hi, nd.box.hi)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            RemoteTreeAdapter(np.zeros((3, 5)))


class TestCorrectness:
    def test_one_rank_equals_single_device(self, cube):
        params = _params()
        single = BarycentricTreecode(CoulombKernel(), params).compute(cube)
        dist = DistributedBLTC(CoulombKernel(), params, n_ranks=1).compute(cube)
        assert np.allclose(single.potential, dist.potential, rtol=1e-12)

    @pytest.mark.parametrize("n_ranks", [2, 3, 4, 6])
    def test_multirank_accuracy(self, cube, ref, n_ranks):
        dist = DistributedBLTC(
            CoulombKernel(), _params(), n_ranks=n_ranks
        ).compute(cube)
        err = relative_l2_error(ref, dist.potential)
        assert err < 1e-4  # same order as the single-device treecode

    def test_rank_count_does_not_change_accuracy_class(self, cube, ref):
        errs = []
        for r in (1, 4):
            dist = DistributedBLTC(
                CoulombKernel(), _params(degree=6), n_ranks=r
            ).compute(cube)
            errs.append(relative_l2_error(ref, dist.potential))
        assert max(errs) < 1e-5

    def test_yukawa_distributed(self, cube):
        kernel = YukawaKernel(0.5)
        ref_y = direct_sum(cube.positions, cube.positions, cube.charges, kernel)
        dist = DistributedBLTC(kernel, _params(degree=6), n_ranks=3).compute(cube)
        assert relative_l2_error(ref_y, dist.potential) < 1e-5

    def test_too_many_ranks(self):
        p = random_cube(3, seed=0)
        with pytest.raises(ValueError):
            DistributedBLTC(CoulombKernel(), _params(), n_ranks=5).compute(p)


class TestLetConstruction:
    def test_let_contains_exactly_referenced_nodes(self, cube):
        """The LET holds data for precisely the clusters the interaction
        lists reference -- no more, no less (Sec. 3.1)."""
        from repro.mpi import SimComm
        from repro.partition import rcb_partition
        from repro.core.moments import precompute_moments
        from repro.tree import TargetBatches

        params = _params()
        labels = rcb_partition(cube.positions, 2)
        comm = SimComm(2)
        trees, batch_sets = [], []
        for r in range(2):
            loc = cube.subset(np.nonzero(labels == r)[0])
            tree = ClusterTree(loc.positions, params.max_leaf_size)
            batches = TargetBatches(loc.positions, params.max_batch_size)
            m = precompute_moments(tree, loc.charges, params)
            h = comm.rank_handle(r)
            h.create_window("tree", tree.tree_array())
            h.create_window("srcpos", loc.positions[tree.perm])
            h.create_window("srcq", loc.charges[tree.perm])
            h.create_window("moments", m.packed(len(tree)))
            trees.append(tree)
            batch_sets.append(batches)

        let, _ = build_let(comm.rank_handle(0), batch_sets[0], params)
        lists = let.lists[1]
        referenced_direct = {int(c) for d in lists.direct for c in d}
        referenced_approx = {int(c) for a in lists.approx for c in a}
        assert set(let.direct_data[1]) == referenced_direct
        assert set(let.approx_data[1]) == referenced_approx
        assert let.n_remote_clusters() == len(referenced_direct) + len(
            referenced_approx
        )
        assert let.nbytes() > 0

    def test_let_grows_sublinearly_with_ranks(self):
        """Well-separated ranks exchange few clusters: total RMA bytes per
        rank must grow much slower than the remote data volume."""
        p = random_cube(4000, seed=12)
        params = _params(theta=0.9, degree=2, max_leaf_size=100,
                         max_batch_size=100)
        res = DistributedBLTC(
            CoulombKernel(), params, n_ranks=8
        ).compute(p)
        for r_stats in res.stats["per_rank"]:
            remote_total_bytes = (4000 - r_stats["n_local"]) * 32
            assert r_stats["rma_bytes"] < remote_total_bytes


class TestTimingAggregation:
    def test_phase_records(self, cube):
        res = DistributedBLTC(CoulombKernel(), _params(), n_ranks=3).compute(cube)
        assert res.n_ranks == 3
        assert len(res.comm_seconds) == 3
        for p in res.rank_phases:
            assert p.setup > 0 and p.precompute > 0 and p.compute > 0
        agg = res.aggregate_phases()
        assert agg.total >= max(p.total for p in res.rank_phases) / 3
        assert res.total_seconds > 0

    def test_strong_scaling_reduces_time(self):
        """More GPUs -> less simulated time for a fixed problem."""
        p = random_cube(8000, seed=13)
        params = _params(degree=3, max_leaf_size=200, max_batch_size=200)
        t1 = DistributedBLTC(CoulombKernel(), params, n_ranks=1).compute(p)
        t4 = DistributedBLTC(CoulombKernel(), params, n_ranks=4).compute(p)
        assert t4.total_seconds < t1.total_seconds

    def test_overlap_comm_not_slower(self, cube):
        params = _params()
        plain = DistributedBLTC(
            CoulombKernel(), params, n_ranks=4, overlap_comm=False
        ).compute(cube)
        overlapped = DistributedBLTC(
            CoulombKernel(), params, n_ranks=4, overlap_comm=True
        ).compute(cube)
        assert overlapped.total_seconds <= plain.total_seconds + 1e-12
        assert np.allclose(plain.potential, overlapped.potential)

    def test_comm_seconds_monotone_nonnegative(self, cube):
        res = DistributedBLTC(CoulombKernel(), _params(), n_ranks=4).compute(cube)
        assert all(c >= 0 for c in res.comm_seconds)
        assert res.stats["total_rma_bytes"] > 0
