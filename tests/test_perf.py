"""Tests for the performance model (machine specs, comm model, timers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import (
    CPU_XEON_X5650,
    GPU_P100,
    GPU_TITAN_V,
    CommModel,
    INFINIBAND_COMET,
    MachineSpec,
    PhaseTimes,
    Stopwatch,
)


class TestMachineSpec:
    def test_presets_sane(self):
        assert GPU_TITAN_V.kind == "gpu"
        assert GPU_P100.kind == "gpu"
        assert CPU_XEON_X5650.kind == "cpu"

    def test_gpu_at_least_100x_cpu(self):
        """Paper Fig. 4: BLTC runs >= 100x faster on the GPU than the CPU."""
        ratio = GPU_TITAN_V.interaction_rate / CPU_XEON_X5650.interaction_rate
        assert ratio >= 100.0

    def test_titan_v_faster_than_p100(self):
        # 7.45 vs 4.7 TFLOP/s DP.
        assert GPU_TITAN_V.interaction_rate > GPU_P100.interaction_rate

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            MachineSpec(name="x", kind="tpu", interaction_rate=1.0,
                        transcendental_penalty=0.0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            MachineSpec(name="x", kind="cpu", interaction_rate=0.0,
                        transcendental_penalty=0.0)

    def test_occupancy_saturates_at_one(self):
        s = GPU_TITAN_V
        assert s.occupancy(10 * s.saturation_blocks) == 1.0
        assert s.occupancy(s.saturation_blocks) == 1.0

    def test_occupancy_scales_down(self):
        s = GPU_TITAN_V
        half = s.occupancy(s.saturation_blocks // 2)
        assert 0.4 < half < 0.6

    def test_occupancy_floor(self):
        s = GPU_TITAN_V
        assert s.occupancy(0) == s.min_efficiency
        assert s.occupancy(1) >= s.min_efficiency

    def test_interaction_time_linear_in_work(self):
        t1 = GPU_TITAN_V.interaction_time(1e9)
        t2 = GPU_TITAN_V.interaction_time(2e9)
        assert t2 == pytest.approx(2 * t1)

    def test_interaction_time_flop_scaling(self):
        base = GPU_TITAN_V.interaction_time(1e9, flops_per_interaction=20)
        heavy = GPU_TITAN_V.interaction_time(1e9, flops_per_interaction=40)
        assert heavy == pytest.approx(2 * base)

    def test_cpu_transfer_free(self):
        assert CPU_XEON_X5650.transfer_time(1 << 30) == 0.0

    def test_gpu_transfer_alpha_beta(self):
        t = GPU_TITAN_V.transfer_time(12.0e9)
        assert t == pytest.approx(GPU_TITAN_V.transfer_latency + 1.0)


class TestCommModel:
    def test_op_time(self):
        m = CommModel(latency=1e-6, bandwidth=1e9, epoch_overhead=1e-6)
        assert m.op_time(1e9) == pytest.approx(1.0 + 2e-6)

    def test_multiple_ops(self):
        m = CommModel(latency=1e-6, bandwidth=1e9, epoch_overhead=0.0)
        assert m.op_time(0, n_ops=100) == pytest.approx(1e-4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            CommModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            CommModel(latency=-1.0)
        with pytest.raises(ValueError):
            INFINIBAND_COMET.op_time(-5)

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.floats(0, 1e9, allow_nan=False),
        b=st.floats(0, 1e9, allow_nan=False),
    )
    def test_monotone_in_bytes(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert INFINIBAND_COMET.op_time(lo) <= INFINIBAND_COMET.op_time(hi)


class TestPhaseTimes:
    def test_total_and_add(self):
        p = PhaseTimes(setup=1.0, precompute=2.0, compute=3.0)
        q = PhaseTimes(setup=0.5, precompute=0.5, compute=0.5)
        assert p.total == 6.0
        assert (p + q).total == 7.5

    def test_max_with(self):
        p = PhaseTimes(setup=1.0, precompute=5.0, compute=1.0)
        q = PhaseTimes(setup=2.0, precompute=1.0, compute=1.5)
        m = p.max_with(q)
        assert (m.setup, m.precompute, m.compute) == (2.0, 5.0, 1.5)

    def test_fractions_sum_to_one(self):
        p = PhaseTimes(setup=1.0, precompute=1.0, compute=2.0)
        f = p.fractions()
        assert sum(f.values()) == pytest.approx(1.0)
        assert f["compute"] == pytest.approx(0.5)

    def test_fractions_of_zero(self):
        assert all(v == 0.0 for v in PhaseTimes().fractions().values())

    def test_as_dict(self):
        p = PhaseTimes(setup=1.0)
        assert p.as_dict() == {"setup": 1.0, "precompute": 0.0, "compute": 0.0}


class TestStopwatch:
    def test_measures_time(self):
        import time

        w = Stopwatch()
        with w:
            time.sleep(0.01)
        assert w.elapsed >= 0.009

    def test_accumulates(self):
        w = Stopwatch()
        with w:
            pass
        first = w.elapsed
        with w:
            pass
        assert w.elapsed >= first
