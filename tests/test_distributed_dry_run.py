"""Dry-run consistency for the distributed driver.

Model-only mode must reproduce the real run's launch counts, interaction
counts, RMA traffic and simulated times exactly -- it is the basis of the
scaling benchmarks.
"""

import numpy as np
import pytest

from repro import (
    CoulombKernel,
    DistributedBLTC,
    TreecodeParams,
    random_cube,
)


@pytest.fixture(scope="module")
def pair():
    p = random_cube(5000, seed=121)
    params = TreecodeParams(
        theta=0.7, degree=4, max_leaf_size=300, max_batch_size=300
    )
    driver = DistributedBLTC(CoulombKernel(), params, n_ranks=3)
    real = driver.compute(p)
    dry = driver.compute(p, dry_run=True)
    return real, dry


class TestDryRunConsistency:
    def test_same_total_time(self, pair):
        real, dry = pair
        assert dry.total_seconds == pytest.approx(real.total_seconds)

    def test_same_phase_times(self, pair):
        real, dry = pair
        for pr, pd in zip(real.rank_phases, dry.rank_phases):
            assert pd.setup == pytest.approx(pr.setup)
            assert pd.precompute == pytest.approx(pr.precompute)
            assert pd.compute == pytest.approx(pr.compute)

    def test_same_rma_traffic(self, pair):
        real, dry = pair
        assert (
            dry.stats["total_rma_bytes"] == real.stats["total_rma_bytes"]
        )

    def test_same_launch_counts(self, pair):
        real, dry = pair
        for sr, sd in zip(real.stats["per_rank"], dry.stats["per_rank"]):
            assert sd["launches"] == sr["launches"]
            assert sd["kernel_evaluations"] == pytest.approx(
                sr["kernel_evaluations"]
            )

    def test_dry_potential_zero(self, pair):
        real, dry = pair
        assert np.all(dry.potential == 0.0)
        assert np.any(real.potential != 0.0)
