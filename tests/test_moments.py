"""Tests for modified charges (paper eqs. 12, 14-15, Sec. 2.3)."""

import numpy as np
import pytest

from repro.config import TreecodeParams
from repro.core.moments import (
    cluster_grid,
    modified_charges,
    moment_flop_counts,
    precompute_moments,
)
from repro.gpu.device import GpuDevice
from repro.interpolation import ChebyshevGrid3D
from repro.kernels import CoulombKernel, YukawaKernel
from repro.perf.machine import GPU_TITAN_V
from repro.tree import ClusterTree
from repro.workloads import random_cube


class TestModifiedCharges:
    def test_total_charge_conserved(self):
        """sum_k qhat_k == sum_j q_j: the basis is a partition of unity in
        each dimension, so the tensor product sums to one per source."""
        rng = np.random.default_rng(0)
        pts = rng.uniform(-1, 1, size=(80, 3))
        q = rng.normal(size=80)
        grid = ChebyshevGrid3D.for_box(
            pts.min(axis=0), pts.max(axis=0), degree=5
        )
        qhat = modified_charges(pts, q, grid)
        assert qhat.sum() == pytest.approx(q.sum(), rel=1e-10)

    def test_single_source_at_grid_point(self):
        """A source exactly on a grid point puts all charge there
        (removable singularity handling, Sec. 2.3)."""
        grid = ChebyshevGrid3D.for_box(
            np.array([-1.0, -1.0, -1.0]), np.array([1.0, 1.0, 1.0]), degree=4
        )
        k = 17  # arbitrary grid point
        pts = grid.points[k:k + 1]
        qhat = modified_charges(pts, np.array([2.5]), grid)
        expected = np.zeros(grid.n_points)
        expected[k] = 2.5
        assert np.array_equal(qhat, expected)

    def test_boundary_particles_coincide(self):
        """With minimal boxes the extreme particles coincide with
        Chebyshev endpoints; the result must stay finite and conservative."""
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, size=(50, 3))
        lo, hi = pts.min(axis=0), pts.max(axis=0)
        grid = ChebyshevGrid3D.for_box(lo, hi, degree=6)
        q = rng.normal(size=50)
        qhat = modified_charges(pts, q, grid)
        assert np.all(np.isfinite(qhat))
        assert qhat.sum() == pytest.approx(q.sum(), rel=1e-9)

    def test_moment_approximation_accuracy(self):
        """eq. 11 vs eq. 9: the approximation through modified charges must
        converge to the exact particle-cluster interaction as n grows."""
        rng = np.random.default_rng(2)
        src = rng.uniform(-0.5, 0.5, size=(200, 3))
        q = rng.normal(size=200)
        target = np.array([[5.0, 4.0, 3.0]])  # well separated
        kernel = CoulombKernel()
        exact = kernel.potential(target, src, q)[0]
        errs = []
        for n in (2, 4, 8):
            grid = ChebyshevGrid3D.for_box(
                src.min(axis=0), src.max(axis=0), degree=n
            )
            qhat = modified_charges(src, q, grid)
            approx = kernel.potential(target, grid.points, qhat)[0]
            errs.append(abs(approx - exact) / abs(exact))
        assert errs[2] < errs[0]
        assert errs[2] < 1e-10

    def test_yukawa_moment_accuracy(self):
        rng = np.random.default_rng(3)
        src = rng.uniform(-0.5, 0.5, size=(150, 3))
        q = rng.normal(size=150)
        target = np.array([[4.0, -4.0, 2.0]])
        kernel = YukawaKernel(kappa=0.5)
        exact = kernel.potential(target, src, q)[0]
        grid = ChebyshevGrid3D.for_box(
            src.min(axis=0), src.max(axis=0), degree=10
        )
        qhat = modified_charges(src, q, grid)
        approx = kernel.potential(target, grid.points, qhat)[0]
        assert abs(approx - exact) / abs(exact) < 1e-9

    def test_shape_mismatch(self):
        grid = ChebyshevGrid3D.for_box(np.zeros(3), np.ones(3), degree=2)
        with pytest.raises(ValueError):
            modified_charges(np.zeros((3, 3)), np.zeros(4), grid)


class TestFlopCounts:
    def test_formulas(self):
        ops1, ops2 = moment_flop_counts(n_cluster=100, degree=8)
        assert ops1 == 3 * 9 * 100
        assert ops2 == 9**3 * 100


class TestPrecomputeMoments:
    def test_skips_small_clusters(self):
        p = random_cube(400, seed=4)
        tree = ClusterTree(p.positions, 50)
        params = TreecodeParams(
            theta=0.8, degree=8, max_leaf_size=50, max_batch_size=50
        )
        moments = precompute_moments(tree, p.charges, params)
        # (n+1)^3 = 729 > 400 >= every cluster -> nothing qualifies.
        assert len(moments.qhat) == 0

    def test_computes_for_qualifying_clusters(self):
        p = random_cube(1200, seed=5)
        tree = ClusterTree(p.positions, 100)
        params = TreecodeParams(
            theta=0.8, degree=3, max_leaf_size=100, max_batch_size=100
        )
        moments = precompute_moments(tree, p.charges, params)
        n_ip = params.n_interpolation_points
        expected = {nd.index for nd in tree.nodes if nd.count > n_ip}
        assert set(moments.qhat) == expected
        for i in expected:
            assert moments.qhat[i].shape == (n_ip,)
            assert i in moments

    def test_all_clusters_without_size_check(self):
        p = random_cube(300, seed=6)
        tree = ClusterTree(p.positions, 40)
        params = TreecodeParams(
            theta=0.8, degree=5, max_leaf_size=40, max_batch_size=40,
            size_check=False,
        )
        moments = precompute_moments(tree, p.charges, params)
        assert set(moments.qhat) == {nd.index for nd in tree.nodes}

    def test_device_charged_two_kernels_per_cluster(self):
        p = random_cube(1000, seed=7)
        tree = ClusterTree(p.positions, 100)
        params = TreecodeParams(
            theta=0.8, degree=2, max_leaf_size=100, max_batch_size=100
        )
        dev = GpuDevice(GPU_TITAN_V)
        moments = precompute_moments(tree, p.charges, params, device=dev)
        assert dev.counters.launches == 2 * len(moments.qhat)
        assert dev.counters.by_kind["moments-1"][0] == len(moments.qhat)
        assert dev.counters.by_kind["moments-2"][0] == len(moments.qhat)

    def test_packed_layout(self):
        p = random_cube(900, seed=8)
        tree = ClusterTree(p.positions, 80)
        params = TreecodeParams(
            theta=0.8, degree=2, max_leaf_size=80, max_batch_size=80
        )
        moments = precompute_moments(tree, p.charges, params)
        packed = moments.packed(len(tree))
        assert packed.shape == (len(tree), 27)
        for i, q in moments.qhat.items():
            assert np.array_equal(packed[i], q)

    def test_charge_count_mismatch(self):
        p = random_cube(100, seed=9)
        tree = ClusterTree(p.positions, 30)
        params = TreecodeParams(degree=2)
        with pytest.raises(ValueError):
            precompute_moments(tree, np.zeros(99), params)

    def test_cluster_grid_spans_node_box(self):
        p = random_cube(200, seed=10)
        tree = ClusterTree(p.positions, 50)
        grid = cluster_grid(tree.root, 4)
        assert np.allclose(grid.points.min(axis=0), tree.root.box.lo)
        assert np.allclose(grid.points.max(axis=0), tree.root.box.hi)
