"""Property tests for distributed coverage: the global interaction sum.

The deepest correctness invariant of the distributed BLTC: for every
batch of every rank, the union of (local approx + local direct + remote
approx + remote direct) clusters covers every particle in the *global*
system exactly once.  Violations are exactly the class of bug that made
multi-rank potentials silently wrong during development (non-contiguous
child indices in the packed tree array).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CoulombKernel, TreecodeParams, random_cube
from repro.core.interaction_lists import build_interaction_lists
from repro.core.moments import precompute_moments
from repro.distributed.letree import build_let
from repro.mpi import SimComm
from repro.partition import rcb_partition
from repro.tree import ClusterTree, TargetBatches


def _distributed_setup(n, n_ranks, params, seed):
    particles = random_cube(n, seed=seed)
    labels = rcb_partition(particles.positions, n_ranks)
    rank_idx = [np.nonzero(labels == r)[0] for r in range(n_ranks)]
    comm = SimComm(n_ranks)
    trees, batch_sets = [], []
    for r in range(n_ranks):
        loc = particles.subset(rank_idx[r])
        tree = ClusterTree(loc.positions, params.max_leaf_size)
        batches = TargetBatches(loc.positions, params.max_batch_size)
        moments = precompute_moments(tree, loc.charges, params)
        h = comm.rank_handle(r)
        h.create_window("tree", tree.tree_array())
        h.create_window("srcpos", loc.positions[tree.perm])
        h.create_window("srcq", loc.charges[tree.perm])
        h.create_window("moments", moments.packed(len(tree)))
        trees.append(tree)
        batch_sets.append(batches)
    return particles, rank_idx, comm, trees, batch_sets


def _check_global_cover(n, n_ranks, params, seed):
    particles, rank_idx, comm, trees, batch_sets = _distributed_setup(
        n, n_ranks, params, seed
    )
    for r in range(n_ranks):
        let, _ = build_let(comm.rank_handle(r), batch_sets[r], params)
        local_lists = build_interaction_lists(
            batch_sets[r], trees[r], params
        )
        for b in range(len(batch_sets[r])):
            covered = np.zeros(n, dtype=int)
            for c in np.concatenate(
                [local_lists.approx[b], local_lists.direct[b]]
            ):
                covered[rank_idx[r][trees[r].node_indices(int(c))]] += 1
            for s in range(n_ranks):
                if s == r:
                    continue
                rl = let.lists[s]
                for c in np.concatenate([rl.approx[b], rl.direct[b]]):
                    covered[rank_idx[s][trees[s].node_indices(int(c))]] += 1
            assert covered.min() == 1 and covered.max() == 1, (
                f"rank {r} batch {b}: coverage "
                f"[{covered.min()}, {covered.max()}]"
            )


class TestGlobalCoverage:
    @pytest.mark.parametrize("n_ranks", [2, 3, 5])
    def test_exact_global_cover(self, n_ranks):
        params = TreecodeParams(
            theta=0.7, degree=3, max_leaf_size=60, max_batch_size=60
        )
        _check_global_cover(900, n_ranks, params, seed=101)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        n_ranks=st.integers(1, 6),
        theta=st.floats(0.2, 1.0),
        degree=st.integers(1, 5),
    )
    def test_property_global_cover(self, seed, n_ranks, theta, degree):
        params = TreecodeParams(
            theta=theta, degree=degree, max_leaf_size=40, max_batch_size=40
        )
        _check_global_cover(400, n_ranks, params, seed=seed)


class TestLetMomentsConsistency:
    def test_remote_moments_equal_local_recomputation(self):
        """Moments fetched over RMA equal what the origin would compute
        from the raw remote particles -- grids reconstructed from boxes
        are bitwise-consistent."""
        from repro.core.moments import modified_charges

        params = TreecodeParams(
            theta=0.7, degree=4, max_leaf_size=80, max_batch_size=80
        )
        particles, rank_idx, comm, trees, batch_sets = _distributed_setup(
            1200, 2, params, seed=102
        )
        let, _ = build_let(comm.rank_handle(0), batch_sets[0], params)
        tree1 = trees[1]
        loc1 = particles.subset(rank_idx[1])
        for c, (grid, qhat) in let.approx_data[1].items():
            idx = tree1.node_indices(c)
            expected = modified_charges(
                loc1.positions[idx], loc1.charges[idx], grid
            )
            assert np.allclose(qhat, expected, rtol=1e-12, atol=1e-14)
