"""Tests for the batch/cluster dual traversal (BLTC algorithm lines 10-20)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TreecodeParams
from repro.core.interaction_lists import (
    LocalTreeAdapter,
    build_interaction_lists,
    traverse_batch,
)
from repro.tree import ClusterTree, TargetBatches
from repro.workloads import random_cube


def _setup(n=600, nl=60, seed=0):
    p = random_cube(n, seed=seed)
    tree = ClusterTree(p.positions, nl)
    batches = TargetBatches(p.positions, nl)
    return p, tree, batches


class TestCoverage:
    """The fundamental traversal invariant: for every batch, the union of
    approximated clusters and directly-summed clusters covers every source
    particle exactly once."""

    @pytest.mark.parametrize("theta", [0.3, 0.5, 0.8, 1.0])
    @pytest.mark.parametrize("degree", [1, 4, 8])
    def test_exact_cover(self, theta, degree):
        p, tree, batches = _setup()
        params = TreecodeParams(
            theta=theta, degree=degree, max_leaf_size=60, max_batch_size=60
        )
        lists = build_interaction_lists(batches, tree, params)
        for b in range(len(batches)):
            covered = np.zeros(tree.n_particles, dtype=int)
            for c in lists.approx[b]:
                covered[tree.node_indices(int(c))] += 1
            for c in lists.direct[b]:
                covered[tree.node_indices(int(c))] += 1
            assert covered.min() == 1 and covered.max() == 1

    def test_cover_without_size_check(self):
        p, tree, batches = _setup()
        params = TreecodeParams(
            theta=0.7, degree=2, max_leaf_size=60, max_batch_size=60,
            size_check=False,
        )
        lists = build_interaction_lists(batches, tree, params)
        for b in range(len(batches)):
            covered = np.zeros(tree.n_particles, dtype=int)
            for c in lists.approx[b]:
                covered[tree.node_indices(int(c))] += 1
            for c in lists.direct[b]:
                covered[tree.node_indices(int(c))] += 1
            assert covered.min() == 1 and covered.max() == 1


class TestMacSemantics:
    def test_approximated_clusters_satisfy_mac(self):
        p, tree, batches = _setup()
        params = TreecodeParams(
            theta=0.6, degree=3, max_leaf_size=60, max_batch_size=60
        )
        lists = build_interaction_lists(batches, tree, params)
        n_ip = params.n_interpolation_points
        for b in range(len(batches)):
            node = batches.batch(b)
            for c in lists.approx[b]:
                cl = tree.nodes[int(c)]
                dist = np.linalg.norm(node.center - cl.center)
                assert (node.radius + cl.radius) / dist < params.theta
                assert n_ip < cl.count

    def test_small_clusters_never_approximated(self):
        """Size condition: degree 8 needs clusters with > 729 particles;
        with NL=60 no cluster below ~level-capped sizes qualifies unless
        it is a big internal node."""
        p, tree, batches = _setup(n=500, nl=60)
        params = TreecodeParams(
            theta=0.9, degree=8, max_leaf_size=60, max_batch_size=60
        )
        lists = build_interaction_lists(batches, tree, params)
        for b in range(len(batches)):
            for c in lists.approx[b]:
                assert tree.nodes[int(c)].count > 729

    def test_direct_entries_are_leaves_or_small(self):
        """A direct-listed cluster is either a leaf (geometric MAC failed
        at a leaf) or an internal node that passed geometrically but
        failed the size check."""
        p, tree, batches = _setup()
        params = TreecodeParams(
            theta=0.7, degree=4, max_leaf_size=60, max_batch_size=60
        )
        n_ip = params.n_interpolation_points
        lists = build_interaction_lists(batches, tree, params)
        for b in range(len(batches)):
            node = batches.batch(b)
            for c in lists.direct[b]:
                cl = tree.nodes[int(c)]
                if not cl.is_leaf:
                    dist = np.linalg.norm(node.center - cl.center)
                    assert (node.radius + cl.radius) / dist < params.theta
                    assert n_ip >= cl.count

    def test_tiny_theta_all_direct_leaves(self):
        p, tree, batches = _setup()
        params = TreecodeParams(
            theta=0.01, degree=2, max_leaf_size=60, max_batch_size=60
        )
        lists = build_interaction_lists(batches, tree, params)
        assert lists.n_approx == 0
        n_leaves = tree.n_leaves
        for b in range(len(batches)):
            assert len(lists.direct[b]) == n_leaves

    def test_looser_theta_more_approximations(self):
        p, tree, batches = _setup(n=2000, nl=50)
        base = dict(degree=2, max_leaf_size=50, max_batch_size=50)
        strict = build_interaction_lists(
            batches, tree, TreecodeParams(theta=0.4, **base)
        )
        loose = build_interaction_lists(
            batches, tree, TreecodeParams(theta=0.9, **base)
        )
        assert loose.n_direct <= strict.n_direct
        assert loose.mac_evals <= strict.mac_evals


class TestTraverseBatch:
    def test_far_away_batch_approximates_root(self):
        p, tree, _ = _setup(n=500, nl=50)
        params = TreecodeParams(
            theta=0.5, degree=2, max_leaf_size=50, max_batch_size=50
        )
        center = np.array([100.0, 0.0, 0.0])
        approx, direct, evals = traverse_batch(
            center, 0.5, LocalTreeAdapter(tree), params
        )
        assert approx == [0] and direct == [] and evals == 1

    def test_stats_counters(self):
        p, tree, batches = _setup()
        params = TreecodeParams(
            theta=0.7, degree=3, max_leaf_size=60, max_batch_size=60
        )
        lists = build_interaction_lists(batches, tree, params)
        assert lists.n_batches == len(batches)
        assert lists.mac_evals >= lists.n_approx + lists.n_direct

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 500),
        theta=st.floats(0.1, 1.0),
        degree=st.integers(1, 6),
    )
    def test_property_exact_cover(self, seed, theta, degree):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-1, 1, size=(150, 3))
        tree = ClusterTree(pts, 20)
        batches = TargetBatches(pts, 20)
        params = TreecodeParams(
            theta=theta, degree=degree, max_leaf_size=20, max_batch_size=20
        )
        lists = build_interaction_lists(batches, tree, params)
        for b in range(len(batches)):
            covered = np.zeros(150, dtype=int)
            for c in np.concatenate([lists.approx[b], lists.direct[b]]):
                covered[tree.node_indices(int(c))] += 1
            assert np.all(covered == 1)


class TestCsrDtypes:
    """csr() dtype/no-copy behaviour (regression for the blanket astype)."""

    def test_dtypes_intp_both_branches(self):
        from repro.core.interaction_lists import InteractionLists

        empty = InteractionLists()
        a_ptr, a_ids, d_ptr, d_ids = empty.csr()
        for arr in (a_ptr, a_ids, d_ptr, d_ids):
            assert arr.dtype == np.intp
        p, tree, batches = _setup()
        params = TreecodeParams(
            theta=0.7, degree=3, max_leaf_size=60, max_batch_size=60
        )
        lists = build_interaction_lists(batches, tree, params)
        a_ptr, a_ids, d_ptr, d_ids = lists.csr()
        for arr in (a_ptr, a_ids, d_ptr, d_ids):
            assert arr.dtype == np.intp

    def test_no_copy_when_already_intp(self, monkeypatch):
        """astype(np.intp, copy=False) must return the concatenated
        array itself, not a duplicate."""
        from repro.core.interaction_lists import InteractionLists

        lists = InteractionLists()
        lists.approx.append(np.array([1, 2], dtype=np.intp))
        lists.direct.append(np.array([3], dtype=np.intp))
        markers = []
        real_concatenate = np.concatenate

        def spying_concatenate(arrays, *a, **kw):
            out = real_concatenate(arrays, *a, **kw)
            markers.append(out)
            return out

        monkeypatch.setattr(np, "concatenate", spying_concatenate)
        _, a_ids, _, d_ids = lists.csr()
        assert any(a_ids is m for m in markers)
        assert any(d_ids is m for m in markers)
