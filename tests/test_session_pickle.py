"""Pickle round-trips for prepared sessions (all four drivers).

A prepared session is plain data plus transient process-local caches:
the pickle must drop the worker pools, shared-memory shipments and
dtype cast caches, and a restored session's first apply must rebuild
them lazily and reproduce the live session's results bitwise.  Backends
selected by name re-resolve through the process-wide shared store in
:mod:`repro.registry`, so two restored sessions share one pool.
"""

import pickle

import numpy as np
import pytest

from repro import (
    BarycentricTreecode,
    ClusterParticleTreecode,
    CoulombKernel,
    DistributedBLTC,
    DualTreeTreecode,
    TreecodeParams,
    random_cube,
)
from repro.core.backends import get_backend

DRIVERS = ("treecode", "distributed", "cluster_particle", "dual_tree")
BACKENDS = ("numpy", "fused", "batched", "multiprocessing")


def _params(backend, **kw):
    base = dict(
        theta=0.7, degree=3, max_leaf_size=100, max_batch_size=100,
        backend=backend,
    )
    base.update(kw)
    return TreecodeParams(**base)


def _prepare(driver, backend, cube, **kw):
    params = _params(backend, **kw)
    kernel = CoulombKernel()
    if driver == "treecode":
        return BarycentricTreecode(kernel, params).prepare(cube)
    if driver == "distributed":
        return DistributedBLTC(kernel, params, n_ranks=2).prepare(cube)
    if driver == "cluster_particle":
        return ClusterParticleTreecode(kernel, params).prepare(cube)
    return DualTreeTreecode(kernel, params).prepare(cube)


@pytest.fixture(scope="module")
def cube():
    return random_cube(700, seed=1234)


@pytest.fixture(scope="module")
def new_charges(cube):
    rng = np.random.default_rng(77)
    return rng.uniform(-1.0, 1.0, cube.n)


class TestRoundTrip:
    """pickle.loads(pickle.dumps(session)).apply == live apply, bitwise."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("driver", DRIVERS)
    def test_bitwise_equal_after_roundtrip(
        self, driver, backend, cube, new_charges
    ):
        live = _prepare(driver, backend, cube)
        live.apply(cube.charges)  # fill deferred weights + caches
        restored = pickle.loads(pickle.dumps(live))
        res_live = live.apply(new_charges)
        res_restored = restored.apply(new_charges)
        assert np.array_equal(res_live.potential, res_restored.potential)

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_roundtrip_before_first_apply(self, driver, cube):
        # A never-applied (still-zeroed skeleton) session must survive.
        live = _prepare(driver, "fused", cube)
        restored = pickle.loads(pickle.dumps(live))
        a = live.apply(cube.charges)
        b = restored.apply(cube.charges)
        assert np.array_equal(a.potential, b.potential)

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_multi_rhs_roundtrip(self, driver, cube):
        rng = np.random.default_rng(5)
        block = rng.uniform(-1.0, 1.0, (cube.n, 16))
        live = _prepare(driver, "numpy", cube)
        restored = pickle.loads(pickle.dumps(live))
        res_live = live.apply(block)
        res_restored = restored.apply(block)
        assert res_live.potential.shape[1] == 16
        assert np.array_equal(res_live.potential, res_restored.potential)

    @pytest.mark.parametrize(
        "protocol", [2, pickle.HIGHEST_PROTOCOL], ids=["proto2", "highest"]
    )
    @pytest.mark.parametrize("driver", DRIVERS)
    def test_protocols(self, driver, protocol, cube, new_charges):
        live = _prepare(driver, "fused", cube)
        live.apply(cube.charges)
        restored = pickle.loads(pickle.dumps(live, protocol=protocol))
        a = live.apply(new_charges)
        b = restored.apply(new_charges)
        assert np.array_equal(a.potential, b.potential)


class TestDroppedState:
    """Process-local caches leave the pickle and repopulate lazily."""

    def test_cast_cache_dropped_and_repopulated(self, cube, new_charges):
        live = _prepare("treecode", "fused", cube, dtype=np.float32)
        live.apply(cube.charges)
        assert live.plan._cast_cache  # float32 run populated it
        restored = pickle.loads(pickle.dumps(live))
        assert restored.plan._cast_cache == {}
        a = live.apply(new_charges)
        b = restored.apply(new_charges)
        assert np.array_equal(a.potential, b.potential)
        assert restored.plan._cast_cache  # repopulated by the apply

    def test_batched_bucket_stacks_dropped(self, cube, new_charges):
        live = _prepare("treecode", "batched", cube, batched=True)
        live.apply(cube.charges)
        restored = pickle.loads(pickle.dumps(live))
        layout = restored.plan.batched_layout
        assert layout is not None
        for bucket in layout.buckets:
            assert bucket._stacks == {}
        a = live.apply(new_charges)
        b = restored.apply(new_charges)
        assert np.array_equal(a.potential, b.potential)

    def test_multiprocessing_pickle_carries_no_pool(self, cube):
        live = _prepare("treecode", "multiprocessing", cube)
        live.apply(cube.charges)  # may create shipments/pool state
        payload = pickle.dumps(live)
        restored = pickle.loads(payload)
        # The restored core re-resolves the backend by name, lazily.
        assert restored.core._backend is None
        assert restored.core._backend_spec == "multiprocessing"
        assert restored.backend is get_backend("multiprocessing")


class TestSharedPool:
    """Restored sessions share one process-wide backend instance."""

    def test_two_restored_sessions_share_one_backend(self, cube, new_charges):
        a_live = _prepare("treecode", "multiprocessing", cube)
        b_live = _prepare("cluster_particle", "multiprocessing", cube)
        a_live.apply(cube.charges)
        b_live.apply(cube.charges)
        a = pickle.loads(pickle.dumps(a_live))
        b = pickle.loads(pickle.dumps(b_live))
        assert a.backend is b.backend
        assert a.backend is get_backend("multiprocessing")
        res_a = a.apply(new_charges)
        res_b = b.apply(new_charges)
        assert np.array_equal(res_a.potential, a_live.apply(new_charges).potential)
        assert np.array_equal(res_b.potential, b_live.apply(new_charges).potential)

    def test_distributed_rank_cores_share_one_backend(self, cube):
        live = _prepare("distributed", "multiprocessing", cube)
        restored = pickle.loads(pickle.dumps(live))
        backends = {id(core.backend) for core in restored.cores}
        assert len(backends) == 1
        a = live.apply(cube.charges)
        b = restored.apply(cube.charges)
        assert np.array_equal(a.potential, b.potential)


class TestSessionAccounting:
    """geometry_key and memory_stats across the pickle seam."""

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_geometry_key_stable_across_roundtrip(self, driver, cube):
        live = _prepare(driver, "fused", cube)
        restored = pickle.loads(pickle.dumps(live))
        assert live.geometry_key() == restored.geometry_key()

    def test_geometry_key_differs_across_workloads(self, cube):
        other = random_cube(700, seed=4321)
        a = _prepare("treecode", "fused", cube)
        b = _prepare("treecode", "fused", other)
        assert a.geometry_key() != b.geometry_key()

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_memory_stats_in_repr(self, driver, cube):
        live = _prepare(driver, "fused", cube)
        stats = live.memory_stats()
        assert stats["plan_bytes"] > 0
        assert stats["total_bytes"] >= stats["plan_bytes"]
        text = repr(live)
        assert f"plan={stats['plan_bytes']}B" in text


class TestDynamicGeometryAcrossPickle:
    """update_geometry composes with the pickle seam in either order."""

    UPDATABLE = ("treecode", "cluster_particle", "dual_tree")

    @staticmethod
    def _drift(cube):
        rng = np.random.default_rng(99)
        return cube.positions + rng.normal(
            scale=0.004, size=cube.positions.shape
        )

    @pytest.mark.parametrize("driver", UPDATABLE)
    def test_geometry_key_changes_after_update(self, driver, cube):
        live = _prepare(driver, "fused", cube)
        key = live.geometry_key()
        live.update_geometry(self._drift(cube))
        assert live.geometry_key() != key

    @pytest.mark.parametrize("driver", UPDATABLE)
    def test_update_then_pickle_and_pickle_then_update(
        self, driver, cube, new_charges
    ):
        # Both orderings must land on the live session's exact state:
        # same geometry key, bitwise-equal applies.
        new_pos = self._drift(cube)
        live = _prepare(driver, "fused", cube)
        live.apply(cube.charges)
        pickled_first = pickle.loads(pickle.dumps(live))

        live.update_geometry(new_pos)
        pickled_first.update_geometry(new_pos)          # pickle -> update
        updated_first = pickle.loads(pickle.dumps(live))  # update -> pickle

        reference = live.apply(new_charges).potential
        assert np.array_equal(
            pickled_first.apply(new_charges).potential, reference
        )
        assert np.array_equal(
            updated_first.apply(new_charges).potential, reference
        )
        assert (
            pickled_first.geometry_key()
            == updated_first.geometry_key()
            == live.geometry_key()
        )
