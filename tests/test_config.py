"""Unit tests for repro.config.TreecodeParams."""

import numpy as np
import pytest

from repro.config import ASPECT_RATIO_LIMIT, DEFAULT_PARAMS, TreecodeParams


class TestValidation:
    def test_defaults_match_paper_scaling_study(self):
        # Sec. 4: theta = 0.8, degree n = 8 for the scaling studies.
        assert DEFAULT_PARAMS.theta == 0.8
        assert DEFAULT_PARAMS.degree == 8

    @pytest.mark.parametrize("theta", [0.0, -0.5, 1.5])
    def test_bad_theta(self, theta):
        with pytest.raises(ValueError, match="theta"):
            TreecodeParams(theta=theta)

    def test_theta_one_allowed(self):
        TreecodeParams(theta=1.0)

    @pytest.mark.parametrize("degree", [0, -3])
    def test_bad_degree(self, degree):
        with pytest.raises(ValueError, match="degree"):
            TreecodeParams(degree=degree)

    def test_bad_leaf_size(self):
        with pytest.raises(ValueError, match="max_leaf_size"):
            TreecodeParams(max_leaf_size=0)

    def test_bad_batch_size(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            TreecodeParams(max_batch_size=-1)

    def test_bad_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            TreecodeParams(dtype=np.int32)

    def test_float32_allowed(self):
        p = TreecodeParams(dtype=np.float32)
        assert p.dtype is np.float32


class TestProperties:
    def test_n_interpolation_points(self):
        assert TreecodeParams(degree=8).n_interpolation_points == 729
        assert TreecodeParams(degree=1).n_interpolation_points == 8

    def test_with_replaces_field(self):
        p = TreecodeParams(theta=0.5)
        q = p.with_(degree=3)
        assert q.theta == 0.5 and q.degree == 3
        assert p.degree == TreecodeParams().degree  # original untouched

    def test_frozen(self):
        p = TreecodeParams()
        with pytest.raises(Exception):
            p.theta = 0.1  # type: ignore[misc]

    def test_aspect_ratio_limit_is_sqrt2(self):
        assert ASPECT_RATIO_LIMIT == pytest.approx(np.sqrt(2.0))
