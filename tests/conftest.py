"""Shared pytest fixtures for the BLTC reproduction test suite."""

import os
import sys

# Fallback so the suite runs even without an installed package (this
# environment lacks the `wheel` package needed for pip editable installs).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np
import pytest

from repro import (
    CoulombKernel,
    TreecodeParams,
    YukawaKernel,
    random_cube,
)


@pytest.fixture(scope="session")
def coulomb():
    return CoulombKernel()


@pytest.fixture(scope="session")
def yukawa():
    return YukawaKernel(kappa=0.5)


@pytest.fixture(scope="session")
def small_cube():
    """1000 uniform particles in [-1,1]^3 -- the paper's distribution."""
    return random_cube(1000, seed=42)


@pytest.fixture(scope="session")
def tiny_cube():
    return random_cube(200, seed=7)


@pytest.fixture(scope="session")
def fast_params():
    """Cheap parameters for integration tests."""
    return TreecodeParams(
        theta=0.7, degree=4, max_leaf_size=100, max_batch_size=100
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(123)
