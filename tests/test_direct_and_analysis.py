"""Tests for the direct-sum baseline and the analysis helpers."""

import numpy as np
import pytest

from repro import CoulombKernel, direct_sum, direct_sum_at, random_cube
from repro.analysis import format_table, relative_l2_error, sampled_error
from repro.analysis.report import format_value
from repro.gpu.device import GpuDevice
from repro.perf.machine import GPU_TITAN_V


class TestDirectSum:
    def test_two_body(self):
        t = np.array([[0.0, 0.0, 0.0]])
        s = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
        q = np.array([1.0, 4.0])
        phi = direct_sum(t, s, q, CoulombKernel())
        assert phi[0] == pytest.approx(1.0 + 2.0)

    def test_self_interaction_excluded(self):
        p = random_cube(50, seed=0)
        phi = direct_sum(p.positions, p.positions, p.charges, CoulombKernel())
        assert np.all(np.isfinite(phi))

    def test_superposition(self):
        p = random_cube(100, seed=1)
        t = np.array([[3.0, 3.0, 3.0]])
        k = CoulombKernel()
        full = direct_sum(t, p.positions, p.charges, k)
        half1 = direct_sum(t, p.positions[:50], p.charges[:50], k)
        half2 = direct_sum(t, p.positions[50:], p.charges[50:], k)
        assert full[0] == pytest.approx(half1[0] + half2[0])

    def test_charge_mismatch(self):
        with pytest.raises(ValueError):
            direct_sum(np.zeros((1, 3)), np.zeros((2, 3)), np.zeros(3),
                       CoulombKernel())

    def test_gpu_single_launch(self):
        """Paper Sec. 4: the GPU direct sum is ONE launch of the
        batch-cluster direct-sum kernel over everything."""
        p = random_cube(300, seed=2)
        dev = GpuDevice(GPU_TITAN_V)
        direct_sum(p.positions, p.positions, p.charges, CoulombKernel(),
                   device=dev)
        assert dev.counters.launches == 1
        assert dev.counters.interactions == 300.0 * 300.0
        assert dev.counters.by_kind["direct"][0] == 1

    def test_direct_sum_at_matches_full(self):
        p = random_cube(200, seed=3)
        k = CoulombKernel()
        full = direct_sum(p.positions, p.positions, p.charges, k)
        idx = np.array([0, 5, 17, 101])
        sub = direct_sum_at(idx, p.positions, p.positions, p.charges, k)
        assert np.allclose(sub, full[idx])


class TestErrorMetrics:
    def test_relative_l2_zero_for_identical(self):
        x = np.arange(5.0)
        assert relative_l2_error(x, x) == 0.0

    def test_relative_l2_matches_eq16(self):
        ref = np.array([3.0, 4.0])
        val = np.array([3.0, 5.0])
        assert relative_l2_error(ref, val) == pytest.approx(1.0 / 5.0)

    def test_zero_reference(self):
        assert relative_l2_error(np.zeros(3), np.ones(3)) == pytest.approx(
            np.sqrt(3.0)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_l2_error(np.zeros(3), np.zeros(4))

    def test_sampled_error_exact_when_sample_covers_all(self):
        p = random_cube(150, seed=4)
        k = CoulombKernel()
        phi = direct_sum(p.positions, p.positions, p.charges, k)
        err = sampled_error(
            phi, p.positions, p.positions, p.charges, k, n_samples=1000
        )
        assert err == pytest.approx(0.0, abs=1e-14)

    def test_sampled_error_detects_bad_potential(self):
        p = random_cube(150, seed=5)
        k = CoulombKernel()
        phi = direct_sum(p.positions, p.positions, p.charges, k)
        err = sampled_error(
            1.1 * phi, p.positions, p.positions, p.charges, k, n_samples=50
        )
        assert err == pytest.approx(0.1, rel=1e-6)

    def test_sampled_error_requires_matching_length(self):
        p = random_cube(10, seed=6)
        with pytest.raises(ValueError):
            sampled_error(np.zeros(5), p.positions, p.positions, p.charges,
                          CoulombKernel())


class TestReport:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(0.0) == "0"
        assert format_value(1.5e-8) == "1.500e-08"
        assert format_value(12.3456) == "12.35"
        assert format_value(True) == "True"

    def test_format_table_alignment(self):
        out = format_table(
            ["a", "long_header"],
            [[1, 2.0], [333, 4.5e-9]],
            title="T",
        )
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "long_header" in lines[1]
        assert len(lines) == 5
        widths = {len(l) for l in lines[1:]}
        assert len(widths) <= 2  # header/hline/rows aligned

    def test_format_table_bad_row(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
