"""Tests for the experiment-harness helpers (repro.experiments.common).

The re-timing helpers must agree with actually re-running the pipeline
on the other device/kernel -- that equivalence is what justifies using
them in the figure harnesses.
"""

import numpy as np
import pytest

from repro import (
    BarycentricTreecode,
    CoulombKernel,
    CPU_XEON_X5650,
    DistributedBLTC,
    GPU_P100,
    GPU_TITAN_V,
    TreecodeParams,
    YukawaKernel,
    random_cube,
)
from repro.experiments.common import (
    clean_leaf_size,
    cpu_time_from_stats,
    kernel_time_delta,
    retime_distributed,
    scaled_machine,
)


@pytest.fixture(scope="module")
def dry_pair():
    """GPU dry run + matching CPU dry run of the same configuration."""
    p = random_cube(30_000, seed=71)
    params = TreecodeParams(
        theta=0.8, degree=6, max_leaf_size=1000, max_batch_size=1000
    )
    gpu = BarycentricTreecode(
        CoulombKernel(), params, machine=GPU_TITAN_V
    ).compute(p, dry_run=True)
    cpu = BarycentricTreecode(
        CoulombKernel(), params, machine=CPU_XEON_X5650
    ).compute(p, dry_run=True)
    yuk = BarycentricTreecode(
        YukawaKernel(0.5), params, machine=GPU_TITAN_V
    ).compute(p, dry_run=True)
    return gpu, cpu, yuk


class TestCpuTimeFromStats:
    def test_matches_real_cpu_dry_run(self, dry_pair):
        gpu, cpu, _ = dry_pair
        derived = cpu_time_from_stats(gpu.stats, CoulombKernel(), CPU_XEON_X5650)
        assert derived == pytest.approx(cpu.phases.total, rel=0.02)


class TestKernelTimeDelta:
    def test_matches_real_yukawa_dry_run(self, dry_pair):
        gpu, _, yuk = dry_pair
        derived = gpu.phases.total + kernel_time_delta(
            gpu.stats["busy_by_kind"], CoulombKernel(), YukawaKernel(0.5),
            GPU_TITAN_V,
        )
        assert derived == pytest.approx(yuk.phases.total, rel=0.01)

    def test_same_kernel_zero_delta(self, dry_pair):
        gpu, _, _ = dry_pair
        delta = kernel_time_delta(
            gpu.stats["busy_by_kind"], CoulombKernel(), CoulombKernel(),
            GPU_TITAN_V,
        )
        assert delta == pytest.approx(0.0, abs=1e-12)


class TestRetimeDistributed:
    def test_matches_real_distributed_yukawa(self):
        p = random_cube(12_000, seed=72)
        params = TreecodeParams(
            theta=0.8, degree=5, max_leaf_size=500, max_batch_size=500
        )
        base = DistributedBLTC(
            CoulombKernel(), params, n_ranks=3, machine=GPU_P100
        ).compute(p, dry_run=True)
        real = DistributedBLTC(
            YukawaKernel(0.5), params, n_ranks=3, machine=GPU_P100
        ).compute(p, dry_run=True)
        derived_total, derived_agg = retime_distributed(
            base, CoulombKernel(), YukawaKernel(0.5), GPU_P100
        )
        assert derived_total == pytest.approx(real.total_seconds, rel=0.01)
        assert derived_agg.compute == pytest.approx(
            real.aggregate_phases().compute, rel=0.01
        )

    def test_identity_retiming(self):
        p = random_cube(6_000, seed=73)
        params = TreecodeParams(
            theta=0.8, degree=4, max_leaf_size=400, max_batch_size=400
        )
        res = DistributedBLTC(
            CoulombKernel(), params, n_ranks=2, machine=GPU_P100
        ).compute(p, dry_run=True)
        total, _ = retime_distributed(
            res, CoulombKernel(), CoulombKernel(), GPU_P100
        )
        assert total == pytest.approx(res.total_seconds, rel=1e-9)


class TestScaledMachine:
    def test_preserves_ratio(self):
        m = scaled_machine(GPU_P100, nl=500, paper_nl=4000)
        assert m.saturation_blocks == pytest.approx(
            GPU_P100.saturation_blocks / 8, abs=1
        )
        assert m.interaction_rate == GPU_P100.interaction_rate

    def test_floor(self):
        m = scaled_machine(GPU_P100, nl=1)
        assert m.saturation_blocks >= 8


class TestCleanLeafSize:
    def test_lands_on_level(self):
        nl = clean_leaf_size(1_000_000, target=2000)
        # 1M / 8^3 = 1953 is log-closest to 2000.
        assert 1953 < nl < 2400

    def test_small_n(self):
        assert clean_leaf_size(500, target=2000) >= 500

    def test_headroom_avoids_extra_split(self):
        from repro.tree import ClusterTree

        p = random_cube(200_000, seed=74)
        nl = clean_leaf_size(200_000, target=2000)
        tree = ClusterTree(p.positions, nl)
        sizes = np.array([l.count for l in tree.leaves()])
        # Leaves should cluster near one level's population, not be
        # fragmented 8x below it.
        assert np.median(sizes) > nl / 4

    def test_respects_cap(self):
        nl = clean_leaf_size(9_000, target=2000, cap=4500)
        # 9000/8 = 1125 is the only level under the cap.
        assert nl < 4500
