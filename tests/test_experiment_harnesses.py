"""Smoke tests for the figure-regeneration harnesses (miniature configs).

The benchmarks run these harnesses at figure scale; here we verify their
structure and basic physics with tiny configurations so the unit suite
stays fast.
"""

import pytest

from repro.experiments import (
    Fig4Config,
    Fig5Config,
    Fig6Config,
    run_fig4,
    run_fig5,
    run_fig6,
)
from repro.kernels import CoulombKernel


@pytest.fixture(scope="module")
def fig4_mini():
    cfg = Fig4Config(
        n_error=2000,
        nl_error=100,
        n_model=30_000,
        nl_model=500,
        thetas=(0.7,),
        degrees=(2, 5),
    )
    return run_fig4(cfg, kernels=(CoulombKernel(),))


@pytest.fixture(scope="module")
def fig5_mini():
    cfg = Fig5Config(
        scale_divisor=1024,
        particles_per_gpu=(8_000_000,),
        gpu_counts=(1, 3),
        n_verify=5_000,
        verify_ranks=2,
    )
    return run_fig5(cfg, kernels=(CoulombKernel(),))


@pytest.fixture(scope="module")
def fig6_mini():
    cfg = Fig6Config(
        scale_divisor=1024,
        totals=(16_000_000,),
        gpu_counts=(1, 4),
    )
    return run_fig6(cfg, kernels=(CoulombKernel(),))


class TestFig4Harness:
    def test_row_count(self, fig4_mini):
        assert len(fig4_mini["rows"]) == 2  # 1 kernel x 1 theta x 2 degrees

    def test_error_improves_with_degree(self, fig4_mini):
        rows = sorted(fig4_mini["rows"], key=lambda r: r.degree)
        assert rows[1].error < rows[0].error

    def test_speedup_positive(self, fig4_mini):
        for r in fig4_mini["rows"]:
            assert r.speedup > 1.0
            assert r.gpu_time > 0 and r.cpu_time > 0

    def test_direct_reference_present(self, fig4_mini):
        d = fig4_mini["direct"]["coulomb"]
        assert d["cpu"] > d["gpu"] > 0

    def test_quick_preset_smaller(self):
        full = Fig4Config()
        quick = full.quick()
        assert len(quick.degrees) < len(full.degrees)
        assert len(quick.thetas) < len(full.thetas)


class TestFig5Harness:
    def test_row_count(self, fig5_mini):
        assert len(fig5_mini["rows"]) == 2

    def test_total_particles(self, fig5_mini):
        rows = sorted(fig5_mini["rows"], key=lambda r: r.n_gpus)
        assert rows[0].n_total == rows[0].n_per_gpu
        assert rows[1].n_total == 3 * rows[1].n_per_gpu

    def test_rma_zero_for_single_rank(self, fig5_mini):
        rows = sorted(fig5_mini["rows"], key=lambda r: r.n_gpus)
        assert rows[0].rma_bytes == 0
        assert rows[1].rma_bytes > 0

    def test_verify_error_reasonable(self, fig5_mini):
        err = fig5_mini["verify_error"]["coulomb"]
        assert 0 < err < 1e-3

    def test_phases_positive(self, fig5_mini):
        for r in fig5_mini["rows"]:
            assert r.time > 0 and r.compute > 0 and r.setup > 0


class TestFig6Harness:
    def test_efficiency_definition(self, fig6_mini):
        rows = sorted(fig6_mini["rows"], key=lambda r: r.n_gpus)
        assert rows[0].efficiency == pytest.approx(1.0)
        assert 0.0 < rows[1].efficiency <= 1.2

    def test_fractions_sum_to_one(self, fig6_mini):
        for r in fig6_mini["rows"]:
            total = r.setup_frac + r.precompute_frac + r.compute_frac
            assert total == pytest.approx(1.0)

    def test_time_falls_with_gpus(self, fig6_mini):
        rows = sorted(fig6_mini["rows"], key=lambda r: r.n_gpus)
        assert rows[1].time < rows[0].time
