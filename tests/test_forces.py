"""Tests for force (gradient) evaluation -- kernels and treecode path."""

import numpy as np
import pytest

from repro import (
    BarycentricTreecode,
    CoulombKernel,
    GaussianKernel,
    InverseMultiquadricKernel,
    ParticleSet,
    ThinPlateKernel,
    TreecodeParams,
    YukawaKernel,
    random_cube,
)

GRAD_KERNELS = [
    CoulombKernel(),
    YukawaKernel(kappa=0.5),
    InverseMultiquadricKernel(c=0.3),
    GaussianKernel(sigma=0.7),
]


def _fd_gradient(kernel, x, y, h=1e-6):
    """Central finite-difference gradient of G(x, y) w.r.t. x."""
    g = np.zeros(3)
    for d in range(3):
        xp = x.copy()
        xm = x.copy()
        xp[d] += h
        xm[d] -= h
        g[d] = (
            kernel.pairwise(xp[None], y[None])[0, 0]
            - kernel.pairwise(xm[None], y[None])[0, 0]
        ) / (2 * h)
    return g


class TestKernelGradients:
    @pytest.mark.parametrize("kernel", GRAD_KERNELS, ids=lambda k: k.name)
    def test_matches_finite_differences(self, kernel, rng):
        for _ in range(5):
            x = rng.uniform(-1, 1, 3)
            y = rng.uniform(2, 3, 3)  # well separated
            analytic = kernel.pairwise_gradient(x[None], y[None])[0, 0]
            fd = _fd_gradient(kernel, x, y)
            assert np.allclose(analytic, fd, rtol=1e-5, atol=1e-8)

    def test_coulomb_known_value(self):
        k = CoulombKernel()
        g = k.pairwise_gradient(
            np.array([[2.0, 0.0, 0.0]]), np.array([[0.0, 0.0, 0.0]])
        )[0, 0]
        # grad_x (1/|x|) = -x/|x|^3 = (-1/4, 0, 0).
        assert np.allclose(g, [-0.25, 0.0, 0.0])

    def test_coincident_gradient_zero(self):
        k = CoulombKernel()
        x = np.array([[1.0, 1.0, 1.0]])
        assert np.array_equal(k.pairwise_gradient(x, x)[0, 0], np.zeros(3))

    def test_no_gradient_kernel_raises(self):
        k = ThinPlateKernel()
        with pytest.raises(NotImplementedError):
            k.pairwise_gradient(np.zeros((1, 3)), np.ones((1, 3)))

    def test_force_is_negative_gradient_sum(self, rng):
        k = CoulombKernel()
        t = rng.uniform(-1, 1, (6, 3))
        s = rng.uniform(2, 3, (9, 3))
        q = rng.normal(size=9)
        f = k.force(t, s, q)
        manual = -np.einsum("mkd,k->md", k.pairwise_gradient(t, s), q)
        assert np.allclose(f, manual)

    def test_force_blocked(self, rng):
        k = YukawaKernel(0.5)
        t = rng.uniform(-1, 1, (20, 3))
        s = rng.uniform(-1, 1, (25, 3))
        q = rng.normal(size=25)
        assert np.allclose(
            k.force(t, s, q), k.force(t, s, q, block_elements=64)
        )


class TestTreecodeForces:
    @pytest.fixture(scope="class")
    def cube(self):
        return random_cube(1500, seed=201)

    @pytest.fixture(scope="class")
    def direct_forces(self, cube):
        return CoulombKernel().force(
            cube.positions, cube.positions, cube.charges
        )

    def test_forces_converge_with_degree(self, cube, direct_forces):
        errs = []
        for n in (2, 4, 6):
            params = TreecodeParams(
                theta=0.6, degree=n, max_leaf_size=150, max_batch_size=150
            )
            res = BarycentricTreecode(CoulombKernel(), params).compute(
                cube, compute_forces=True
            )
            err = np.linalg.norm(res.forces - direct_forces) / np.linalg.norm(
                direct_forces
            )
            errs.append(err)
        assert errs[1] < errs[0]
        assert errs[2] < 1e-5

    def test_momentum_conservation(self, cube):
        """Newton's third law: sum_i q_i F_i = 0 for the exact sum; the
        treecode approximation must respect it to within its accuracy."""
        params = TreecodeParams(
            theta=0.6, degree=6, max_leaf_size=150, max_batch_size=150
        )
        res = BarycentricTreecode(CoulombKernel(), params).compute(
            cube, compute_forces=True
        )
        total = np.einsum("i,id->d", cube.charges, res.forces)
        scale = np.abs(cube.charges[:, None] * res.forces).sum()
        assert np.linalg.norm(total) / scale < 1e-6

    def test_forces_none_by_default(self, cube):
        params = TreecodeParams(
            theta=0.7, degree=3, max_leaf_size=150, max_batch_size=150
        )
        res = BarycentricTreecode(CoulombKernel(), params).compute(cube)
        assert res.forces is None

    def test_force_launches_accounted(self, cube):
        params = TreecodeParams(
            theta=0.7, degree=3, max_leaf_size=150, max_batch_size=150
        )
        res = BarycentricTreecode(CoulombKernel(), params).compute(
            cube, compute_forces=True
        )
        kinds = res.stats["by_kind"]
        assert "direct-force" in kinds
        assert kinds["direct-force"][0] == kinds["direct"][0]

    def test_two_body_force(self):
        p = ParticleSet(
            np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]),
            np.array([1.0, 1.0]),
        )
        params = TreecodeParams(
            theta=0.7, degree=2, max_leaf_size=10, max_batch_size=10
        )
        res = BarycentricTreecode(CoulombKernel(), params).compute(
            p, compute_forces=True
        )
        # F on particle 0 per unit charge: -grad(1/|x-y|) at x=0 due to
        # y=(1,0,0): repulsive for like charges -> points in -x.
        assert res.forces[0][0] == pytest.approx(-1.0)
        assert res.forces[1][0] == pytest.approx(1.0)
