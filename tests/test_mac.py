"""Unit tests for the multipole acceptance criterion (paper eq. 13)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mac import mac_accepts, mac_geometric


class TestGeometric:
    def test_well_separated_passes(self):
        assert mac_geometric(0.1, 0.1, 10.0, 0.5)

    def test_close_fails(self):
        assert not mac_geometric(1.0, 1.0, 2.5, 0.5)

    def test_boundary_is_strict(self):
        # (rB + rC)/R == theta must FAIL (condition is strict <).
        assert not mac_geometric(0.5, 0.5, 2.0, 0.5)

    def test_zero_distance_fails(self):
        assert not mac_geometric(0.1, 0.1, 0.0, 0.9)

    def test_negative_distance_fails(self):
        assert not mac_geometric(0.1, 0.1, -1.0, 0.9)

    def test_zero_radii_always_pass_when_separated(self):
        assert mac_geometric(0.0, 0.0, 1e-12, 0.1)


class TestSizeCondition:
    def test_small_cluster_rejected(self):
        # (n+1)^3 = 729 >= N_C = 500 -> direct even though well separated.
        assert not mac_accepts(0.1, 0.1, 100.0, 0.8, 729, 500)

    def test_large_cluster_accepted(self):
        assert mac_accepts(0.1, 0.1, 100.0, 0.8, 729, 5000)

    def test_equality_rejected(self):
        # (n+1)^3 == N_C must fail: condition is strict <.
        assert not mac_accepts(0.1, 0.1, 100.0, 0.8, 729, 729)

    def test_size_check_disabled(self):
        assert mac_accepts(0.1, 0.1, 100.0, 0.8, 729, 10, size_check=False)

    def test_geometric_failure_dominates(self):
        assert not mac_accepts(1.0, 1.0, 2.0, 0.5, 8, 10_000)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        rb=st.floats(0, 10, allow_nan=False),
        rc=st.floats(0, 10, allow_nan=False),
        r=st.floats(1e-6, 100, allow_nan=False),
        theta=st.floats(0.01, 1.0, allow_nan=False),
    )
    def test_monotone_in_distance(self, rb, rc, r, theta):
        """If the MAC passes at distance R it passes at any larger R."""
        if mac_geometric(rb, rc, r, theta):
            assert mac_geometric(rb, rc, 2 * r, theta)

    @settings(max_examples=50, deadline=None)
    @given(
        rb=st.floats(0, 10, allow_nan=False),
        rc=st.floats(0, 10, allow_nan=False),
        r=st.floats(1e-6, 100, allow_nan=False),
        theta=st.floats(0.01, 0.5, allow_nan=False),
    )
    def test_monotone_in_theta(self, rb, rc, r, theta):
        """Passing at a strict theta implies passing at a looser theta."""
        if mac_geometric(rb, rc, r, theta):
            assert mac_geometric(rb, rc, r, min(1.0, 2 * theta))
