"""Property-based tests for the device cost model (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import CpuDevice, GpuDevice
from repro.perf.machine import CPU_XEON_X5650, GPU_TITAN_V

work = st.floats(min_value=1.0, max_value=1e12, allow_nan=False)
blocks = st.integers(min_value=1, max_value=10**6)


class TestDeviceModelProperties:
    @settings(max_examples=40, deadline=None)
    @given(w=work, b=blocks)
    def test_async_never_slower_than_sync(self, w, b):
        """Hiding launch latency can only help."""
        a = GpuDevice(GPU_TITAN_V, async_streams=True)
        s = GpuDevice(GPU_TITAN_V, async_streams=False)
        for dev in (a, s):
            for _ in range(5):
                dev.launch(w, blocks=b)
        assert a.elapsed() <= s.elapsed() + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(w1=work, w2=work, b=blocks)
    def test_time_additive_and_monotone(self, w1, w2, b):
        one = GpuDevice(GPU_TITAN_V, async_streams=False)
        one.launch(w1 + w2, blocks=b)
        two = GpuDevice(GPU_TITAN_V, async_streams=False)
        two.launch(w1, blocks=b)
        two.launch(w2, blocks=b)
        # Two launches pay one extra launch latency; busy time is equal.
        assert two.elapsed() == pytest.approx(
            one.elapsed() + GPU_TITAN_V.launch_latency, rel=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(w=work, b1=blocks, b2=blocks)
    def test_more_blocks_never_slower(self, w, b1, b2):
        """Occupancy is monotone: more thread blocks cannot hurt."""
        lo, hi = min(b1, b2), max(b1, b2)
        a = GpuDevice(GPU_TITAN_V, async_streams=False)
        a.launch(w, blocks=lo)
        b = GpuDevice(GPU_TITAN_V, async_streams=False)
        b.launch(w, blocks=hi)
        assert b.elapsed() <= a.elapsed() + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(w=work)
    def test_cpu_time_exact(self, w):
        dev = CpuDevice(CPU_XEON_X5650)
        dev.launch(w, blocks=1)
        assert dev.elapsed() == pytest.approx(
            w / CPU_XEON_X5650.interaction_rate
        )

    @settings(max_examples=30, deadline=None)
    @given(
        w=work,
        b=blocks,
        mult=st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
    )
    def test_cost_multiplier_monotone(self, w, b, mult):
        base = GpuDevice(GPU_TITAN_V, async_streams=False)
        base.launch(w, blocks=b, cost_multiplier=1.0)
        scaled = GpuDevice(GPU_TITAN_V, async_streams=False)
        scaled.launch(w, blocks=b, cost_multiplier=mult)
        assert scaled.elapsed() >= base.elapsed() - 1e-15

    @settings(max_examples=20, deadline=None)
    @given(
        nbytes=st.integers(min_value=0, max_value=1 << 34),
    )
    def test_transfer_time_monotone_in_bytes(self, nbytes):
        dev = GpuDevice(GPU_TITAN_V)
        dev.upload(nbytes)
        t1 = dev.elapsed()
        dev.upload(nbytes + 4096)
        assert dev.elapsed() - t1 >= GPU_TITAN_V.transfer_time(nbytes) - 1e-12
