"""Tests for the cluster-particle treecode extension."""

import numpy as np
import pytest

from repro import (
    BarycentricTreecode,
    CoulombKernel,
    TreecodeParams,
    YukawaKernel,
    direct_sum,
    random_cube,
    relative_l2_error,
    sphere_surface,
)
from repro.extensions import ClusterParticleTreecode


@pytest.fixture(scope="module")
def cube():
    return random_cube(2500, seed=81)


@pytest.fixture(scope="module")
def ref(cube):
    return direct_sum(
        cube.positions, cube.positions, cube.charges, CoulombKernel()
    )


def _params(**kw):
    base = dict(theta=0.6, degree=5, max_leaf_size=200, max_batch_size=200)
    base.update(kw)
    return TreecodeParams(**base)


class TestAccuracy:
    def test_error_decreases_with_degree(self, cube, ref):
        errs = []
        for n in (2, 4, 6, 8):
            tc = ClusterParticleTreecode(CoulombKernel(), _params(degree=n))
            errs.append(relative_l2_error(ref, tc.compute(cube).potential))
        assert errs[1] < errs[0]
        assert errs[2] < errs[1]
        assert errs[-1] < 1e-10

    def test_matches_particle_cluster_accuracy_class(self, cube, ref):
        """Same (theta, n): cluster-particle and particle-cluster land in
        the same error decade (they interpolate the same kernel)."""
        params = _params(degree=5)
        cp = ClusterParticleTreecode(CoulombKernel(), params).compute(cube)
        pc = BarycentricTreecode(CoulombKernel(), params).compute(cube)
        e_cp = relative_l2_error(ref, cp.potential)
        e_pc = relative_l2_error(ref, pc.potential)
        assert e_cp < 1e-5 and e_pc < 1e-5
        assert 0.01 < (e_cp + 1e-18) / (e_pc + 1e-18) < 100.0

    def test_yukawa(self, cube):
        kernel = YukawaKernel(0.5)
        ref_y = direct_sum(cube.positions, cube.positions, cube.charges, kernel)
        res = ClusterParticleTreecode(kernel, _params(degree=6)).compute(cube)
        assert relative_l2_error(ref_y, res.potential) < 1e-6

    def test_many_targets_few_sources(self):
        """The regime cluster-particle is built for (ref. [32])."""
        sources = random_cube(800, seed=82)
        targets = sphere_surface(4000, seed=83, radius=1.5)
        kernel = CoulombKernel()
        ref = kernel.potential(
            targets.positions, sources.positions, sources.charges
        )
        res = ClusterParticleTreecode(
            kernel, _params(degree=6, max_batch_size=400)
        ).compute(sources, targets=targets.positions)
        assert relative_l2_error(ref, res.potential) < 1e-5


class TestStructure:
    def test_stats_scheme_marker(self, cube):
        res = ClusterParticleTreecode(CoulombKernel(), _params()).compute(cube)
        assert res.stats["scheme"] == "cluster-particle"
        assert res.stats["launches"] > 0
        assert res.phases.compute > 0
        assert res.phases.setup > 0

    def test_interpolation_launches_counted(self, cube):
        res = ClusterParticleTreecode(CoulombKernel(), _params()).compute(cube)
        if res.stats["n_clusters_with_grid"]:
            assert "interpolate" in res.stats["by_kind"]

    def test_tiny_theta_reduces_to_direct(self, cube, ref):
        res = ClusterParticleTreecode(
            CoulombKernel(), _params(theta=0.01)
        ).compute(cube)
        assert res.stats["n_approx_interactions"] == 0
        assert relative_l2_error(ref, res.potential) < 1e-13

    def test_small_system(self):
        p = random_cube(20, seed=84)
        res = ClusterParticleTreecode(CoulombKernel(), _params()).compute(p)
        ref = direct_sum(p.positions, p.positions, p.charges, CoulombKernel())
        assert np.allclose(res.potential, ref)
