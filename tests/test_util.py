"""Unit tests for repro.util."""

import numpy as np
import pytest

from repro.util import TINY, as_charges, as_points, chunk_ranges, default_rng


class TestAsPoints:
    def test_accepts_n_by_3(self):
        pts = as_points([[0.0, 1.0, 2.0], [3.0, 4.0, 5.0]])
        assert pts.shape == (2, 3)
        assert pts.dtype == np.float64

    def test_single_point_promoted(self):
        pts = as_points([1.0, 2.0, 3.0])
        assert pts.shape == (1, 3)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError, match="shape"):
            as_points(np.zeros((4, 2)))

    def test_rejects_nan(self):
        bad = np.zeros((2, 3))
        bad[1, 1] = np.nan
        with pytest.raises(ValueError, match="finite"):
            as_points(bad)

    def test_rejects_inf(self):
        bad = np.zeros((2, 3))
        bad[0, 2] = np.inf
        with pytest.raises(ValueError, match="finite"):
            as_points(bad)

    def test_contiguous_output(self):
        base = np.zeros((6, 6))
        view = base[:, :3]
        out = as_points(view)
        assert out.flags["C_CONTIGUOUS"]


class TestAsCharges:
    def test_basic(self):
        q = as_charges([1.0, -2.0], 2)
        assert q.shape == (2,)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="shape"):
            as_charges([1.0, 2.0], 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="shape"):
            as_charges(np.zeros((2, 2)), 2)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            as_charges([1.0, np.nan], 2)


class TestChunkRanges:
    def test_exact_division(self):
        assert list(chunk_ranges(6, 2)) == [(0, 2), (2, 4), (4, 6)]

    def test_remainder(self):
        assert list(chunk_ranges(5, 2)) == [(0, 2), (2, 4), (4, 5)]

    def test_chunk_larger_than_n(self):
        assert list(chunk_ranges(3, 100)) == [(0, 3)]

    def test_zero_n(self):
        assert list(chunk_ranges(0, 4)) == []

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            list(chunk_ranges(4, 0))

    def test_covers_everything_once(self):
        seen = []
        for lo, hi in chunk_ranges(97, 13):
            seen.extend(range(lo, hi))
        assert seen == list(range(97))


def test_tiny_is_smallest_normal_double():
    assert TINY == np.finfo(np.float64).tiny


def test_default_rng_deterministic():
    a = default_rng(5).uniform(size=4)
    b = default_rng(5).uniform(size=4)
    assert np.array_equal(a, b)
