"""Unit tests for the interaction-list executor (repro.core.executor)."""

import numpy as np
import pytest

from repro.core.executor import (
    charge_batch_launches,
    execute_batch_interactions,
)
from repro.gpu.device import CpuDevice, GpuDevice
from repro.kernels import CoulombKernel, YukawaKernel
from repro.perf.machine import CPU_XEON_X5650, GPU_TITAN_V


def _rng():
    return np.random.default_rng(0)


class TestExecuteBatch:
    def test_matches_manual_sum(self):
        rng = _rng()
        tgt = rng.uniform(-1, 1, (20, 3))
        s1 = rng.uniform(2, 3, (15, 3))
        q1 = rng.normal(size=15)
        s2 = rng.uniform(-3, -2, (10, 3))
        q2 = rng.normal(size=10)
        kernel = CoulombKernel()
        dev = GpuDevice(GPU_TITAN_V)
        phi = execute_batch_interactions(
            kernel, dev, tgt, [(s1, q1)], [(s2, q2)]
        )
        manual = kernel.potential(tgt, s1, q1) + kernel.potential(tgt, s2, q2)
        assert np.allclose(phi, manual)

    def test_launch_accounting(self):
        rng = _rng()
        tgt = rng.uniform(-1, 1, (8, 3))
        pairs_a = [(rng.uniform(size=(5, 3)), rng.normal(size=5))
                   for _ in range(3)]
        pairs_d = [(rng.uniform(size=(7, 3)), rng.normal(size=7))
                   for _ in range(2)]
        dev = GpuDevice(GPU_TITAN_V)
        execute_batch_interactions(CoulombKernel(), dev, tgt, pairs_a, pairs_d)
        assert dev.counters.by_kind["approx"][0] == 3
        assert dev.counters.by_kind["direct"][0] == 2
        assert dev.counters.by_kind["approx"][1] == 8 * 5 * 3
        assert dev.counters.by_kind["direct"][1] == 8 * 7 * 2

    def test_empty_batch(self):
        dev = GpuDevice(GPU_TITAN_V)
        phi = execute_batch_interactions(
            CoulombKernel(), dev, np.zeros((0, 3)), [], []
        )
        assert phi.shape == (0,)
        assert dev.counters.launches == 0

    def test_empty_lists(self):
        dev = GpuDevice(GPU_TITAN_V)
        tgt = _rng().uniform(size=(4, 3))
        phi = execute_batch_interactions(CoulombKernel(), dev, tgt, [], [])
        assert np.array_equal(phi, np.zeros(4))

    def test_float32_mode_close_to_float64(self):
        rng = _rng()
        tgt = rng.uniform(-1, 1, (30, 3))
        src = rng.uniform(2, 4, (40, 3))
        q = rng.normal(size=40)
        dev = CpuDevice(CPU_XEON_X5650)
        full = execute_batch_interactions(
            CoulombKernel(), dev, tgt, [], [(src, q)], dtype=np.float64
        )
        single = execute_batch_interactions(
            CoulombKernel(), dev, tgt, [], [(src, q)], dtype=np.float32
        )
        assert np.allclose(full, single, rtol=1e-4)
        assert not np.array_equal(full, single)
        assert single.dtype == np.float64  # accumulator stays double

    def test_yukawa_cost_multiplier_charged(self):
        rng = _rng()
        tgt = rng.uniform(-1, 1, (10, 3))
        src = rng.uniform(2, 3, (10, 3))
        q = rng.normal(size=10)
        dev_c = CpuDevice(CPU_XEON_X5650)
        dev_y = CpuDevice(CPU_XEON_X5650)
        execute_batch_interactions(CoulombKernel(), dev_c, tgt, [], [(src, q)])
        execute_batch_interactions(YukawaKernel(), dev_y, tgt, [], [(src, q)])
        assert dev_y.elapsed() > dev_c.elapsed()


class TestChargeBatchLaunches:
    def test_same_accounting_as_real_execution(self):
        rng = _rng()
        tgt = rng.uniform(-1, 1, (12, 3))
        pairs_a = [(rng.uniform(size=(6, 3)), rng.normal(size=6))]
        pairs_d = [(rng.uniform(size=(9, 3)), rng.normal(size=9))]
        real = GpuDevice(GPU_TITAN_V)
        execute_batch_interactions(CoulombKernel(), real, tgt, pairs_a, pairs_d)
        dry = GpuDevice(GPU_TITAN_V)
        charge_batch_launches(CoulombKernel(), dry, 12, [6], [9])
        assert dry.counters.launches == real.counters.launches
        assert dry.counters.interactions == real.counters.interactions
        assert dry.elapsed() == pytest.approx(real.elapsed())

    def test_zero_targets_noop(self):
        dev = GpuDevice(GPU_TITAN_V)
        charge_batch_launches(CoulombKernel(), dev, 0, [5], [5])
        assert dev.counters.launches == 0
