"""Unit and property tests for repro.interpolation.

The load-bearing mathematical facts: Chebyshev points/weights match the
paper's eqs. 6-7, the barycentric basis is a partition of unity, it
reproduces polynomials up to degree n exactly, and the removable
singularities (eq. 5) give exact Kronecker deltas at interpolation points.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interpolation import (
    ChebyshevGrid3D,
    barycentric_weights,
    chebyshev_points,
    interpolate_1d,
    lagrange_basis,
    tensor_grid_points,
)


class TestChebyshevPoints:
    def test_degree_one(self):
        pts = chebyshev_points(1)
        assert np.array_equal(pts, [1.0, -1.0])

    def test_formula_matches_eq6(self):
        n = 9
        pts = chebyshev_points(n)
        expected = np.cos(np.pi * np.arange(n + 1) / n)
        assert np.allclose(pts, expected)

    def test_endpoints_exact_on_mapped_interval(self):
        pts = chebyshev_points(8, a=-0.3, b=1.7)
        assert pts[0] == 1.7 and pts[-1] == -0.3

    def test_descending_order(self):
        pts = chebyshev_points(12)
        assert np.all(np.diff(pts) < 0)

    def test_symmetric_about_midpoint(self):
        pts = chebyshev_points(10, a=2.0, b=4.0)
        assert np.allclose(pts + pts[::-1], 6.0)

    def test_degenerate_interval(self):
        pts = chebyshev_points(4, a=1.5, b=1.5)
        assert np.all(pts == 1.5)

    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            chebyshev_points(0)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            chebyshev_points(3, a=1.0, b=0.0)


class TestBarycentricWeights:
    def test_eq7_small_degrees(self):
        # w_k = (-1)^k delta_k, halved at the endpoints.
        assert np.array_equal(barycentric_weights(1), [0.5, -0.5])
        assert np.array_equal(barycentric_weights(2), [0.5, -1.0, 0.5])
        assert np.array_equal(
            barycentric_weights(3), [0.5, -1.0, 1.0, -0.5]
        )

    def test_alternating_signs(self):
        w = barycentric_weights(9)
        assert np.all(w[::2] > 0) and np.all(w[1::2] < 0)


class TestLagrangeBasis:
    def test_partition_of_unity(self):
        s = chebyshev_points(7)
        w = barycentric_weights(7)
        x = np.linspace(-1, 1, 33)
        basis = lagrange_basis(x, s, w)
        assert np.allclose(basis.sum(axis=0), 1.0)

    def test_kronecker_delta_at_nodes(self):
        """Eq. 5: L_k(s_k') = delta_{kk'}, exactly (Sec. 2.3 handling)."""
        s = chebyshev_points(6, a=-0.4, b=0.9)
        w = barycentric_weights(6)
        basis = lagrange_basis(s, s, w)
        assert np.array_equal(basis, np.eye(7))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            lagrange_basis(np.zeros(3), np.zeros(4), np.zeros(5))

    @pytest.mark.parametrize("degree", [1, 3, 5, 8])
    def test_reproduces_polynomials_exactly(self, degree):
        """Interpolation of degree-n polynomials is exact."""
        rng = np.random.default_rng(degree)
        coeffs = rng.normal(size=degree + 1)
        poly = np.polynomial.Polynomial(coeffs)
        s = chebyshev_points(degree, a=-2.0, b=1.0)
        w = barycentric_weights(degree)
        x = rng.uniform(-2.0, 1.0, size=50)
        interp = interpolate_1d(poly(s), s, w, x)
        assert np.allclose(interp, poly(x), atol=1e-11, rtol=1e-10)

    def test_runge_function_converges(self):
        """Chebyshev interpolation converges on the Runge function."""
        f = lambda x: 1.0 / (1.0 + 25.0 * x**2)
        x = np.linspace(-1, 1, 201)
        errs = []
        for n in (4, 8, 16, 32, 64):
            s = chebyshev_points(n)
            w = barycentric_weights(n)
            errs.append(np.max(np.abs(interpolate_1d(f(s), s, w, x) - f(x))))
        assert errs[-1] < 1e-5
        assert errs[-1] < errs[0] / 1000.0

    def test_near_node_evaluation_stable(self):
        """Points a few ulps from a node must not blow up."""
        s = chebyshev_points(10)
        w = barycentric_weights(10)
        x = s[3] + np.array([-1e-15, 1e-15, 1e-300, 0.0])
        basis = lagrange_basis(x, s, w)
        assert np.all(np.isfinite(basis))
        assert np.allclose(basis.sum(axis=0), 1.0)

    def test_coincident_interpolation_points_degenerate_box(self):
        """All-equal points (degenerate box dimension) stay finite."""
        s = np.full(5, 2.0)
        w = barycentric_weights(4)
        basis = lagrange_basis(np.array([2.0]), s, w)
        assert np.all(np.isfinite(basis))
        assert basis.sum() == pytest.approx(1.0)


class TestInterpolate1D:
    def test_exact_at_nodes(self):
        s = chebyshev_points(5, a=0.0, b=2.0)
        w = barycentric_weights(5)
        vals = np.sin(s)
        assert np.allclose(interpolate_1d(vals, s, w, s), vals)

    def test_wrong_values_length(self):
        s = chebyshev_points(3)
        w = barycentric_weights(3)
        with pytest.raises(ValueError):
            interpolate_1d(np.zeros(3), s, w, np.zeros(2))


class TestGrid3D:
    def test_point_count(self):
        g = ChebyshevGrid3D.for_box(
            np.array([-1.0, 0.0, 2.0]), np.array([1.0, 1.0, 3.0]), degree=3
        )
        assert g.points.shape == (64, 3)
        assert g.n_points == 64

    def test_points_span_box(self):
        lo = np.array([-1.0, 0.0, 2.0])
        hi = np.array([1.0, 1.0, 3.0])
        g = ChebyshevGrid3D.for_box(lo, hi, degree=4)
        assert np.allclose(g.points.min(axis=0), lo)
        assert np.allclose(g.points.max(axis=0), hi)

    def test_tensor_ordering_c_contiguous(self):
        sx = np.array([0.0, 1.0])
        sy = np.array([10.0, 20.0])
        sz = np.array([100.0, 200.0])
        pts = tensor_grid_points(sx, sy, sz)
        # C-order over (k1, k2, k3): z fastest.
        assert np.array_equal(pts[0], [0.0, 10.0, 100.0])
        assert np.array_equal(pts[1], [0.0, 10.0, 200.0])
        assert np.array_equal(pts[2], [0.0, 20.0, 100.0])
        assert np.array_equal(pts[4], [1.0, 10.0, 100.0])

    def test_degenerate_dimension(self):
        lo = np.array([0.0, 0.0, 1.0])
        hi = np.array([1.0, 1.0, 1.0])
        g = ChebyshevGrid3D.for_box(lo, hi, degree=2)
        assert np.all(g.points[:, 2] == 1.0)

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            ChebyshevGrid3D.for_box(np.ones(3), np.zeros(3), degree=2)


unit = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        xs=st.lists(unit, min_size=1, max_size=20),
    )
    def test_partition_of_unity_property(self, n, xs):
        s = chebyshev_points(n)
        w = barycentric_weights(n)
        basis = lagrange_basis(np.array(xs), s, w)
        assert np.allclose(basis.sum(axis=0), 1.0, atol=1e-10)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=9),
        c=st.floats(min_value=-3, max_value=3, allow_nan=False),
    )
    def test_constant_reproduced(self, n, c):
        s = chebyshev_points(n)
        w = barycentric_weights(n)
        x = np.linspace(-1, 1, 11)
        out = interpolate_1d(np.full(n + 1, c), s, w, x)
        assert np.allclose(out, c, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=10),
        a=st.floats(min_value=-5, max_value=0, allow_nan=False),
        width=st.floats(min_value=1e-3, max_value=10, allow_nan=False),
    )
    def test_linear_reproduced_on_any_interval(self, n, a, width):
        b = a + width
        s = chebyshev_points(n, a, b)
        w = barycentric_weights(n)
        x = np.linspace(a, b, 13)
        out = interpolate_1d(2.0 * s - 1.0, s, w, x)
        assert np.allclose(out, 2.0 * x - 1.0, atol=1e-9 * max(1, abs(a) + width))
