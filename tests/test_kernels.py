"""Unit and property tests for repro.kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels import (
    CoulombKernel,
    GaussianKernel,
    InverseMultiquadricKernel,
    ThinPlateKernel,
    YukawaKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)
from repro.kernels.base import RadialKernel

ALL_KERNELS = [
    CoulombKernel(),
    YukawaKernel(kappa=0.5),
    GaussianKernel(sigma=0.7),
    InverseMultiquadricKernel(c=0.3),
    ThinPlateKernel(),
]


def _points(rng, n):
    return rng.uniform(-1, 1, size=(n, 3))


class TestCoulomb:
    def test_known_value(self):
        k = CoulombKernel()
        g = k.pairwise(np.array([[0.0, 0.0, 0.0]]), np.array([[3.0, 4.0, 0.0]]))
        assert g[0, 0] == pytest.approx(1.0 / 5.0)

    def test_self_interaction_zero(self):
        k = CoulombKernel()
        x = np.array([[1.0, 2.0, 3.0]])
        assert k.pairwise(x, x)[0, 0] == 0.0

    def test_symmetry(self, rng):
        k = CoulombKernel()
        a, b = _points(rng, 8), _points(rng, 8)
        assert np.allclose(k.pairwise(a, b), k.pairwise(b, a).T)


class TestYukawa:
    def test_reduces_to_coulomb_at_kappa_zero(self, rng):
        a, b = _points(rng, 6), _points(rng, 9)
        y = YukawaKernel(kappa=0.0).pairwise(a, b)
        c = CoulombKernel().pairwise(a, b)
        assert np.allclose(y, c)

    def test_screening_decreases_potential(self, rng):
        a, b = _points(rng, 6), _points(rng, 9)
        y = YukawaKernel(kappa=0.5).pairwise(a, b)
        c = CoulombKernel().pairwise(a, b)
        assert np.all(y <= c + 1e-15)

    def test_known_value(self):
        k = YukawaKernel(kappa=0.5)
        g = k.pairwise(np.zeros((1, 3)), np.array([[2.0, 0.0, 0.0]]))
        assert g[0, 0] == pytest.approx(np.exp(-1.0) / 2.0)

    def test_rejects_negative_kappa(self):
        with pytest.raises(ValueError):
            YukawaKernel(kappa=-1.0)


class TestSmoothKernels:
    def test_imq_origin_value(self):
        k = InverseMultiquadricKernel(c=0.25)
        x = np.zeros((1, 3))
        assert k.pairwise(x, x)[0, 0] == pytest.approx(4.0)

    def test_gaussian_origin_is_one(self):
        k = GaussianKernel(sigma=0.5)
        x = np.ones((1, 3))
        assert k.pairwise(x, x)[0, 0] == pytest.approx(1.0)

    def test_thin_plate_origin_zero(self):
        k = ThinPlateKernel()
        x = np.ones((1, 3))
        assert k.pairwise(x, x)[0, 0] == 0.0

    def test_invalid_shape_params(self):
        with pytest.raises(ValueError):
            InverseMultiquadricKernel(c=0.0)
        with pytest.raises(ValueError):
            GaussianKernel(sigma=-1.0)


class TestPotential:
    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
    def test_matches_dense_matvec(self, kernel, rng):
        t, s = _points(rng, 23), _points(rng, 37)
        q = rng.normal(size=37)
        dense = kernel.pairwise(t, s) @ q
        assert np.allclose(kernel.potential(t, s, q), dense)

    def test_blocked_equals_unblocked(self, rng):
        k = CoulombKernel()
        t, s = _points(rng, 50), _points(rng, 40)
        q = rng.normal(size=40)
        full = k.potential(t, s, q)
        blocked = k.potential(t, s, q, block_elements=64)
        assert np.allclose(full, blocked)

    def test_accumulates_into_out(self, rng):
        k = CoulombKernel()
        t, s = _points(rng, 5), _points(rng, 6)
        q = rng.normal(size=6)
        out = np.ones(5)
        k.potential(t, s, q, out=out)
        assert np.allclose(out, 1.0 + k.pairwise(t, s) @ q)

    def test_empty_sources(self):
        k = CoulombKernel()
        out = k.potential(np.zeros((3, 3)), np.zeros((0, 3)), np.zeros(0))
        assert np.array_equal(out, np.zeros(3))

    def test_mismatched_charges(self, rng):
        k = CoulombKernel()
        with pytest.raises(ValueError):
            k.potential(_points(rng, 2), _points(rng, 3), np.zeros(2))


class TestMixedDtypePromotion:
    """The allocated accumulator must promote over ALL three operands.

    Regression test for the bug where ``out`` used
    ``result_type(targets, charges)`` only: float64 sources with float32
    targets/charges produced float64 pairwise blocks that were silently
    downcast on the ``+=``.
    """

    def test_float64_sources_promote_potential(self, rng):
        k = CoulombKernel()
        t32 = _points(rng, 12).astype(np.float32)
        s64 = _points(rng, 17)
        q32 = rng.normal(size=17).astype(np.float32)
        out = k.potential(t32, s64, q32)
        assert out.dtype == np.float64
        # The promoted accumulator must carry the float64 pairwise block
        # unchanged (the bug truncated exactly this product to float32).
        assert np.array_equal(out, k.pairwise(t32, s64) @ q32)

    def test_float64_sources_promote_force(self, rng):
        k = CoulombKernel()
        t64, s64 = _points(rng, 12), _points(rng, 17)
        q64 = rng.normal(size=17)
        out = k.force(t64.astype(np.float32), s64, q64.astype(np.float32))
        assert out.dtype == np.float64

    def test_all_float32_stays_float32(self, rng):
        k = CoulombKernel()
        t = _points(rng, 8).astype(np.float32)
        s = _points(rng, 9).astype(np.float32)
        q = rng.normal(size=9).astype(np.float32)
        assert k.potential(t, s, q).dtype == np.float32
        assert k.force(t, s, q).dtype == np.float32


class TestScalarFunctions:
    """Scalar forms consumed by the numba backend match the array forms."""

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
    def test_scalar_matches_vectorized(self, kernel, rng):
        r = np.abs(rng.normal(size=64)) + 0.05
        eval_r, eval_dr = kernel.scalar_functions()
        scalar = np.array([eval_r(float(x)) for x in r])
        assert np.allclose(scalar, kernel.evaluate_r(r), rtol=1e-13)
        if eval_dr is not None:
            scalar_dr = np.array([eval_dr(float(x)) for x in r])
            assert np.allclose(
                scalar_dr, kernel.evaluate_dr_over_r(r), rtol=1e-13
            )


class TestCostModel:
    def test_coulomb_multiplier_is_one(self):
        assert CoulombKernel().cost_multiplier(0.8) == 1.0

    def test_yukawa_cpu_vs_gpu_ratio(self):
        """Paper Sec. 4: Yukawa ~1.8x on CPU, ~1.5x on GPU vs Coulomb."""
        y = YukawaKernel()
        assert y.cost_multiplier(0.8) == pytest.approx(1.8)
        assert y.cost_multiplier(0.5) == pytest.approx(1.5)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_kernels()
        assert "coulomb" in names and "yukawa" in names

    def test_get_with_kwargs(self):
        k = get_kernel("yukawa", kappa=1.25)
        assert k.kappa == 1.25

    def test_case_insensitive(self):
        assert get_kernel("Coulomb").name == "coulomb"

    def test_unknown_kernel(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("nope")

    def test_user_registration(self):
        class MyKernel(RadialKernel):
            name = "r-squared"
            singular_at_origin = False

            def evaluate_r(self, r):
                return r * r

            def evaluate_r0(self):
                return 0.0

        register_kernel("r-squared", MyKernel)
        assert "r-squared" in available_kernels()
        k = get_kernel("r-squared")
        g = k.pairwise(np.zeros((1, 3)), np.array([[0.0, 2.0, 0.0]]))
        assert g[0, 0] == pytest.approx(4.0)


coords = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        t=hnp.arrays(np.float64, (4, 3), elements=coords),
        s=hnp.arrays(np.float64, (5, 3), elements=coords),
    )
    def test_coulomb_positive_and_symmetric(self, t, s):
        g = CoulombKernel().pairwise(t, s)
        assert np.all(g >= 0.0)
        assert np.all(np.isfinite(g))
        gt = CoulombKernel().pairwise(s, t)
        assert np.allclose(g, gt.T)

    @settings(max_examples=30, deadline=None)
    @given(
        t=hnp.arrays(np.float64, (3, 3), elements=coords),
        s=hnp.arrays(np.float64, (6, 3), elements=coords),
        kappa=st.floats(min_value=0.0, max_value=5.0),
    )
    def test_yukawa_bounded_by_coulomb(self, t, s, kappa):
        y = YukawaKernel(kappa=kappa).pairwise(t, s)
        c = CoulombKernel().pairwise(t, s)
        assert np.all(y <= c * (1 + 1e-12) + 1e-300)

    @settings(max_examples=30, deadline=None)
    @given(
        t=hnp.arrays(np.float64, (4, 3), elements=coords),
        s=hnp.arrays(np.float64, (4, 3), elements=coords),
        q1=hnp.arrays(np.float64, (4,), elements=st.floats(-2, 2)),
        q2=hnp.arrays(np.float64, (4,), elements=st.floats(-2, 2)),
    )
    def test_potential_linear_in_charges(self, t, s, q1, q2):
        k = CoulombKernel()
        lhs = k.potential(t, s, q1 + q2)
        rhs = k.potential(t, s, q1) + k.potential(t, s, q2)
        assert np.allclose(lhs, rhs, atol=1e-9)
