"""Backend-equivalence suite for the execution-plan architecture.

The contract of :mod:`repro.core.backends`: on the same compiled plan,
every backend records identical device counters (launches, interactions,
bytes, per-kind breakdown), the numpy / fused / multiprocessing (and,
when installed, numba) backends return roundoff-close potentials *and
forces* (the fused-family arithmetic evaluates the temporary-free
``pairwise_fused`` r^2 accumulation, so it matches the blocked
reference to the same tolerance as the numba loops, not bitwise), the
multiprocessing backend matches fused *bitwise* (shared per-group
arithmetic), and the model backend returns zeros while charging the
same simulated time.  The de-duplicated (shared-segment) source layout
must reproduce the duplicated layout bitwise on every executing backend.
"""

import numpy as np
import pytest

from repro import (
    BarycentricTreecode,
    BatchedBackend,
    CoulombKernel,
    DistributedBLTC,
    FusedBackend,
    ModelBackend,
    MultiprocessingBackend,
    NumpyBackend,
    TreecodeParams,
    YukawaKernel,
    available_backends,
    compile_plan,
    direct_sum,
    get_backend,
    random_cube,
    register_backend,
    relative_l2_error,
)
from repro.core.backends import Backend
from repro.core.backends.numba_backend import (
    NUMBA_AVAILABLE,
    NumbaBackend,
    build_group_loops,
    run_plan_loops,
)
from repro.core.interaction_lists import build_interaction_lists
from repro.core.moments import precompute_moments
from repro.core.plan import PlanBuilder, build_batched_layout
from repro.gpu.device import GpuDevice
from repro.perf.machine import GPU_TITAN_V
from repro.tree.batches import TargetBatches
from repro.tree.octree import ClusterTree

needs_numba = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="numba is not installed"
)


def _params(**kw):
    base = dict(theta=0.7, degree=4, max_leaf_size=150, max_batch_size=150)
    base.update(kw)
    return TreecodeParams(**base)


def _compile(cube, *, numerics=True):
    params = _params()
    tree = ClusterTree(cube.positions, params.max_leaf_size)
    batches = TargetBatches(cube.positions, params.max_batch_size)
    moments = precompute_moments(
        tree, cube.charges, params, numerics=numerics
    )
    lists = build_interaction_lists(batches, tree, params)
    return compile_plan(
        tree, batches, moments, lists, cube.charges, params,
        numerics=numerics,
    )


@pytest.fixture(scope="module")
def cube():
    return random_cube(2500, seed=501)


@pytest.fixture(scope="module")
def shared_plan(cube):
    """One compiled plan reused by every backend."""
    return _compile(cube)


class TestRegistry:
    def test_builtin_backends(self):
        names = available_backends()
        assert {"numpy", "fused", "model", "multiprocessing"} <= set(names)

    def test_numba_registered_iff_importable(self):
        assert ("numba" in available_backends()) == NUMBA_AVAILABLE

    def test_lookup_returns_instances(self):
        assert isinstance(get_backend("numpy"), NumpyBackend)
        assert isinstance(get_backend("fused"), FusedBackend)
        assert isinstance(get_backend("model"), ModelBackend)
        assert isinstance(
            get_backend("multiprocessing"), MultiprocessingBackend
        )

    def test_instance_passthrough(self):
        be = FusedBackend()
        assert get_backend(be) is be

    def test_multiprocessing_lookup_shares_instance(self):
        # The pooled backend resolves to one shared instance so its
        # worker pool really persists across by-name compute() calls.
        assert get_backend("multiprocessing") is get_backend("multiprocessing")
        assert get_backend("numpy") is not get_backend("numpy")

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cuda")

    def test_unknown_backend_rejected_at_construction(self):
        # The bugfix: a bad name must fail when the params are built,
        # naming the available backends -- not deep inside compute().
        with pytest.raises(ValueError, match="unknown backend.*available"):
            _params(backend="nope")

    def test_backend_instance_accepted_by_params(self):
        params = _params(backend=FusedBackend())
        assert isinstance(params.backend, FusedBackend)

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_numba_backend_clean_error_when_absent(self):
        with pytest.raises(RuntimeError, match="numba is not installed"):
            NumbaBackend()
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("numba")

    def test_register_custom_backend(self, cube):
        class EchoBackend(ModelBackend):
            name = "test-echo"

        register_backend(EchoBackend)
        assert "test-echo" in available_backends()
        res = BarycentricTreecode(
            CoulombKernel(), _params(backend="test-echo")
        ).compute(cube)
        assert np.all(res.potential == 0.0)

    def test_register_rejects_anonymous(self):
        with pytest.raises(ValueError):
            register_backend(Backend)

    def test_config_rejects_non_string(self):
        with pytest.raises(ValueError):
            TreecodeParams(backend="")


class TestPlanLevelEquivalence:
    """All three backends on one plan: identical DeviceCounters."""

    def _run(self, backend, plan, *, forces=False, dtype=np.float64):
        device = GpuDevice(GPU_TITAN_V)
        out, f = backend.execute(
            plan, CoulombKernel(), device,
            dtype=dtype, compute_forces=forces,
        )
        return out, f, device

    @pytest.mark.parametrize("forces", [False, True], ids=["pot", "forces"])
    def test_identical_counters(self, shared_plan, forces):
        devices = {}
        for name in ("numpy", "fused", "model", "multiprocessing"):
            _, _, devices[name] = self._run(
                get_backend(name), shared_plan, forces=forces
            )
        ref = devices["numpy"].counters
        for name in ("fused", "model", "multiprocessing"):
            c = devices[name].counters
            assert c.launches == ref.launches, name
            assert c.interactions == ref.interactions, name
            assert c.bytes_h2d == ref.bytes_h2d, name
            assert c.bytes_d2h == ref.bytes_d2h, name
            assert {k: tuple(v) for k, v in c.by_kind.items()} == {
                k: tuple(v) for k, v in ref.by_kind.items()
            }, name
            assert devices[name].elapsed() == pytest.approx(
                devices["numpy"].elapsed()
            ), name

    def test_numpy_fused_roundoff_close(self, shared_plan):
        # The fused path evaluates the temporary-free pairwise_fused r^2
        # accumulation: same tolerance as the numba loops (which use the
        # same expanded form), not bitwise vs the blocked reference.
        phi_np, f_np, _ = self._run(
            get_backend("numpy"), shared_plan, forces=True
        )
        phi_fu, f_fu, _ = self._run(
            get_backend("fused"), shared_plan, forces=True
        )
        assert np.allclose(phi_np, phi_fu, rtol=1e-9, atol=1e-12)
        assert np.allclose(f_np, f_fu, rtol=1e-8, atol=1e-11)

    def test_multiprocessing_matches_fused_bitwise(self, shared_plan):
        phi_fu, f_fu, _ = self._run(
            get_backend("fused"), shared_plan, forces=True
        )
        phi_mp, f_mp, _ = self._run(
            get_backend("multiprocessing"), shared_plan, forces=True
        )
        # Same per-group fused arithmetic, sharded: bitwise identical.
        assert np.array_equal(phi_fu, phi_mp)
        assert np.array_equal(f_fu, f_mp)

    def test_model_returns_zeros(self, shared_plan):
        phi, f, _ = self._run(get_backend("model"), shared_plan, forces=True)
        assert np.all(phi == 0.0)
        assert np.all(f == 0.0)

    def test_model_runs_structure_only_plan(self, cube):
        params = _params()
        tree = ClusterTree(cube.positions, params.max_leaf_size)
        batches = TargetBatches(cube.positions, params.max_batch_size)
        moments = precompute_moments(
            tree, cube.charges, params, numerics=False
        )
        lists = build_interaction_lists(batches, tree, params)
        plan = compile_plan(
            tree, batches, moments, lists, cube.charges, params,
            numerics=False,
        )
        assert not plan.has_numerics
        _, _, dev = self._run(get_backend("model"), plan)
        assert dev.counters.launches == plan.n_segments
        for name in ("numpy", "fused", "multiprocessing"):
            with pytest.raises(ValueError, match="needs a plan"):
                self._run(get_backend(name), plan)

    def test_float32_halves_busy_time(self, shared_plan):
        _, _, d64 = self._run(get_backend("model"), shared_plan)
        _, _, d32 = self._run(
            get_backend("model"), shared_plan, dtype=np.float32
        )
        busy64 = sum(d64.counters.busy_by_kind.values())
        busy32 = sum(d32.counters.busy_by_kind.values())
        assert busy32 == pytest.approx(0.5 * busy64)


class TestSharedSourceGather:
    """The single plan layout: de-duplicated source buffers."""

    def test_buffers_deduplicated_on_shared_workload(self, shared_plan):
        assert shared_plan.shared_sources
        # Clusters referenced by many batches are stored once: strictly
        # fewer physical rows than logical (aliased) rows.
        assert shared_plan.source_buffer_rows < shared_plan.n_source_rows

    def test_aliased_segments_share_physical_rows(self, shared_plan):
        # Every segment's physical range lies inside the de-duplicated
        # buffer, and at least two segments alias the same rows.
        ranges = [
            shared_plan.segment_source_range(s)
            for s in range(shared_plan.n_segments)
        ]
        rows = shared_plan.source_buffer_rows
        assert all(0 <= lo <= hi <= rows for lo, hi in ranges)
        assert len(set(ranges)) < len(ranges)

    def test_segment_views_match_group_sources(self, shared_plan):
        for g in range(0, shared_plan.n_groups, 5):
            pts, wts = shared_plan.group_sources(g)
            parts_p, parts_w = [], []
            s_lo, s_hi = (
                int(shared_plan.seg_group_ptr[g]),
                int(shared_plan.seg_group_ptr[g + 1]),
            )
            for s in range(s_lo, s_hi):
                parts_p.append(shared_plan.segment_points(s))
                parts_w.append(shared_plan.segment_weights(s))
            assert np.array_equal(pts, np.concatenate(parts_p))
            assert np.array_equal(wts, np.concatenate(parts_w))

    def test_params_shared_sources_deprecated(self):
        with pytest.warns(DeprecationWarning, match="shared_sources"):
            _params(shared_sources=True)
        with pytest.warns(DeprecationWarning, match="shared_sources"):
            _params(shared_sources=False)

    def test_builder_reuse_skips_regather(self):
        b = PlanBuilder(4, numerics=True)
        pts = np.arange(6.0).reshape(2, 3)
        wts = np.array([1.0, 2.0])
        b.add_group(targets=np.zeros((2, 3)), out_index=np.array([0, 1]))
        assert not b.has_shared(("direct", 7))
        b.add_segment("direct", points=pts, weights=wts, share_key=("direct", 7))
        b.add_group(targets=np.zeros((2, 3)), out_index=np.array([2, 3]))
        assert b.has_shared(("direct", 7))
        b.add_segment("direct", share_key=("direct", 7))
        plan = b.build()
        assert plan.shared_sources
        assert plan.n_segments == 2
        assert plan.n_source_rows == 4          # logical: 2 rows x 2 aliases
        assert plan.source_buffer_rows == 2     # physical: stored once
        assert np.array_equal(plan.segment_points(0), plan.segment_points(1))

    def test_builder_requires_arrays_for_new_key(self):
        b = PlanBuilder(2, numerics=True)
        b.add_group(targets=np.zeros((2, 3)), out_index=np.array([0, 1]))
        with pytest.raises(ValueError, match="points and weights"):
            b.add_segment("direct", share_key=("direct", 0))


class TestMultiprocessingBackend:
    def test_pool_sharded_run_matches_fused(self, cube, shared_plan):
        # Force real worker shards through the shared-memory shipment.
        backend = MultiprocessingBackend(n_workers=2, min_parallel_rows=1)
        try:
            dev = GpuDevice(GPU_TITAN_V)
            phi, f = backend.execute(
                shared_plan, YukawaKernel(0.5), dev, compute_forces=True
            )
            # Pool persistence: a second plan reuses the same workers.
            dev2 = GpuDevice(GPU_TITAN_V)
            phi2, _ = backend.execute(shared_plan, YukawaKernel(0.5), dev2)
        finally:
            backend.close()
        ref_dev = GpuDevice(GPU_TITAN_V)
        phi_ref, f_ref = get_backend("fused").execute(
            shared_plan, YukawaKernel(0.5), ref_dev, compute_forces=True
        )
        assert np.array_equal(phi, phi_ref)
        assert np.array_equal(f, f_ref)
        assert np.array_equal(phi2, phi_ref)
        assert dev.counters.launches == ref_dev.counters.launches

    def test_pickle_shipping_fallback(self, shared_plan):
        backend = MultiprocessingBackend(
            n_workers=2, use_shared_memory=False, min_parallel_rows=1
        )
        try:
            dev = GpuDevice(GPU_TITAN_V)
            phi, _ = backend.execute(shared_plan, CoulombKernel(), dev)
        finally:
            backend.close()
        ref = GpuDevice(GPU_TITAN_V)
        phi_ref, _ = get_backend("fused").execute(
            shared_plan, CoulombKernel(), ref
        )
        assert np.array_equal(phi, phi_ref)

    def test_shards_cover_all_groups_balanced(self, shared_plan):
        backend = MultiprocessingBackend(n_workers=3)
        shards = backend._shards(shared_plan)
        assert shards[0][0] == 0
        assert shards[-1][1] == shared_plan.n_groups
        for (_, hi), (lo, _) in zip(shards[:-1], shards[1:]):
            assert hi == lo
        assert len(shards) <= 3

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            MultiprocessingBackend(0)

    def test_rejects_bad_ewma_alpha(self):
        with pytest.raises(ValueError, match="shard_ewma_alpha"):
            MultiprocessingBackend(2, shard_ewma_alpha=0.0)

    def test_adaptive_off_keeps_modeled_split(self, shared_plan):
        fixed = MultiprocessingBackend(n_workers=3, adaptive_shards=False)
        adaptive = MultiprocessingBackend(n_workers=3)
        shards = fixed._shards(shared_plan)
        # With no observations the adaptive split IS the modeled split.
        assert adaptive._shards(shared_plan) == shards
        # Observations never move the fixed backend's split.
        fixed._observe_shard_times(shared_plan, shards, [5.0] * len(shards))
        assert fixed._shards(shared_plan) == shards

    def test_observed_times_rebalance_shards(self, shared_plan):
        backend = MultiprocessingBackend(n_workers=2, shard_ewma_alpha=1.0)
        shards = backend._shards(shared_plan)
        assert len(shards) == 2
        cut = shards[0][1]
        # First shard reported 9x slower per modeled interaction: the
        # next split must hand it fewer groups.
        backend._observe_shard_times(shared_plan, shards, [9.0, 1.0])
        rebalanced = backend._shards(shared_plan)
        assert rebalanced[0][1] < cut
        assert rebalanced[0][0] == 0
        assert rebalanced[-1][1] == shared_plan.n_groups
        state = backend._plan_cost(shared_plan)
        rate_first = state.rate[:cut].mean()
        rate_rest = state.rate[cut:].mean()
        assert rate_first > rate_rest

    def test_adaptive_ewma_converges_not_jumps(self, shared_plan):
        backend = MultiprocessingBackend(n_workers=2, shard_ewma_alpha=0.5)
        shards = backend._shards(shared_plan)
        backend._observe_shard_times(shared_plan, shards, [9.0, 1.0])
        state = backend._plan_cost(shared_plan)
        # alpha=0.5 blends the normalized observation with the prior 1.0
        # rather than adopting it outright.
        assert state.rate.max() < 2.0 * state.rate.min() * 9.0
        assert state.rate.min() > 0.0

    def test_adaptive_sharded_runs_stay_bitwise_fused(self, shared_plan):
        backend = MultiprocessingBackend(n_workers=2, min_parallel_rows=1)
        try:
            dev = GpuDevice(GPU_TITAN_V)
            phi1, _ = backend.execute(shared_plan, CoulombKernel(), dev)
            # Second run re-shards from learned rates; values must not move.
            phi2, _ = backend.execute(
                shared_plan, CoulombKernel(), GpuDevice(GPU_TITAN_V)
            )
        finally:
            backend.close()
        phi_ref, _ = get_backend("fused").execute(
            shared_plan, CoulombKernel(), GpuDevice(GPU_TITAN_V)
        )
        assert np.array_equal(phi1, phi_ref)
        assert np.array_equal(phi2, phi_ref)


def _uniform_groups_plan(m_sizes, *, seg_rows=5, n_segs=1, ragged_group=False):
    """Synthetic plan: one uniform-signature run per group.

    ``m_sizes`` sets the per-group target counts (padding behaviour);
    ``ragged_group`` appends a group whose run mixes segment sizes.
    """
    rng = np.random.default_rng(7)
    total = sum(m_sizes) + (3 if ragged_group else 0)
    b = PlanBuilder(total, numerics=True)
    row = 0
    for m in m_sizes:
        b.add_group(
            targets=rng.random((m, 3)) + 2.0,
            out_index=np.arange(row, row + m),
        )
        row += m
        for _ in range(n_segs):
            b.add_segment(
                "approx",
                points=rng.random((seg_rows, 3)),
                weights=rng.random(seg_rows),
            )
    if ragged_group:
        b.add_group(
            targets=rng.random((3, 3)) + 2.0,
            out_index=np.arange(row, row + 3),
        )
        b.add_segment(
            "direct", points=rng.random((4, 3)), weights=rng.random(4)
        )
        b.add_segment(
            "direct", points=rng.random((9, 3)), weights=rng.random(9)
        )
    return b.build()


def _ragged_groups_plan(shapes, *, kind="direct", seed=13):
    """Synthetic plan of ragged runs: ``shapes = [(m, [seg sizes]), ...]``.

    One group per entry, each with one equal-kind run whose segments
    carry the listed (generally unequal) row counts -- the raw material
    of the zero-weight-padded near-field buckets.
    """
    rng = np.random.default_rng(seed)
    total = sum(m for m, _ in shapes)
    b = PlanBuilder(total, numerics=True)
    row = 0
    for m, seg_sizes in shapes:
        b.add_group(
            targets=rng.random((m, 3)) + 2.0,
            out_index=np.arange(row, row + m),
        )
        row += m
        for sz in seg_sizes:
            b.add_segment(
                kind, points=rng.random((sz, 3)), weights=rng.random(sz)
            )
    return b.build()


class TestBatchedLayout:
    """The shape-bucketed layout: partition, padding rule, fallbacks."""

    def test_compile_time_layout_and_lazy_build(self, cube):
        eager = _compile(cube)
        assert eager.batched_layout is None
        lazy = eager.ensure_batched_layout()
        assert eager.batched_layout is lazy
        assert eager.ensure_batched_layout() is lazy  # cached
        params = _params()
        tree = ClusterTree(cube.positions, params.max_leaf_size)
        batches = TargetBatches(cube.positions, params.max_batch_size)
        moments = precompute_moments(tree, cube.charges, params)
        lists = build_interaction_lists(batches, tree, params)
        compiled = compile_plan(
            tree, batches, moments, lists, cube.charges, params, batched=True
        )
        assert compiled.batched_layout is not None

    def test_layout_partitions_all_interactions(self, shared_plan):
        # Buckets + ragged runs must cover every (group, segment) pair
        # exactly once: their interaction counts add up to the plan's.
        plan = shared_plan
        layout = plan.ensure_batched_layout()
        assert layout.buckets, "BLTC plans must produce approx buckets"
        seg_sizes = np.diff(plan.seg_ptr)
        ragged = sum(
            plan.group_size(int(g)) * int(seg_sizes[s_lo:s_hi].sum())
            for g, s_lo, s_hi in layout.ragged_runs
        )
        assert layout.batched_interactions() + ragged == int(
            plan.interactions_total()
        )

    def test_bucket_scatter_is_injective(self, shared_plan):
        for bucket in shared_plan.ensure_batched_layout().buckets:
            assert np.unique(bucket.out_slots).size == bucket.out_slots.size
            assert bucket.out_slots.size <= bucket.n_entries * bucket.m_max

    def test_bucket_signature_shapes(self, shared_plan):
        n_ip = _params().n_interpolation_points
        for bucket in shared_plan.ensure_batched_layout().buckets:
            assert bucket.tgt_index.shape == (bucket.n_entries, bucket.m_max)
            if bucket.n_segments:
                # Uniform-signature bucket; approx segments always carry
                # the (p+1)^3 grid rows.
                assert bucket.src_index.shape == (
                    bucket.n_entries,
                    bucket.n_segments * bucket.rows_per_segment,
                )
                if bucket.kind == "approx":
                    assert bucket.rows_per_segment == n_ip
                assert bucket.padding_waste <= 0.25 + 1e-12
                continue
            # Ragged-pool bucket: no uniform signature; combined
            # target+source padding bounded by the stack-waste rule,
            # pad positions holding weight exactly 0.0.
            real, total = bucket.stack_cells()
            assert 1.0 - real / total <= 0.25 + 1e-12
            if bucket.is_padded:
                assert bucket.src_valid.shape == bucket.src_index.shape
                assert np.all(bucket.weights[~bucket.src_valid] == 0.0)

    def test_mild_padding_keeps_one_bucket(self):
        plan = _uniform_groups_plan([10, 10, 10, 8])
        layout = build_batched_layout(plan)
        assert len(layout.buckets) == 1
        (bucket,) = layout.buckets
        assert bucket.m_max == 10
        assert bucket.scatter_pos is not None  # padded entries excluded
        assert bucket.out_slots.size == 38
        assert layout.ragged_runs.shape == (0, 3)

    def test_heavy_padding_splits_equal_m_sub_buckets(self):
        plan = _uniform_groups_plan([10, 10, 2, 2])
        layout = build_batched_layout(plan)  # one m_max would waste 40%
        assert len(layout.buckets) == 2
        assert sorted(b.m_max for b in layout.buckets) == [2, 10]
        for bucket in layout.buckets:
            assert bucket.scatter_pos is None  # equal-m: no padding left

    def test_ragged_run_falls_back(self):
        plan = _uniform_groups_plan([6, 6, 6], ragged_group=True)
        layout = build_batched_layout(plan)
        assert len(layout.buckets) == 1
        assert layout.ragged_runs.shape == (1, 3)
        g, s_lo, s_hi = layout.ragged_runs[0]
        assert plan.seg_size(int(s_lo)) != plan.seg_size(int(s_hi) - 1)

    def test_sub_minimum_bucket_falls_back(self):
        plan = _uniform_groups_plan([6])
        layout = build_batched_layout(plan, min_bucket_groups=2)
        assert not layout.buckets
        assert layout.ragged_runs.shape == (1, 3)

    def test_adjacent_ragged_runs_merge_per_group(self):
        # A group with a ragged direct run following a sub-minimum
        # approx run must cost one fused-style call, not two.
        plan = _uniform_groups_plan([6], ragged_group=True)
        layout = build_batched_layout(plan, min_bucket_groups=2)
        assert not layout.buckets
        assert layout.ragged_runs.shape == (2, 3)  # one run per group

    def test_unbatchable_group_becomes_single_merged_run(self):
        # approx run below the bucket minimum + ragged direct run, same
        # group: the fallback must evaluate the whole group in one
        # fused-style span, exactly like FusedBackend would.
        rng = np.random.default_rng(11)
        b = PlanBuilder(4, numerics=True)
        b.add_group(targets=rng.random((4, 3)), out_index=np.arange(4))
        b.add_segment("approx", points=rng.random((5, 3)),
                      weights=rng.random(5))
        b.add_segment("direct", points=rng.random((2, 3)),
                      weights=rng.random(2))
        b.add_segment("direct", points=rng.random((7, 3)),
                      weights=rng.random(7))
        layout = build_batched_layout(b.build(), min_bucket_groups=2)
        assert not layout.buckets
        assert layout.ragged_runs.tolist() == [[0, 0, 3]]

    def test_ragged_runs_bucket_with_source_padding(self):
        # Similar-k ragged runs must bucket with zero-weight pads
        # instead of dropping to the per-group path.
        plan = _ragged_groups_plan(
            [(6, [4, 5]), (6, [7, 2]), (6, [8]), (6, [3, 3, 3])]
        )
        layout = build_batched_layout(plan)
        assert len(layout.buckets) == 1
        assert layout.ragged_runs.shape == (0, 3)
        assert layout.coverage() == 1.0
        (bucket,) = layout.buckets
        assert bucket.is_padded
        assert bucket.kind == "direct"
        assert bucket.k == 9  # padded to the widest run
        # Entries are sorted by (m, k): the k=8 run leads, then the 9s.
        np.testing.assert_array_equal(
            bucket.src_valid.sum(axis=1), [8, 9, 9, 9]
        )
        # Pad columns repeat the entry's first source row and hold
        # weight exactly zero.
        for i in range(bucket.n_entries):
            kv = int(bucket.src_valid[i].sum())
            assert np.all(
                bucket.src_index[i, kv:] == bucket.src_index[i, 0]
            )
            assert np.all(bucket.weights[i, kv:] == 0.0)

    def test_source_padding_waste_rule_splits(self):
        # Wildly different k in one pool: padding the small runs to the
        # large k would waste >25% of the stack, so two slabs form.
        plan = _ragged_groups_plan(
            [(5, [3, 1]), (5, [2, 2]), (5, [30, 10]), (5, [25, 16])]
        )
        layout = build_batched_layout(plan)
        assert len(layout.buckets) == 2
        assert layout.ragged_runs.shape == (0, 3)
        ks = sorted(b.k for b in layout.buckets)
        assert ks == [4, 41]
        for bucket in layout.buckets:
            real, total = bucket.stack_cells()
            assert 1.0 - real / total <= 0.25 + 1e-12

    def test_padded_bucket_duplicate_group_guard(self):
        # Two same-kind runs of one group may never share a bucket's
        # fancy-indexed scatter; with interleaved kinds the pool must
        # keep them apart (separate buckets or ragged), injectively.
        rng = np.random.default_rng(17)
        b = PlanBuilder(12, numerics=True)
        for g in range(3):
            b.add_group(
                targets=rng.random((4, 3)) + 2.0,
                out_index=np.arange(4 * g, 4 * g + 4),
            )
            b.add_segment("direct", points=rng.random((3, 3)),
                          weights=rng.random(3))
            b.add_segment("approx", points=rng.random((5, 3)),
                          weights=rng.random(5))
            b.add_segment("direct", points=rng.random((3, 3)),
                          weights=rng.random(3))
        layout = build_batched_layout(b.build())
        assert len(layout.buckets) >= 2  # second runs bucket separately
        for bucket in layout.buckets:
            assert np.unique(bucket.groups).size == bucket.n_entries
            assert np.unique(bucket.out_slots).size == bucket.out_slots.size

    def test_coverage_and_padding_metrics(self):
        uniform = build_batched_layout(_uniform_groups_plan([6, 6, 6]))
        assert uniform.coverage() == 1.0
        assert uniform.padding_waste() == 0.0
        assert uniform.padding_nbytes() == 0
        padded = build_batched_layout(
            _ragged_groups_plan([(6, [4, 5]), (6, [7, 2]), (5, [8])])
        )
        assert padded.coverage() == 1.0
        assert 0.0 < padded.padding_waste() <= 0.25 + 1e-12
        assert padded.padding_nbytes() > 0
        lone = build_batched_layout(_uniform_groups_plan([6]))
        assert lone.coverage() == 0.0  # one run, nothing bucketable
        assert lone.ragged_rows == 6

    def test_model_plan_has_no_layout(self, cube):
        plan = _compile(cube, numerics=False)
        with pytest.raises(ValueError, match="model-only"):
            plan.ensure_batched_layout()

    def test_geometry_cast_caches(self, shared_plan):
        assert shared_plan.targets_as(np.float64) is shared_plan.targets
        assert (
            shared_plan.src_points_as(np.float64) is shared_plan.src_points
        )
        t32 = shared_plan.targets_as(np.float32)
        assert t32.dtype == np.float32
        assert shared_plan.targets_as(np.float32) is t32  # cached
        assert np.array_equal(
            t32, shared_plan.targets.astype(np.float32)
        )


class TestBatchedBackend:
    """Stacked bucket evaluation: fused-level results, deterministic."""

    def _run(self, name, plan, *, forces=True, dtype=np.float64, kernel=None):
        device = GpuDevice(GPU_TITAN_V)
        out, f = get_backend(name).execute(
            plan, kernel or YukawaKernel(0.5), device,
            dtype=dtype, compute_forces=forces,
        )
        return out, f, device

    def test_matches_fused_within_roundoff(self, shared_plan):
        plan = shared_plan
        phi_f, f_f, dev_f = self._run("fused", plan)
        phi_b, f_b, dev_b = self._run("batched", plan)
        assert np.allclose(phi_f, phi_b, rtol=1e-9, atol=1e-12)
        assert np.allclose(f_f, f_b, rtol=1e-8, atol=1e-11)
        assert dev_b.counters.launches == dev_f.counters.launches
        assert dev_b.counters.interactions == dev_f.counters.interactions
        assert dev_b.elapsed() == pytest.approx(dev_f.elapsed())

    def test_float32_matches_fused(self, shared_plan):
        # The near field is bucketed too now, so float32 batched and
        # fused no longer share the per-group summation order; both
        # must sit at single-precision accuracy against the float64
        # reference, and batched must not be the less accurate one
        # (beyond ordering noise).
        phi64, f64, _ = self._run("fused", shared_plan, dtype=np.float64)
        phi_f, f_f, _ = self._run("fused", shared_plan, dtype=np.float32)
        phi_b, f_b, _ = self._run("batched", shared_plan, dtype=np.float32)
        assert relative_l2_error(phi_f, phi_b) < 1e-4
        assert relative_l2_error(f_f, f_b) < 1e-3
        assert relative_l2_error(phi64, phi_b) < 2 * relative_l2_error(
            phi64, phi_f
        )
        assert relative_l2_error(f64, f_b) < 2 * relative_l2_error(f64, f_f)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32],
                             ids=["f64", "f32"])
    def test_bitwise_run_to_run_determinism(self, shared_plan, dtype):
        phi_a, f_a, _ = self._run("batched", shared_plan, dtype=dtype)
        phi_b, f_b, _ = self._run("batched", shared_plan, dtype=dtype)
        assert np.array_equal(phi_a, phi_b)
        assert np.array_equal(f_a, f_b)

    def test_counters_match_numpy_reference(self, shared_plan):
        _, _, dev_np = self._run("numpy", shared_plan)
        _, _, dev_b = self._run("batched", shared_plan)
        ref = dev_np.counters
        c = dev_b.counters
        assert c.launches == ref.launches
        assert c.interactions == ref.interactions
        assert {k: tuple(v) for k, v in c.by_kind.items()} == {
            k: tuple(v) for k, v in ref.by_kind.items()
        }

    def test_unsupported_kernel_falls_back_bitwise_to_fused(self, shared_plan):
        class NoBatched(CoulombKernel):
            supports_batched_pairwise = False

        phi_f, f_f, _ = self._run("fused", shared_plan, kernel=NoBatched())
        phi_b, f_b, _ = self._run("batched", shared_plan, kernel=NoBatched())
        assert np.array_equal(phi_f, phi_b)
        assert np.array_equal(f_f, f_b)

    def test_rejects_model_plan(self, cube):
        plan = _compile(cube, numerics=False)
        with pytest.raises(ValueError, match="needs a plan"):
            self._run("batched", plan)

    def test_synthetic_padded_bucket_matches_fused(self):
        # Heterogeneous group sizes force a padded bucket; the padded
        # rows must never leak into the output.
        plan = _uniform_groups_plan(
            [10, 9, 10, 8, 10], seg_rows=6, n_segs=3, ragged_group=True
        )
        phi_f, f_f, _ = self._run("fused", plan, kernel=CoulombKernel())
        phi_b, f_b, _ = self._run("batched", plan, kernel=CoulombKernel())
        assert np.allclose(phi_f, phi_b, rtol=1e-9, atol=1e-12)
        assert np.allclose(f_f, f_b, rtol=1e-8, atol=1e-11)

    def test_pipeline_compute(self, cube):
        params = _params(backend="batched", batched=True)
        res = BarycentricTreecode(YukawaKernel(0.5), params).compute(
            cube, compute_forces=True
        )
        ref = BarycentricTreecode(YukawaKernel(0.5), _params()).compute(
            cube, compute_forces=True
        )
        assert np.allclose(
            res.potential, ref.potential, rtol=1e-9, atol=1e-12
        )
        assert np.allclose(res.forces, ref.forces, rtol=1e-8, atol=1e-11)
        assert res.phases.compute == pytest.approx(ref.phases.compute)
        for key in ("launches", "kernel_evaluations", "by_kind"):
            assert res.stats[key] == ref.stats[key], key

    def test_registered_and_exported(self):
        assert "batched" in available_backends()
        assert isinstance(get_backend("batched"), BatchedBackend)


class TestPaddedBucketNaNSafety:
    """Coincidences through zero-weight pad rows: finite, fused-close.

    Padded near-field buckets repeat real source rows as pads; a pad
    (or a true self-interaction) coincident with a target produces an
    exact r^2 = 0 inside the stacked chunk and must flow through the
    kernels' noise-floor patching -- never a NaN, never a spurious
    contribution.
    """

    def _coincident_plan(self):
        # Ragged self-target groups: every group's targets ARE leading
        # rows of its first source segment, so the stacked r2 contains
        # exact zeros from both true coincidences and repeated pads.
        rng = np.random.default_rng(29)
        shapes = [(4, [4, 6]), (4, [7, 2]), (4, [5]), (4, [6, 3])]
        total = sum(m for m, _ in shapes)
        b = PlanBuilder(total, numerics=True)
        row = 0
        for m, seg_sizes in shapes:
            pts = [rng.random((sz, 3)) for sz in seg_sizes]
            b.add_group(
                targets=pts[0][:m].copy(),
                out_index=np.arange(row, row + m),
            )
            row += m
            for p in pts:
                b.add_segment(
                    "direct", points=p, weights=rng.random(p.shape[0])
                )
        return b.build()

    @pytest.mark.parametrize("dtype", [np.float64, np.float32],
                             ids=["f64", "f32"])
    def test_coincident_self_targets_finite_and_fused_close(self, dtype):
        plan = self._coincident_plan()
        layout = plan.ensure_batched_layout()
        assert any(b.is_padded for b in layout.buckets)
        device = GpuDevice(GPU_TITAN_V)
        phi_b, f_b = get_backend("batched").execute(
            plan, CoulombKernel(), device, dtype=dtype, compute_forces=True
        )
        phi_f, f_f = get_backend("fused").execute(
            plan, CoulombKernel(), GpuDevice(GPU_TITAN_V), dtype=dtype,
            compute_forces=True,
        )
        assert np.isfinite(phi_b).all() and np.isfinite(f_b).all()
        tol = 1e-12 if dtype == np.float64 else 1e-5
        assert relative_l2_error(phi_f, phi_b) < tol
        assert relative_l2_error(f_f, f_b) < tol * 10

    @pytest.mark.parametrize("dtype", [np.float64, np.float32],
                             ids=["f64", "f32"])
    def test_duplicate_particles_near_field_cube(self, dtype):
        # End to end: exact duplicate particle positions in a
        # near-field-heavy self-target run exercise coincidences inside
        # padded direct buckets on the whole treecode pipeline.
        from repro.workloads import ParticleSet

        cube = random_cube(800, seed=41)
        pos = cube.positions.copy()
        pos[1] = pos[0]
        pos[101] = pos[100]
        ps = ParticleSet(pos, cube.charges)
        kw = dict(
            theta=0.6, degree=2, max_leaf_size=40, max_batch_size=40,
            dtype=dtype,
        )
        prep = BarycentricTreecode(
            CoulombKernel(),
            TreecodeParams(backend="batched", batched=True, **kw),
        ).prepare(ps)
        layout = prep.plan.batched_layout
        assert any(
            b.kind == "direct" and b.is_padded for b in layout.buckets
        )
        res = prep.apply(ps.charges, compute_forces=True)
        ref = BarycentricTreecode(
            CoulombKernel(), TreecodeParams(backend="fused", **kw)
        ).compute(ps, compute_forces=True)
        assert np.isfinite(res.potential).all()
        assert np.isfinite(res.forces).all()
        tol = 1e-12 if dtype == np.float64 else 1e-4
        assert relative_l2_error(ref.potential, res.potential) < tol
        assert relative_l2_error(ref.forces, res.forces) < tol * 10


class TestNumbaLoops:
    """The JIT'd loop bodies, validated un-jitted (no numba needed)."""

    def _loops(self, kernel):
        return build_group_loops(kernel, jit=lambda f: f)

    def test_loops_match_numpy_backend(self, shared_plan):
        plan = shared_plan
        kernel = YukawaKernel(0.5)
        pot, force = self._loops(kernel)
        phi, f = run_plan_loops(plan, pot, force)
        dev = GpuDevice(GPU_TITAN_V)
        phi_ref, f_ref = get_backend("numpy").execute(
            plan, kernel, dev, compute_forces=True
        )
        assert np.allclose(phi, phi_ref, rtol=1e-9, atol=1e-12)
        assert np.allclose(f, f_ref, rtol=1e-8, atol=1e-11)

    def test_coincident_targets_use_r0_convention(self):
        # One batch whose target coincides with a source: the loop must
        # classify the pair through the same noise floor and yield the
        # kernel's r==0 value (zero for singular kernels).
        b = PlanBuilder(2, numerics=True)
        tgt = np.array([[0.25, 0.25, 0.25], [0.75, 0.5, 0.5]])
        src = np.array([[0.25, 0.25, 0.25], [0.5, 0.5, 0.5]])
        q = np.array([2.0, 3.0])
        b.add_group(targets=tgt, out_index=np.array([0, 1]))
        b.add_segment("direct", points=src, weights=q)
        plan = b.build()
        kernel = CoulombKernel()
        pot, force = self._loops(kernel)
        phi, f = run_plan_loops(plan, pot, force)
        dev = GpuDevice(GPU_TITAN_V)
        phi_ref, f_ref = get_backend("numpy").execute(
            plan, kernel, dev, compute_forces=True
        )
        assert np.allclose(phi, phi_ref, rtol=1e-12, atol=1e-14)
        assert np.allclose(f, f_ref, rtol=1e-12, atol=1e-14)
        assert np.isfinite(phi).all() and np.isfinite(f).all()

    def test_unsupported_kernel_clean_error(self):
        class NoScalars(CoulombKernel):
            def scalar_functions(self):
                raise NotImplementedError("nope")

        with pytest.raises(ValueError, match="scalar functions"):
            self._loops(NoScalars())


@needs_numba
class TestNumbaBackend:
    """JIT-compiled execution (runs only where numba is installed)."""

    def test_matches_numpy_within_fused_tolerance(self, shared_plan):
        dev = GpuDevice(GPU_TITAN_V)
        phi, f = get_backend("numba").execute(
            shared_plan, YukawaKernel(0.5), dev, compute_forces=True
        )
        ref_dev = GpuDevice(GPU_TITAN_V)
        phi_ref, f_ref = get_backend("numpy").execute(
            shared_plan, YukawaKernel(0.5), ref_dev, compute_forces=True
        )
        assert np.allclose(phi, phi_ref, rtol=1e-9, atol=1e-12)
        assert np.allclose(f, f_ref, rtol=1e-8, atol=1e-11)
        assert dev.counters.launches == ref_dev.counters.launches
        assert dev.counters.interactions == ref_dev.counters.interactions
        assert dev.elapsed() == pytest.approx(ref_dev.elapsed())

    def test_parallel_prange_bitwise_equal_serial(self, shared_plan):
        # prange over groups writes disjoint output rows, so the thread
        # schedule cannot change a bit of the result.
        serial = NumbaBackend(parallel=False)
        par = NumbaBackend(parallel=True)
        dev_s, dev_p = GpuDevice(GPU_TITAN_V), GpuDevice(GPU_TITAN_V)
        phi_s, f_s = serial.execute(
            shared_plan, YukawaKernel(0.5), dev_s, compute_forces=True
        )
        phi_p, f_p = par.execute(
            shared_plan, YukawaKernel(0.5), dev_p, compute_forces=True
        )
        assert np.array_equal(phi_s, phi_p)
        assert np.array_equal(f_s, f_p)
        assert dev_s.counters.launches == dev_p.counters.launches

    def test_shared_layout_and_pipeline(self, cube, shared_plan):
        dev = GpuDevice(GPU_TITAN_V)
        phi, _ = get_backend("numba").execute(
            shared_plan, CoulombKernel(), dev
        )
        ref_dev = GpuDevice(GPU_TITAN_V)
        phi_ref, _ = get_backend("numpy").execute(
            shared_plan, CoulombKernel(), ref_dev
        )
        assert np.allclose(phi, phi_ref, rtol=1e-9, atol=1e-12)
        res = BarycentricTreecode(
            CoulombKernel(), _params(backend="numba")
        ).compute(cube)
        ref = BarycentricTreecode(CoulombKernel(), _params()).compute(cube)
        assert np.allclose(res.potential, ref.potential, rtol=1e-9, atol=1e-12)
        assert res.phases.compute == pytest.approx(ref.phases.compute)


class TestPipelineEquivalence:
    """End-to-end compute() with each backend on shared workloads."""

    @pytest.fixture(scope="class")
    def runs(self, cube):
        params = _params(degree=5)
        out = {}
        for name in ("numpy", "fused", "model", "multiprocessing"):
            out[name] = BarycentricTreecode(
                YukawaKernel(0.5), params.with_(backend=name)
            ).compute(cube, compute_forces=True)
        return out

    def test_potentials_and_forces_close(self, runs, cube):
        a, b = runs["numpy"], runs["fused"]
        assert np.allclose(a.potential, b.potential, rtol=1e-9, atol=1e-12)
        assert np.allclose(a.forces, b.forces, rtol=1e-8, atol=1e-11)
        mp = runs["multiprocessing"]
        assert np.array_equal(mp.potential, b.potential)
        assert np.array_equal(mp.forces, b.forces)
        ref = direct_sum(
            cube.positions, cube.positions, cube.charges, YukawaKernel(0.5)
        )
        assert relative_l2_error(ref, b.potential) < 1e-5

    def test_identical_stats_and_phases(self, runs):
        ref = runs["numpy"]
        for name in ("fused", "model", "multiprocessing"):
            res = runs[name]
            for key in (
                "launches", "kernel_evaluations", "bytes_h2d", "bytes_d2h",
                "by_kind", "n_approx_interactions", "n_direct_interactions",
            ):
                assert res.stats[key] == ref.stats[key], (name, key)
            assert res.phases.setup == pytest.approx(ref.phases.setup)
            assert res.phases.precompute == pytest.approx(
                ref.phases.precompute
            )
            assert res.phases.compute == pytest.approx(ref.phases.compute)

    def test_model_zeroes_potential(self, runs):
        assert np.all(runs["model"].potential == 0.0)

    def test_dry_run_forces_model_backend(self, cube):
        res = BarycentricTreecode(
            CoulombKernel(), _params(backend="fused")
        ).compute(cube, dry_run=True)
        assert np.all(res.potential == 0.0)

    def test_shared_sources_flag_deprecated_noop(self, cube):
        # The retired flag still round-trips through with_() (warning
        # included) and changes nothing about the results.
        params = _params(degree=5)
        ref = BarycentricTreecode(YukawaKernel(0.5), params).compute(
            cube, compute_forces=True
        )
        with pytest.warns(DeprecationWarning, match="shared_sources"):
            dep_params = params.with_(shared_sources=True)
        shared = BarycentricTreecode(
            YukawaKernel(0.5), dep_params
        ).compute(cube, compute_forces=True)
        assert np.array_equal(ref.potential, shared.potential)
        assert np.array_equal(ref.forces, shared.forces)
        assert shared.phases.compute == pytest.approx(ref.phases.compute)

    def test_distributed_backend_param(self, cube):
        params = _params()
        base = DistributedBLTC(
            CoulombKernel(), params, n_ranks=2
        ).compute(cube)
        fused = DistributedBLTC(
            CoulombKernel(), params.with_(backend="fused"), n_ranks=2
        ).compute(cube)
        assert np.allclose(
            base.potential, fused.potential, rtol=1e-9, atol=1e-12
        )
        assert fused.total_seconds == pytest.approx(base.total_seconds)

    def test_distributed_multiprocessing_identical(self, cube):
        params = _params()
        base = DistributedBLTC(
            CoulombKernel(), params, n_ranks=2
        ).compute(cube)
        shared = DistributedBLTC(
            CoulombKernel(),
            params.with_(backend="multiprocessing"),
            n_ranks=2,
        ).compute(cube)
        assert np.allclose(
            base.potential, shared.potential, rtol=1e-9, atol=1e-12
        )
        assert shared.total_seconds == pytest.approx(base.total_seconds)

    def test_mixed_precision_fused(self, cube):
        params = _params(degree=5, dtype=np.float32)
        a = BarycentricTreecode(
            CoulombKernel(), params
        ).compute(cube)
        b = BarycentricTreecode(
            CoulombKernel(), params.with_(backend="fused")
        ).compute(cube)
        assert relative_l2_error(a.potential, b.potential) < 1e-6
        assert a.phases.compute == pytest.approx(b.phases.compute)


class TestPlanStructure:
    def test_csr_export_roundtrip(self, cube):
        params = _params()
        tree = ClusterTree(cube.positions, params.max_leaf_size)
        batches = TargetBatches(cube.positions, params.max_batch_size)
        lists = build_interaction_lists(batches, tree, params)
        a_ptr, a_ids, d_ptr, d_ids = lists.csr()
        assert a_ptr[-1] == lists.n_approx
        assert d_ptr[-1] == lists.n_direct
        for b in range(len(batches)):
            assert np.array_equal(a_ids[a_ptr[b]:a_ptr[b + 1]], lists.approx[b])
            assert np.array_equal(d_ids[d_ptr[b]:d_ptr[b + 1]], lists.direct[b])

    def test_plan_counts_match_lists(self, cube, shared_plan):
        params = _params()
        tree = ClusterTree(cube.positions, params.max_leaf_size)
        batches = TargetBatches(cube.positions, params.max_batch_size)
        lists = build_interaction_lists(batches, tree, params)
        counts = shared_plan.segment_counts_by_kind()
        assert counts.get("approx", 0) == lists.n_approx
        assert counts.get("direct", 0) == lists.n_direct
        assert shared_plan.n_groups == len(batches)
        assert shared_plan.n_target_rows == batches.n_targets

    def test_interactions_total_matches_device(self, shared_plan):
        device = GpuDevice(GPU_TITAN_V)
        get_backend("model").execute(shared_plan, CoulombKernel(), device)
        assert shared_plan.interactions_total() == pytest.approx(
            device.counters.interactions
        )

    def test_builder_validation(self):
        b = PlanBuilder(10, numerics=True)
        with pytest.raises(ValueError, match="add_group"):
            b.add_segment("approx", points=np.zeros((2, 3)), weights=np.zeros(2))
        with pytest.raises(ValueError, match="targets"):
            b.add_group(size=4)
        m = PlanBuilder(10, numerics=False)
        with pytest.raises(ValueError, match="size"):
            m.add_group()

    def test_batches_max_level_public(self, cube):
        batches = TargetBatches(cube.positions, 200)
        assert batches.max_level == batches._tree.max_level
        assert batches.max_level >= 1
