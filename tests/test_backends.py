"""Backend-equivalence suite for the execution-plan architecture.

The contract of :mod:`repro.core.backends`: on the same compiled plan,
every backend records identical device counters (launches, interactions,
bytes, per-kind breakdown), the numpy and fused backends return
bitwise-close potentials *and forces*, and the model backend returns
zeros while charging the same simulated time.
"""

import numpy as np
import pytest

from repro import (
    BarycentricTreecode,
    CoulombKernel,
    DistributedBLTC,
    FusedBackend,
    ModelBackend,
    NumpyBackend,
    TreecodeParams,
    YukawaKernel,
    available_backends,
    compile_plan,
    direct_sum,
    get_backend,
    random_cube,
    register_backend,
    relative_l2_error,
)
from repro.core.backends import Backend
from repro.core.interaction_lists import build_interaction_lists
from repro.core.moments import precompute_moments
from repro.core.plan import PlanBuilder
from repro.gpu.device import GpuDevice
from repro.perf.machine import GPU_TITAN_V
from repro.tree.batches import TargetBatches
from repro.tree.octree import ClusterTree


def _params(**kw):
    base = dict(theta=0.7, degree=4, max_leaf_size=150, max_batch_size=150)
    base.update(kw)
    return TreecodeParams(**base)


@pytest.fixture(scope="module")
def cube():
    return random_cube(2500, seed=501)


@pytest.fixture(scope="module")
def shared_plan(cube):
    """One compiled plan reused by every backend."""
    params = _params()
    tree = ClusterTree(cube.positions, params.max_leaf_size)
    batches = TargetBatches(cube.positions, params.max_batch_size)
    moments = precompute_moments(tree, cube.charges, params)
    lists = build_interaction_lists(batches, tree, params)
    plan = compile_plan(tree, batches, moments, lists, cube.charges, params)
    return plan


class TestRegistry:
    def test_three_builtin_backends(self):
        names = available_backends()
        assert {"numpy", "fused", "model"} <= set(names)

    def test_lookup_returns_instances(self):
        assert isinstance(get_backend("numpy"), NumpyBackend)
        assert isinstance(get_backend("fused"), FusedBackend)
        assert isinstance(get_backend("model"), ModelBackend)

    def test_instance_passthrough(self):
        be = FusedBackend()
        assert get_backend(be) is be

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cuda")

    def test_unknown_backend_via_params(self, cube):
        tc = BarycentricTreecode(CoulombKernel(), _params(backend="nope"))
        with pytest.raises(ValueError, match="unknown backend"):
            tc.compute(cube)

    def test_register_custom_backend(self, cube):
        class EchoBackend(ModelBackend):
            name = "test-echo"

        register_backend(EchoBackend)
        assert "test-echo" in available_backends()
        res = BarycentricTreecode(
            CoulombKernel(), _params(backend="test-echo")
        ).compute(cube)
        assert np.all(res.potential == 0.0)

    def test_register_rejects_anonymous(self):
        with pytest.raises(ValueError):
            register_backend(Backend)

    def test_config_rejects_non_string(self):
        with pytest.raises(ValueError):
            TreecodeParams(backend="")


class TestPlanLevelEquivalence:
    """All three backends on one plan: identical DeviceCounters."""

    def _run(self, backend, plan, *, forces=False, dtype=np.float64):
        device = GpuDevice(GPU_TITAN_V)
        out, f = backend.execute(
            plan, CoulombKernel(), device,
            dtype=dtype, compute_forces=forces,
        )
        return out, f, device

    @pytest.mark.parametrize("forces", [False, True], ids=["pot", "forces"])
    def test_identical_counters(self, shared_plan, forces):
        devices = {}
        for name in ("numpy", "fused", "model"):
            _, _, devices[name] = self._run(
                get_backend(name), shared_plan, forces=forces
            )
        ref = devices["numpy"].counters
        for name in ("fused", "model"):
            c = devices[name].counters
            assert c.launches == ref.launches, name
            assert c.interactions == ref.interactions, name
            assert c.bytes_h2d == ref.bytes_h2d, name
            assert c.bytes_d2h == ref.bytes_d2h, name
            assert {k: tuple(v) for k, v in c.by_kind.items()} == {
                k: tuple(v) for k, v in ref.by_kind.items()
            }, name
            assert devices[name].elapsed() == pytest.approx(
                devices["numpy"].elapsed()
            ), name

    def test_numpy_fused_bitwise_close(self, shared_plan):
        phi_np, f_np, _ = self._run(
            get_backend("numpy"), shared_plan, forces=True
        )
        phi_fu, f_fu, _ = self._run(
            get_backend("fused"), shared_plan, forces=True
        )
        assert np.allclose(phi_np, phi_fu, rtol=1e-12, atol=1e-14)
        assert np.allclose(f_np, f_fu, rtol=1e-10, atol=1e-13)

    def test_model_returns_zeros(self, shared_plan):
        phi, f, _ = self._run(get_backend("model"), shared_plan, forces=True)
        assert np.all(phi == 0.0)
        assert np.all(f == 0.0)

    def test_model_runs_structure_only_plan(self, cube):
        params = _params()
        tree = ClusterTree(cube.positions, params.max_leaf_size)
        batches = TargetBatches(cube.positions, params.max_batch_size)
        moments = precompute_moments(
            tree, cube.charges, params, numerics=False
        )
        lists = build_interaction_lists(batches, tree, params)
        plan = compile_plan(
            tree, batches, moments, lists, cube.charges, params,
            numerics=False,
        )
        assert not plan.has_numerics
        _, _, dev = self._run(get_backend("model"), plan)
        assert dev.counters.launches == plan.n_segments
        for name in ("numpy", "fused"):
            with pytest.raises(ValueError, match="needs a plan"):
                self._run(get_backend(name), plan)

    def test_float32_halves_busy_time(self, shared_plan):
        _, _, d64 = self._run(get_backend("model"), shared_plan)
        _, _, d32 = self._run(
            get_backend("model"), shared_plan, dtype=np.float32
        )
        busy64 = sum(d64.counters.busy_by_kind.values())
        busy32 = sum(d32.counters.busy_by_kind.values())
        assert busy32 == pytest.approx(0.5 * busy64)


class TestPipelineEquivalence:
    """End-to-end compute() with each backend on shared workloads."""

    @pytest.fixture(scope="class")
    def runs(self, cube):
        params = _params(degree=5)
        out = {}
        for name in ("numpy", "fused", "model"):
            out[name] = BarycentricTreecode(
                YukawaKernel(0.5), params.with_(backend=name)
            ).compute(cube, compute_forces=True)
        return out

    def test_potentials_and_forces_close(self, runs, cube):
        a, b = runs["numpy"], runs["fused"]
        assert np.allclose(a.potential, b.potential, rtol=1e-12, atol=1e-14)
        assert np.allclose(a.forces, b.forces, rtol=1e-10, atol=1e-13)
        ref = direct_sum(
            cube.positions, cube.positions, cube.charges, YukawaKernel(0.5)
        )
        assert relative_l2_error(ref, b.potential) < 1e-5

    def test_identical_stats_and_phases(self, runs):
        ref = runs["numpy"]
        for name in ("fused", "model"):
            res = runs[name]
            for key in (
                "launches", "kernel_evaluations", "bytes_h2d", "bytes_d2h",
                "by_kind", "n_approx_interactions", "n_direct_interactions",
            ):
                assert res.stats[key] == ref.stats[key], (name, key)
            assert res.phases.setup == pytest.approx(ref.phases.setup)
            assert res.phases.precompute == pytest.approx(
                ref.phases.precompute
            )
            assert res.phases.compute == pytest.approx(ref.phases.compute)

    def test_model_zeroes_potential(self, runs):
        assert np.all(runs["model"].potential == 0.0)

    def test_dry_run_forces_model_backend(self, cube):
        res = BarycentricTreecode(
            CoulombKernel(), _params(backend="fused")
        ).compute(cube, dry_run=True)
        assert np.all(res.potential == 0.0)

    def test_distributed_backend_param(self, cube):
        params = _params()
        base = DistributedBLTC(
            CoulombKernel(), params, n_ranks=2
        ).compute(cube)
        fused = DistributedBLTC(
            CoulombKernel(), params.with_(backend="fused"), n_ranks=2
        ).compute(cube)
        assert np.allclose(
            base.potential, fused.potential, rtol=1e-12, atol=1e-14
        )
        assert fused.total_seconds == pytest.approx(base.total_seconds)

    def test_mixed_precision_fused(self, cube):
        params = _params(degree=5, dtype=np.float32)
        a = BarycentricTreecode(
            CoulombKernel(), params
        ).compute(cube)
        b = BarycentricTreecode(
            CoulombKernel(), params.with_(backend="fused")
        ).compute(cube)
        assert relative_l2_error(a.potential, b.potential) < 1e-6
        assert a.phases.compute == pytest.approx(b.phases.compute)


class TestPlanStructure:
    def test_csr_export_roundtrip(self, cube):
        params = _params()
        tree = ClusterTree(cube.positions, params.max_leaf_size)
        batches = TargetBatches(cube.positions, params.max_batch_size)
        lists = build_interaction_lists(batches, tree, params)
        a_ptr, a_ids, d_ptr, d_ids = lists.csr()
        assert a_ptr[-1] == lists.n_approx
        assert d_ptr[-1] == lists.n_direct
        for b in range(len(batches)):
            assert np.array_equal(a_ids[a_ptr[b]:a_ptr[b + 1]], lists.approx[b])
            assert np.array_equal(d_ids[d_ptr[b]:d_ptr[b + 1]], lists.direct[b])

    def test_plan_counts_match_lists(self, cube, shared_plan):
        params = _params()
        tree = ClusterTree(cube.positions, params.max_leaf_size)
        batches = TargetBatches(cube.positions, params.max_batch_size)
        lists = build_interaction_lists(batches, tree, params)
        counts = shared_plan.segment_counts_by_kind()
        assert counts.get("approx", 0) == lists.n_approx
        assert counts.get("direct", 0) == lists.n_direct
        assert shared_plan.n_groups == len(batches)
        assert shared_plan.n_target_rows == batches.n_targets

    def test_interactions_total_matches_device(self, shared_plan):
        device = GpuDevice(GPU_TITAN_V)
        get_backend("model").execute(shared_plan, CoulombKernel(), device)
        assert shared_plan.interactions_total() == pytest.approx(
            device.counters.interactions
        )

    def test_builder_validation(self):
        b = PlanBuilder(10, numerics=True)
        with pytest.raises(ValueError, match="add_group"):
            b.add_segment("approx", points=np.zeros((2, 3)), weights=np.zeros(2))
        with pytest.raises(ValueError, match="targets"):
            b.add_group(size=4)
        m = PlanBuilder(10, numerics=False)
        with pytest.raises(ValueError, match="size"):
            m.add_group()

    def test_batches_max_level_public(self, cube):
        batches = TargetBatches(cube.positions, 200)
        assert batches.max_level == batches._tree.max_level
        assert batches.max_level >= 1
