"""Edge-case tests for the treecode drivers."""

import numpy as np
import pytest

from repro import (
    BarycentricTreecode,
    CoulombKernel,
    GaussianKernel,
    ParticleSet,
    TreecodeParams,
    direct_sum,
    random_cube,
    relative_l2_error,
)


def _params(**kw):
    base = dict(theta=0.7, degree=3, max_leaf_size=50, max_batch_size=50)
    base.update(kw)
    return TreecodeParams(**base)


class TestSmallSystems:
    def test_single_particle(self):
        p = ParticleSet(np.array([[0.0, 0.0, 0.0]]), np.array([1.0]))
        res = BarycentricTreecode(CoulombKernel(), _params()).compute(p)
        assert res.potential.shape == (1,)
        assert res.potential[0] == 0.0  # only self-interaction

    def test_two_particles(self):
        p = ParticleSet(
            np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]),
            np.array([2.0, 3.0]),
        )
        res = BarycentricTreecode(CoulombKernel(), _params()).compute(p)
        assert res.potential[0] == pytest.approx(3.0)
        assert res.potential[1] == pytest.approx(2.0)

    def test_n_below_leaf_size(self):
        p = random_cube(30, seed=1)
        res = BarycentricTreecode(CoulombKernel(), _params()).compute(p)
        ref = direct_sum(p.positions, p.positions, p.charges, CoulombKernel())
        assert np.allclose(res.potential, ref)

    def test_coincident_particles(self):
        """Duplicate positions: self-terms zero, cross-terms singular ->
        the duplicate pair contributes zero to each other (r == 0)."""
        pos = np.array([[0.5, 0.5, 0.5], [0.5, 0.5, 0.5], [0.0, 0.0, 0.0]])
        p = ParticleSet(pos, np.array([1.0, 1.0, 1.0]))
        res = BarycentricTreecode(CoulombKernel(), _params()).compute(p)
        d = np.sqrt(0.75)
        assert res.potential[2] == pytest.approx(2.0 / d)
        assert res.potential[0] == pytest.approx(1.0 / d)


class TestDegenerateGeometry:
    def test_planar_particles(self):
        """All particles in a plane: degenerate box dimension."""
        rng = np.random.default_rng(2)
        pos = rng.uniform(-1, 1, size=(800, 3))
        pos[:, 2] = 0.25
        p = ParticleSet(pos, rng.uniform(-1, 1, size=800))
        res = BarycentricTreecode(CoulombKernel(), _params(degree=5)).compute(p)
        ref = direct_sum(p.positions, p.positions, p.charges, CoulombKernel())
        assert relative_l2_error(ref, res.potential) < 1e-3

    def test_collinear_particles(self):
        rng = np.random.default_rng(3)
        pos = np.zeros((300, 3))
        pos[:, 0] = rng.uniform(-1, 1, size=300)
        p = ParticleSet(pos, rng.uniform(-1, 1, size=300))
        res = BarycentricTreecode(CoulombKernel(), _params(degree=4)).compute(p)
        assert np.all(np.isfinite(res.potential))

    def test_extreme_charge_magnitudes(self):
        rng = np.random.default_rng(4)
        p = ParticleSet(
            rng.uniform(-1, 1, size=(500, 3)),
            rng.uniform(-1, 1, size=500) * 1e150,
        )
        res = BarycentricTreecode(CoulombKernel(), _params(degree=4)).compute(p)
        ref = direct_sum(p.positions, p.positions, p.charges, CoulombKernel())
        assert relative_l2_error(ref, res.potential) < 1e-3


class TestZeroCharges:
    def test_zero_charges_zero_potential(self):
        p = ParticleSet(
            random_cube(400, seed=5).positions, np.zeros(400)
        )
        res = BarycentricTreecode(CoulombKernel(), _params()).compute(p)
        assert np.array_equal(res.potential, np.zeros(400))

    def test_smooth_kernel_with_coincident_targets(self):
        """Non-singular kernel: self-interaction contributes g(0)."""
        p = ParticleSet(
            np.array([[0.0, 0.0, 0.0]]), np.array([2.0])
        )
        kernel = GaussianKernel(sigma=1.0)
        res = BarycentricTreecode(kernel, _params()).compute(p)
        assert res.potential[0] == pytest.approx(2.0)  # g(0) = 1


class TestInputHandling:
    def test_target_array_vs_particleset(self):
        src = random_cube(300, seed=6)
        tgt = random_cube(100, seed=7)
        tc = BarycentricTreecode(CoulombKernel(), _params())
        a = tc.compute(src, targets=tgt.positions)
        b = tc.compute(src, targets=tgt)
        assert np.array_equal(a.potential, b.potential)

    def test_results_deterministic(self):
        p = random_cube(600, seed=8)
        tc = BarycentricTreecode(CoulombKernel(), _params())
        a = tc.compute(p)
        b = tc.compute(p)
        assert np.array_equal(a.potential, b.potential)
        assert a.phases.total == pytest.approx(b.phases.total)
