"""Unit and property tests for repro.tree (boxes, octree, batches)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.config import ASPECT_RATIO_LIMIT
from repro.tree import Box, ClusterTree, TargetBatches, bounding_box
from repro.workloads import gaussian_clusters, random_cube


class TestBox:
    def test_center_radius_extents(self):
        b = Box(np.array([0.0, 0.0, 0.0]), np.array([2.0, 4.0, 6.0]))
        assert np.array_equal(b.center, [1.0, 2.0, 3.0])
        assert np.array_equal(b.extents, [2.0, 4.0, 6.0])
        assert b.radius == pytest.approx(0.5 * np.sqrt(4 + 16 + 36))

    def test_aspect_ratio(self):
        b = Box(np.zeros(3), np.array([1.0, 2.0, 4.0]))
        assert b.aspect_ratio == pytest.approx(4.0)

    def test_degenerate_aspect_ratio(self):
        b = Box(np.zeros(3), np.array([1.0, 0.0, 1.0]))
        assert b.aspect_ratio == np.inf
        point = Box(np.zeros(3), np.zeros(3))
        assert point.aspect_ratio == 1.0

    def test_contains(self):
        b = Box(np.zeros(3), np.ones(3))
        pts = np.array([[0.5, 0.5, 0.5], [1.5, 0.5, 0.5], [0.0, 0.0, 1.0]])
        assert np.array_equal(b.contains(pts), [True, False, True])

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            Box(np.ones(3), np.zeros(3))

    def test_split_dimensions_cube_splits_all(self):
        b = Box(np.zeros(3), np.ones(3))
        assert set(b.split_dimensions(ASPECT_RATIO_LIMIT)) == {0, 1, 2}

    def test_split_dimensions_elongated_splits_long_only(self):
        """Fig. 2b: a 1/2 x 1/3 region bisects only its long dimension."""
        b = Box(np.zeros(3), np.array([0.5, 1.0 / 3.0, 0.5]))
        dims = set(b.split_dimensions(ASPECT_RATIO_LIMIT))
        assert dims == {0, 2}  # 1/3 < 0.5/sqrt(2) is false... check below
        # extent 1/3 vs threshold 0.5/sqrt(2)=0.3535: 1/3 < threshold,
        # so dimension 1 must NOT be split.
        assert 1 not in dims

    def test_bounding_box_minimal(self):
        pts = np.array([[0.0, 1.0, -1.0], [2.0, 3.0, 5.0], [1.0, 2.0, 0.0]])
        b = bounding_box(pts)
        assert np.array_equal(b.lo, [0.0, 1.0, -1.0])
        assert np.array_equal(b.hi, [2.0, 3.0, 5.0])

    def test_bounding_box_empty(self):
        with pytest.raises(ValueError):
            bounding_box(np.zeros((0, 3)))


class TestClusterTree:
    def test_invariants_uniform(self):
        p = random_cube(800, seed=0)
        tree = ClusterTree(p.positions, 50)
        tree.validate()

    def test_invariants_clustered(self):
        p = gaussian_clusters(600, n_clusters=5, seed=1, spread=0.02)
        tree = ClusterTree(p.positions, 40)
        tree.validate()

    def test_leaf_sizes_respect_nl(self):
        p = random_cube(500, seed=2)
        tree = ClusterTree(p.positions, 64)
        for leaf in tree.leaves():
            assert leaf.count <= 64

    def test_leaf_union_is_everything(self):
        p = random_cube(300, seed=3)
        tree = ClusterTree(p.positions, 32)
        all_idx = np.concatenate([tree.node_indices(l) for l in tree.leaves()])
        assert sorted(all_idx.tolist()) == list(range(300))

    def test_single_leaf_when_small(self):
        p = random_cube(10, seed=4)
        tree = ClusterTree(p.positions, 100)
        assert len(tree) == 1 and tree.root.is_leaf

    def test_children_consecutive_indices(self):
        """The packed tree array relies on BFS child contiguity."""
        p = random_cube(2000, seed=5)
        tree = ClusterTree(p.positions, 50)
        for nd in tree.nodes:
            if nd.children:
                ch = nd.children
                assert ch == list(range(ch[0], ch[0] + len(ch)))

    def test_minimal_boxes_touch_particles(self):
        """Shrink-to-fit: each box boundary touches a particle (Sec. 2.3)."""
        p = random_cube(400, seed=6)
        tree = ClusterTree(p.positions, 50, shrink_to_fit=True)
        for nd in tree.nodes:
            pts = tree.node_points(nd)
            assert np.allclose(pts.min(axis=0), nd.box.lo)
            assert np.allclose(pts.max(axis=0), nd.box.hi)

    def test_aspect_ratio_rule_limits_children(self):
        """An elongated slab should produce 2-way (not 8-way) splits."""
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 1, size=(400, 3))
        pts[:, 0] *= 8.0  # 8:1:1 slab
        tree = ClusterTree(pts, 50, aspect_ratio_splitting=True)
        assert len(tree.root.children) == 2

    def test_without_aspect_rule_cube_gets_eight(self):
        p = random_cube(4000, seed=8)
        tree = ClusterTree(p.positions, 100, aspect_ratio_splitting=False)
        assert len(tree.root.children) == 8

    def test_children_aspect_ratios_bounded(self):
        p = random_cube(3000, seed=9)
        tree = ClusterTree(p.positions, 50, shrink_to_fit=False)
        for nd in tree.nodes:
            if nd.box.extents.min() > 0:
                # Allow a little slack: the rule bounds the *splitting*
                # geometry; shrunk boxes can only get less elongated.
                assert nd.box.aspect_ratio <= 2 * ASPECT_RATIO_LIMIT + 1e-9

    def test_duplicate_points_terminate(self):
        """Coincident particles cannot be split -- must become a leaf."""
        pts = np.tile(np.array([[0.5, 0.5, 0.5]]), (20, 1))
        tree = ClusterTree(pts, 4)
        tree.validate()
        assert tree.root.is_leaf

    def test_mixed_duplicates_terminate(self):
        pts = np.vstack(
            [np.tile([[0.1, 0.2, 0.3]], (15, 1)), np.tile([[0.9, 0.8, 0.7]], (15, 1))]
        )
        tree = ClusterTree(pts, 4)
        tree.validate()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ClusterTree(np.zeros((0, 3)), 10)

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            ClusterTree(np.zeros((5, 3)), 0)

    def test_tree_array_roundtrip(self):
        p = random_cube(600, seed=10)
        tree = ClusterTree(p.positions, 80)
        arr = tree.tree_array()
        assert arr.shape == (len(tree), ClusterTree.TREE_ARRAY_FIELDS)
        for nd in tree.nodes:
            row = arr[nd.index]
            assert np.allclose(row[0:3], nd.center)
            assert row[3] == pytest.approx(nd.radius)
            assert row[10] == nd.count
            assert row[13] == (1.0 if nd.is_leaf else 0.0)
            if nd.children:
                assert int(row[14]) == nd.children[0]
                assert int(row[15]) == len(nd.children)


class TestTargetBatches:
    def test_batch_sizes_respect_nb(self):
        p = random_cube(700, seed=11)
        batches = TargetBatches(p.positions, 90)
        assert np.all(batches.sizes() <= 90)

    def test_batches_cover_all_targets_once(self):
        p = random_cube(500, seed=12)
        batches = TargetBatches(p.positions, 64)
        seen = np.concatenate(
            [batches.batch_indices(b) for b in range(len(batches))]
        )
        assert sorted(seen.tolist()) == list(range(500))

    def test_batches_equal_source_leaves_when_same_params(self):
        """Paper: with targets == sources and NB == NL, batches are the
        leaves of the source tree."""
        p = random_cube(900, seed=13)
        tree = ClusterTree(p.positions, 100)
        batches = TargetBatches(p.positions, 100)
        leaf_sets = sorted(
            tuple(sorted(tree.node_indices(l))) for l in tree.leaves()
        )
        batch_sets = sorted(
            tuple(sorted(batches.batch_indices(b)))
            for b in range(len(batches))
        )
        assert leaf_sets == batch_sets

    def test_geometry_accessors(self):
        p = random_cube(300, seed=14)
        batches = TargetBatches(p.positions, 50)
        assert batches.centers().shape == (len(batches), 3)
        assert batches.radii().shape == (len(batches),)
        batches.validate()


class TestTreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=300),
        leaf=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_trees_valid(self, n, leaf, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-1, 1, size=(n, 3))
        tree = ClusterTree(pts, leaf)
        tree.validate()

    @settings(max_examples=15, deadline=None)
    @given(
        pts=hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 120), st.just(3)),
            elements=st.floats(-1, 1, allow_nan=False),
        ),
    )
    def test_arbitrary_point_sets_valid(self, pts):
        tree = ClusterTree(pts, 8)
        tree.validate()
